#include "recovery/checkpoint.h"

#include "common/coding.h"

namespace llb {

Result<Lsn> FindCrashRedoStart(const LogManager& log) {
  Lsn start = 1;
  LLB_RETURN_IF_ERROR(log.Scan(1, [&](const LogRecord& rec) {
    if (rec.IsCheckpoint() && rec.payload.size() >= 8) {
      start = DecodeFixed64(rec.payload.data());
    }
    return Status::OK();
  }));
  return start;
}

}  // namespace llb
