#include "recovery/instant_restore.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/coding.h"
#include "io/durable_cursor.h"
#include "io/mem_env.h"
#include "io/transfer_pipeline.h"
#include "recovery/log_applier.h"
#include "recovery/redo.h"

namespace llb {

namespace {

constexpr uint32_t kBitmapMagic = 0x4C4C5242;  // "LLRB"
constexpr uint32_t kBitmapVersion = 1;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

InstantRestorer::InstantRestorer(Env* env, std::string bitmap_name,
                                 std::string backup_name,
                                 const OpRegistry& registry, PageStore* stable,
                                 LogManager* log,
                                 const InstantRestoreOptions& options,
                                 RestoreChainPlan plan)
    : env_(env),
      bitmap_name_(std::move(bitmap_name)),
      backup_name_(std::move(backup_name)),
      registry_(registry),
      stable_(stable),
      log_(log),
      options_(options),
      plan_(std::move(plan)) {}

Result<std::unique_ptr<InstantRestorer>> InstantRestorer::Open(
    Env* env, const std::string& bitmap_name, const std::string& backup_name,
    const OpRegistry& registry, PageStore* stable, LogManager* log,
    const InstantRestoreOptions& options) {
  LLB_ASSIGN_OR_RETURN(RestoreChainPlan plan,
                       LoadRestoreChain(env, backup_name));
  std::unique_ptr<InstantRestorer> restorer(
      new InstantRestorer(env, bitmap_name, backup_name, registry, stable, log,
                          options, std::move(plan)));
  LLB_RETURN_IF_ERROR(restorer->Init());
  return restorer;
}

Result<RestoreStatus> InstantRestorer::InspectBitmap(
    Env* env, const std::string& bitmap_name, std::string* backup_name) {
  LLB_ASSIGN_OR_RETURN(std::string cell, DurableCursor::Load(env, bitmap_name));
  SliceReader reader{Slice(cell)};
  uint32_t magic = 0, version = 0, parts = 0, ppp = 0;
  uint64_t tail = 0;
  Slice name;
  if (!reader.ReadFixed32(&magic) || magic != kBitmapMagic ||
      !reader.ReadFixed32(&version) || version != kBitmapVersion ||
      !reader.ReadFixed64(&tail) || !reader.ReadLengthPrefixed(&name) ||
      !reader.ReadFixed32(&parts) || !reader.ReadFixed32(&ppp)) {
    return Status::Corruption("restored-bitmap cell malformed: " + bitmap_name);
  }
  uint64_t total = uint64_t{parts} * ppp;
  Slice raw_bits;
  if (!reader.ReadBytes((total + 7) / 8, &raw_bits)) {
    return Status::Corruption("restored-bitmap cell malformed: " + bitmap_name);
  }
  RestoreStatus status;
  status.restoring = true;
  status.pages_total = total;
  for (uint64_t pos = 0; pos < total; ++pos) {
    if ((static_cast<uint8_t>(raw_bits[pos >> 3]) & (1u << (pos & 7))) != 0) {
      ++status.pages_restored;
    }
  }
  status.complete = status.pages_restored == total;
  status.recovery_tail = tail;
  if (total > 0) {
    status.fraction =
        static_cast<double>(status.pages_restored) / static_cast<double>(total);
  }
  if (backup_name != nullptr) *backup_name = name.ToString();
  return status;
}

Status InstantRestorer::Init() {
  partitions_ = plan_.base().partitions;
  pages_per_partition_ = plan_.base().pages_per_partition;
  total_pages_ = uint64_t{partitions_} * pages_per_partition_;
  if (stable_->num_partitions() != partitions_) {
    return Status::InvalidArgument(
        "restore target partition count does not match the backup chain");
  }
  for (const BackupManifest& m : plan_.chain) {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<PageStore> store,
                         PageStore::Open(env_, m.StoreName(), m.partitions));
    carriers_.push_back(std::move(store));
  }

  bits_.assign((total_pages_ + 7) / 8, 0);
  Result<std::string> cell = DurableCursor::Load(env_, bitmap_name_);
  if (cell.ok()) {
    // Resume: a crash interrupted a previous restoring session. The cell
    // pins the recovery tail and the chain; bits cleared by the crash
    // (set in memory but never saved) simply re-restore.
    SliceReader reader{Slice(*cell)};
    uint32_t magic = 0, version = 0, parts = 0, ppp = 0;
    uint64_t tail = 0;
    Slice name, raw_bits;
    if (!reader.ReadFixed32(&magic) || magic != kBitmapMagic ||
        !reader.ReadFixed32(&version) || version != kBitmapVersion ||
        !reader.ReadFixed64(&tail) || !reader.ReadLengthPrefixed(&name) ||
        !reader.ReadFixed32(&parts) || !reader.ReadFixed32(&ppp) ||
        !reader.ReadBytes(bits_.size(), &raw_bits)) {
      return Status::Corruption("restored-bitmap cell malformed: " +
                                bitmap_name_);
    }
    if (name.ToString() != backup_name_ || parts != partitions_ ||
        ppp != pages_per_partition_) {
      return Status::InvalidArgument(
          "restored-bitmap cell belongs to a different restore (backup '" +
          name.ToString() + "'); finish or discard that restore first");
    }
    recovery_tail_ = tail;
    std::memcpy(bits_.data(), raw_bits.data(), bits_.size());
    for (uint64_t pos = 0; pos < total_pages_; ++pos) {
      if ((bits_[pos >> 3] & (1u << (pos & 7))) != 0) ++restored_count_;
    }
  } else if (cell.status().IsNotFound()) {
    // First restoring open after the media failure: freeze the durable
    // log tail and pin it durably BEFORE any transaction can append —
    // the slice/new-work split must survive a crash that loses the
    // in-memory value.
    recovery_tail_ = log_->durable_lsn();
    std::lock_guard<std::mutex> lock(mu_);
    LLB_RETURN_IF_ERROR(SaveBitmapLocked());
  } else {
    return cell.status();
  }

  // Snapshot the media-recovery slice. Taken before new appends (Open
  // precedes serving), so the snapshot equals the log range
  // [newest.start_lsn, recovery_tail] for the restore's whole lifetime —
  // closures and replays never race the live log.
  LLB_RETURN_IF_ERROR(
      log_->Scan(plan_.newest().start_lsn, [&](const LogRecord& rec) {
        if (rec.lsn > recovery_tail_ || rec.IsCheckpoint()) {
          return Status::OK();
        }
        slice_.push_back(rec);
        return Status::OK();
      }));
  return Status::OK();
}

void InstantRestorer::SetBitLocked(const PageId& id) {
  uint64_t pos = BitIndex(id);
  uint8_t mask = static_cast<uint8_t>(1u << (pos & 7));
  if ((bits_[pos >> 3] & mask) == 0) {
    bits_[pos >> 3] |= mask;
    ++restored_count_;
  }
}

Status InstantRestorer::SaveBitmapLocked() {
  std::string payload;
  PutFixed32(&payload, kBitmapMagic);
  PutFixed32(&payload, kBitmapVersion);
  PutFixed64(&payload, recovery_tail_);
  PutLengthPrefixed(&payload, Slice(backup_name_));
  PutFixed32(&payload, partitions_);
  PutFixed32(&payload, pages_per_partition_);
  payload.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  LLB_RETURN_IF_ERROR(DurableCursor::Save(env_, bitmap_name_, Slice(payload)));
  ++bitmap_saves_;
  return Status::OK();
}

Status InstantRestorer::RestoreClosureLocked(const std::vector<PageId>& seeds,
                                             const std::function<bool()>& pause,
                                             uint64_t* installed) {
  *installed = 0;

  // 1. Influence closure: fixpoint over the slice. One backward pass
  //    catches later-record dependencies; iterating to fixpoint also
  //    catches pages whose membership is established only by an earlier
  //    record (so every replayed record's readset ends up inside the
  //    closure — the property the restricted replay's soundness rests
  //    on). Operations never span partitions, so the closure stays
  //    within the seeds' partitions.
  std::unordered_set<PageId, PageIdHash> closure(seeds.begin(), seeds.end());
  bool grew = true;
  while (grew) {
    grew = false;
    for (auto it = slice_.rbegin(); it != slice_.rend(); ++it) {
      const LogRecord& rec = *it;
      bool touches = false;
      for (const PageId& t : rec.writeset) {
        if (closure.count(t) != 0) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      for (const std::vector<PageId>* set : {&rec.readset, &rec.writeset}) {
        for (const PageId& id : *set) {
          if (closure.insert(id).second) grew = true;
        }
      }
    }
  }
  std::vector<PageId> pages(closure.begin(), closure.end());
  std::sort(pages.begin(), pages.end());

  // 2. Scratch overlay: a private in-memory store seeded with the
  //    closure's newest-carrier images. Always fresh — mixing previously
  //    replayed (post-slice) values with raw carrier values would not be
  //    a legal redo base for logical operations (the paper's Figure 1
  //    problem in miniature).
  MemEnv scratch_env;
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<PageStore> scratch,
                       PageStore::Open(&scratch_env, "irscratch", partitions_));
  std::vector<std::vector<PageId>> claims = plan_.Claims(pages);
  for (size_t i = 0; i < claims.size(); ++i) {
    if (claims[i].empty()) continue;
    TransferPlan seed_plan;
    seed_plan.AddPages(claims[i], options_.batch_pages);
    TransferOptions seed_opts;
    seed_opts.batch_pages = options_.batch_pages;
    seed_opts.queue_depth = options_.queue_depth;
    TransferPipeline pipeline(carriers_[i].get(), scratch.get(), seed_opts);
    LLB_RETURN_IF_ERROR(pipeline.Run(seed_plan, nullptr));
  }

  // 3. Replay the slice restricted to records writing closure pages.
  //    Mirrors RunRedoRange over a restored base: identity writes seed
  //    (install-without-flush — an installed operation's effects may
  //    exist only on the log), everything else replays in LSN order
  //    under the per-target LSN test. Readsets are inside the closure by
  //    the fixpoint, so every replay sees exactly the page states the
  //    full offline replay would.
  LogApplier applier(registry_, scratch.get());
  struct IdentitySeed {
    Lsn lsn = kInvalidLsn;
    const std::string* value = nullptr;
  };
  std::unordered_map<PageId, IdentitySeed, PageIdHash> identity_seeds;
  for (const LogRecord& rec : slice_) {
    if (rec.IsIdentityWrite() && rec.writeset.size() == 1 &&
        closure.count(rec.writeset[0]) != 0) {
      IdentitySeed& seed = identity_seeds[rec.writeset[0]];
      if (seed.value == nullptr || rec.lsn >= seed.lsn) {
        seed = IdentitySeed{rec.lsn, &rec.payload};
      }
    }
  }
  for (const auto& [id, seed] : identity_seeds) {
    LLB_RETURN_IF_ERROR(applier.SeedPage(id, *seed.value, seed.lsn, nullptr));
  }
  for (const LogRecord& rec : slice_) {
    if (rec.IsIdentityWrite()) continue;
    bool touches = false;
    for (const PageId& t : rec.writeset) {
      if (closure.count(t) != 0) {
        touches = true;
        break;
      }
    }
    if (!touches) continue;
    LLB_RETURN_IF_ERROR(applier.Apply(rec));
  }
  LLB_RETURN_IF_ERROR(applier.Flush());

  // 4. Install into S only the closure pages still unrestored: a set bit
  //    means the live page may already be newer than the slice state
  //    (the transaction that faulted it in has moved on) — never
  //    clobber. Bits are set per durably-written run (after_run), then
  //    the bitmap is persisted once — also after a pause or partial
  //    failure, so exactly what landed is recorded.
  std::vector<PageId> to_install;
  for (const PageId& id : pages) {
    if (!TestBitLocked(id)) to_install.push_back(id);
  }
  if (to_install.empty()) return Status::OK();
  TransferPlan install_plan;
  install_plan.AddPages(to_install, options_.batch_pages);
  TransferOptions install_opts;
  install_opts.batch_pages = options_.batch_pages;
  install_opts.queue_depth = options_.queue_depth;
  install_opts.pause = pause;
  install_opts.after_run = [this, installed](
                               const TransferRun& run,
                               const std::vector<PageImage>&) {
    for (uint32_t k = 0; k < run.count; ++k) {
      SetBitLocked(PageId{run.partition, run.first_page + k});
    }
    *installed += run.count;
    return Status::OK();
  };
  TransferPipeline install(scratch.get(), stable_, install_opts);
  Status run_status = install.Run(install_plan, nullptr);
  Status save_status = SaveBitmapLocked();
  LLB_RETURN_IF_ERROR(run_status);
  return save_status;
}

Status InstantRestorer::RestoreOnFault(const PageId& id) {
  if (id.partition >= partitions_ || id.page >= pages_per_partition_) {
    // Outside the backed-up geometry: nothing to restore (the page was
    // never written before the failure; it reads as zero).
    return Status::OK();
  }
  faults_waiting_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  faults_waiting_.fetch_sub(1, std::memory_order_acq_rel);
  if (TestBitLocked(id)) return Status::OK();
  uint64_t installed = 0;
  Status s = RestoreClosureLocked({id}, nullptr, &installed);
  faulted_pages_ += installed;
  if (installed > 0) closure_extra_pages_ += installed - 1;
  return s;
}

Result<uint64_t> InstantRestorer::Step() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t max_pages = std::max<uint32_t>(1, options_.step_pages);
  std::vector<PageId> seeds;
  for (uint64_t pos = 0; pos < total_pages_ && seeds.size() < max_pages;
       ++pos) {
    if ((bits_[pos >> 3] & (1u << (pos & 7))) == 0) {
      seeds.push_back(
          PageId{static_cast<PartitionId>(pos / pages_per_partition_),
                 static_cast<uint32_t>(pos % pages_per_partition_)});
    }
  }
  if (seeds.empty()) return uint64_t{0};
  auto started = std::chrono::steady_clock::now();
  uint64_t installed = 0;
  Status s = RestoreClosureLocked(
      seeds,
      [this] {
        return faults_waiting_.load(std::memory_order_acquire) > 0;
      },
      &installed);
  sweep_pages_ += installed;
  if (installed > 0) sweep_us_ += ElapsedUs(started);
  LLB_RETURN_IF_ERROR(s);
  return installed;
}

Status InstantRestorer::Drain() {
  while (!complete()) {
    LLB_ASSIGN_OR_RETURN(uint64_t moved, Step());
    (void)moved;
  }
  return Status::OK();
}

Status InstantRestorer::ResumeRedo() {
  LLB_ASSIGN_OR_RETURN(
      RedoReport report,
      RunRedoRange(*log_, registry_, stable_, recovery_tail_ + 1, kInvalidLsn,
                   /*only_partition=*/nullptr));
  (void)report;
  return Status::OK();
}

bool InstantRestorer::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restored_count_ == total_pages_;
}

Status InstantRestorer::Finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  if (restored_count_ != total_pages_) {
    return Status::FailedPrecondition("restore incomplete: " +
                                      std::to_string(restored_count_) + "/" +
                                      std::to_string(total_pages_) + " pages");
  }
  return DurableCursor::Remove(env_, bitmap_name_);
}

RestoreStatus InstantRestorer::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  RestoreStatus s;
  s.restoring = true;
  s.complete = restored_count_ == total_pages_;
  s.pages_total = total_pages_;
  s.pages_restored = restored_count_;
  s.pages_faulted = faulted_pages_;
  s.closure_pages = closure_extra_pages_;
  s.sweep_pages = sweep_pages_;
  s.bitmap_saves = bitmap_saves_;
  s.recovery_tail = recovery_tail_;
  s.fraction = total_pages_ == 0
                   ? 1.0
                   : static_cast<double>(restored_count_) /
                         static_cast<double>(total_pages_);
  if (sweep_pages_ > 0 && restored_count_ < total_pages_) {
    s.eta_us = (total_pages_ - restored_count_) * (sweep_us_ / sweep_pages_);
  }
  return s;
}

}  // namespace llb
