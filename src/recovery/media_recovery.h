#ifndef LLB_RECOVERY_MEDIA_RECOVERY_H_
#define LLB_RECOVERY_MEDIA_RECOVERY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "backup/backup_store.h"
#include "common/result.h"
#include "io/env.h"
#include "ops/op_registry.h"
#include "recovery/redo.h"

namespace llb {

/// The *plan phase* of media recovery, shared by offline restore and
/// instant restore: the backup's incremental chain (base first) plus the
/// newest-wins carrier index. Every page position is read from exactly
/// one chain member — the newest one carrying it — so chain application
/// never writes a page only to overwrite it.
struct RestoreChainPlan {
  std::vector<BackupManifest> chain;  // base first, restore target last
  /// Chain index of the newest member carrying the page. Positions absent
  /// from every incremental (i.e. only in the base full backup) are not
  /// in the map; CarrierOf resolves them to index 0.
  std::unordered_map<uint64_t, size_t> newest_carrier;

  static uint64_t Key(const PageId& id) {
    return (uint64_t{id.partition} << 32) | id.page;
  }

  const BackupManifest& base() const { return chain.front(); }
  const BackupManifest& newest() const { return chain.back(); }

  size_t CarrierOf(const PageId& id) const {
    auto it = newest_carrier.find(Key(id));
    return it == newest_carrier.end() ? 0 : it->second;
  }

  /// Groups a partition-major sorted page list by carrying chain member:
  /// result[i] holds the pages to read from chain[i], preserving the
  /// input order so TransferPlan::AddPages coalesces adjacent survivors.
  std::vector<std::vector<PageId>> Claims(
      const std::vector<PageId>& pages) const {
    std::vector<std::vector<PageId>> claims(chain.size());
    for (const PageId& id : pages) claims[CarrierOf(id)].push_back(id);
    return claims;
  }
};

/// Loads `backup_name`'s manifest chain (walking incremental -> base) and
/// builds the newest-carrier index. Fails if any member is incomplete or
/// an incremental lacks its base.
Result<RestoreChainPlan> LoadRestoreChain(Env* env,
                                          const std::string& backup_name);

struct MediaRecoveryReport {
  uint64_t pages_restored = 0;   // pages copied from backups into S
  uint32_t backups_applied = 0;  // full + incremental chain length
  RedoReport redo;               // the roll-forward
};

/// Media recovery (paper section 1): restore the stable database S from
/// backup B, then roll the restored state forward by applying the media
/// recovery log from the backup's recorded scan start point.
///
/// `stable_prefix` names S's page store, `log_name` the recovery log, and
/// `backup_name` the backup to restore from. If the backup is incremental
/// the base chain is restored first (paper 6.1).
///
/// Must run offline (no live Database over `stable_prefix`), as in the
/// paper: "restoring ... is usually done off-line because media failure
/// frequently precludes database activity".
Result<MediaRecoveryReport> RestoreFromBackup(Env* env,
                                              const std::string& stable_prefix,
                                              const std::string& log_name,
                                              const std::string& backup_name,
                                              const OpRegistry& registry);

/// Restore options for the extended entry point.
struct RestoreOptions {
  /// Roll forward only up to this LSN (point-in-time recovery; the paper
  /// notes recovery may target "some designated earlier time"). 0 / max
  /// means the end of the log.
  Lsn stop_at_lsn = kInvalidLsn;

  /// When set, restore only this partition: its pages are copied from
  /// the backup chain and only operations writing it are replayed. Sound
  /// because operations never span partitions ("preventing operations
  /// from having operands from more than one partition makes a partition
  /// the unit of media recovery", paper 6.3). Other partitions of S are
  /// left untouched.
  bool partition_only = false;
  PartitionId partition = 0;

  /// Pages per bulk B -> S device IO (the restore's K, mirroring
  /// BackupJobOptions::batch_pages). <= 1 restores page at a time.
  /// Restore runs offline, so there is no fence protocol to respect —
  /// batching is purely a throughput knob and the default is batched.
  uint32_t batch_pages = 32;
  /// Double-buffered prefetch: read run N+1 from B while run N drains
  /// into S (only effective with batch_pages > 1).
  bool pipelined = false;
  /// Deep-queue asynchronous IO (only effective with batch_pages > 1,
  /// superseding `pipelined`): each restore worker keeps up to
  /// queue_depth run IOs in flight via Env::OpenAsync. <= 1 keeps the
  /// synchronous path.
  uint32_t queue_depth = 0;
  /// Concurrent restore workers; partitions are sharded across them
  /// exactly like the parallel backup sweep (each partition's pages stay
  /// on one worker). 1 = serial. RTO scales with workers the way
  /// bench_x8 shows.
  uint32_t threads = 1;
};

Result<MediaRecoveryReport> RestoreFromBackupWithOptions(
    Env* env, const std::string& stable_prefix, const std::string& log_name,
    const std::string& backup_name, const OpRegistry& registry,
    const RestoreOptions& options);

/// Point-in-time restore to exactly `target`:
///
///   1. Validates the cut. The target must lie in [1, durable log tail]
///      (LSNs are dense) and must not fall inside a multi-record atomic
///      group (LogRecord::kGroupBegin/kGroupEnd — e.g. a logical B-tree
///      split): stopping mid-group would materialize a half-applied
///      structure modification. The exact durable tail is always
///      accepted — it equals a plain full restore, including a tail that
///      itself ends mid-group after a primary crash.
///   2. Picks the restore chain: among all complete manifests in `env`,
///      the backup with the greatest end_lsn <= target (roll-forward
///      never rolls back, so a backup that finished after the target
///      cannot reach it). No such backup -> FailedPrecondition: the
///      target predates the oldest retained backup.
///   3. Delegates to RestoreFromBackupWithOptions with stop_at_lsn =
///      target, which also truncates the excluded log suffix.
///
/// `options.stop_at_lsn` and `options.partition_only` are ignored (PITR
/// is whole-database); the bulk-transfer knobs are honored.
Result<MediaRecoveryReport> RestoreToPointInTime(
    Env* env, const std::string& stable_prefix, const std::string& log_name,
    Lsn target, const OpRegistry& registry, const RestoreOptions& options = {});

}  // namespace llb

#endif  // LLB_RECOVERY_MEDIA_RECOVERY_H_
