#ifndef LLB_RECOVERY_GENERAL_WRITE_GRAPH_H_
#define LLB_RECOVERY_GENERAL_WRITE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "recovery/write_graph.h"

namespace llb {

/// Write graph for general logical operations, following [Lomet & Tuttle
/// 1995/1999] as summarized in paper section 2.4:
///
///  * first collapse — operations with intersecting write sets share a
///    node (their pages must be flushed together atomically);
///  * installation edges — a read-write conflict (O reads X, P later
///    writes X) adds an edge node(O) -> node(P): O's node must install
///    first, else O's replay would read a too-new X;
///  * second collapse — any cycle created by edge insertion merges its
///    strongly connected component into a single node, keeping the flush
///    order feasible (acyclic);
///  * refinement (rW, paper 2.5) — a cache-manager identity write of X
///    removes X from its node's vars: X's value is then recoverable from
///    the log, so installing the node no longer requires flushing X.
///    (General blind writes are handled conservatively — they merge like
///    ordinary writes — because removing vars on arbitrary blind writes
///    is only sound with regeneration-order bookkeeping that identity
///    writes make unnecessary; see DESIGN.md "Key design decisions".)
///
/// Nodes are tracked through a union-find so merges are O(alpha);
/// stale node ids resolve lazily through Find().
class GeneralWriteGraph : public WriteGraph {
 public:
  GeneralWriteGraph() = default;

  void OnOperation(const LogRecord& rec) override;
  void OnIdentityWrite(const PageId& x, Lsn lsn) override;
  Status PlanInstall(const PageId& x, std::vector<InstallUnit>* plan) override;
  void MarkInstalled(uint64_t node_id) override;
  void BeginInstall(uint64_t node_id) override;
  void EndInstall(uint64_t node_id) override;
  bool IsTracked(const PageId& x) const override;
  Lsn RedoStartLsn(Lsn next_lsn) const override;
  WriteGraphStats GetStats() const override;

  /// Number of live (uninstalled) nodes.
  size_t NumNodes() const { return nodes_.size(); }

  /// True if there is an edge Find(from) -> Find(to) (test hook).
  bool HasEdge(uint64_t from, uint64_t to) const;

  /// Canonical node id owning page x, or 0.
  uint64_t OwnerNode(const PageId& x) const;

  /// Current vars set size of the node owning x (0 if untracked).
  size_t VarsSizeOf(const PageId& x) const;

 private:
  struct Node {
    std::unordered_set<PageId, PageIdHash> vars;
    std::unordered_set<PageId, PageIdHash> reads;
    std::unordered_set<uint64_t> preds;  // raw ids; resolve via Find
    std::unordered_set<uint64_t> succs;
    Lsn min_lsn;
    Lsn max_lsn;
    size_t op_count = 0;
  };

  uint64_t NewNode();
  uint64_t Find(uint64_t id) const;
  /// Merges b into a (both canonical); returns the canonical survivor.
  uint64_t Merge(uint64_t a, uint64_t b);
  /// Collapses every non-trivial strongly connected component.
  void CollapseCycles();
  bool Reaches(uint64_t from, uint64_t to) const;
  /// Resolved, live, deduplicated predecessor set of a node.
  std::vector<uint64_t> LivePreds(const Node& node) const;
  std::vector<uint64_t> LiveSuccs(const Node& node) const;

  std::unordered_map<uint64_t, Node> nodes_;
  mutable std::vector<uint64_t> parent_;  // union-find over node ids
  std::unordered_map<PageId, uint64_t, PageIdHash> owner_;
  std::unordered_map<PageId, std::unordered_set<uint64_t>, PageIdHash>
      readers_;
  /// Nodes bracketed by BeginInstall/EndInstall. CollapseCycles leaves any
  /// SCC containing one of these alone (deferred_collapse_) and retries on
  /// EndInstall; mid-install nodes never change identity, so their ids
  /// stay canonical for the duration.
  std::unordered_set<uint64_t> installing_;
  bool deferred_collapse_ = false;
  uint64_t next_id_ = 1;
  WriteGraphStats stats_;
};

}  // namespace llb

#endif  // LLB_RECOVERY_GENERAL_WRITE_GRAPH_H_
