#include "recovery/tree_write_graph.h"

#include <algorithm>
#include <limits>

namespace llb {

TreeWriteGraph::TNode& TreeWriteGraph::GetOrCreate(const PageId& x, Lsn lsn) {
  auto it = dirty_.find(x);
  if (it == dirty_.end()) {
    TNode node;
    node.id = next_id_++;
    node.page = x;
    node.min_lsn = lsn;
    node.max_lsn = lsn;
    it = dirty_.emplace(x, std::move(node)).first;
    by_id_[it->second.id] = x;
  } else {
    it->second.min_lsn = std::min(it->second.min_lsn, lsn);
    it->second.max_lsn = std::max(it->second.max_lsn, lsn);
  }
  return it->second;
}

void TreeWriteGraph::AddSuccessor(TNode& writer, const PageId& read_page) {
  // read_page becomes a (potential) successor of writer.page: writer must
  // be flushed before read_page's next update is flushed.
  watch_[read_page].insert(writer.page);

  BackupPos candidate = BackupPositionOf(read_page);
  bool succ_violation = false;
  auto rit = dirty_.find(read_page);
  if (rit != dirty_.end()) {
    // MAX(X) = max(#Y, MAX(Y)); violation inherits from Y.
    if (rit->second.has_succ) {
      candidate = std::max(candidate, rit->second.max_pos);
    }
    succ_violation = rit->second.violation;
  }
  if (!writer.has_succ || candidate > writer.max_pos) {
    writer.max_pos = candidate;
  }
  writer.has_succ = true;
  if (BackupPositionOf(writer.page) < BackupPositionOf(read_page) ||
      succ_violation) {
    writer.violation = true;
  }
}

void TreeWriteGraph::OnOperation(const LogRecord& rec) {
  // Tree operations write exactly one object.
  if (rec.writeset.size() != 1) return;
  const PageId& target = rec.writeset[0];
  TNode& node = GetOrCreate(target, rec.lsn);

  // This op updates `target`, so every earlier W_L that *read* target now
  // requires its new object to be installed before target ("potential
  // successor" becomes a real predecessor edge, paper 4.1). Binding here,
  // per update, keeps edges directed new -> old only.
  auto wit = watch_.find(target);
  if (wit != watch_.end()) {
    for (const PageId& pred : wit->second) {
      if (pred != target && dirty_.count(pred)) node.preds.insert(pred);
    }
  }

  for (const PageId& read_page : rec.readset) {
    if (read_page == target) continue;  // page-oriented self read
    AddSuccessor(node, read_page);
  }
}

void TreeWriteGraph::OnIdentityWrite(const PageId& x, Lsn /*lsn*/) {
  auto it = dirty_.find(x);
  if (it == dirty_.end()) return;
  it->second.identity_written = true;
}

Status TreeWriteGraph::PlanInstall(const PageId& x,
                                   std::vector<InstallUnit>* plan) {
  plan->clear();
  auto it = dirty_.find(x);
  if (it == dirty_.end()) {
    return Status::NotFound("page not tracked: " + x.ToString());
  }

  // Emit the predecessor closure in dependency order (preds first). The
  // graph is a forest of trees, hence acyclic.
  std::vector<PageId> order;
  std::unordered_set<PageId, PageIdHash> visited{x};
  std::unordered_set<PageId, PageIdHash> on_stack{x};
  struct Frame {
    PageId page;
    std::vector<PageId> preds;
    size_t next = 0;
  };
  auto live_preds = [&](const TNode& node) {
    std::vector<PageId> out;
    for (const PageId& p : node.preds) {
      if (dirty_.count(p)) out.push_back(p);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  std::vector<Frame> stack;
  stack.push_back({x, live_preds(it->second)});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next < frame.preds.size()) {
      PageId p = frame.preds[frame.next++];
      if (on_stack.count(p)) {
        // Tree operations never create cycles (paper 4.1); hitting one
        // means a domain emitted a non-tree schedule under the tree graph.
        return Status::Internal("cycle in tree write graph at " +
                                p.ToString());
      }
      if (visited.insert(p).second) {
        on_stack.insert(p);
        stack.push_back({p, live_preds(dirty_[p])});
      }
    } else {
      order.push_back(frame.page);
      on_stack.erase(frame.page);
      stack.pop_back();
    }
  }

  for (const PageId& page : order) {
    const TNode& node = dirty_[page];
    InstallUnit unit;
    unit.node_id = node.id;
    if (!node.identity_written) unit.vars = {page};
    unit.min_lsn = node.min_lsn;
    unit.max_lsn = node.max_lsn;
    unit.has_successors = node.has_succ;
    unit.max_successor_pos = node.max_pos;
    unit.violation = node.violation;
    plan->push_back(std::move(unit));
  }
  return Status::OK();
}

void TreeWriteGraph::MarkInstalled(uint64_t node_id) {
  auto idit = by_id_.find(node_id);
  if (idit == by_id_.end()) return;
  PageId x = idit->second;
  by_id_.erase(idit);
  auto it = dirty_.find(x);
  if (it == dirty_.end()) return;

  // X installed: drop it from every watch set (it no longer constrains
  // future updates of the pages it was created from).
  for (auto wit = watch_.begin(); wit != watch_.end();) {
    wit->second.erase(x);
    if (wit->second.empty()) {
      wit = watch_.erase(wit);
    } else {
      ++wit;
    }
  }
  stats_.installs += 1;
  stats_.flushed_pages += 1;
  dirty_.erase(it);
}

bool TreeWriteGraph::IsTracked(const PageId& x) const {
  return dirty_.count(x) > 0;
}

Lsn TreeWriteGraph::RedoStartLsn(Lsn next_lsn) const {
  Lsn start = next_lsn;
  for (const auto& [page, node] : dirty_) {
    start = std::min(start, node.min_lsn);
  }
  return start;
}

WriteGraphStats TreeWriteGraph::GetStats() const {
  WriteGraphStats stats = stats_;
  stats.nodes = dirty_.size();
  stats.total_vars = dirty_.size();
  stats.max_vars = dirty_.empty() ? 0 : 1;
  stats.max_vars_ever = std::max<size_t>(stats_.max_vars_ever, stats.max_vars);
  for (const auto& [page, node] : dirty_) {
    for (const PageId& p : node.preds) {
      if (dirty_.count(p)) ++stats.edges;
    }
  }
  return stats;
}

bool TreeWriteGraph::HasSuccessors(const PageId& x) const {
  auto it = dirty_.find(x);
  return it != dirty_.end() && it->second.has_succ;
}

BackupPos TreeWriteGraph::MaxSuccessorPos(const PageId& x) const {
  auto it = dirty_.find(x);
  return it == dirty_.end() ? 0 : it->second.max_pos;
}

bool TreeWriteGraph::Violation(const PageId& x) const {
  auto it = dirty_.find(x);
  return it != dirty_.end() && it->second.violation;
}

bool TreeWriteGraph::MustInstallBefore(const PageId& pred,
                                       const PageId& succ) const {
  auto it = dirty_.find(succ);
  return it != dirty_.end() && it->second.preds.count(pred) > 0 &&
         dirty_.count(pred) > 0;
}

}  // namespace llb
