#ifndef LLB_RECOVERY_CHECKPOINT_H_
#define LLB_RECOVERY_CHECKPOINT_H_

#include "common/result.h"
#include "common/types.h"
#include "wal/log_manager.h"

namespace llb {

/// Finds the crash-recovery redo scan start: the value recorded by the
/// most recent (fuzzy) checkpoint record, or LSN 1 when none exists.
///
/// Checkpoints are an optimization only — the per-target LSN redo test
/// makes a scan from LSN 1 always correct (installed operations find all
/// their targets up to date and are skipped).
Result<Lsn> FindCrashRedoStart(const LogManager& log);

}  // namespace llb

#endif  // LLB_RECOVERY_CHECKPOINT_H_
