#ifndef LLB_RECOVERY_REDO_H_
#define LLB_RECOVERY_REDO_H_

#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "ops/op_registry.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

struct RedoReport {
  Lsn start_lsn = kInvalidLsn;
  uint64_t records_scanned = 0;
  uint64_t ops_replayed = 0;     // records whose writes were (re)applied
  uint64_t pages_seeded = 0;     // pages initialized from identity writes
  uint64_t pages_written = 0;    // pages written back to the target store
};

/// Redo recovery over `target` (the stable database, or a restored
/// backup during media recovery), scanning the log from `start_lsn`.
///
/// Two passes:
///
///  1. *Seeding* — collect the last identity write W_IP(X, log(X)) of
///     every object. Identity values are exactly the mechanism of
///     install-without-flush (paper 3.2): an installed operation's
///     effects may exist only on the log, and its replay from a possibly
///     later read set must be suppressed. Seeding X at the identity LSN
///     accomplishes both: the value is restored, and the per-target LSN
///     test below skips every earlier writer of X. (Seeding is sound
///     precisely for identity writes: the logged value equals what every
///     later uninstalled reader of X actually read. General blind writes
///     are NOT seeded — they replay in order, letting earlier operations
///     regenerate the intermediate values their readers need.)
///
///  2. *Replay* — scan records in LSN order; an operation is replayed if
///     any of its writeset pages has a lower LSN than the record (the
///     LSN-based redo test, per target). Its apply function recomputes
///     all writes from the current images of its readset; only stale
///     targets are updated. This is the "relatively crude" redo test of
///     paper 2.1 — extra replays are harmless by the installation-order
///     discipline the cache manager enforced during normal execution.
///
/// Idempotent: running it again replays nothing.
Result<RedoReport> RunRedo(const LogManager& log, const OpRegistry& registry,
                           PageStore* target, Lsn start_lsn);

/// Extended form:
///  * `end_lsn` stops the roll-forward after that LSN (point-in-time
///    recovery: "roll forward the state to the time of the last committed
///    transaction (or to some designated earlier time)", paper section
///    1). Pass kInvalidLsn / UINT64_MAX for "to the end of the log".
///  * `only_partition`, when non-null, replays only operations whose
///    writes fall in that partition — sound because the engine precludes
///    cross-partition operations, making "a partition the unit of media
///    recovery" (paper 6.3).
///  * `use_identity_seeds` — MUST be true (the default) when recovering a
///    real base (the stable database after a crash, or a restored
///    backup): such bases satisfy the installation invariant — every
///    installed operation's targets are already current — so seeding
///    never lets an earlier operation replay against a too-new read set.
///    Pass false only when re-executing the log from an EMPTY store
///    (the test oracle): there nothing is installed, every operation
///    replays in order, and identity records are applied in-order like
///    physical writes instead of jumping pages forward.
Result<RedoReport> RunRedoRange(const LogManager& log,
                                const OpRegistry& registry, PageStore* target,
                                Lsn start_lsn, Lsn end_lsn,
                                const PartitionId* only_partition,
                                bool use_identity_seeds = true);

}  // namespace llb

#endif  // LLB_RECOVERY_REDO_H_
