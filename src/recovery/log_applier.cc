#include "recovery/log_applier.h"

#include <functional>
#include <utility>

#include "ops/operation.h"
#include "storage/page.h"

namespace llb {

namespace {

/// Read-through op context over the applier's page cache: reads see the
/// current images, writes stage until the record's LSN test admits them.
class ApplyContext : public OpContext {
 public:
  using Getter = std::function<Status(const PageId&, PageImage**)>;

  explicit ApplyContext(Getter get) : get_(std::move(get)) {}

  Status Read(const PageId& id, PageImage* out) override {
    PageImage* current = nullptr;
    LLB_RETURN_IF_ERROR(get_(id, &current));
    *out = *current;
    return Status::OK();
  }

  Status Write(const PageId& id, const PageImage& image) override {
    staged_[id] = image;
    return Status::OK();
  }

  std::unordered_map<PageId, PageImage, PageIdHash>& staged() {
    return staged_;
  }

 private:
  Getter get_;
  std::unordered_map<PageId, PageImage, PageIdHash> staged_;
};

}  // namespace

Status LogApplier::GetPage(const PageId& id, PageImage** out) {
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    PageImage image;
    LLB_RETURN_IF_ERROR(target_->ReadPage(id, &image));
    it = pages_.emplace(id, std::move(image)).first;
  }
  *out = &it->second;
  return Status::OK();
}

Status LogApplier::SeedPage(const PageId& id, const std::string& value,
                            Lsn lsn, bool* seeded) {
  PageImage* current = nullptr;
  LLB_RETURN_IF_ERROR(GetPage(id, &current));
  bool newer = current->lsn() < lsn;
  if (newer) {
    *current = PageImage::FromRaw(value);
    current->set_lsn(lsn);
    dirty_.insert(id);
  }
  if (seeded != nullptr) *seeded = newer;
  return Status::OK();
}

Status LogApplier::Apply(const LogRecord& rec) {
  if (rec.lsn > applied_lsn_) applied_lsn_ = rec.lsn;
  if (rec.IsCheckpoint() || rec.writeset.empty()) return Status::OK();
  ++stats_.records_seen;

  bool any_stale = false;
  for (const PageId& t : rec.writeset) {
    PageImage* current = nullptr;
    LLB_RETURN_IF_ERROR(GetPage(t, &current));
    if (current->lsn() < rec.lsn) {
      any_stale = true;
      break;
    }
  }
  if (!any_stale) return Status::OK();

  ApplyContext ctx(
      [this](const PageId& id, PageImage** out) { return GetPage(id, out); });
  LLB_RETURN_IF_ERROR(registry_.Apply(ctx, rec));

  for (const PageId& t : rec.writeset) {
    PageImage* current = nullptr;
    LLB_RETURN_IF_ERROR(GetPage(t, &current));
    if (current->lsn() >= rec.lsn) continue;  // already newer: skip
    auto sit = ctx.staged().find(t);
    if (sit == ctx.staged().end()) {
      return Status::Internal("replay did not produce declared target " +
                              t.ToString());
    }
    *current = sit->second;
    current->set_lsn(rec.lsn);
    dirty_.insert(t);
  }
  ++stats_.records_applied;
  return Status::OK();
}

Status LogApplier::Flush() {
  for (const PageId& id : dirty_) {
    LLB_RETURN_IF_ERROR(target_->WritePage(id, pages_.at(id)));
    ++stats_.pages_written;
  }
  dirty_.clear();
  pages_.clear();
  return Status::OK();
}

}  // namespace llb
