#include "recovery/general_write_graph.h"

#include <algorithm>
#include <limits>

namespace llb {

uint64_t GeneralWriteGraph::NewNode() {
  uint64_t id = next_id_++;
  if (parent_.size() <= id) parent_.resize(id + 1);
  parent_[id] = id;
  Node& node = nodes_[id];
  node.min_lsn = std::numeric_limits<Lsn>::max();
  node.max_lsn = 0;
  return id;
}

uint64_t GeneralWriteGraph::Find(uint64_t id) const {
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];  // path halving
    id = parent_[id];
  }
  return id;
}

uint64_t GeneralWriteGraph::Merge(uint64_t a, uint64_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return a;
  Node& na = nodes_[a];
  Node& nb = nodes_[b];
  // Merge smaller into larger to bound total work.
  if (nb.vars.size() + nb.reads.size() > na.vars.size() + na.reads.size()) {
    return Merge(b, a);
  }
  for (const PageId& x : nb.vars) {
    na.vars.insert(x);
    owner_[x] = a;
  }
  for (const PageId& x : nb.reads) na.reads.insert(x);
  for (uint64_t p : nb.preds) na.preds.insert(p);
  for (uint64_t s : nb.succs) na.succs.insert(s);
  na.min_lsn = std::min(na.min_lsn, nb.min_lsn);
  na.max_lsn = std::max(na.max_lsn, nb.max_lsn);
  na.op_count += nb.op_count;
  nodes_.erase(b);
  parent_[b] = a;
  return a;
}

std::vector<uint64_t> GeneralWriteGraph::LivePreds(const Node& node) const {
  std::vector<uint64_t> out;
  for (uint64_t raw : node.preds) {
    uint64_t p = Find(raw);
    if (nodes_.count(p) && std::find(out.begin(), out.end(), p) == out.end()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<uint64_t> GeneralWriteGraph::LiveSuccs(const Node& node) const {
  std::vector<uint64_t> out;
  for (uint64_t raw : node.succs) {
    uint64_t s = Find(raw);
    if (nodes_.count(s) && std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
  return out;
}

bool GeneralWriteGraph::Reaches(uint64_t from, uint64_t to) const {
  if (from == to) return true;
  std::vector<uint64_t> stack{from};
  std::unordered_set<uint64_t> seen{from};
  while (!stack.empty()) {
    uint64_t cur = stack.back();
    stack.pop_back();
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) continue;
    for (uint64_t s : LiveSuccs(it->second)) {
      if (s == to) return true;
      if (seen.insert(s).second) stack.push_back(s);
    }
  }
  return false;
}

void GeneralWriteGraph::CollapseCycles() {
  // Iterative Tarjan SCC over the live nodes; every component with more
  // than one node is merged (paper 2.4, second collapse).
  std::unordered_map<uint64_t, int> index, lowlink;
  std::unordered_set<uint64_t> on_stack;
  std::vector<uint64_t> scc_stack;
  std::vector<std::vector<uint64_t>> components;
  int next_index = 0;

  struct Frame {
    uint64_t node;
    std::vector<uint64_t> succs;
    size_t next = 0;
  };

  std::vector<uint64_t> roots;
  roots.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) roots.push_back(id);

  for (uint64_t root : roots) {
    if (index.count(root)) continue;
    std::vector<Frame> call_stack;
    call_stack.push_back({root, LiveSuccs(nodes_[root])});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack.insert(root);

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      if (frame.next < frame.succs.size()) {
        uint64_t w = frame.succs[frame.next++];
        if (!index.count(w)) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack.insert(w);
          call_stack.push_back({w, LiveSuccs(nodes_[w])});
        } else if (on_stack.count(w)) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[w]);
        }
      } else {
        uint64_t v = frame.node;
        if (lowlink[v] == index[v]) {
          std::vector<uint64_t> component;
          while (true) {
            uint64_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack.erase(w);
            component.push_back(w);
            if (w == v) break;
          }
          if (component.size() > 1) components.push_back(std::move(component));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          Frame& parent = call_stack.back();
          lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[v]);
        }
      }
    }
  }

  for (const std::vector<uint64_t>& component : components) {
    // A component containing a mid-install node cannot merge yet: the
    // installer holds a frozen snapshot of that node's vars and will
    // MarkInstalled exactly those ops. Defer; EndInstall retries. Until
    // then planners that touch the component busy-wait on the installing
    // node (it is strongly connected, hence on every member's pred path),
    // and once it retires the cycle through it dissolves.
    bool blocked = false;
    for (uint64_t id : component) {
      if (installing_.count(id) != 0) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      deferred_collapse_ = true;
      continue;
    }
    uint64_t canon = component[0];
    for (size_t i = 1; i < component.size(); ++i) {
      canon = Merge(canon, component[i]);
    }
  }
}

void GeneralWriteGraph::OnOperation(const LogRecord& rec) {
  // First collapse: the new op joins (and merges) every node whose vars
  // intersect its writeset.
  uint64_t target = 0;
  for (const PageId& x : rec.writeset) {
    auto it = owner_.find(x);
    if (it == owner_.end()) continue;
    uint64_t n = Find(it->second);
    target = (target == 0) ? n : Merge(target, n);
  }
  if (target == 0) target = NewNode();

  Node* node = &nodes_[target];
  node->min_lsn = std::min(node->min_lsn, rec.lsn);
  node->max_lsn = std::max(node->max_lsn, rec.lsn);
  node->op_count += 1;
  for (const PageId& x : rec.writeset) {
    node->vars.insert(x);
    owner_[x] = target;
  }

  // Installation (read-write) edges: every uninstalled node that read any
  // page this op writes must install before this op's node.
  bool added_edge = false;
  for (const PageId& x : rec.writeset) {
    auto rit = readers_.find(x);
    if (rit == readers_.end()) continue;
    for (uint64_t raw : rit->second) {
      uint64_t r = Find(raw);
      if (r == target || !nodes_.count(r)) continue;
      nodes_[r].succs.insert(target);
      node->preds.insert(r);
      added_edge = true;
    }
  }

  // Register this node as a reader of its readset (for future edges).
  for (const PageId& x : rec.readset) {
    node->reads.insert(x);
    readers_[x].insert(target);
  }

  // Second collapse: if a new edge closed a cycle, merge the SCC.
  if (added_edge) {
    bool cycle = false;
    for (uint64_t p : LivePreds(*node)) {
      if (Reaches(target, p)) {
        cycle = true;
        break;
      }
    }
    if (cycle) CollapseCycles();
  }

  size_t vars_now = nodes_[Find(target)].vars.size();
  stats_.max_vars_ever = std::max(stats_.max_vars_ever, vars_now);
}

void GeneralWriteGraph::OnIdentityWrite(const PageId& x, Lsn /*lsn*/) {
  auto it = owner_.find(x);
  if (it == owner_.end()) return;
  uint64_t n = Find(it->second);
  auto nit = nodes_.find(n);
  if (nit != nodes_.end()) nit->second.vars.erase(x);
  owner_.erase(it);
}

Status GeneralWriteGraph::PlanInstall(const PageId& x,
                                      std::vector<InstallUnit>* plan) {
  plan->clear();
  auto it = owner_.find(x);
  if (it == owner_.end()) {
    return Status::NotFound("page not tracked: " + x.ToString());
  }
  uint64_t start = Find(it->second);

  // DFS over predecessor edges emitting post-order: every node appears
  // after all of its uninstalled predecessors (the graph is acyclic).
  std::vector<uint64_t> order;
  std::unordered_set<uint64_t> visited;
  struct Frame {
    uint64_t node;
    std::vector<uint64_t> preds;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({start, LivePreds(nodes_[start])});
  visited.insert(start);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next < frame.preds.size()) {
      uint64_t p = frame.preds[frame.next++];
      if (visited.insert(p).second) {
        stack.push_back({p, LivePreds(nodes_[p])});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  for (uint64_t id : order) {
    const Node& node = nodes_[id];
    InstallUnit unit;
    unit.node_id = id;
    unit.vars.assign(node.vars.begin(), node.vars.end());
    std::sort(unit.vars.begin(), unit.vars.end());
    unit.min_lsn = node.min_lsn;
    unit.max_lsn = node.max_lsn;
    plan->push_back(std::move(unit));
  }
  return Status::OK();
}

void GeneralWriteGraph::MarkInstalled(uint64_t node_id) {
  uint64_t n = Find(node_id);
  auto it = nodes_.find(n);
  if (it == nodes_.end()) return;
  Node& node = it->second;
  for (const PageId& x : node.vars) {
    auto oit = owner_.find(x);
    if (oit != owner_.end() && Find(oit->second) == n) owner_.erase(oit);
  }
  for (const PageId& x : node.reads) {
    auto rit = readers_.find(x);
    if (rit == readers_.end()) continue;
    for (auto sit = rit->second.begin(); sit != rit->second.end();) {
      if (Find(*sit) == n) {
        sit = rit->second.erase(sit);
      } else {
        ++sit;
      }
    }
    if (rit->second.empty()) readers_.erase(rit);
  }
  stats_.installs += 1;
  stats_.flushed_pages += node.vars.size();
  nodes_.erase(it);
}

void GeneralWriteGraph::BeginInstall(uint64_t node_id) {
  installing_.insert(node_id);
}

void GeneralWriteGraph::EndInstall(uint64_t node_id) {
  installing_.erase(node_id);
  if (deferred_collapse_) {
    deferred_collapse_ = false;
    CollapseCycles();  // re-sets the flag if a component is still blocked
  }
}

bool GeneralWriteGraph::IsTracked(const PageId& x) const {
  return owner_.count(x) > 0;
}

uint64_t GeneralWriteGraph::OwnerNode(const PageId& x) const {
  auto it = owner_.find(x);
  return it == owner_.end() ? 0 : Find(it->second);
}

size_t GeneralWriteGraph::VarsSizeOf(const PageId& x) const {
  uint64_t n = OwnerNode(x);
  if (n == 0) return 0;
  return nodes_.at(n).vars.size();
}

bool GeneralWriteGraph::HasEdge(uint64_t from, uint64_t to) const {
  auto it = nodes_.find(Find(from));
  if (it == nodes_.end()) return false;
  for (uint64_t raw : it->second.succs) {
    if (Find(raw) == Find(to)) return true;
  }
  return false;
}

Lsn GeneralWriteGraph::RedoStartLsn(Lsn next_lsn) const {
  Lsn start = next_lsn;
  for (const auto& [id, node] : nodes_) start = std::min(start, node.min_lsn);
  return start;
}

WriteGraphStats GeneralWriteGraph::GetStats() const {
  WriteGraphStats stats = stats_;
  stats.nodes = nodes_.size();
  for (const auto& [id, node] : nodes_) {
    stats.total_vars += node.vars.size();
    stats.max_vars = std::max(stats.max_vars, node.vars.size());
    stats.edges += LiveSuccs(node).size();
  }
  stats.max_vars_ever = std::max(stats.max_vars_ever, stats.max_vars);
  return stats;
}

}  // namespace llb
