#include "recovery/write_graph.h"

#include <algorithm>

namespace llb {

WriteGraph::~WriteGraph() = default;

void PageOrientedWriteGraph::OnOperation(const LogRecord& rec) {
  // Page-oriented operations touch exactly one page and impose no
  // ordering; each dirty page is its own node.
  for (const PageId& x : rec.writeset) {
    auto it = owner_.find(x);
    if (it == owner_.end()) {
      uint64_t id = next_id_++;
      nodes_[id] = Node{x, rec.lsn, rec.lsn};
      owner_[x] = id;
    } else {
      Node& node = nodes_[it->second];
      node.min_lsn = std::min(node.min_lsn, rec.lsn);
      node.max_lsn = std::max(node.max_lsn, rec.lsn);
    }
  }
}

void PageOrientedWriteGraph::OnIdentityWrite(const PageId& x, Lsn /*lsn*/) {
  auto it = owner_.find(x);
  if (it == owner_.end()) return;
  // The identity write puts x's value on the log; its node's flush set
  // becomes empty, i.e. the node can be retired without flushing.
  nodes_.erase(it->second);
  owner_.erase(it);
}

Status PageOrientedWriteGraph::PlanInstall(const PageId& x,
                                           std::vector<InstallUnit>* plan) {
  plan->clear();
  auto it = owner_.find(x);
  if (it == owner_.end()) {
    return Status::NotFound("page not tracked: " + x.ToString());
  }
  const Node& node = nodes_[it->second];
  InstallUnit unit;
  unit.node_id = it->second;
  unit.vars = {x};
  unit.min_lsn = node.min_lsn;
  unit.max_lsn = node.max_lsn;
  plan->push_back(std::move(unit));
  return Status::OK();
}

void PageOrientedWriteGraph::MarkInstalled(uint64_t node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) return;
  owner_.erase(it->second.page);
  nodes_.erase(it);
  ++stats_.installs;
  ++stats_.flushed_pages;
}

bool PageOrientedWriteGraph::IsTracked(const PageId& x) const {
  return owner_.count(x) > 0;
}

Lsn PageOrientedWriteGraph::RedoStartLsn(Lsn next_lsn) const {
  Lsn start = next_lsn;
  for (const auto& [id, node] : nodes_) start = std::min(start, node.min_lsn);
  return start;
}

WriteGraphStats PageOrientedWriteGraph::GetStats() const {
  WriteGraphStats stats = stats_;
  stats.nodes = nodes_.size();
  stats.edges = 0;
  stats.total_vars = nodes_.size();
  stats.max_vars = nodes_.empty() ? 0 : 1;
  stats.max_vars_ever = std::max<size_t>(stats_.max_vars_ever, stats.max_vars);
  return stats;
}

}  // namespace llb
