#ifndef LLB_RECOVERY_WRITE_GRAPH_H_
#define LLB_RECOVERY_WRITE_GRAPH_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wal/log_record.h"

namespace llb {

/// One atomic flush unit produced by PlanInstall: a write-graph node whose
/// operations are installed by atomically flushing `vars` (paper 2.4:
/// "Operations of ops(v) are installed by flushing the last values written
/// to the objects of vars(v)").
struct InstallUnit {
  uint64_t node_id = 0;
  std::vector<PageId> vars;
  Lsn min_lsn = std::numeric_limits<Lsn>::max();
  Lsn max_lsn = 0;

  /// Tree-operation metadata (meaningful for TreeWriteGraph, where every
  /// node has a single var X): the state of the successor set S(X) used
  /// by the backup case analysis of paper section 4.2.
  bool has_successors = false;
  BackupPos max_successor_pos = 0;  // MAX(X)
  bool violation = false;           // violation(X): the dagger property fails
};

/// Aggregate structure metrics, used by the Figure-2 experiment to compare
/// the intersecting-writes graph W against the refined graph rW.
struct WriteGraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t total_vars = 0;       // sum of |vars(n)|
  size_t max_vars = 0;         // largest atomic flush set currently required
  uint64_t installs = 0;       // nodes installed so far
  uint64_t flushed_pages = 0;  // pages written across installs
  size_t max_vars_ever = 0;    // high-water mark of atomic flush set size
};

/// Tracks uninstalled operations and the flush-order constraints they
/// impose (the paper's write graph, section 2.4). The cache manager
/// consults it before flushing any dirty page and reports identity writes
/// and completed installs back to it.
///
/// All methods are called with the cache manager's mutex held; the graph
/// itself is not internally synchronized.
class WriteGraph {
 public:
  virtual ~WriteGraph();

  /// Records a logged operation (called after the op is applied to the
  /// cache and assigned its LSN).
  virtual void OnOperation(const LogRecord& rec) = 0;

  /// Records a cache-manager identity write of `x` (paper 2.5): x's value
  /// is now on the log, so x leaves its node's atomic flush set.
  virtual void OnIdentityWrite(const PageId& x, Lsn lsn) = 0;

  /// Computes the ordered install plan for the node owning `x`: all
  /// uninstalled predecessor nodes first (transitively), x's node last.
  /// Fails if x is not tracked.
  virtual Status PlanInstall(const PageId& x,
                             std::vector<InstallUnit>* plan) = 0;

  /// Marks a node installed after its vars were atomically flushed (or
  /// emptied by identity writes). Releases all bookkeeping for it.
  virtual void MarkInstalled(uint64_t node_id) = 0;

  /// Brackets an overlapped install of `node_id` (cache mutex released
  /// between snapshot and flush). While a node is mid-install the graph
  /// must not merge it with other nodes: the installer flushes a frozen
  /// snapshot of exactly that node's vars, and MarkInstalled afterwards
  /// must retire exactly those operations — a merge would make it erase
  /// ops whose pages were never flushed. Graphs that never merge nodes
  /// can ignore these. Always paired, including on install failure.
  virtual void BeginInstall(uint64_t /*node_id*/) {}
  virtual void EndInstall(uint64_t /*node_id*/) {}

  /// True if x belongs to some uninstalled node.
  virtual bool IsTracked(const PageId& x) const = 0;

  /// The redo-scan start point: no operation with LSN below this needs
  /// replay. Returns `next_lsn` when nothing is uninstalled.
  virtual Lsn RedoStartLsn(Lsn next_lsn) const = 0;

  virtual WriteGraphStats GetStats() const = 0;

 protected:
  WriteGraph() = default;
};

/// Degenerate write graph for page-oriented operations (paper 2.4: "each
/// node v having |vars(v)| = 1, and with no edges between nodes and hence
/// no restrictions on flush order").
class PageOrientedWriteGraph : public WriteGraph {
 public:
  PageOrientedWriteGraph() = default;

  void OnOperation(const LogRecord& rec) override;
  void OnIdentityWrite(const PageId& x, Lsn lsn) override;
  Status PlanInstall(const PageId& x, std::vector<InstallUnit>* plan) override;
  void MarkInstalled(uint64_t node_id) override;
  bool IsTracked(const PageId& x) const override;
  Lsn RedoStartLsn(Lsn next_lsn) const override;
  WriteGraphStats GetStats() const override;

 private:
  struct Node {
    PageId page;
    Lsn min_lsn;
    Lsn max_lsn;
  };
  std::unordered_map<uint64_t, Node> nodes_;
  std::unordered_map<PageId, uint64_t, PageIdHash> owner_;
  uint64_t next_id_ = 1;
  WriteGraphStats stats_;
};

}  // namespace llb

#endif  // LLB_RECOVERY_WRITE_GRAPH_H_
