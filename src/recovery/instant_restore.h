#ifndef LLB_RECOVERY_INSTANT_RESTORE_H_
#define LLB_RECOVERY_INSTANT_RESTORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"
#include "ops/op_registry.h"
#include "recovery/media_recovery.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace llb {

struct InstantRestoreOptions {
  /// Pages per bulk device IO when seeding closures from backup carriers
  /// and when installing restored pages into S (the restore's K,
  /// mirroring RestoreOptions::batch_pages).
  uint32_t batch_pages = 32;
  /// Deep-queue asynchronous IO for the seed (carrier reads) and install
  /// (S writes) transfers, mirroring RestoreOptions::queue_depth (only
  /// effective with batch_pages > 1; <= 1 keeps the synchronous path).
  uint32_t queue_depth = 0;
  /// Soft cap on pages per background Step: the step's seed batch (its
  /// dependency closure may pull in a few more).
  uint32_t step_pages = 64;
};

/// Progress snapshot of an in-flight instant restore.
struct RestoreStatus {
  bool restoring = false;
  bool complete = false;
  uint64_t pages_total = 0;
  uint64_t pages_restored = 0;  // restored-bitmap population
  /// Pages restored by the on-demand fault path (including the
  /// dependency pages its closures pulled in).
  uint64_t pages_faulted = 0;
  /// Of pages_faulted, the extra dependency pages beyond the faulting
  /// pages themselves (closure overhead of logical operations).
  uint64_t closure_pages = 0;
  /// Pages restored by the background sweep.
  uint64_t sweep_pages = 0;
  uint64_t bitmap_saves = 0;
  /// Log tail frozen at the first restoring open; the media-recovery
  /// slice replays through here, crash redo resumes after it.
  Lsn recovery_tail = kInvalidLsn;
  double fraction = 0.0;  // pages_restored / pages_total
  /// Estimated microseconds of background sweeping left, extrapolated
  /// from the sweep's cumulative per-page rate (0 until the first
  /// productive step).
  uint64_t eta_us = 0;
};

/// The single-page and background phases of media recovery: brings a
/// wiped stable database back page by page while transactions run.
///
/// Discipline (DESIGN.md section 5e):
///
///  * A persisted restored-bitmap (DurableCursor cell) records which
///    pages of S are durably restored. A set bit is a *promise* — the
///    page's media-recovery state is in S — so bits are set in memory
///    only after the page is durably installed, and persisted afterwards
///    (crash in between re-restores idempotently; the same Done/Doubt
///    discipline as the backup fence: conservative, never optimistic).
///  * `recovery_tail` is the durable log tail captured at the FIRST
///    restoring open and pinned in the bitmap cell before any new
///    transaction appends. Records at or below it form the
///    media-recovery slice; records above it are new work. Because a
///    page fault durably restores (and durably marks) every page a
///    transaction touches before the transaction's record can become
///    durable, every record above the tail touches only restored pages —
///    which is what makes plain crash redo from recovery_tail + 1 sound
///    over a half-restored store.
///  * A fault on page X cannot simply replay X's log records in
///    isolation: logical operations recompute their writes from readset
///    pages at historical states. Instead the restorer computes X's
///    *influence closure* (fixpoint over the slice: any record writing a
///    closure page contributes its whole readset and writeset), seeds
///    the closure from the newest backup carriers into a private
///    in-memory scratch overlay, replays the slice restricted to the
///    closure (identity-seeded, LSN-tested — exactly RunRedoRange's
///    semantics), and installs into S only the closure pages whose bit
///    is still clear (set pages may already be newer than the slice
///    state; they are never clobbered). Physical and physiological
///    operations have singleton closures, so the common fault costs one
///    carrier read plus a slice scan; the worst case degrades to
///    restoring a partition's whole dependency web — never to wrong
///    answers.
///
/// Thread-safety: RestoreOnFault runs under the cache mutex (as the
/// cache's page-fault handler) and takes the restorer mutex; Step takes
/// only the restorer mutex. Lock order is therefore cache -> restorer,
/// never reversed — the restorer never calls into the cache. A fault
/// that arrives while a background step holds the mutex raises
/// `faults_waiting_`, which the step's TransferOptions::pause hook
/// observes between runs, stopping the sweep early so the fault gets in.
class InstantRestorer {
 public:
  static Result<std::unique_ptr<InstantRestorer>> Open(
      Env* env, const std::string& bitmap_name, const std::string& backup_name,
      const OpRegistry& registry, PageStore* stable, LogManager* log,
      const InstantRestoreOptions& options = {});

  /// Decodes a persisted restored-bitmap cell into a progress snapshot
  /// without opening the restore (read-only; for status tooling). Fills
  /// *backup_name (when non-null) with the chain the restore is pinned
  /// to. NotFound when no restore is in progress.
  static Result<RestoreStatus> InspectBitmap(Env* env,
                                             const std::string& bitmap_name,
                                             std::string* backup_name);

  InstantRestorer(const InstantRestorer&) = delete;
  InstantRestorer& operator=(const InstantRestorer&) = delete;

  /// The prioritized single-page phase (cache page-fault handler): if
  /// `id` is not yet restored, restores its influence closure into S and
  /// persists the bitmap before returning. No-op for restored pages.
  Status RestoreOnFault(const PageId& id);

  /// The background phase: restores (up to) the next
  /// options.step_pages not-yet-restored pages plus their closure,
  /// yielding early if a fault is waiting. Returns the number of pages
  /// durably restored this step; 0 with complete() false means the step
  /// yielded before moving anything.
  Result<uint64_t> Step();

  /// Runs Step until every page is restored.
  Status Drain();

  /// Crash redo for work accepted during a previous restoring session:
  /// replays records after recovery_tail against S. Safe over a
  /// half-restored store (see class comment); call once after Open,
  /// before serving transactions.
  Status ResumeRedo();

  /// True once every page's bit is set.
  bool complete() const;

  /// Removes the bitmap cell. Call only when complete; idempotent.
  Status Finalize();

  Lsn recovery_tail() const { return recovery_tail_; }
  /// Geometry from the backup chain's base manifest (callers validate
  /// their own options against it).
  uint32_t partitions() const { return partitions_; }
  uint32_t pages_per_partition() const { return pages_per_partition_; }
  RestoreStatus status() const;

 private:
  InstantRestorer(Env* env, std::string bitmap_name, std::string backup_name,
                  const OpRegistry& registry, PageStore* stable,
                  LogManager* log, const InstantRestoreOptions& options,
                  RestoreChainPlan plan);

  Status Init();
  Status SaveBitmapLocked();

  uint64_t BitIndex(const PageId& id) const {
    return uint64_t{id.partition} * pages_per_partition_ + id.page;
  }
  bool TestBitLocked(const PageId& id) const {
    uint64_t pos = BitIndex(id);
    return (bits_[pos >> 3] & (1u << (pos & 7))) != 0;
  }
  void SetBitLocked(const PageId& id);

  /// Closure computation + scratch-overlay replay + install of the
  /// not-yet-restored closure pages. `pause` (may be null) is threaded
  /// into the install pipeline. *installed receives the pages durably
  /// installed (also on pause / partial failure).
  Status RestoreClosureLocked(const std::vector<PageId>& seeds,
                              const std::function<bool()>& pause,
                              uint64_t* installed);

  Env* const env_;
  const std::string bitmap_name_;
  const std::string backup_name_;
  const OpRegistry& registry_;
  PageStore* const stable_;
  LogManager* const log_;
  const InstantRestoreOptions options_;

  RestoreChainPlan plan_;
  std::vector<std::unique_ptr<PageStore>> carriers_;  // one per chain member
  uint32_t partitions_ = 0;
  uint32_t pages_per_partition_ = 0;
  uint64_t total_pages_ = 0;
  Lsn recovery_tail_ = kInvalidLsn;
  /// In-memory snapshot of the media-recovery slice
  /// [newest.start_lsn, recovery_tail], taken at Open before any new
  /// appends. Closures and replays scan this, never the live log.
  std::vector<LogRecord> slice_;

  /// Faults blocked on mu_ while a background step runs; the step's
  /// pause hook polls this to yield.
  std::atomic<uint32_t> faults_waiting_{0};

  mutable std::mutex mu_;
  std::vector<uint8_t> bits_;
  uint64_t restored_count_ = 0;
  uint64_t faulted_pages_ = 0;
  uint64_t closure_extra_pages_ = 0;
  uint64_t sweep_pages_ = 0;
  uint64_t bitmap_saves_ = 0;
  uint64_t sweep_us_ = 0;
};

}  // namespace llb

#endif  // LLB_RECOVERY_INSTANT_RESTORE_H_
