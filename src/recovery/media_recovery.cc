#include "recovery/media_recovery.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "io/transfer_pipeline.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace llb {

namespace {

// After a point-in-time restore, the excluded log suffix must go away —
// otherwise the next crash recovery would replay it and undo the PITR.
Status TruncateLogAfter(Env* env, const std::string& log_name, Lsn cut) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(log_name, /*create=*/false));
  LLB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(file->ReadAt(0, size, &contents));
  Slice cursor(contents);
  uint64_t keep = 0;
  LogRecord rec;
  while (!cursor.empty()) {
    size_t before = cursor.size();
    if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) break;
    if (rec.lsn > cut) break;
    keep += before - cursor.size();
  }
  LLB_RETURN_IF_ERROR(file->Truncate(keep));
  return file->Sync();
}

}  // namespace

Result<RestoreChainPlan> LoadRestoreChain(Env* env,
                                          const std::string& backup_name) {
  RestoreChainPlan plan;
  std::string current = backup_name;
  while (true) {
    LLB_ASSIGN_OR_RETURN(BackupManifest m, BackupManifest::Load(env, current));
    if (!m.complete) {
      return Status::FailedPrecondition("backup incomplete: " + current);
    }
    bool is_incremental = m.incremental;
    std::string base = m.base_name;
    plan.chain.push_back(std::move(m));
    if (!is_incremental) break;
    if (base.empty()) {
      return Status::Corruption("incremental backup without base: " + current);
    }
    current = base;
  }
  std::reverse(plan.chain.begin(), plan.chain.end());
  for (size_t i = 1; i < plan.chain.size(); ++i) {
    for (const PageId& id : plan.chain[i].pages) {
      plan.newest_carrier[RestoreChainPlan::Key(id)] = i;
    }
  }
  return plan;
}

Result<MediaRecoveryReport> RestoreFromBackup(Env* env,
                                              const std::string& stable_prefix,
                                              const std::string& log_name,
                                              const std::string& backup_name,
                                              const OpRegistry& registry) {
  return RestoreFromBackupWithOptions(env, stable_prefix, log_name,
                                      backup_name, registry,
                                      RestoreOptions{});
}

Result<MediaRecoveryReport> RestoreFromBackupWithOptions(
    Env* env, const std::string& stable_prefix, const std::string& log_name,
    const std::string& backup_name, const OpRegistry& registry,
    const RestoreOptions& options) {
  MediaRecoveryReport report;

  // Plan phase: collect the incremental chain (base first) and the
  // newest-wins carrier index, shared with instant restore.
  LLB_ASSIGN_OR_RETURN(RestoreChainPlan chain_plan,
                       LoadRestoreChain(env, backup_name));
  const std::vector<BackupManifest>& chain = chain_plan.chain;
  const BackupManifest& base = chain_plan.base();
  const BackupManifest& newest = chain_plan.newest();

  // A point-in-time target must not precede the backup's own completion:
  // pages in B can carry LSNs up to end_lsn, and redo never rolls state
  // back. To reach an earlier time, restore an earlier backup.
  if (options.stop_at_lsn != kInvalidLsn &&
      options.stop_at_lsn < newest.end_lsn) {
    return Status::InvalidArgument(
        "point-in-time target precedes the backup's end LSN; restore an "
        "earlier backup instead");
  }
  if (options.partition_only && options.partition >= base.partitions) {
    return Status::InvalidArgument("partition out of range");
  }

  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, stable_prefix, base.partitions));

  // 1. + 2. Restore the chain, coalesced: every position lands in S
  //    exactly once, from the newest chain member carrying it — the naive
  //    in-order apply wrote every superseded delta page only to
  //    overwrite it.
  std::vector<PageId> all_pages;
  for (PartitionId p = 0; p < base.partitions; ++p) {
    if (options.partition_only && p != options.partition) continue;
    for (uint32_t page = 0; page < base.pages_per_partition; ++page) {
      all_pages.push_back(PageId{p, page});
    }
  }
  std::vector<std::vector<PageId>> claims = chain_plan.Claims(all_pages);
  for (size_t i = 0; i < chain.size(); ++i) {
    // Applied even when all its pages are superseded — the member's
    // manifest was still consulted, and the count stays the chain length.
    ++report.backups_applied;
    if (claims[i].empty()) continue;
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageStore> store,
        PageStore::Open(env, chain[i].StoreName(), chain[i].partitions));
    // claims[i] is partition-major sorted by construction, so AddPages
    // coalesces adjacent survivors into maximal runs.
    TransferPlan plan;
    plan.AddPages(claims[i], options.batch_pages);
    TransferOptions transfer;
    transfer.batch_pages = options.batch_pages;
    transfer.pipelined = options.pipelined;
    transfer.queue_depth = options.queue_depth;
    transfer.workers = options.threads;
    TransferPipeline pipeline(store.get(), stable.get(), transfer);
    uint64_t moved = 0;
    Status s = options.threads > 1 ? pipeline.RunParallel(plan, &moved)
                                   : pipeline.Run(plan, &moved);
    report.pages_restored += moved;
    LLB_RETURN_IF_ERROR(s);
  }

  // 3. Roll forward from the newest backup's scan start point.
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                       LogManager::Open(env, log_name));
  const PartitionId* only =
      options.partition_only ? &options.partition : nullptr;
  LLB_ASSIGN_OR_RETURN(
      report.redo,
      RunRedoRange(*log, registry, stable.get(), newest.start_lsn,
                   options.stop_at_lsn, only));

  // Point-in-time recovery discards the excluded log suffix (a partition-
  // only restore must NOT: other partitions still need those records).
  if (options.stop_at_lsn != kInvalidLsn && !options.partition_only) {
    log.reset();
    LLB_RETURN_IF_ERROR(TruncateLogAfter(env, log_name, options.stop_at_lsn));
  }
  return report;
}

Result<MediaRecoveryReport> RestoreToPointInTime(
    Env* env, const std::string& stable_prefix, const std::string& log_name,
    Lsn target, const OpRegistry& registry, const RestoreOptions& options) {
  if (target == kInvalidLsn) {
    return Status::InvalidArgument("point-in-time target must be a valid LSN");
  }

  // 1. Validate the cut against the durable log: bounds and group
  //    atomicity. One scan gathers the tail and the open-group depth at
  //    the target.
  Lsn tail = kInvalidLsn;
  int open_groups_at_target = 0;
  {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                         LogManager::Open(env, log_name));
    LLB_RETURN_IF_ERROR(log->Scan(1, [&](const LogRecord& rec) {
      tail = rec.lsn;
      if (rec.lsn <= target) {
        if (rec.IsGroupBegin()) ++open_groups_at_target;
        if (rec.IsGroupEnd()) --open_groups_at_target;
      }
      return Status::OK();
    }));
  }
  if (tail == kInvalidLsn || target > tail) {
    return Status::InvalidArgument(
        "point-in-time target " + std::to_string(target) +
        " is past the durable log tail " + std::to_string(tail));
  }
  // The exact tail always restores cleanly: it is what a plain (non-PITR)
  // restore produces, even when the log itself ends mid-group after a
  // primary crash.
  if (target != tail && open_groups_at_target > 0) {
    return Status::InvalidArgument(
        "point-in-time target " + std::to_string(target) +
        " cuts a multi-record atomic group in half; pick an LSN outside "
        "the group");
  }

  // 2. Newest complete backup that finished at or before the target.
  const std::string kManifestSuffix = ".manifest";
  std::string best_name;
  Lsn best_end = kInvalidLsn;
  for (const std::string& file : env->ListFiles()) {
    if (file.size() <= kManifestSuffix.size() ||
        file.compare(file.size() - kManifestSuffix.size(),
                     kManifestSuffix.size(), kManifestSuffix) != 0) {
      continue;
    }
    std::string backup = file.substr(0, file.size() - kManifestSuffix.size());
    Result<BackupManifest> manifest = BackupManifest::Load(env, backup);
    if (!manifest.ok() || !manifest->complete) continue;
    if (manifest->end_lsn > target) continue;
    if (best_name.empty() || manifest->end_lsn > best_end) {
      best_name = backup;
      best_end = manifest->end_lsn;
    }
  }
  if (best_name.empty()) {
    return Status::FailedPrecondition(
        "point-in-time target " + std::to_string(target) +
        " predates every retained backup; no chain can reach it");
  }

  RestoreOptions effective = options;
  effective.stop_at_lsn = target;
  effective.partition_only = false;
  return RestoreFromBackupWithOptions(env, stable_prefix, log_name, best_name,
                                      registry, effective);
}

}  // namespace llb
