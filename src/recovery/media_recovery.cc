#include "recovery/media_recovery.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "storage/page_store.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace llb {

namespace {

// After a point-in-time restore, the excluded log suffix must go away —
// otherwise the next crash recovery would replay it and undo the PITR.
Status TruncateLogAfter(Env* env, const std::string& log_name, Lsn cut) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(log_name, /*create=*/false));
  LLB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(file->ReadAt(0, size, &contents));
  Slice cursor(contents);
  uint64_t keep = 0;
  LogRecord rec;
  while (!cursor.empty()) {
    size_t before = cursor.size();
    if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) break;
    if (rec.lsn > cut) break;
    keep += before - cursor.size();
  }
  LLB_RETURN_IF_ERROR(file->Truncate(keep));
  return file->Sync();
}

}  // namespace

Result<MediaRecoveryReport> RestoreFromBackup(Env* env,
                                              const std::string& stable_prefix,
                                              const std::string& log_name,
                                              const std::string& backup_name,
                                              const OpRegistry& registry) {
  return RestoreFromBackupWithOptions(env, stable_prefix, log_name,
                                      backup_name, registry,
                                      RestoreOptions{});
}

Result<MediaRecoveryReport> RestoreFromBackupWithOptions(
    Env* env, const std::string& stable_prefix, const std::string& log_name,
    const std::string& backup_name, const OpRegistry& registry,
    const RestoreOptions& options) {
  MediaRecoveryReport report;

  // Collect the incremental chain, base first.
  std::vector<BackupManifest> chain;
  std::string current = backup_name;
  while (true) {
    LLB_ASSIGN_OR_RETURN(BackupManifest m, BackupManifest::Load(env, current));
    if (!m.complete) {
      return Status::FailedPrecondition("backup incomplete: " + current);
    }
    bool is_incremental = m.incremental;
    std::string base = m.base_name;
    chain.push_back(std::move(m));
    if (!is_incremental) break;
    if (base.empty()) {
      return Status::Corruption("incremental backup without base: " + current);
    }
    current = base;
  }
  std::reverse(chain.begin(), chain.end());

  const BackupManifest& base = chain.front();
  const BackupManifest& newest = chain.back();

  // A point-in-time target must not precede the backup's own completion:
  // pages in B can carry LSNs up to end_lsn, and redo never rolls state
  // back. To reach an earlier time, restore an earlier backup.
  if (options.stop_at_lsn != kInvalidLsn &&
      options.stop_at_lsn < newest.end_lsn) {
    return Status::InvalidArgument(
        "point-in-time target precedes the backup's end LSN; restore an "
        "earlier backup instead");
  }
  if (options.partition_only && options.partition >= base.partitions) {
    return Status::InvalidArgument("partition out of range");
  }

  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, stable_prefix, base.partitions));

  // 1. Restore the full base backup: copy pages B -> S (all partitions,
  //    or just the failed one).
  {
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageStore> backup,
        PageStore::Open(env, base.StoreName(), base.partitions));
    for (PartitionId p = 0; p < base.partitions; ++p) {
      if (options.partition_only && p != options.partition) continue;
      for (uint32_t page = 0; page < base.pages_per_partition; ++page) {
        PageId id{p, page};
        PageImage image;
        LLB_RETURN_IF_ERROR(backup->ReadPage(id, &image));
        LLB_RETURN_IF_ERROR(stable->WritePage(id, image));
        ++report.pages_restored;
      }
    }
    ++report.backups_applied;
  }

  // 2. Apply incremental deltas in order.
  for (size_t i = 1; i < chain.size(); ++i) {
    const BackupManifest& delta = chain[i];
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageStore> store,
        PageStore::Open(env, delta.StoreName(), delta.partitions));
    for (const PageId& id : delta.pages) {
      if (options.partition_only && id.partition != options.partition) {
        continue;
      }
      PageImage image;
      LLB_RETURN_IF_ERROR(store->ReadPage(id, &image));
      LLB_RETURN_IF_ERROR(stable->WritePage(id, image));
      ++report.pages_restored;
    }
    ++report.backups_applied;
  }

  // 3. Roll forward from the newest backup's scan start point.
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                       LogManager::Open(env, log_name));
  const PartitionId* only =
      options.partition_only ? &options.partition : nullptr;
  LLB_ASSIGN_OR_RETURN(
      report.redo,
      RunRedoRange(*log, registry, stable.get(), newest.start_lsn,
                   options.stop_at_lsn, only));

  // Point-in-time recovery discards the excluded log suffix (a partition-
  // only restore must NOT: other partitions still need those records).
  if (options.stop_at_lsn != kInvalidLsn && !options.partition_only) {
    log.reset();
    LLB_RETURN_IF_ERROR(TruncateLogAfter(env, log_name, options.stop_at_lsn));
  }
  return report;
}

}  // namespace llb
