#ifndef LLB_RECOVERY_LOG_APPLIER_H_
#define LLB_RECOVERY_LOG_APPLIER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/types.h"
#include "ops/op_registry.h"
#include "storage/page_store.h"
#include "wal/log_record.h"

namespace llb {

struct LogApplierStats {
  uint64_t records_seen = 0;     // non-checkpoint records with writes
  uint64_t records_applied = 0;  // records whose writes were (re)applied
  uint64_t pages_written = 0;    // dirty pages written back by Flush()
};

/// Applies log records to a page store, in LSN order, one at a time: the
/// incremental core of redo. Crash/media recovery (RunRedoRange) drives
/// it over a log scan; the standby applier drives it over shipped
/// segments, forever, flushing between batches.
///
/// Semantics per record (the redo rules of recovery/redo.h pass 2): a
/// record is applied iff any of its writeset pages carries an LSN below
/// the record's (the per-target LSN test, which makes application
/// idempotent); its apply function recomputes all writes from the current
/// readset images; only stale targets are updated. Identity writes are
/// applied in order like physical blind writes — callers that instead
/// seed them (crash recovery pass 1) filter them out before calling
/// Apply and install the seeds via SeedPage.
///
/// Pages are cached read-through; Flush() writes the dirty ones back and
/// drops the cache, bounding memory on long-running (standby) use.
class LogApplier {
 public:
  LogApplier(const OpRegistry& registry, PageStore* target)
      : registry_(registry), target_(target) {}

  LogApplier(const LogApplier&) = delete;
  LogApplier& operator=(const LogApplier&) = delete;

  /// Installs an identity-write seed if it is newer than the page's
  /// current image. Sets *seeded accordingly (may be null).
  Status SeedPage(const PageId& id, const std::string& value, Lsn lsn,
                  bool* seeded);

  /// Applies one record (see class comment). Records must arrive in
  /// non-decreasing LSN order.
  Status Apply(const LogRecord& rec);

  /// Writes dirty pages back to the target store and drops the cache.
  Status Flush();

  /// Highest LSN passed to Apply (whether or not the LSN test fired).
  Lsn applied_lsn() const { return applied_lsn_; }

  const LogApplierStats& stats() const { return stats_; }

 private:
  Status GetPage(const PageId& id, PageImage** out);

  const OpRegistry& registry_;
  PageStore* const target_;
  std::unordered_map<PageId, PageImage, PageIdHash> pages_;
  std::unordered_set<PageId, PageIdHash> dirty_;
  Lsn applied_lsn_ = kInvalidLsn;
  LogApplierStats stats_;
};

}  // namespace llb

#endif  // LLB_RECOVERY_LOG_APPLIER_H_
