#include "recovery/redo.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "storage/page.h"

namespace llb {

namespace {

/// Page images under recovery: read-through from the target store,
/// written back at the end.
class RecoveryImage {
 public:
  explicit RecoveryImage(PageStore* target) : target_(target) {}

  Status Get(const PageId& id, PageImage** out) {
    auto it = pages_.find(id);
    if (it == pages_.end()) {
      PageImage image;
      LLB_RETURN_IF_ERROR(target_->ReadPage(id, &image));
      it = pages_.emplace(id, std::move(image)).first;
    }
    *out = &it->second;
    return Status::OK();
  }

  void MarkDirty(const PageId& id) { dirty_.insert(id); }

  Status WriteBack(PageStore* target, uint64_t* pages_written) {
    for (const PageId& id : dirty_) {
      LLB_RETURN_IF_ERROR(target->WritePage(id, pages_.at(id)));
      ++*pages_written;
    }
    return Status::OK();
  }

 private:
  PageStore* const target_;
  std::unordered_map<PageId, PageImage, PageIdHash> pages_;
  std::unordered_set<PageId, PageIdHash> dirty_;
};

class RedoOpContext : public OpContext {
 public:
  explicit RedoOpContext(RecoveryImage* image) : image_(image) {}

  Status Read(const PageId& id, PageImage* out) override {
    PageImage* current = nullptr;
    LLB_RETURN_IF_ERROR(image_->Get(id, &current));
    *out = *current;
    return Status::OK();
  }

  Status Write(const PageId& id, const PageImage& image) override {
    staged_[id] = image;
    return Status::OK();
  }

  std::unordered_map<PageId, PageImage, PageIdHash>& staged() {
    return staged_;
  }

 private:
  RecoveryImage* const image_;
  std::unordered_map<PageId, PageImage, PageIdHash> staged_;
};

}  // namespace

Result<RedoReport> RunRedo(const LogManager& log, const OpRegistry& registry,
                           PageStore* target, Lsn start_lsn) {
  return RunRedoRange(log, registry, target, start_lsn,
                      std::numeric_limits<Lsn>::max(),
                      /*only_partition=*/nullptr);
}

Result<RedoReport> RunRedoRange(const LogManager& log,
                                const OpRegistry& registry, PageStore* target,
                                Lsn start_lsn, Lsn end_lsn,
                                const PartitionId* only_partition,
                                bool use_identity_seeds) {
  RedoReport report;
  report.start_lsn = start_lsn;
  if (end_lsn == kInvalidLsn) end_lsn = std::numeric_limits<Lsn>::max();

  auto in_scope = [&](const LogRecord& rec) {
    if (rec.lsn > end_lsn) return false;
    if (only_partition != nullptr && !rec.writeset.empty() &&
        rec.writeset[0].partition != *only_partition) {
      return false;
    }
    return true;
  };

  // Pass 1: last identity value per page.
  struct Seed {
    Lsn lsn;
    std::string value;
  };
  std::unordered_map<PageId, Seed, PageIdHash> seeds;
  if (use_identity_seeds) {
    LLB_RETURN_IF_ERROR(log.Scan(start_lsn, [&](const LogRecord& rec) {
      if (!in_scope(rec)) return Status::OK();
      if (rec.IsIdentityWrite() && rec.writeset.size() == 1) {
        Seed& seed = seeds[rec.writeset[0]];
        if (rec.lsn >= seed.lsn) seed = Seed{rec.lsn, rec.payload};
      }
      return Status::OK();
    }));
  }

  RecoveryImage image(target);

  // Apply seeds newer than the stored page.
  for (const auto& [id, seed] : seeds) {
    PageImage* current = nullptr;
    LLB_RETURN_IF_ERROR(image.Get(id, &current));
    if (current->lsn() < seed.lsn) {
      *current = PageImage::FromRaw(seed.value);
      current->set_lsn(seed.lsn);
      image.MarkDirty(id);
      ++report.pages_seeded;
    }
  }

  // Pass 2: replay with the per-target LSN test.
  Status scan_status = log.Scan(start_lsn, [&](const LogRecord& rec) {
    if (!in_scope(rec)) return Status::OK();
    ++report.records_scanned;
    if (rec.IsCheckpoint()) return Status::OK();
    // Identity records: consumed in pass 1 when seeding; applied in-order
    // like physical blind writes when re-executing from scratch.
    if (rec.IsIdentityWrite() && use_identity_seeds) return Status::OK();
    if (rec.writeset.empty()) return Status::OK();

    bool any_stale = false;
    for (const PageId& t : rec.writeset) {
      PageImage* current = nullptr;
      LLB_RETURN_IF_ERROR(image.Get(t, &current));
      if (current->lsn() < rec.lsn) {
        any_stale = true;
        break;
      }
    }
    if (!any_stale) return Status::OK();

    RedoOpContext ctx(&image);
    LLB_RETURN_IF_ERROR(registry.Apply(ctx, rec));

    for (const PageId& t : rec.writeset) {
      PageImage* current = nullptr;
      LLB_RETURN_IF_ERROR(image.Get(t, &current));
      if (current->lsn() >= rec.lsn) continue;  // already newer: skip
      auto sit = ctx.staged().find(t);
      if (sit == ctx.staged().end()) {
        return Status::Internal("replay did not produce declared target " +
                                t.ToString());
      }
      *current = sit->second;
      current->set_lsn(rec.lsn);
      image.MarkDirty(t);
    }
    ++report.ops_replayed;
    return Status::OK();
  });
  LLB_RETURN_IF_ERROR(scan_status);

  LLB_RETURN_IF_ERROR(image.WriteBack(target, &report.pages_written));
  return report;
}

}  // namespace llb
