#include "recovery/redo.h"

#include <limits>
#include <unordered_map>

#include "recovery/log_applier.h"
#include "storage/page.h"

namespace llb {

Result<RedoReport> RunRedo(const LogManager& log, const OpRegistry& registry,
                           PageStore* target, Lsn start_lsn) {
  return RunRedoRange(log, registry, target, start_lsn,
                      std::numeric_limits<Lsn>::max(),
                      /*only_partition=*/nullptr);
}

Result<RedoReport> RunRedoRange(const LogManager& log,
                                const OpRegistry& registry, PageStore* target,
                                Lsn start_lsn, Lsn end_lsn,
                                const PartitionId* only_partition,
                                bool use_identity_seeds) {
  RedoReport report;
  report.start_lsn = start_lsn;
  if (end_lsn == kInvalidLsn) end_lsn = std::numeric_limits<Lsn>::max();

  auto in_scope = [&](const LogRecord& rec) {
    if (rec.lsn > end_lsn) return false;
    if (only_partition != nullptr && !rec.writeset.empty() &&
        rec.writeset[0].partition != *only_partition) {
      return false;
    }
    return true;
  };

  // Pass 1: last identity value per page.
  struct Seed {
    Lsn lsn;
    std::string value;
  };
  std::unordered_map<PageId, Seed, PageIdHash> seeds;
  if (use_identity_seeds) {
    LLB_RETURN_IF_ERROR(log.Scan(start_lsn, [&](const LogRecord& rec) {
      if (!in_scope(rec)) return Status::OK();
      if (rec.IsIdentityWrite() && rec.writeset.size() == 1) {
        Seed& seed = seeds[rec.writeset[0]];
        if (rec.lsn >= seed.lsn) seed = Seed{rec.lsn, rec.payload};
      }
      return Status::OK();
    }));
  }

  // The per-record apply core is shared with the standby applier
  // (recovery/log_applier.h); this function contributes the seeding pass
  // and the scan-driven scoping around it.
  LogApplier applier(registry, target);

  // Apply seeds newer than the stored page.
  for (const auto& [id, seed] : seeds) {
    bool seeded = false;
    LLB_RETURN_IF_ERROR(applier.SeedPage(id, seed.value, seed.lsn, &seeded));
    if (seeded) ++report.pages_seeded;
  }

  // Pass 2: replay with the per-target LSN test.
  Status scan_status = log.Scan(start_lsn, [&](const LogRecord& rec) {
    if (!in_scope(rec)) return Status::OK();
    ++report.records_scanned;
    if (rec.IsCheckpoint()) return Status::OK();
    // Identity records: consumed in pass 1 when seeding; applied in-order
    // like physical blind writes when re-executing from scratch.
    if (rec.IsIdentityWrite() && use_identity_seeds) return Status::OK();
    return applier.Apply(rec);
  });
  LLB_RETURN_IF_ERROR(scan_status);

  LLB_RETURN_IF_ERROR(applier.Flush());
  report.ops_replayed = applier.stats().records_applied;
  report.pages_written = applier.stats().pages_written;
  return report;
}

}  // namespace llb
