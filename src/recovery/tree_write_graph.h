#ifndef LLB_RECOVERY_TREE_WRITE_GRAPH_H_
#define LLB_RECOVERY_TREE_WRITE_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "recovery/write_graph.h"

namespace llb {

/// Write graph for the paper's restricted "tree operations" (section 4):
///
///   1. page-oriented ops  — read (at most) an existing object `old` and
///      write `old`;
///   2. write-new ops W_L(old, new) — read `old`, write a *new* object.
///
/// Every node has a single var, edges only run node(new) -> node(old)
/// ("new is a predecessor of old"), and the graph is a forest: no joins,
/// no cycles, no multi-page atomic flushes.
///
/// For the backup case analysis (section 4.2) each dirty object X carries:
///   * MAX(X) — the largest backup position over its (transitive,
///     potential-included) successor set S(X), maintained incrementally:
///     on W_L(Y, X), MAX(X) = max(#Y, MAX(Y));
///   * violation(X) — set when #X < #Y for an immediate successor Y or
///     when violation(Y) holds; once set it never clears while X is dirty
///     ("once an order violation appears among S(X), any subsequently
///     added predecessors ... must likewise be installed using Iw/oF").
///
/// Operations reading pages other than their write target (e.g. the
/// application-recovery R(X, A), which reads X and writes A) register the
/// read page as a successor the same way: A must be flushed before any
/// later update of X is flushed (paper 6.2).
class TreeWriteGraph : public WriteGraph {
 public:
  TreeWriteGraph() = default;

  void OnOperation(const LogRecord& rec) override;
  void OnIdentityWrite(const PageId& x, Lsn lsn) override;
  Status PlanInstall(const PageId& x, std::vector<InstallUnit>* plan) override;
  void MarkInstalled(uint64_t node_id) override;
  bool IsTracked(const PageId& x) const override;
  Lsn RedoStartLsn(Lsn next_lsn) const override;
  WriteGraphStats GetStats() const override;

  /// Test hooks.
  bool HasSuccessors(const PageId& x) const;
  BackupPos MaxSuccessorPos(const PageId& x) const;
  bool Violation(const PageId& x) const;
  bool MustInstallBefore(const PageId& pred, const PageId& succ) const;

 private:
  struct TNode {
    uint64_t id = 0;
    PageId page;
    Lsn min_lsn;
    Lsn max_lsn;
    bool identity_written = false;  // var removed; nothing left to flush
    // Pages that must be installed before this one (the `new` objects of
    // W_L ops whose `old` this page is).
    std::unordered_set<PageId, PageIdHash> preds;
    // Successor-set summary S(X).
    bool has_succ = false;
    BackupPos max_pos = 0;
    bool violation = false;
  };

  TNode& GetOrCreate(const PageId& x, Lsn lsn);
  void AddSuccessor(TNode& writer, const PageId& read_page);

  std::unordered_map<PageId, TNode, PageIdHash> dirty_;
  std::unordered_map<uint64_t, PageId> by_id_;
  // watch_[Y] = dirty pages X that must install before any future update
  // of Y ("potential successor" tracking).
  std::unordered_map<PageId, std::unordered_set<PageId, PageIdHash>,
                     PageIdHash>
      watch_;
  uint64_t next_id_ = 1;
  WriteGraphStats stats_;
};

}  // namespace llb

#endif  // LLB_RECOVERY_TREE_WRITE_GRAPH_H_
