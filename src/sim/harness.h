#ifndef LLB_SIM_HARNESS_H_
#define LLB_SIM_HARNESS_H_

#include <memory>
#include <string>

#include "db/database.h"
#include "io/mem_env.h"

namespace llb {

/// Registers every domain's operations (core ops are registered by the
/// OpRegistry constructor).
void RegisterAllOps(OpRegistry* registry);

/// Owns a MemEnv plus a Database opened over it, with every domain's
/// operations registered and crash recovery run — the boilerplate shared
/// by tests, examples, and benchmarks.
class TestEngine {
 public:
  /// Opens (and recovers) a database called `name` in a fresh MemEnv.
  static Result<std::unique_ptr<TestEngine>> Create(const DbOptions& options,
                                                    const std::string& name =
                                                        "db");

  TestEngine(const TestEngine&) = delete;
  TestEngine& operator=(const TestEngine&) = delete;

  MemEnv* env() { return &env_; }
  Database* db() { return db_.get(); }

  /// Simulates a crash (all unsynced state lost) and reopens + recovers.
  Status CrashAndRecover();

  /// Closes and reopens without a crash (volatile file state preserved).
  Status Reopen();

  /// Closes the database (e.g. before off-line media recovery). Use
  /// Reopen() to come back.
  Status Shutdown();

 private:
  TestEngine(DbOptions options, std::string name)
      : options_(options), name_(std::move(name)) {}

  Status Open();

  MemEnv env_;
  DbOptions options_;
  std::string name_;
  std::unique_ptr<Database> db_;
};

}  // namespace llb

#endif  // LLB_SIM_HARNESS_H_
