#ifndef LLB_SIM_WORKLOAD_H_
#define LLB_SIM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "db/database.h"
#include "filestore/filestore.h"

namespace llb {

/// Drives general logical operations with uniformly distributed flushed
/// objects — the workload the paper's section-5 analysis models. Each
/// step executes one Copy between two uniformly chosen one-page files and
/// flushes the target.
class GeneralUniformDriver {
 public:
  GeneralUniformDriver(Database* db, PartitionId partition,
                       uint32_t num_pages, uint64_t seed);

  Status Step();

 private:
  Database* const db_;
  FileStore files_;
  Random rng_;
  const uint32_t num_pages_;
};

/// Drives tree operations matching the section-5.2 model: every flushed
/// "new" object has exactly one (transitively summarized) successor at a
/// uniformly distributed position. Each step:
///   1. W_L(Y, X): copy a uniformly chosen page Y into a fresh page X
///      (logical write-new), then flush X — the model's decision point;
///   2. update Y in place (physiological transform) and flush it.
/// Fresh pages are consumed from a shuffled uniform permutation; the
/// driver fails with FailedPrecondition when they run out (size the
/// experiment accordingly — a page may be "new" only once, paper 4.1).
class TreeUniformDriver {
 public:
  TreeUniformDriver(Database* db, PartitionId partition, uint32_t num_pages,
                    uint64_t seed);

  Status Step();

  uint32_t remaining_fresh() const {
    return static_cast<uint32_t>(fresh_.size()) - fresh_cursor_;
  }

 private:
  Database* const db_;
  FileStore files_;
  Random rng_;
  const uint32_t num_pages_;
  std::vector<uint32_t> fresh_;   // shuffled never-written page ids
  uint32_t fresh_cursor_ = 0;
  std::vector<uint32_t> written_;  // pages eligible as copy sources
  bool sources_initialized_ = false;
};

/// Random B-tree inserts (keys uniform in [0, key_space)).
class BtreeInsertDriver {
 public:
  BtreeInsertDriver(BTree* tree, int64_t key_space, uint64_t seed)
      : tree_(tree), key_space_(key_space), rng_(seed) {}

  Status Step();

  uint64_t inserted() const { return inserted_; }

 private:
  BTree* const tree_;
  const int64_t key_space_;
  Random rng_;
  uint64_t inserted_ = 0;
};

}  // namespace llb

#endif  // LLB_SIM_WORKLOAD_H_
