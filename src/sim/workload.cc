#include "sim/workload.h"

#include <algorithm>

namespace llb {

GeneralUniformDriver::GeneralUniformDriver(Database* db, PartitionId partition,
                                           uint32_t num_pages, uint64_t seed)
    : db_(db),
      files_(db, partition, /*base_page=*/0, /*pages_per_file=*/1,
             /*num_files=*/num_pages),
      rng_(seed),
      num_pages_(num_pages) {}

Status GeneralUniformDriver::Step() {
  uint32_t src = static_cast<uint32_t>(rng_.Uniform(num_pages_));
  uint32_t dst = static_cast<uint32_t>(rng_.Uniform(num_pages_));
  if (dst == src) dst = (dst + 1) % num_pages_;
  LLB_RETURN_IF_ERROR(files_.Copy(src, dst));
  return db_->FlushPage(files_.PagesOf(dst)[0]);
}

TreeUniformDriver::TreeUniformDriver(Database* db, PartitionId partition,
                                     uint32_t num_pages, uint64_t seed)
    : db_(db),
      files_(db, partition, /*base_page=*/0, /*pages_per_file=*/1,
             /*num_files=*/num_pages),
      rng_(seed),
      num_pages_(num_pages) {
  fresh_.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; ++i) fresh_.push_back(i);
  // Fisher-Yates shuffle so fresh pages appear at uniform positions.
  for (uint32_t i = num_pages; i > 1; --i) {
    std::swap(fresh_[i - 1],
              fresh_[static_cast<uint32_t>(rng_.Uniform(i))]);
  }
  // Seed a handful of source pages so the first copies read real data.
  size_t seeds = std::min<uint32_t>(4, num_pages / 2);
  for (size_t i = 0; i < seeds && fresh_cursor_ < fresh_.size(); ++i) {
    written_.push_back(fresh_[fresh_cursor_++]);
  }
}

Status TreeUniformDriver::Step() {
  if (fresh_cursor_ >= fresh_.size()) {
    return Status::FailedPrecondition("tree driver out of fresh pages");
  }
  if (written_.empty()) {
    return Status::FailedPrecondition("tree driver has no source pages");
  }
  // Initialize the seeded sources lazily (physical writes).
  if (!sources_initialized_) {
    for (uint32_t page : written_) {
      std::vector<int64_t> values{static_cast<int64_t>(page), 17, 42};
      LLB_RETURN_IF_ERROR(files_.WriteValues(page, values));
      LLB_RETURN_IF_ERROR(db_->FlushPage(files_.PagesOf(page)[0]));
    }
    sources_initialized_ = true;
  }

  uint32_t y = written_[rng_.Uniform(written_.size())];
  uint32_t x = fresh_[fresh_cursor_++];

  // W_L(Y, X): logical write-new, then flush the new object.
  LLB_RETURN_IF_ERROR(files_.Copy(y, x));
  LLB_RETURN_IF_ERROR(db_->FlushPage(files_.PagesOf(x)[0]));

  // Page-oriented update of Y, then flush it.
  LLB_RETURN_IF_ERROR(files_.Transform(y, rng_.Next()));
  LLB_RETURN_IF_ERROR(db_->FlushPage(files_.PagesOf(y)[0]));

  written_.push_back(x);
  return Status::OK();
}

Status BtreeInsertDriver::Step() {
  int64_t key = static_cast<int64_t>(rng_.Uniform(key_space_));
  std::string value = "v" + std::to_string(key);
  LLB_RETURN_IF_ERROR(tree_->Insert(key, value));
  ++inserted_;
  return Status::OK();
}

}  // namespace llb
