#ifndef LLB_SIM_ORACLE_H_
#define LLB_SIM_ORACLE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "ops/op_registry.h"
#include "recovery/redo.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb::testutil {

/// The recovery oracle: re-executing the entire durable log from LSN 1
/// onto an empty store *defines* the correct current state (apply
/// functions are shared between execution and replay, so this IS the
/// execution history). Any correctly recovered (crash or media) stable
/// database must match it page for page.
///
/// Note `use_identity_seeds = false`: from an empty store nothing is
/// installed, so every record — identity writes included — applies
/// strictly in order. Seeding (the real-recovery fast path) would be
/// unsound here: it could jump a page past an earlier logical operation
/// that still needs that page's older value (see recovery/redo.h).
inline Status BuildOracle(Env* env, const LogManager& log,
                          const OpRegistry& registry,
                          const std::string& prefix, uint32_t partitions,
                          std::unique_ptr<PageStore>* out) {
  LLB_ASSIGN_OR_RETURN(*out, PageStore::Open(env, prefix, partitions));
  LLB_ASSIGN_OR_RETURN(
      RedoReport report,
      RunRedoRange(log, registry, out->get(), /*start_lsn=*/1,
                   /*end_lsn=*/kInvalidLsn, /*only_partition=*/nullptr,
                   /*use_identity_seeds=*/false));
  (void)report;
  return Status::OK();
}

/// Compares two stores page by page on logical content (LSN + payload);
/// returns the first differing page id as a string, or "" when identical.
inline std::string DiffStores(const PageStore& a, const PageStore& b,
                              uint32_t partitions,
                              uint32_t pages_per_partition) {
  for (uint32_t p = 0; p < partitions; ++p) {
    for (uint32_t page = 0; page < pages_per_partition; ++page) {
      PageId id{p, page};
      PageImage ia, ib;
      Status sa = a.ReadPage(id, &ia);
      Status sb = b.ReadPage(id, &ib);
      if (!sa.ok() || !sb.ok()) return id.ToString() + " (read error)";
      if (ia.lsn() != ib.lsn() || !(ia.payload() == ib.payload())) {
        return id.ToString();
      }
    }
  }
  return "";
}

}  // namespace llb::testutil

#endif  // LLB_SIM_ORACLE_H_
