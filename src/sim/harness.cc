#include "sim/harness.h"

#include "apprec/app_ops.h"
#include "btree/btree_ops.h"
#include "filestore/file_ops.h"

namespace llb {

void RegisterAllOps(OpRegistry* registry) {
  RegisterBtreeOps(registry);
  RegisterFileOps(registry);
  RegisterAppOps(registry);
}

Result<std::unique_ptr<TestEngine>> TestEngine::Create(
    const DbOptions& options, const std::string& name) {
  std::unique_ptr<TestEngine> engine(new TestEngine(options, name));
  LLB_RETURN_IF_ERROR(engine->Open());
  return engine;
}

Status TestEngine::Open() {
  LLB_ASSIGN_OR_RETURN(db_, Database::Open(&env_, name_, options_));
  RegisterAllOps(db_->registry());
  return db_->Recover();
}

Status TestEngine::CrashAndRecover() {
  db_.reset();
  env_.CrashAndRestart();
  return Open();
}

Status TestEngine::Reopen() {
  db_.reset();
  return Open();
}

Status TestEngine::Shutdown() {
  db_.reset();
  return Status::OK();
}

}  // namespace llb
