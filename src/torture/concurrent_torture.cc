#include "torture/concurrent_torture.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "sim/workload.h"

namespace llb {

std::string ConcurrentTortureReport::ToString() const {
  return "updates=" + std::to_string(updates_applied) +
         " backups=" + std::to_string(backups_completed) +
         " pages_copied=" + std::to_string(pages_copied) +
         " identity_writes=" + std::to_string(identity_writes) +
         " stats_polls=" + std::to_string(stats_polls);
}

Result<ConcurrentTortureReport> RunConcurrentTorture(
    const ConcurrentTortureOptions& options) {
  if (options.partitions == 0 || options.backups == 0) {
    return Status::InvalidArgument("partitions and backups must be > 0");
  }

  DbOptions db_options;
  db_options.partitions = options.partitions;
  db_options.pages_per_partition = options.pages_per_partition;
  db_options.cache_pages = options.cache_pages;
  db_options.graph = WriteGraphKind::kGeneral;
  db_options.backup_policy = BackupPolicy::kGeneral;
  db_options.backup_steps = options.backup_steps;
  db_options.log_channels = options.log_channels;

  TortureEngine engine(db_options);
  LLB_RETURN_IF_ERROR(engine.Open());
  Database* db = engine.db.get();

  // Build the drivers serially (driver construction is not the race under
  // test) and pre-seed each partition so backups copy real content.
  std::vector<std::unique_ptr<GeneralUniformDriver>> drivers;
  for (uint32_t p = 0; p < options.partitions; ++p) {
    drivers.push_back(std::make_unique<GeneralUniformDriver>(
        db, p, options.pages_per_partition, options.seed * 1000 + p));
    LLB_RETURN_IF_ERROR(drivers[p]->Step());
  }
  LLB_RETURN_IF_ERROR(db->FlushAll());
  LLB_RETURN_IF_ERROR(db->Checkpoint());

  ConcurrentTortureReport report;
  std::vector<Status> updater_status(options.partitions);
  Status backup_status;
  std::atomic<uint64_t> updates_applied{0};
  std::atomic<uint64_t> pages_copied{0};
  std::atomic<uint64_t> backups_completed{0};
  std::atomic<uint64_t> stats_polls{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> updaters;
  updaters.reserve(options.partitions);
  for (uint32_t p = 0; p < options.partitions; ++p) {
    updaters.emplace_back([&, p] {
      for (uint32_t i = 0; i < options.updates_per_thread; ++i) {
        Status s = drivers[p]->Step();
        if (!s.ok()) {
          updater_status[p] = s;
          return;
        }
        updates_applied.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread backup_thread([&] {
    for (uint32_t i = 0; i < options.backups; ++i) {
      BackupJobOptions job;
      job.steps = options.backup_steps;
      if (options.sweep_threads >= 2) {
        job.sweep_threads = options.sweep_threads;
      } else {
        job.parallel_partitions = true;
      }
      BackupJobStats stats;
      Result<BackupManifest> manifest =
          db->TakeBackupWithOptions("cbk_" + std::to_string(i), job, &stats);
      if (!manifest.ok()) {
        backup_status = manifest.status();
        return;
      }
      if (!manifest->complete) {
        backup_status = Status::Internal("concurrent backup " +
                                         std::to_string(i) + " incomplete");
        return;
      }
      pages_copied.fetch_add(stats.pages_copied, std::memory_order_relaxed);
      backups_completed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread poller;
  if (options.poll_stats) {
    poller = std::thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        DbStats stats = db->GatherStats();
        (void)stats;
        stats_polls.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  for (std::thread& t : updaters) t.join();
  backup_thread.join();
  done.store(true, std::memory_order_release);
  if (poller.joinable()) poller.join();

  for (uint32_t p = 0; p < options.partitions; ++p) {
    if (!updater_status[p].ok()) {
      return Status::Internal("updater for partition " + std::to_string(p) +
                              " failed: " + updater_status[p].ToString());
    }
  }
  if (!backup_status.ok()) {
    return Status::Internal("backup thread failed: " +
                            backup_status.ToString());
  }

  report.updates_applied = updates_applied.load();
  report.pages_copied = pages_copied.load();
  report.backups_completed = backups_completed.load();
  report.stats_polls = stats_polls.load();

  // Quiesce and check the invariants the race must not have broken.
  LLB_RETURN_IF_ERROR(db->FlushAll());
  LLB_RETURN_IF_ERROR(db->ForceLog());
  report.identity_writes = db->GatherStats().cache.identity_writes;
  LLB_RETURN_IF_ERROR(torture::VerifyOpenDb(&engine));

  std::string last_backup = "cbk_" + std::to_string(options.backups - 1);
  for (uint32_t i = 0; i < options.backups; ++i) {
    std::string name = "cbk_" + std::to_string(i);
    LLB_ASSIGN_OR_RETURN(ScrubReport verify, db->VerifyBackup(name));
    if (!verify.clean()) {
      return Status::Internal("concurrent backup " + name + " not clean");
    }
  }

  // The last chain must carry a full media recovery: wipe S off-line,
  // restore, roll forward, and re-check against the oracle.
  engine.Shutdown();
  LLB_RETURN_IF_ERROR(torture::WipeStable(&engine));
  LLB_RETURN_IF_ERROR(torture::OfflineRestore(&engine, last_backup,
                                              kInvalidLsn));
  LLB_RETURN_IF_ERROR(torture::VerifyStableOffline(&engine, kInvalidLsn));
  LLB_RETURN_IF_ERROR(engine.Open());

  return report;
}

}  // namespace llb
