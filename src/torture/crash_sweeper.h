#ifndef LLB_TORTURE_CRASH_SWEEPER_H_
#define LLB_TORTURE_CRASH_SWEEPER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "torture/torture_util.h"

namespace llb {

/// The pipeline stage mix a crash sweep exercises. Every scenario is a
/// deterministic end-to-end script: workload -> checkpoint -> backup
/// machinery -> more workload, with scenario-specific fault seasoning.
enum class ScenarioKind {
  /// Full backup with mid-step updates (Doubt-window flushes), then an
  /// incremental chained to it, then post-backup updates.
  kBackup,
  /// A scripted transient write fault aborts the sweep mid-partition;
  /// updates run while the fences are still up; Resume completes the
  /// backup from its durable cursor.
  kResume,
  /// A scripted silent bit-flip rots one backup page during the sweep;
  /// VerifyBackup detects it and ScrubBackup repairs it from S under the
  /// fence protocol.
  kScrub,
  /// Full + incremental chain, shutdown, wipe of S, point-in-time restore
  /// (verified against a log-prefix oracle), then full restore to the end
  /// of the log and reopen.
  kRestore,
  /// The batched/pipelined sweep pipeline: a batched full backup with
  /// mid-step updates, then a scripted transient fault that kills one
  /// batched (multi-page) write mid-step, updates under the still-up
  /// fences, a batched Resume from the mid-sweep durable cursor, and a
  /// batched incremental (scattered changed pages exercise run
  /// splitting). Gives every batch fence advance and buffered run write
  /// every-event crash coverage plus nested crashes.
  kBatchedBackup,
  /// The multi-threaded partitioned sweep: a parallel full backup
  /// (sweep_threads workers sharding the partitions) whose partition-1
  /// sweeper is killed mid-step by a scripted fault while partition 0
  /// completes, updates under the still-up partition-1 fences, a parallel
  /// Resume from the merged durable cursor (partition 0 skipped, 1
  /// continued), then a parallel incremental. The workload and the
  /// mid-step hook touch only partition 0, so the durability-event total
  /// is deterministic no matter how the sweep workers interleave.
  kParallelBackup,
  /// The batched + parallel restore path: full + incremental chain, then
  /// the kRestore sequence (PITR restore, full restore, reopen) executed
  /// through the TransferPipeline with multi-page runs, double-buffered
  /// prefetch, and >= 2 restore workers sharding the partitions. Crashes
  /// land mid-parallel-restore: the restore-marker protocol must route
  /// salvage to a re-restore (itself parallel) rather than plain crash
  /// redo, including nested crashes during that salvage restore. The
  /// durability-event TOTAL stays deterministic because each restore
  /// writes a fixed run set — worker interleaving permutes event order
  /// only, and the sweeper's contract is count-based.
  kParallelRestore,
  /// Log shipping to a warm standby living in the same env: the primary
  /// workload streams sealed segments through a FileShipChannel spool to
  /// a standby-mode twin database, with a scripted transient send fault
  /// (absorbed by the shipper's bounded retry) and a scripted torn frame
  /// (the envelope crc hides it from Poll; the applier observes the gap
  /// and the shipper's Resync NAK path repairs it). Then: a full backup
  /// with replication flowing through the mid-step hook, a PITR target
  /// recorded at a quiescent boundary, further updates, a full drain to
  /// zero measured lag, promotion of the standby to a writable primary
  /// (its own writes verified against its own log), and a point-in-time
  /// restore of the old primary to the recorded target. Crashes land on
  /// every durability event of ship -> apply -> promote -> PITR replay;
  /// salvage reopens both sides by durable role, re-attaches replication
  /// from the durable ship cursor, and requires oracle-verified
  /// convergence (except when the primary was PITR-rewound behind the
  /// standby, where a real deployment rebuilds the follower).
  kLogShipping,
  /// Instant restore: full + incremental chain, media failure (wipe of
  /// S), then the database reopens *restoring* — transactions run
  /// immediately against the wiped store, faulting each touched page's
  /// influence closure in from the chain on demand, interleaved with
  /// background RestoreStep sweeps, then FinishRestore. Crashes land on
  /// every durability event of the restore window, including
  /// mid-on-demand-fault (between a closure install and its bitmap
  /// save); salvage resumes the instant restore from the durable
  /// restored-bitmap — or restarts it when the crash beat the bitmap's
  /// first save — never plain crash redo over a half-restored store.
  kInstantRestore,
};

const char* ScenarioKindName(ScenarioKind kind);

/// Geometry and workload knobs of one torture scenario. Everything is
/// deterministic for a given options value: re-running a scenario replays
/// the identical durability-event sequence, which is what lets the
/// sweeper crash at event k of run j and know the pre-crash state.
struct ScenarioOptions {
  ScenarioKind kind = ScenarioKind::kBackup;
  /// Varies workload keys/choices; the dbtool entry point exposes it so
  /// a failing sweep is reproducible from the command line.
  uint64_t seed = 1;
  /// kTree runs a logically-split B-tree workload under BackupPolicy
  /// kTree; anything else runs general logical ops (FileStore Copy /
  /// Transform) under BackupPolicy kGeneral.
  WriteGraphKind graph = WriteGraphKind::kTree;
  uint32_t partitions = 1;
  /// Workload size is the event-count throttle: sweeps are quadratic in
  /// the scenario's durability events, so CI scenarios stay small.
  uint32_t pages_per_partition = 32;
  uint32_t cache_pages = 16;
  uint32_t backup_steps = 4;
  uint32_t updates_pre = 20;   // workload steps before the first backup
  uint32_t updates_mid = 2;    // workload steps per backup mid-step hook
  uint32_t updates_post = 8;   // workload steps after each backup
  /// Sweep batching for kBatchedBackup (and the engine's DbOptions):
  /// pages per batched backup IO and double-buffered prefetch. The
  /// defaults keep every pre-existing scenario on the legacy per-page
  /// sweep so their durability-event sequences stay stable.
  uint32_t batch_pages = 1;
  bool pipelined = false;
  /// Deep-queue asynchronous IO for the scenario's bulk transfers (see
  /// TransferOptions::queue_depth; only effective with batch_pages > 1).
  /// Crash scheduling is unaffected: durability events stay on the
  /// driver thread in the same count, which is what the sweeper's
  /// countdown injectors key on. 0 keeps the synchronous path.
  uint32_t queue_depth = 0;
  /// Concurrent sweep workers (kParallelBackup / kParallelRestore need
  /// >= 2 and >= 2 partitions; other scenarios keep the serial default so
  /// their durability-event sequences stay stable). kParallelRestore also
  /// reuses this (and batch_pages / pipelined) as its RestoreOptions.
  uint32_t sweep_threads = 1;
  /// WAL append channels (DbOptions::log_channels). >1 runs the scenario
  /// over epoch-based group commit: every Iw/oF flush decision waits on
  /// the epoch watermark, so the sweep's crash points land between
  /// "channel sealed" (the group commit's sync) and "epoch published" —
  /// a crash there must salvage with no committed-but-lost records and
  /// no Iw-after-flush ordering violation. The scripts are single-
  /// threaded, so the durability-event sequence stays deterministic.
  uint32_t log_channels = 1;
  /// Background group-commit interval (DbOptions::group_commit_interval_
  /// us). Scenarios keep 0 (caller-driven commits): a background advancer
  /// would inject nondeterministically-timed sync events and break the
  /// sweeper's event-count contract.
  uint32_t group_commit_interval_us = 0;
};

/// How exhaustively to sweep.
struct SweepOptions {
  /// Cap on primary crash points (0 = every durability event).
  uint64_t max_points = 0;
  /// Number of primary crash points that additionally get a *nested*
  /// sweep: after the primary crash, the recovery/salvage sequence is
  /// itself measured and crashed at its own durability events (0 = no
  /// nested crashes).
  uint64_t nested_primary_points = 0;
  /// Cap on nested crash points per chosen primary point (0 = every).
  uint64_t nested_max_points = 0;
  /// Optional progress sink (dbtool wires this to stdout).
  std::function<void(const std::string&)> progress;
};

struct CrashSweepReport {
  uint64_t total_events = 0;          // durability events of the clean run
  uint64_t points_tested = 0;         // primary crash points executed
  uint64_t nested_points_tested = 0;  // nested (second-crash) points
  uint64_t recoveries_verified = 0;   // post-crash S == oracle checks
  uint64_t backups_verified = 0;      // completed chains restored + checked
  uint64_t salvage_scrub_repairs = 0; // rotten chains repaired in salvage
  uint64_t salvage_restores = 0;      // mid-restore crashes re-restored

  std::string ToString() const;
};

/// Enumerates crash points of one pipeline scenario:
///
///   1. run the scenario once under a RecordingInjector -> N durability
///      events, and verify the final state (S and every completed backup
///      chain) against the full-log oracle;
///   2. for each chosen k in [1, N]: re-run with CrashAtEventInjector(k),
///      crash-restart, then *salvage*: recover, verify S against the
///      oracle, and verify/repair/restore any completed backup chain;
///   3. optionally, for chosen primary points, measure the salvage
///      sequence's own M durability events and re-crash at each chosen
///      j in [1, M] (crash during recovery / scrub repair), salvaging
///      again after the nested crash.
///
/// Salvage never resumes an incomplete backup across a crash: the fences
/// that kept Resume sound live in memory and died with the process (see
/// BackupJob::Resume), so an interrupted sweep is abandoned and only
/// *completed* chains are required to restore.
class CrashSweeper {
 public:
  explicit CrashSweeper(ScenarioOptions scenario) : scenario_(scenario) {}

  CrashSweeper(const CrashSweeper&) = delete;
  CrashSweeper& operator=(const CrashSweeper&) = delete;

  Result<CrashSweepReport> Sweep(const SweepOptions& options);

 private:
  DbOptions MakeDbOptions() const;

  /// Executes the scenario pipeline on an open engine. Every IO error
  /// bubbles out; the caller tells a scheduled crash (env blocked) from a
  /// genuine failure.
  Status RunScenario(TortureEngine* engine) const;

  /// Post-crash recovery + verification. Called with the engine freshly
  /// crash-restarted (database closed). On success the engine is left
  /// open and verified.
  Status Salvage(TortureEngine* engine, CrashSweepReport* report) const;

  /// Runs the scenario to the scheduled crash at event `k` and restarts.
  Status CrashScenarioAt(TortureEngine* engine, uint64_t k) const;

  Status RunPrimaryPoint(uint64_t k, CrashSweepReport* report) const;
  Status RunNestedPoints(uint64_t k, const SweepOptions& options,
                         CrashSweepReport* report) const;

  const ScenarioOptions scenario_;
};

}  // namespace llb

#endif  // LLB_TORTURE_CRASH_SWEEPER_H_
