#ifndef LLB_TORTURE_TORTURE_UTIL_H_
#define LLB_TORTURE_TORTURE_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "db/database.h"
#include "io/faulty_env.h"
#include "io/mem_env.h"

namespace llb {

/// A Database opened over MemEnv wrapped in a FaultyEnv, so torture runs
/// can combine both fault layers: MemEnv's FaultInjector schedules the
/// *crash* (k-th durability event, then all IO fails until restart) while
/// FaultyEnv's FaultPolicy injects *transient* faults (scripted aborts,
/// silent bit-rot) that the pipeline is expected to absorb. TestEngine
/// hardcodes a bare MemEnv, hence this second harness.
struct TortureEngine {
  MemEnv base;
  FaultyEnv env{&base};
  DbOptions options;
  std::string name = "db";
  std::unique_ptr<Database> db;
  /// Warm-standby twin living in the same env (log-shipping scenarios),
  /// so one crash schedule covers primary, transport, and standby events.
  std::string standby_name = "sb";
  std::unique_ptr<Database> standby;
  /// Monotonic suffix for oracle page-store prefixes: a PageStore opened
  /// over an existing prefix sees the old pages, so every oracle built
  /// within one env lifetime needs a fresh prefix.
  uint64_t oracle_seq = 0;

  explicit TortureEngine(const DbOptions& opts) : options(opts) {}

  /// Opens (and crash-recovers) the database. Registers all domain ops.
  Status Open();

  /// Opens (and crash-recovers) the standby twin in standby mode. The
  /// durable role file decides the actual role: a standby promoted before
  /// a crash reopens writable.
  Status OpenStandby();

  /// Opens the database in restoring mode over backup chain `chain`
  /// (Database::OpenRestoring): serves transactions immediately while
  /// instant media recovery proceeds underneath. Resumes a half-done
  /// restore from the durable restored-bitmap when one survived.
  Status OpenRestoring(const std::string& chain);

  /// Closes the database handles without a crash (volatile state of the
  /// env is preserved; used before off-line media recovery).
  void Shutdown() {
    db.reset();
    standby.reset();
  }
};

namespace torture {

/// Durable restore-in-progress marker. Written before S is wiped for an
/// off-line restore and removed once the restored state verified; after a
/// crash its presence tells salvage that S may be mid-restore garbage
/// which plain crash redo cannot rebuild (the checkpoint's redo start
/// point assumes the pre-crash S, not a half-copied one).
inline constexpr char kRestoreMarker[] = "db.restoring";

Status SetRestoreMarker(Env* env);
Status ClearRestoreMarker(Env* env);

/// Oracle check of the stable database while the engine is open: full-log
/// re-execution from an empty store must equal S page for page.
Status VerifyOpenDb(TortureEngine* engine);

/// Same oracle check against any open database in the engine's env —
/// e.g. the standby twin, whose own log (fed by replication) must equal
/// its stable store after every drain and after every crash recovery.
/// All flushed state must be durable (the caller just drained/flushed).
Status VerifyDbAgainstOwnLog(TortureEngine* engine, Database* db);

/// Oracle check with the database closed; `end_lsn` caps the replay for
/// point-in-time restores (kInvalidLsn = whole log).
Status VerifyStableOffline(TortureEngine* engine, Lsn end_lsn);

/// Zeroes every partition of S (simulated media failure).
Status WipeStable(TortureEngine* engine);

/// Off-line media recovery from backup `chain` with roll-forward capped
/// at `stop_at_lsn` (kInvalidLsn = end of log). Restartable: safe to
/// re-run after a crash mid-restore. `base` carries the bulk-transfer
/// knobs (batch_pages / pipelined / threads) a scenario wants exercised;
/// its stop_at_lsn / partition fields are overridden here.
Status OfflineRestore(TortureEngine* engine, const std::string& chain,
                      Lsn stop_at_lsn, RestoreOptions base = {});

/// Off-line point-in-time restore of the engine's primary to exactly
/// `target` (RestoreToPointInTime picks the chain itself). Restartable
/// like OfflineRestore.
Status OfflinePitr(TortureEngine* engine, Lsn target, RestoreOptions base = {});

}  // namespace torture
}  // namespace llb

#endif  // LLB_TORTURE_TORTURE_UTIL_H_
