#include "torture/crash_sweeper.h"

#include <algorithm>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "filestore/filestore.h"
#include "io/fault_env.h"
#include "ship/log_shipper.h"
#include "ship/standby_applier.h"
#include "torture/torture_util.h"

namespace llb {

using torture::ClearRestoreMarker;
using torture::kRestoreMarker;
using torture::OfflinePitr;
using torture::OfflineRestore;
using torture::SetRestoreMarker;
using torture::VerifyDbAgainstOwnLog;
using torture::VerifyOpenDb;
using torture::VerifyStableOffline;
using torture::WipeStable;

namespace {

/// Backup names every scenario uses, so salvage knows what to look for.
constexpr char kFullName[] = "tbk_full";
constexpr char kIncrName[] = "tbk_incr";

/// Spool prefix for kLogShipping frame files ("ship.f<seq>").
constexpr char kShipPrefix[] = "ship";

/// The update activity a scenario interleaves with its backup pipeline.
/// Deterministic for a given seed and call sequence.
class ScenarioWorkload {
 public:
  virtual ~ScenarioWorkload() = default;
  virtual Status Setup() = 0;
  virtual Status Update(uint32_t steps) = 0;
};

/// Logically-split B-tree inserts (tree operations, BackupPolicy::kTree).
class BtreeScenarioWorkload : public ScenarioWorkload {
 public:
  BtreeScenarioWorkload(Database* db, uint64_t seed)
      : db_(db),
        tree_(db, /*partition=*/0, /*meta_page=*/0, SplitLogging::kLogical),
        next_(seed * 31) {}

  Status Setup() override { return tree_.Create(); }

  Status Update(uint32_t steps) override {
    for (uint32_t i = 0; i < steps; ++i, ++next_) {
      int64_t key = static_cast<int64_t>((next_ * 53) % 4001);
      LLB_RETURN_IF_ERROR(tree_.Insert(key, Slice("t")));
      if (next_ % 5 == 4) LLB_RETURN_IF_ERROR(db_->FlushAll());
    }
    return db_->FlushAll();
  }

 private:
  Database* const db_;
  BTree tree_;
  uint64_t next_;
};

/// General logical operations: one-page file Copy (logging only operand
/// ids) plus in-place Transforms (BackupPolicy::kGeneral).
class GeneralScenarioWorkload : public ScenarioWorkload {
 public:
  GeneralScenarioWorkload(Database* db, uint32_t num_pages, uint64_t seed)
      : db_(db),
        files_(db, /*partition=*/0, /*base_page=*/0, /*pages_per_file=*/1,
               num_pages),
        rng_(seed),
        num_pages_(num_pages) {}

  Status Setup() override {
    for (uint32_t f = 0; f < 4 && f < num_pages_; ++f) {
      LLB_RETURN_IF_ERROR(
          files_.WriteValues(f, {static_cast<int64_t>(f) + 7, 3, 11}));
    }
    return db_->FlushAll();
  }

  Status Update(uint32_t steps) override {
    for (uint32_t i = 0; i < steps; ++i) {
      uint32_t src = static_cast<uint32_t>(rng_.Uniform(num_pages_));
      uint32_t dst = static_cast<uint32_t>(rng_.Uniform(num_pages_));
      if (dst == src) dst = (dst + 1) % num_pages_;
      LLB_RETURN_IF_ERROR(files_.Copy(src, dst));
      LLB_RETURN_IF_ERROR(db_->FlushPage(files_.PagesOf(dst)[0]));
      if (i % 3 == 2) {
        LLB_RETURN_IF_ERROR(files_.Transform(dst, rng_.Next()));
      }
    }
    return db_->FlushAll();
  }

 private:
  Database* const db_;
  FileStore files_;
  Random rng_;
  const uint32_t num_pages_;
};

}  // namespace

const char* ScenarioKindName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kBackup:
      return "backup";
    case ScenarioKind::kResume:
      return "resume";
    case ScenarioKind::kScrub:
      return "scrub";
    case ScenarioKind::kRestore:
      return "restore";
    case ScenarioKind::kBatchedBackup:
      return "batched";
    case ScenarioKind::kParallelBackup:
      return "parallel";
    case ScenarioKind::kParallelRestore:
      return "restore-parallel";
    case ScenarioKind::kLogShipping:
      return "log-shipping";
    case ScenarioKind::kInstantRestore:
      return "instant-restore";
  }
  return "unknown";
}

std::string CrashSweepReport::ToString() const {
  return "events=" + std::to_string(total_events) +
         " points=" + std::to_string(points_tested) +
         " nested=" + std::to_string(nested_points_tested) +
         " recoveries=" + std::to_string(recoveries_verified) +
         " backups=" + std::to_string(backups_verified) +
         " scrub_repairs=" + std::to_string(salvage_scrub_repairs) +
         " restores=" + std::to_string(salvage_restores);
}

DbOptions CrashSweeper::MakeDbOptions() const {
  DbOptions options;
  options.partitions = scenario_.partitions;
  options.pages_per_partition = scenario_.pages_per_partition;
  options.cache_pages = scenario_.cache_pages;
  options.graph = scenario_.graph;
  options.backup_policy = scenario_.graph == WriteGraphKind::kTree
                              ? BackupPolicy::kTree
                              : BackupPolicy::kGeneral;
  options.backup_steps = scenario_.backup_steps;
  options.backup_batch_pages = scenario_.batch_pages;
  options.backup_pipelined = scenario_.pipelined;
  options.io_queue_depth = scenario_.queue_depth;
  options.backup_sweep_threads = scenario_.sweep_threads;
  options.log_channels = scenario_.log_channels;
  options.group_commit_interval_us = scenario_.group_commit_interval_us;
  if (scenario_.kind == ScenarioKind::kInstantRestore) {
    // Small background steps so the sweep and the faulting workload
    // genuinely interleave on CI-sized scenarios (one big step would
    // restore everything before the second workload round).
    options.restore_batch_pages = 8;
  }
  return options;
}

namespace {

std::unique_ptr<ScenarioWorkload> MakeWorkload(Database* db,
                                               const ScenarioOptions& s) {
  if (s.graph == WriteGraphKind::kTree) {
    return std::make_unique<BtreeScenarioWorkload>(db, s.seed);
  }
  return std::make_unique<GeneralScenarioWorkload>(
      db, std::min<uint32_t>(s.pages_per_partition, 24), s.seed);
}

/// The RestoreOptions every off-line restore of this scenario uses —
/// including salvage restores after a crash, so crash-during-restore
/// coverage exercises the same transfer configuration the scenario
/// targets. Pre-existing scenarios stay on the per-page legacy path
/// (their documented contract: stable durability-event sequences);
/// kParallelRestore turns on batched runs, prefetch, and >= 2 workers.
RestoreOptions RestoreOptionsForScenario(const ScenarioOptions& s) {
  RestoreOptions options;
  if (s.kind == ScenarioKind::kParallelRestore) {
    options.batch_pages = std::max<uint32_t>(2, s.batch_pages);
    options.pipelined = s.pipelined;
    options.queue_depth = s.queue_depth;
    options.threads = std::max<uint32_t>(2, s.sweep_threads);
  } else {
    options.batch_pages = 1;
  }
  return options;
}

/// True iff a backup called `name` finished before the crash (a torn
/// final manifest save reverts to the durable incomplete version, so a
/// load failure here is a real error, not a crash artifact).
Result<bool> ChainComplete(TortureEngine* e, const std::string& name) {
  if (!e->env.FileExists(name + ".manifest")) return false;
  Result<BackupManifest> manifest = BackupManifest::Load(&e->env, name);
  if (!manifest.ok()) {
    // A crash before the manifest's first durable save leaves the file
    // present but with its contents reverted to nothing (MemEnv keeps
    // file existence across crashes, not unsynced bytes): the backup
    // never completed. Real IO failures still propagate.
    if (manifest.status().IsCorruption()) return false;
    return manifest.status();
  }
  return manifest->complete;
}

/// Verifies every completed backup chain end to end: scrub-verify (with
/// repair when the crash left injected rot unrepaired), then a full
/// off-line media recovery checked against the oracle. Leaves the engine
/// open. Incomplete backups are deliberately ignored: Resume's fence
/// precondition does not survive a process crash.
Status VerifyCompletedChains(TortureEngine* e, const RestoreOptions& restore,
                             CrashSweepReport* report) {
  LLB_ASSIGN_OR_RETURN(bool incr_ok, ChainComplete(e, kIncrName));
  std::string chain;
  if (incr_ok) {
    chain = kIncrName;
  } else {
    LLB_ASSIGN_OR_RETURN(bool full_ok, ChainComplete(e, kFullName));
    if (full_ok) chain = kFullName;
  }
  if (chain.empty()) return Status::OK();

  LLB_ASSIGN_OR_RETURN(ScrubReport verify, e->db->VerifyBackup(chain));
  if (!verify.clean()) {
    LLB_ASSIGN_OR_RETURN(ScrubReport repair, e->db->ScrubBackup(chain));
    if (!repair.fully_repaired()) {
      return Status::Internal("salvage scrub failed to repair chain " + chain);
    }
    ++report->salvage_scrub_repairs;
  }

  e->Shutdown();
  LLB_RETURN_IF_ERROR(SetRestoreMarker(&e->env));
  LLB_RETURN_IF_ERROR(WipeStable(e));
  LLB_RETURN_IF_ERROR(OfflineRestore(e, chain, kInvalidLsn, restore));
  LLB_RETURN_IF_ERROR(VerifyStableOffline(e, kInvalidLsn));
  LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
  LLB_RETURN_IF_ERROR(e->Open());
  ++report->backups_verified;
  return Status::OK();
}

/// Standby-side salvage for kLogShipping: reopen the twin by its durable
/// role, oracle-verify its stable store against its own log, and — while
/// it is still a standby — re-attach replication from the durable ship
/// cursor and require convergence with the salvaged primary.
///
/// Convergence is guaranteed because the shipper's no-gaps invariant
/// survives crashes: every LSN at or below the cursor is either still in
/// the spool (frames are synced before the cursor advances) or was
/// trimmed, and Trim only follows durable consumption into the standby
/// log; everything past the cursor is covered by Attach's catch-up scan.
/// The one exception is a frame that rotted after the cursor passed it
/// (the scenario's scripted torn frame, crashed before its resync), which
/// the explicit Resync below repairs.
Status SalvageStandbySide(const ScenarioOptions& scenario, TortureEngine* e,
                          CrashSweepReport* report) {
  if (scenario.kind != ScenarioKind::kLogShipping) return Status::OK();
  // sb.log is created by the scenario's OpenStandby; its absence means
  // the crash hit earlier (MemEnv keeps file existence across crashes).
  if (!e->env.FileExists(Database::LogName(e->standby_name))) {
    return Status::OK();
  }
  LLB_RETURN_IF_ERROR(e->OpenStandby());
  LLB_RETURN_IF_ERROR(VerifyDbAgainstOwnLog(e, e->standby.get()));
  ++report->recoveries_verified;
  // Promoted before the crash: the twin is its own primary now and no
  // replication should resume.
  if (!e->standby->standby()) return Status::OK();

  Lsn primary_tail = e->db->log()->durable_lsn();
  if (e->standby->log()->durable_lsn() > primary_tail) {
    // The primary was rewound (PITR) behind the standby. Replication
    // must not run backwards; a real deployment rebuilds the follower.
    return Status::OK();
  }

  FileShipChannel channel(&e->env, kShipPrefix);
  LogShipper shipper(&e->env, e->name, e->db->log(), &channel);
  LLB_RETURN_IF_ERROR(shipper.Attach());
  StandbyApplier applier(e->standby.get(), &channel);
  LLB_RETURN_IF_ERROR(applier.CatchUpFromLocalLog());
  LLB_RETURN_IF_ERROR(shipper.Pump());
  LLB_RETURN_IF_ERROR(applier.Drain());
  if (applier.applied_lsn() < primary_tail) {
    LLB_RETURN_IF_ERROR(shipper.Resync(applier.applied_lsn() + 1));
    LLB_RETURN_IF_ERROR(shipper.Pump());
    LLB_RETURN_IF_ERROR(applier.Drain());
  }
  StandbyStatus lag = applier.GatherStatus(primary_tail);
  if (lag.lsns_behind != 0 || applier.applied_lsn() != primary_tail) {
    return Status::Internal("standby failed to converge after salvage: " +
                            lag.ToString());
  }
  LLB_RETURN_IF_ERROR(VerifyDbAgainstOwnLog(e, e->standby.get()));
  ++report->recoveries_verified;
  return Status::OK();
}

}  // namespace

Status CrashSweeper::RunScenario(TortureEngine* e) const {
  Database* db = e->db.get();
  std::unique_ptr<ScenarioWorkload> workload = MakeWorkload(db, scenario_);
  LLB_RETURN_IF_ERROR(workload->Setup());
  LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_pre));
  LLB_RETURN_IF_ERROR(db->Checkpoint());

  switch (scenario_.kind) {
    case ScenarioKind::kBackup: {
      BackupJobOptions job;
      job.steps = scenario_.backup_steps;
      job.mid_step = [&](PartitionId, uint32_t) {
        return workload->Update(scenario_.updates_mid);
      };
      LLB_ASSIGN_OR_RETURN(BackupManifest full,
                           db->TakeBackupWithOptions(kFullName, job));
      if (!full.complete) return Status::Internal("full backup incomplete");
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("incremental backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      return db->ForceLog();
    }

    case ScenarioKind::kResume: {
      // A transient write fault lands the sweep mid-partition; the
      // countdown targets the second of `backup_steps` steps.
      uint64_t abort_at = scenario_.pages_per_partition / 4 + 2;
      ScriptedFaultPolicy abort_policy(
          {{FaultOp::kWriteAt, std::string(kFullName) + ".pages", abort_at,
            FaultAction::kFail}});
      e->env.SetPolicy(&abort_policy);
      Result<BackupManifest> run =
          db->TakeBackup(kFullName, scenario_.backup_steps);
      e->env.SetPolicy(nullptr);
      if (run.ok()) {
        return Status::Internal("scripted abort fault did not fire");
      }
      // A scheduled crash can beat the scripted abort; tell them apart by
      // whether the env is now rejecting all IO.
      if (e->base.io_blocked()) return run.status();
      // Update activity between abort and resume: the fences stayed up,
      // so flushes into already-copied regions keep being identity-logged.
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest resumed,
                           db->ResumeBackup(kFullName));
      if (!resumed.complete) {
        return Status::Internal("resumed backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      return db->ForceLog();
    }

    case ScenarioKind::kScrub: {
      // Silent bit-flip on the second page written into B (page 1 always
      // carries real data; higher pages may be checksum-exempt zeros).
      ScriptedFaultPolicy rot_policy(
          {{FaultOp::kWriteAt, std::string(kFullName) + ".pages", 2,
            FaultAction::kCorrupt}});
      e->env.SetPolicy(&rot_policy);
      Result<BackupManifest> run =
          db->TakeBackup(kFullName, scenario_.backup_steps);
      e->env.SetPolicy(nullptr);
      if (!run.ok()) return run.status();  // scheduled crash mid-sweep
      if (rot_policy.fired() != 1) {
        return Status::Internal("scripted rot fault did not fire");
      }
      LLB_ASSIGN_OR_RETURN(ScrubReport verify, db->VerifyBackup(kFullName));
      if (verify.clean()) return Status::Internal("bit rot not detected");
      LLB_ASSIGN_OR_RETURN(ScrubReport repair, db->ScrubBackup(kFullName));
      if (!repair.fully_repaired()) {
        return Status::Internal("scrub failed to repair the backup");
      }
      LLB_ASSIGN_OR_RETURN(ScrubReport again, db->VerifyBackup(kFullName));
      if (!again.clean()) {
        return Status::Internal("backup still dirty after scrub");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      return db->ForceLog();
    }

    case ScenarioKind::kBatchedBackup: {
      BackupJobOptions job;
      job.steps = scenario_.backup_steps;
      job.batch_pages = scenario_.batch_pages;
      job.pipelined = scenario_.pipelined;
      job.queue_depth = scenario_.queue_depth;
      job.mid_step = [&](PartitionId, uint32_t) {
        return workload->Update(scenario_.updates_mid);
      };
      // A scripted transient fault kills one batched multi-page write
      // mid-sweep. With batch_pages B and step size S there are
      // ceil(S / B) batch writes per step; countdown ceil(S / B) + 1
      // lands the abort on the first batch of step 2, so the durable
      // cursor sits at the step-1 boundary with the sweep mid-partition.
      uint32_t step_pages =
          scenario_.pages_per_partition / scenario_.backup_steps;
      uint32_t batch = std::max<uint32_t>(1, scenario_.batch_pages);
      uint64_t abort_at = (step_pages + batch - 1) / batch + 1;
      ScriptedFaultPolicy abort_policy(
          {{FaultOp::kWriteAt, std::string(kFullName) + ".pages", abort_at,
            FaultAction::kFail}});
      e->env.SetPolicy(&abort_policy);
      Result<BackupManifest> run = db->TakeBackupWithOptions(kFullName, job);
      e->env.SetPolicy(nullptr);
      if (run.ok()) {
        return Status::Internal("scripted batch abort fault did not fire");
      }
      // A scheduled crash can beat the scripted abort; tell them apart by
      // whether the env is now rejecting all IO.
      if (e->base.io_blocked()) return run.status();
      // Fences stayed up across the abort: updates here keep being
      // identity-logged into the already-copied region.
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest resumed,
                           db->ResumeBackup(kFullName, job));
      if (!resumed.complete) {
        return Status::Internal("resumed batched backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      // Batched incremental: the changed-page set is scattered, so the
      // sweep's contiguous-run builder has to split around the gaps.
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("batched incremental backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      return db->ForceLog();
    }

    case ScenarioKind::kParallelBackup: {
      // Partitions are sharded across sweep workers. The workload (and
      // hence every log record and identity write) only touches
      // partition 0, and the mid-step hook only fires there, so the
      // durability-event total is independent of worker interleaving —
      // the determinism the crash sweep needs.
      if (scenario_.partitions < 2) {
        return Status::InvalidArgument(
            "parallel scenario needs >= 2 partitions");
      }
      BackupJobOptions job;
      job.steps = scenario_.backup_steps;
      job.batch_pages = scenario_.batch_pages;
      job.pipelined = scenario_.pipelined;
      job.queue_depth = scenario_.queue_depth;
      job.sweep_threads = std::max<uint32_t>(2, scenario_.sweep_threads);
      job.mid_step = [&](PartitionId partition, uint32_t) {
        if (partition != 0) return Status::OK();
        return workload->Update(scenario_.updates_mid);
      };
      // Scripted abort scoped to partition 1's backup file: partition 0
      // completes its sweep while partition 1 dies mid-step — the
      // interesting shape for the merged cursor (one partition done, one
      // partial), and deterministic because only the partition-1 worker
      // writes that file.
      uint64_t abort_at = scenario_.pages_per_partition / 4 + 2;
      ScriptedFaultPolicy abort_policy(
          {{FaultOp::kWriteAt, std::string(kFullName) + ".pages.p1", abort_at,
            FaultAction::kFail}});
      e->env.SetPolicy(&abort_policy);
      Result<BackupManifest> run = db->TakeBackupWithOptions(kFullName, job);
      e->env.SetPolicy(nullptr);
      if (run.ok()) {
        return Status::Internal("scripted parallel abort fault did not fire");
      }
      // A scheduled crash can beat the scripted abort; tell them apart by
      // whether the env is now rejecting all IO.
      if (e->base.io_blocked()) return run.status();
      // Partition 1's fences stayed up across the abort; partition 0
      // finished and reset its own. Updates here land in partition 0 and
      // log normally.
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest resumed,
                           db->ResumeBackup(kFullName, job));
      if (!resumed.complete) {
        return Status::Internal("resumed parallel backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      // Parallel incremental: all changed pages live in partition 0, so
      // one worker sweeps real runs while the other advances partition
      // 1's fences over an empty filter.
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("parallel incremental backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      return db->ForceLog();
    }

    case ScenarioKind::kRestore: {
      LLB_ASSIGN_OR_RETURN(BackupManifest full,
                           db->TakeBackup(kFullName, scenario_.backup_steps));
      if (!full.complete) return Status::Internal("full backup incomplete");
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("incremental backup incomplete");
      }
      Lsn pitr_lsn = incr.end_lsn;
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_RETURN_IF_ERROR(db->ForceLog());

      // Simulated media failure + off-line recovery, twice: first a
      // point-in-time restore to the incremental's end, checked against a
      // log-prefix oracle, then a full roll-forward to the end of the log.
      e->Shutdown();
      LLB_RETURN_IF_ERROR(SetRestoreMarker(&e->env));
      LLB_RETURN_IF_ERROR(WipeStable(e));
      LLB_RETURN_IF_ERROR(OfflineRestore(e, kIncrName, pitr_lsn));
      LLB_RETURN_IF_ERROR(VerifyStableOffline(e, pitr_lsn));
      LLB_RETURN_IF_ERROR(OfflineRestore(e, kIncrName, kInvalidLsn));
      LLB_RETURN_IF_ERROR(VerifyStableOffline(e, kInvalidLsn));
      LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
      return e->Open();
    }

    case ScenarioKind::kParallelRestore: {
      // The restore-side twin of kParallelBackup: the same chain-and-
      // restore pipeline as kRestore, but every off-line restore runs
      // through the TransferPipeline with multi-page runs and >= 2
      // workers sharding the partitions. Crashes land mid-parallel-
      // restore; the durability-event TOTAL is interleaving-independent
      // (a fixed run set is written either way), which is all the
      // count-based sweep contract needs.
      if (scenario_.partitions < 2) {
        return Status::InvalidArgument(
            "parallel restore scenario needs >= 2 partitions");
      }
      LLB_ASSIGN_OR_RETURN(BackupManifest full,
                           db->TakeBackup(kFullName, scenario_.backup_steps));
      if (!full.complete) return Status::Internal("full backup incomplete");
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("incremental backup incomplete");
      }
      Lsn pitr_lsn = incr.end_lsn;
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_RETURN_IF_ERROR(db->ForceLog());

      const RestoreOptions restore = RestoreOptionsForScenario(scenario_);
      e->Shutdown();
      LLB_RETURN_IF_ERROR(SetRestoreMarker(&e->env));
      LLB_RETURN_IF_ERROR(WipeStable(e));
      LLB_RETURN_IF_ERROR(OfflineRestore(e, kIncrName, pitr_lsn, restore));
      LLB_RETURN_IF_ERROR(VerifyStableOffline(e, pitr_lsn));
      LLB_RETURN_IF_ERROR(OfflineRestore(e, kIncrName, kInvalidLsn, restore));
      LLB_RETURN_IF_ERROR(VerifyStableOffline(e, kInvalidLsn));
      LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
      return e->Open();
    }

    case ScenarioKind::kInstantRestore: {
      // Full + incremental chain, then a media failure. Instead of an
      // off-line restore, the database reopens *restoring*: the workload
      // resumes immediately against the wiped store, faulting each
      // touched page's influence closure in on demand, with background
      // RestoreStep sweeps interleaved between workload rounds.
      LLB_ASSIGN_OR_RETURN(BackupManifest full,
                           db->TakeBackup(kFullName, scenario_.backup_steps));
      if (!full.complete) return Status::Internal("full backup incomplete");
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid * 3));
      LLB_ASSIGN_OR_RETURN(BackupManifest incr,
                           db->TakeIncrementalBackup(kIncrName, kFullName));
      if (!incr.complete) {
        return Status::Internal("incremental backup incomplete");
      }
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_RETURN_IF_ERROR(db->ForceLog());

      e->Shutdown();
      LLB_RETURN_IF_ERROR(SetRestoreMarker(&e->env));
      LLB_RETURN_IF_ERROR(WipeStable(e));
      LLB_RETURN_IF_ERROR(e->OpenRestoring(kIncrName));
      if (!e->db->restoring()) {
        return Status::Internal("restoring open came up not restoring");
      }
      // Fresh workload object bound to the new handle (the old one holds
      // the pre-crash Database pointer); no Setup — the data already
      // exists, the generator just replays its deterministic stream.
      std::unique_ptr<ScenarioWorkload> survivor =
          MakeWorkload(e->db.get(), scenario_);
      for (int round = 0; round < 3; ++round) {
        LLB_RETURN_IF_ERROR(survivor->Update(scenario_.updates_mid));
        LLB_ASSIGN_OR_RETURN(uint64_t moved, e->db->RestoreStep());
        (void)moved;
      }
      LLB_RETURN_IF_ERROR(e->db->FinishRestore());
      if (e->db->restoring()) {
        return Status::Internal("FinishRestore left the restoring flag set");
      }
      LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
      LLB_RETURN_IF_ERROR(survivor->Update(scenario_.updates_post));
      return e->db->ForceLog();
    }

    case ScenarioKind::kLogShipping: {
      // Warm standby in the same env, so one crash schedule covers
      // primary, spool, and standby durability events. The spool is a
      // FileShipChannel under the same FaultyEnv: scripted channel faults
      // and scheduled crashes both land on real frame IO.
      LLB_RETURN_IF_ERROR(e->OpenStandby());
      FileShipChannel channel(&e->env, kShipPrefix);
      LogShipper shipper(&e->env, e->name, db->log(), &channel);
      LLB_RETURN_IF_ERROR(shipper.Attach());
      StandbyApplier applier(e->standby.get(), &channel);
      LLB_RETURN_IF_ERROR(applier.CatchUpFromLocalLog());
      auto replicate = [&]() -> Status {
        LLB_RETURN_IF_ERROR(shipper.Pump());
        return applier.Drain();
      };
      // Everything logged before the shipper attached ships as one
      // catch-up frame.
      LLB_RETURN_IF_ERROR(replicate());

      // Transient send fault: the next Pump's first spool write fails
      // once and the shipper's bounded retry absorbs it. The failed
      // write never reaches its Sync, so the durability-event sequence
      // stays identical to a fault-free send.
      {
        ScriptedFaultPolicy drop(
            {{FaultOp::kWriteAt, std::string(kShipPrefix) + ".f", 1,
              FaultAction::kFail}});
        LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid));
        e->env.SetPolicy(&drop);
        Status pumped = shipper.Pump();
        e->env.SetPolicy(nullptr);
        if (!pumped.ok()) return pumped;  // scheduled crash mid-pump
        if (drop.fired() != 1) {
          return Status::Internal("scripted send fault did not fire");
        }
        if (shipper.stats().retries == 0) {
          return Status::Internal("send retry path not exercised");
        }
        LLB_RETURN_IF_ERROR(applier.Drain());
      }

      // Torn frame: silent rot on a spool write. The envelope crc hides
      // the frame from Poll, the applier observes the gap, and the
      // shipper's Resync NAK path rebuilds the range from the log.
      {
        ScriptedFaultPolicy rot(
            {{FaultOp::kWriteAt, std::string(kShipPrefix) + ".f", 1,
              FaultAction::kCorrupt}});
        LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid));
        e->env.SetPolicy(&rot);
        Status pumped = shipper.Pump();
        e->env.SetPolicy(nullptr);
        if (!pumped.ok()) return pumped;  // scheduled crash mid-pump
        if (rot.fired() != 1) {
          return Status::Internal("scripted frame rot did not fire");
        }
        LLB_RETURN_IF_ERROR(applier.Drain());
        if (applier.applied_lsn() >= db->log()->durable_lsn()) {
          return Status::Internal("torn frame failed to open a gap");
        }
        LLB_RETURN_IF_ERROR(shipper.Resync(applier.applied_lsn() + 1));
        LLB_RETURN_IF_ERROR(replicate());
        if (applier.applied_lsn() != db->log()->durable_lsn()) {
          return Status::Internal("resync did not close the gap");
        }
      }

      // Full backup on the primary while replication keeps flowing
      // through the mid-step hook.
      BackupJobOptions job;
      job.steps = scenario_.backup_steps;
      job.mid_step = [&](PartitionId, uint32_t) -> Status {
        LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_mid));
        return replicate();
      };
      LLB_ASSIGN_OR_RETURN(BackupManifest full,
                           db->TakeBackupWithOptions(kFullName, job));
      if (!full.complete) return Status::Internal("full backup incomplete");

      // The PITR target: a quiescent boundary past the backup's end (all
      // atomic groups closed by the workload's trailing FlushAll).
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_RETURN_IF_ERROR(db->ForceLog());
      const Lsn pitr_target = db->log()->durable_lsn();
      LLB_RETURN_IF_ERROR(replicate());

      // Updates past the PITR point, then a full drain to zero lag.
      LLB_RETURN_IF_ERROR(workload->Update(scenario_.updates_post));
      LLB_RETURN_IF_ERROR(db->ForceLog());
      LLB_RETURN_IF_ERROR(replicate());
      StandbyStatus lag = applier.GatherStatus(db->log()->durable_lsn());
      if (lag.lsns_behind != 0 || lag.segments_behind != 0) {
        return Status::Internal("standby lag after full drain: " +
                                lag.ToString());
      }
      if (e->standby->log()->durable_lsn() != db->log()->durable_lsn()) {
        return Status::Internal("standby log tail diverges from primary");
      }

      // Promote: the standby becomes a writable primary, takes writes of
      // its own, and must keep matching its own log.
      shipper.Detach();
      LLB_RETURN_IF_ERROR(e->standby->Promote());
      if (e->standby->standby()) {
        return Status::Internal("promotion left the standby flag set");
      }
      std::unique_ptr<ScenarioWorkload> standby_writes =
          MakeWorkload(e->standby.get(), scenario_);
      LLB_RETURN_IF_ERROR(standby_writes->Update(scenario_.updates_mid));
      LLB_RETURN_IF_ERROR(e->standby->ForceLog());
      LLB_RETURN_IF_ERROR(VerifyDbAgainstOwnLog(e, e->standby.get()));

      // Point-in-time restore of the old primary to the recorded target
      // (media failure after the role moved: rewind to a known-good
      // moment instead of chasing the lost tail).
      e->Shutdown();
      LLB_RETURN_IF_ERROR(SetRestoreMarker(&e->env));
      LLB_RETURN_IF_ERROR(WipeStable(e));
      LLB_RETURN_IF_ERROR(OfflinePitr(e, pitr_target));
      LLB_RETURN_IF_ERROR(VerifyStableOffline(e, pitr_target));
      LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
      return e->Open();
    }
  }
  return Status::Internal("unknown scenario kind");
}

Status CrashSweeper::Salvage(TortureEngine* e,
                             CrashSweepReport* report) const {
  if (e->env.FileExists(kRestoreMarker)) {
    // The crash hit while S was being overwritten from B. Plain crash
    // redo cannot rebuild a half-copied store, but off-line restore is
    // restartable: re-copy the chain and roll forward to the end of the
    // durable log.
    LLB_ASSIGN_OR_RETURN(bool incr_ok, ChainComplete(e, kIncrName));
    std::string chain = kIncrName;
    if (!incr_ok) {
      LLB_ASSIGN_OR_RETURN(bool full_ok, ChainComplete(e, kFullName));
      if (!full_ok) {
        return Status::Internal("restore marker without a complete chain");
      }
      chain = kFullName;
    }
    if (scenario_.kind == ScenarioKind::kInstantRestore) {
      // An instant restore resumes as an instant restore: the durable
      // restored-bitmap (when it survived the crash) carries the done
      // pages and the pinned recovery tail; when the crash beat the
      // bitmap's first save — or landed between Finalize and the marker
      // clear — the restore restarts from scratch. Both are idempotent.
      // Crash redo for post-tail work happens inside Recover.
      LLB_RETURN_IF_ERROR(e->OpenRestoring(chain));
      if (e->db->restoring()) {
        // Fault one fixed page on demand before draining, so nested
        // crashes land inside the salvage's own fault path too.
        PageImage img;
        LLB_RETURN_IF_ERROR(e->db->ReadPage(PageId{0, 0}, &img));
      }
      LLB_RETURN_IF_ERROR(e->db->FinishRestore());
      LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
      ++report->salvage_restores;
      LLB_RETURN_IF_ERROR(VerifyOpenDb(e));
      ++report->recoveries_verified;
      return VerifyCompletedChains(e, RestoreOptionsForScenario(scenario_),
                                   report);
    }
    LLB_RETURN_IF_ERROR(OfflineRestore(e, chain, kInvalidLsn,
                                       RestoreOptionsForScenario(scenario_)));
    LLB_RETURN_IF_ERROR(VerifyStableOffline(e, kInvalidLsn));
    LLB_RETURN_IF_ERROR(ClearRestoreMarker(&e->env));
    ++report->salvage_restores;
    ++report->backups_verified;
    LLB_RETURN_IF_ERROR(e->Open());
    LLB_RETURN_IF_ERROR(VerifyOpenDb(e));
    ++report->recoveries_verified;
    return SalvageStandbySide(scenario_, e, report);
  }

  LLB_RETURN_IF_ERROR(e->Open());
  LLB_RETURN_IF_ERROR(VerifyOpenDb(e));
  ++report->recoveries_verified;
  LLB_RETURN_IF_ERROR(VerifyCompletedChains(
      e, RestoreOptionsForScenario(scenario_), report));
  return SalvageStandbySide(scenario_, e, report);
}

Status CrashSweeper::CrashScenarioAt(TortureEngine* e, uint64_t k) const {
  LLB_RETURN_IF_ERROR(e->Open());
  CrashAtEventInjector injector(k);
  e->base.SetFaultInjector(&injector);
  Status s = RunScenario(e);
  bool crashed = e->base.io_blocked();
  if (!crashed) {
    e->base.SetFaultInjector(nullptr);
    if (s.ok()) {
      return Status::Internal("crash at event " + std::to_string(k) +
                              " never fired");
    }
    return Status::Internal("scenario failed before the scheduled crash at " +
                            std::to_string(k) + ": " + s.ToString());
  }
  e->Shutdown();
  e->base.CrashAndRestart();  // clears the injector reference
  return Status::OK();
}

Status CrashSweeper::RunPrimaryPoint(uint64_t k,
                                     CrashSweepReport* report) const {
  TortureEngine engine(MakeDbOptions());
  LLB_RETURN_IF_ERROR(CrashScenarioAt(&engine, k));
  Status s = Salvage(&engine, report);
  if (!s.ok()) {
    return Status::Internal(std::string(ScenarioKindName(scenario_.kind)) +
                            " scenario, crash point " + std::to_string(k) +
                            ": " + s.ToString());
  }
  return Status::OK();
}

Status CrashSweeper::RunNestedPoints(uint64_t k, const SweepOptions& options,
                                     CrashSweepReport* report) const {
  // Measure the salvage sequence that follows a crash at event k.
  uint64_t salvage_events = 0;
  {
    TortureEngine engine(MakeDbOptions());
    LLB_RETURN_IF_ERROR(CrashScenarioAt(&engine, k));
    RecordingInjector recorder;
    engine.base.SetFaultInjector(&recorder);
    CrashSweepReport scratch;
    Status s = Salvage(&engine, &scratch);
    engine.base.SetFaultInjector(nullptr);
    if (!s.ok()) {
      return Status::Internal("recording salvage failed at crash point " +
                              std::to_string(k) + ": " + s.ToString());
    }
    salvage_events = recorder.count();
  }
  if (salvage_events == 0) return Status::OK();

  uint64_t stride = options.nested_max_points == 0
                        ? 1
                        : salvage_events / options.nested_max_points + 1;
  for (uint64_t j = 1; j <= salvage_events; j += stride) {
    TortureEngine engine(MakeDbOptions());
    LLB_RETURN_IF_ERROR(CrashScenarioAt(&engine, k));
    CrashAtEventInjector nested(j);
    engine.base.SetFaultInjector(&nested);
    CrashSweepReport scratch;
    Status s = Salvage(&engine, &scratch);
    bool crashed = engine.base.io_blocked();
    if (!crashed) {
      engine.base.SetFaultInjector(nullptr);
      return Status::Internal(
          "salvage at crash point " + std::to_string(k) +
          (s.ok() ? " finished without the nested crash at event "
                  : " failed before the nested crash at event ") +
          std::to_string(j) + (s.ok() ? "" : ": " + s.ToString()));
    }
    engine.Shutdown();
    engine.base.CrashAndRestart();
    Status final_salvage = Salvage(&engine, report);
    if (!final_salvage.ok()) {
      return Status::Internal(std::string(ScenarioKindName(scenario_.kind)) +
                              " scenario, crash point " + std::to_string(k) +
                              ", nested crash " + std::to_string(j) + ": " +
                              final_salvage.ToString());
    }
    ++report->nested_points_tested;
  }
  return Status::OK();
}

Result<CrashSweepReport> CrashSweeper::Sweep(const SweepOptions& options) {
  CrashSweepReport report;

  // 1. Clean recording run: learn N and verify the fault-free end state.
  {
    TortureEngine engine(MakeDbOptions());
    LLB_RETURN_IF_ERROR(engine.Open());
    RecordingInjector recorder;
    engine.base.SetFaultInjector(&recorder);
    Status s = RunScenario(&engine);
    engine.base.SetFaultInjector(nullptr);
    if (!s.ok()) {
      return Status::Internal("clean scenario run failed: " + s.ToString());
    }
    report.total_events = recorder.count();
    LLB_RETURN_IF_ERROR(VerifyOpenDb(&engine));
    LLB_RETURN_IF_ERROR(VerifyCompletedChains(
        &engine, RestoreOptionsForScenario(scenario_), &report));
  }
  if (report.total_events == 0) {
    return Status::Internal("scenario produced no durability events");
  }

  // 2. Primary sweep: crash at every chosen event.
  uint64_t stride = options.max_points == 0
                        ? 1
                        : report.total_events / options.max_points + 1;
  for (uint64_t k = 1; k <= report.total_events; k += stride) {
    if (options.progress) {
      options.progress("crash point " + std::to_string(k) + "/" +
                       std::to_string(report.total_events));
    }
    LLB_RETURN_IF_ERROR(RunPrimaryPoint(k, &report));
    ++report.points_tested;
  }

  // 3. Nested sweep: crash the recovery that follows chosen crashes.
  if (options.nested_primary_points > 0) {
    uint64_t primary_stride =
        report.total_events / options.nested_primary_points + 1;
    for (uint64_t k = primary_stride / 2 + 1; k <= report.total_events;
         k += primary_stride) {
      if (options.progress) {
        options.progress("nested sweep at crash point " + std::to_string(k));
      }
      LLB_RETURN_IF_ERROR(RunNestedPoints(k, options, &report));
    }
  }
  return report;
}

}  // namespace llb
