#include "torture/torture_util.h"

#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/oracle.h"

namespace llb {

Status TortureEngine::Open() {
  LLB_ASSIGN_OR_RETURN(db, Database::Open(&env, name, options));
  RegisterAllOps(db->registry());
  return db->Recover();
}

Status TortureEngine::OpenRestoring(const std::string& chain) {
  LLB_ASSIGN_OR_RETURN(db, Database::OpenRestoring(&env, name, options, chain));
  RegisterAllOps(db->registry());
  return db->Recover();
}

Status TortureEngine::OpenStandby() {
  DbOptions standby_options = options;
  standby_options.standby = true;
  LLB_ASSIGN_OR_RETURN(standby,
                       Database::Open(&env, standby_name, standby_options));
  RegisterAllOps(standby->registry());
  return standby->Recover();
}

namespace torture {

Status SetRestoreMarker(Env* env) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> f,
                       env->OpenFile(kRestoreMarker, /*create=*/true));
  LLB_RETURN_IF_ERROR(f->WriteAt(0, Slice("R")));
  return f->Sync();
}

Status ClearRestoreMarker(Env* env) {
  if (!env->FileExists(kRestoreMarker)) return Status::OK();
  return env->DeleteFile(kRestoreMarker);
}

Status VerifyOpenDb(TortureEngine* e) {
  return VerifyDbAgainstOwnLog(e, e->db.get());
}

Status VerifyDbAgainstOwnLog(TortureEngine* e, Database* db) {
  std::string prefix = "oracle_t" + std::to_string(e->oracle_seq++);
  std::unique_ptr<PageStore> oracle;
  LLB_RETURN_IF_ERROR(testutil::BuildOracle(&e->env, *db->log(),
                                            *db->registry(), prefix,
                                            e->options.partitions, &oracle));
  std::string diff =
      testutil::DiffStores(*db->stable(), *oracle, e->options.partitions,
                           e->options.pages_per_partition);
  if (!diff.empty()) {
    return Status::Internal("stable state differs from oracle at page " +
                            diff);
  }
  return Status::OK();
}

Status VerifyStableOffline(TortureEngine* e, Lsn end_lsn) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&e->env, Database::LogName(e->name)));
  std::string prefix = "oracle_t" + std::to_string(e->oracle_seq++);
  std::unique_ptr<PageStore> oracle;
  LLB_ASSIGN_OR_RETURN(oracle,
                       PageStore::Open(&e->env, prefix, e->options.partitions));
  LLB_ASSIGN_OR_RETURN(
      RedoReport redo,
      RunRedoRange(*log, registry, oracle.get(), /*start_lsn=*/1, end_lsn,
                   /*only_partition=*/nullptr, /*use_identity_seeds=*/false));
  (void)redo;
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<PageStore> stable,
                       PageStore::Open(&e->env, Database::StableName(e->name),
                                       e->options.partitions));
  std::string diff =
      testutil::DiffStores(*stable, *oracle, e->options.partitions,
                           e->options.pages_per_partition);
  if (!diff.empty()) {
    return Status::Internal("restored state differs from oracle at page " +
                            diff);
  }
  return Status::OK();
}

Status WipeStable(TortureEngine* e) {
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<PageStore> stable,
                       PageStore::Open(&e->env, Database::StableName(e->name),
                                       e->options.partitions));
  for (PartitionId p = 0; p < e->options.partitions; ++p) {
    LLB_RETURN_IF_ERROR(stable->WipePartition(p));
  }
  return Status::OK();
}

Status OfflineRestore(TortureEngine* e, const std::string& chain,
                      Lsn stop_at_lsn, RestoreOptions base) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions options = base;
  options.stop_at_lsn = stop_at_lsn;
  options.partition_only = false;
  LLB_ASSIGN_OR_RETURN(
      MediaRecoveryReport report,
      RestoreFromBackupWithOptions(&e->env, Database::StableName(e->name),
                                   Database::LogName(e->name), chain, registry,
                                   options));
  (void)report;
  return Status::OK();
}

Status OfflinePitr(TortureEngine* e, Lsn target, RestoreOptions base) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  base.stop_at_lsn = kInvalidLsn;
  base.partition_only = false;
  LLB_ASSIGN_OR_RETURN(
      MediaRecoveryReport report,
      RestoreToPointInTime(&e->env, Database::StableName(e->name),
                           Database::LogName(e->name), target, registry,
                           base));
  (void)report;
  return Status::OK();
}

}  // namespace torture
}  // namespace llb
