#ifndef LLB_TORTURE_CONCURRENT_TORTURE_H_
#define LLB_TORTURE_CONCURRENT_TORTURE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "torture/torture_util.h"

namespace llb {

/// Knobs for the concurrent torture run: real threads racing through the
/// BackupProgress latch instead of the sweeper's scripted interleavings.
/// Deterministic *per thread* for a given seed (each updater replays the
/// same operation sequence); the cross-thread interleaving is whatever
/// the scheduler produces, which is the point — run it under TSan.
struct ConcurrentTortureOptions {
  uint64_t seed = 1;
  uint32_t partitions = 2;
  uint32_t pages_per_partition = 64;
  uint32_t cache_pages = 32;
  /// Foreground Copy+flush steps per updater thread (one thread per
  /// partition, each driving its own partition).
  uint32_t updates_per_thread = 300;
  uint32_t backup_steps = 8;
  /// Consecutive full backups the sweep thread takes while updaters run.
  uint32_t backups = 3;
  /// Concurrent sweep workers per backup (0 = legacy one-thread-per-
  /// partition parallel_partitions mode). With a value >= 2 the sweeps
  /// run on the database's persistent SweepThreadPool, racing pool
  /// workers against the updaters — the TSan tier for the sharded
  /// parallel sweep.
  uint32_t sweep_threads = 0;
  /// Whether a fourth thread polls Database::GatherStats concurrently
  /// (exercises the stats paths foreground threads read).
  bool poll_stats = true;
  /// WAL append channels (DbOptions::log_channels). >1 turns on epoch
  /// group commit, so updater flushes race the overlapped three-phase
  /// install path against the sweep fences.
  uint32_t log_channels = 1;
};

struct ConcurrentTortureReport {
  uint64_t updates_applied = 0;
  uint64_t backups_completed = 0;
  uint64_t pages_copied = 0;    // across all backup sweeps
  uint64_t identity_writes = 0; // Iw/oF records forced by Done/Doubt flushes
  uint64_t stats_polls = 0;

  std::string ToString() const;
};

/// Runs updater threads (one per partition) against a backup thread
/// taking `backups` consecutive parallel-partition sweeps, with an
/// optional stats-poller thread. After the race: the database must match
/// the full-log oracle, every backup must be complete and clean, and the
/// last backup must support a full wipe + media recovery back to the
/// oracle state.
Result<ConcurrentTortureReport> RunConcurrentTorture(
    const ConcurrentTortureOptions& options);

}  // namespace llb

#endif  // LLB_TORTURE_CONCURRENT_TORTURE_H_
