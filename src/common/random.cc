#include "common/random.h"

#include <cmath>

namespace llb {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Power-law approximation: floor(n * u^(1/(1-theta))) concentrates mass
  // on low ranks; adequate for skewed-workload benchmarking.
  double u = NextDouble();
  double v = std::pow(u, 1.0 / (1.0 - theta));
  uint64_t r = static_cast<uint64_t>(v * static_cast<double>(n));
  return r >= n ? n - 1 : r;
}

}  // namespace llb
