#ifndef LLB_COMMON_RANDOM_H_
#define LLB_COMMON_RANDOM_H_

#include <cstdint>

namespace llb {

/// Deterministic pseudo-random generator (xorshift128+ seeded via
/// splitmix64). Used by workload generators and property tests so that
/// every experiment is reproducible from its seed.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Zipf-distributed value in [0, n) with exponent theta in (0, 1).
  /// Approximated by the standard rejection-free power method.
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace llb

#endif  // LLB_COMMON_RANDOM_H_
