#include "common/status.h"

namespace llb {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kIoError:
      name = "IoError";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kFailedPrecondition:
      name = "FailedPrecondition";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
    case Code::kAlreadyExists:
      name = "AlreadyExists";
      break;
    case Code::kUnrecoverable:
      name = "Unrecoverable";
      break;
  }
  std::string result(name);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace llb
