#ifndef LLB_COMMON_RESULT_H_
#define LLB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace llb {

/// A value-or-error type: holds either a T or a non-OK Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit from value (by design, mirroring StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define LLB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define LLB_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define LLB_ASSIGN_OR_RETURN_NAME(a, b) LLB_ASSIGN_OR_RETURN_CONCAT(a, b)
#define LLB_ASSIGN_OR_RETURN(lhs, expr) \
  LLB_ASSIGN_OR_RETURN_IMPL(            \
      LLB_ASSIGN_OR_RETURN_NAME(_llb_result_, __COUNTER__), lhs, expr)

}  // namespace llb

#endif  // LLB_COMMON_RESULT_H_
