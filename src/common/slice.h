#ifndef LLB_COMMON_SLICE_H_
#define LLB_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace llb {

/// A non-owning view of a byte range, in the style of rocksdb::Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const std::vector<char>& v)                                  // NOLINT
      : data_(v.data()), size_(v.size()) {}
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace llb

#endif  // LLB_COMMON_SLICE_H_
