#ifndef LLB_COMMON_CRC32C_H_
#define LLB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace llb::crc32c {

/// Computes the CRC-32C (Castagnoli) checksum of `data[0, n)` extending
/// `init_crc` (pass 0 for a fresh checksum). Dispatches once, at first
/// use, to the fastest implementation the CPU offers: the SSE4.2 crc32
/// instruction on x86-64, the ARMv8 CRC32 extension on aarch64, and the
/// table-driven software loop everywhere else. All three produce
/// identical checksums (tests/crc32c_test.cc pins the agreement), so
/// pages sealed on one machine verify on any other.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Which implementation Extend dispatches to: "sse4.2", "armv8-crc", or
/// "software". Surfaced by `dbtool env-caps`.
const char* Backend();

/// Masks a CRC so that a CRC of data that itself contains CRCs does not
/// degenerate (same trick as LevelDB/RocksDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

namespace internal {
/// The portable table-driven implementation, exposed so tests can check
/// hardware/software agreement on the same inputs.
uint32_t ExtendSoftware(uint32_t init_crc, const char* data, size_t n);
}  // namespace internal

}  // namespace llb::crc32c

#endif  // LLB_COMMON_CRC32C_H_
