#ifndef LLB_COMMON_CRC32C_H_
#define LLB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace llb::crc32c {

/// Computes the CRC-32C (Castagnoli) checksum of `data[0, n)` extending
/// `init_crc` (pass 0 for a fresh checksum).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC so that a CRC of data that itself contains CRCs does not
/// degenerate (same trick as LevelDB/RocksDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace llb::crc32c

#endif  // LLB_COMMON_CRC32C_H_
