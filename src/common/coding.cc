#include "common/coding.h"

#include <cstring>

namespace llb {

void EncodeFixed32(char* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<char>(value >> (8 * i));
}

void EncodeFixed64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<char>(value >> (8 * i));
}

uint32_t DecodeFixed32(const char* src) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= uint32_t{static_cast<unsigned char>(src[i])} << (8 * i);
  }
  return value;
}

uint64_t DecodeFixed64(const char* src) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= uint64_t{static_cast<unsigned char>(src[i])} << (8 * i);
  }
  return value;
}

void PutFixed16(std::string* dst, uint16_t value) {
  dst->push_back(static_cast<char>(value & 0xFF));
  dst->push_back(static_cast<char>(value >> 8));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutPageId(std::string* dst, const PageId& id) {
  PutVarint32(dst, id.partition);
  PutVarint32(dst, id.page);
}

bool SliceReader::ReadFixed16(uint16_t* value) {
  if (input_.size() < 2) return false;
  *value = static_cast<uint16_t>(
      static_cast<unsigned char>(input_[0]) |
      (uint16_t{static_cast<unsigned char>(input_[1])} << 8));
  input_.RemovePrefix(2);
  return true;
}

bool SliceReader::ReadFixed32(uint32_t* value) {
  if (input_.size() < 4) return false;
  *value = DecodeFixed32(input_.data());
  input_.RemovePrefix(4);
  return true;
}

bool SliceReader::ReadFixed64(uint64_t* value) {
  if (input_.size() < 8) return false;
  *value = DecodeFixed64(input_.data());
  input_.RemovePrefix(8);
  return true;
}

bool SliceReader::ReadVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input_.empty()) return false;
    unsigned char byte = static_cast<unsigned char>(input_[0]);
    input_.RemovePrefix(1);
    result |= uint64_t{byte & 0x7Fu} << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

bool SliceReader::ReadVarint32(uint32_t* value) {
  uint64_t wide;
  if (!ReadVarint64(&wide) || wide > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(wide);
  return true;
}

bool SliceReader::ReadLengthPrefixed(Slice* value) {
  uint64_t len;
  if (!ReadVarint64(&len) || len > input_.size()) return false;
  *value = Slice(input_.data(), len);
  input_.RemovePrefix(len);
  return true;
}

bool SliceReader::ReadPageId(PageId* id) {
  return ReadVarint32(&id->partition) && ReadVarint32(&id->page);
}

bool SliceReader::ReadBytes(size_t n, Slice* value) {
  if (input_.size() < n) return false;
  *value = Slice(input_.data(), n);
  input_.RemovePrefix(n);
  return true;
}

}  // namespace llb
