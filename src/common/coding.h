#ifndef LLB_COMMON_CODING_H_
#define LLB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace llb {

/// Little-endian fixed-width and LEB128 varint encoders/decoders used by
/// the log-record and page formats. Decoders are defensive: they never read
/// past the input and report corruption instead (replay functions must be
/// total; see DESIGN.md).

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Varint length prefix followed by the bytes.
void PutLengthPrefixed(std::string* dst, Slice value);
void PutPageId(std::string* dst, const PageId& id);

void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint32_t DecodeFixed32(const char* src);
uint64_t DecodeFixed64(const char* src);

/// Reads values from a Slice, advancing it. All methods return false on
/// malformed/truncated input (and leave outputs unspecified).
class SliceReader {
 public:
  explicit SliceReader(Slice input) : input_(input) {}

  bool ReadFixed16(uint16_t* value);
  bool ReadFixed32(uint32_t* value);
  bool ReadFixed64(uint64_t* value);
  bool ReadVarint32(uint32_t* value);
  bool ReadVarint64(uint64_t* value);
  bool ReadLengthPrefixed(Slice* value);
  bool ReadPageId(PageId* id);
  /// Reads exactly n raw bytes.
  bool ReadBytes(size_t n, Slice* value);

  size_t remaining() const { return input_.size(); }
  Slice rest() const { return input_; }

 private:
  Slice input_;
};

}  // namespace llb

#endif  // LLB_COMMON_CODING_H_
