#include "common/crc32c.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define LLB_CRC32C_X86 1
#include <nmmintrin.h>
#else
#define LLB_CRC32C_X86 0
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define LLB_CRC32C_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#else
#define LLB_CRC32C_ARM 0
#endif

namespace llb::crc32c {

namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected
// 0x82F63B78), one byte at a time. Table built on first use.
struct Table {
  uint32_t entries[256];
  Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table* table = new Table();
  return *table;
}

#if LLB_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t ExtendSse42(uint32_t init_crc,
                                                       const char* data,
                                                       size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  // 8 bytes per crc32q; the instruction chews unaligned loads fine, but
  // go through memcpy to stay strict-aliasing clean.
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, static_cast<unsigned char>(*data));
    ++data;
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#endif  // LLB_CRC32C_X86

#if LLB_CRC32C_ARM

uint32_t ExtendArm(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, data, 8);
    crc = __crc32cd(crc, chunk);
    data += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, static_cast<unsigned char>(*data));
    ++data;
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

bool HaveArmCrc() { return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0; }

#endif  // LLB_CRC32C_ARM

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

struct Dispatch {
  ExtendFn fn;
  const char* name;
};

Dispatch PickBackend() {
#if LLB_CRC32C_X86
  if (HaveSse42()) return {&ExtendSse42, "sse4.2"};
#endif
#if LLB_CRC32C_ARM
  if (HaveArmCrc()) return {&ExtendArm, "armv8-crc"};
#endif
  return {&internal::ExtendSoftware, "software"};
}

const Dispatch& GetDispatch() {
  static const Dispatch dispatch = PickBackend();
  return dispatch;
}

}  // namespace

namespace internal {

uint32_t ExtendSoftware(uint32_t init_crc, const char* data, size_t n) {
  const Table& table = GetTable();
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace internal

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  return GetDispatch().fn(init_crc, data, n);
}

const char* Backend() { return GetDispatch().name; }

}  // namespace llb::crc32c
