#ifndef LLB_COMMON_TYPES_H_
#define LLB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace llb {

/// Log sequence number. LSNs are assigned densely by the log manager in
/// append order; `kInvalidLsn` (0) means "no LSN" / "never written".
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// Group-commit epoch. Epoch IDs are assigned centrally by the log
/// manager; a group-commit step seals every log channel's records for
/// epochs <= E, writes them durably, and publishes `durable_epoch = E`
/// as the commit point (limestone-style epoch watermark). `kInvalidEpoch`
/// (0) means "no epoch" / "nothing published yet".
using Epoch = uint64_t;
inline constexpr Epoch kInvalidEpoch = 0;

/// Identifies a database partition. Backup progress is tracked per
/// partition (paper section 3.4), and partitions may be backed up in
/// parallel.
using PartitionId = uint32_t;

/// Identifies a recoverable object. In this engine the recoverable objects
/// are pages, as in conventional database systems (paper section 1.1).
struct PageId {
  PartitionId partition = 0;
  uint32_t page = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;

  std::string ToString() const {
    return std::to_string(partition) + ":" + std::to_string(page);
  }
};

inline constexpr PageId kInvalidPageId{UINT32_MAX, UINT32_MAX};

/// The backup-order position `#X` of an object (paper section 3.4): a value
/// such that `#X < #Y` guarantees X is copied to the backup before Y.
/// We derive it from the physical location of the page in its partition,
/// as the paper suggests ("derived from the physical locations of data on
/// disk"). Positions in *different* partitions are not comparable; backup
/// progress is tracked per partition.
using BackupPos = uint64_t;

/// A page's position in its partition's backup order.
inline BackupPos BackupPositionOf(const PageId& id) { return id.page; }

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()((uint64_t{id.partition} << 32) | id.page);
  }
};

}  // namespace llb

#endif  // LLB_COMMON_TYPES_H_
