#ifndef LLB_COMMON_STATUS_H_
#define LLB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace llb {

/// Error-handling result type in the style of Arrow/RocksDB/absl.
///
/// The library does not use exceptions (per the project style rules);
/// every fallible operation returns a Status or a Result<T>.
class Status {
 public:
  enum class Code : int {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kIoError = 3,
    kCorruption = 4,
    kNotSupported = 5,
    kFailedPrecondition = 6,
    kInternal = 7,
    kAlreadyExists = 8,
    kUnrecoverable = 9,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Unrecoverable(std::string msg) {
    return Status(Code::kUnrecoverable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnrecoverable() const { return code_ == Code::kUnrecoverable; }

  /// Human-readable rendering, e.g. "Corruption: bad page checksum".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define LLB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::llb::Status _llb_status = (expr);          \
    if (!_llb_status.ok()) return _llb_status;   \
  } while (0)

}  // namespace llb

#endif  // LLB_COMMON_STATUS_H_
