#include "cache/cache_manager.h"

#include <algorithm>

#include "common/coding.h"
#include "ops/operation.h"

namespace llb {

CacheManager::CacheManager(PageStore* stable, LogManager* log,
                           const OpRegistry* registry,
                           std::unique_ptr<WriteGraph> graph,
                           BackupCoordinator* coordinator,
                           IncrementalTracker* tracker, CacheOptions options)
    : stable_(stable),
      log_(log),
      registry_(registry),
      graph_(std::move(graph)),
      coordinator_(coordinator),
      tracker_(tracker),
      options_(options) {}

void CacheManager::Touch(const PageId& id, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
}

void CacheManager::SetPageFaultHandler(
    std::function<Status(const PageId&)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  page_fault_handler_ = std::move(handler);
}

Status CacheManager::GetFrame(std::unique_lock<std::mutex>& lk,
                              const PageId& id, Frame** frame) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    Touch(id, it->second);
    *frame = &it->second;
    return Status::OK();
  }
  ++stats_.misses;
  // Restoring mode: restore the page on demand before reading it from S.
  // The handler persists its restored-bitmap before returning, so the
  // value read below is durably the media-recovery state.
  if (page_fault_handler_) {
    LLB_RETURN_IF_ERROR(page_fault_handler_(id));
  }
  LLB_RETURN_IF_ERROR(EnsureRoom(lk));
  Frame f;
  LLB_RETURN_IF_ERROR(stable_->ReadPage(id, &f.image));
  lru_.push_front(id);
  f.lru_pos = lru_.begin();
  auto [pos, inserted] = frames_.emplace(id, std::move(f));
  *frame = &pos->second;
  return Status::OK();
}

Status CacheManager::EnsureRoom(std::unique_lock<std::mutex>& lk) {
  if (!Overlapped()) {
    while (frames_.size() >= options_.capacity_pages && !lru_.empty()) {
      // Prefer the least-recently-used clean page.
      PageId victim = kInvalidPageId;
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (!frames_[*it].dirty) {
          victim = *it;
          break;
        }
      }
      if (victim == kInvalidPageId) {
        // All dirty: install the coldest page's node, then evict it.
        victim = lru_.back();
        LLB_RETURN_IF_ERROR(FlushPageLocked(lk, victim));
      }
      auto it = frames_.find(victim);
      lru_.erase(it->second.lru_pos);
      frames_.erase(it);
      ++stats_.evictions;
    }
    return Status::OK();
  }

  // Overlapped mode: flushing a dirty victim can release the mutex, so
  // every round re-derives its facts, pinned frames are skipped, and a
  // fully-pinned cache tolerates a transient overrun instead of
  // deadlocking.
  while (frames_.size() >= options_.capacity_pages && !lru_.empty()) {
    PageId victim = kInvalidPageId;
    bool victim_dirty = false;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      Frame& f = frames_[*it];
      if (f.pins > 0) continue;
      if (!f.dirty) {
        victim = *it;
        victim_dirty = false;
        break;
      }
      if (victim == kInvalidPageId) {
        victim = *it;  // coldest unpinned page as the dirty fallback
        victim_dirty = true;
      }
    }
    if (victim == kInvalidPageId) return Status::OK();  // everything pinned
    if (victim_dirty) {
      if (in_apply_) return Status::OK();  // never release mu_ mid-apply
      LLB_RETURN_IF_ERROR(FlushPageLocked(lk, victim));
      continue;  // the cache changed while unlocked: re-derive everything
    }
    auto it = frames_.find(victim);
    if (it != frames_.end() && !it->second.dirty && it->second.pins == 0) {
      lru_.erase(it->second.lru_pos);
      frames_.erase(it);
      ++stats_.evictions;
    }
  }
  return Status::OK();
}

Status CacheManager::ReadPage(const PageId& id, PageImage* out) {
  std::unique_lock<std::mutex> lock(mu_);
  Frame* frame = nullptr;
  LLB_RETURN_IF_ERROR(GetFrame(lock, id, &frame));
  *out = frame->image;
  return Status::OK();
}

/// Context for normal execution: reads come from the cache; writes are
/// staged and committed only if the whole operation succeeds.
class CacheManager::CacheOpContext : public OpContext {
 public:
  CacheOpContext(CacheManager* cm, std::unique_lock<std::mutex>* lk)
      : cm_(cm), lk_(lk) {}

  Status Read(const PageId& id, PageImage* out) override {
    auto sit = staged_.find(id);
    if (sit != staged_.end()) {
      *out = sit->second;
      return Status::OK();
    }
    Frame* frame = nullptr;
    LLB_RETURN_IF_ERROR(cm_->GetFrame(*lk_, id, &frame));
    *out = frame->image;
    return Status::OK();
  }

  Status Write(const PageId& id, const PageImage& image) override {
    staged_[id] = image;
    return Status::OK();
  }

  std::unordered_map<PageId, PageImage, PageIdHash>& staged() {
    return staged_;
  }

 private:
  CacheManager* const cm_;
  std::unique_lock<std::mutex>* const lk_;
  std::unordered_map<PageId, PageImage, PageIdHash> staged_;
};

Status CacheManager::ExecuteOp(LogRecord* rec) {
  std::unique_lock<std::mutex> lock(mu_);

  // Enforce the single-partition rule (paper 3.4 tracks backup progress
  // per partition; we preclude cross-partition operations so that flush
  // ordering never spans partitions — see DESIGN.md).
  PartitionId partition = 0;
  bool first = true;
  for (const std::vector<PageId>* set : {&rec->readset, &rec->writeset}) {
    for (const PageId& id : *set) {
      if (first) {
        partition = id.partition;
        first = false;
      } else if (id.partition != partition) {
        return Status::InvalidArgument(
            "operation spans partitions: " + id.ToString());
      }
    }
  }
  if (rec->writeset.empty()) {
    return Status::InvalidArgument("operation writes nothing");
  }

  const bool overlapped = Overlapped();
  std::vector<PageId> pinned;
  auto unpin = [&] {
    for (const PageId& id : pinned) {
      auto it = frames_.find(id);
      if (it != frames_.end() && it->second.pins > 0) --it->second.pins;
    }
    pinned.clear();
  };

  if (overlapped) {
    // Pre-fault and pin the declared pages so apply never misses with
    // the mutex released (faulting can evict, and overlapped eviction
    // unlocks mu_ — which would break the op's linearizability). Then
    // wait until no writeset page is part of an in-flight install: its
    // image is the frozen snapshot being written to S.
    for (;;) {
      for (const std::vector<PageId>* set : {&rec->readset, &rec->writeset}) {
        for (const PageId& id : *set) {
          Frame* frame = nullptr;
          Status s = GetFrame(lock, id, &frame);
          if (!s.ok()) {
            unpin();
            return s;
          }
          ++frame->pins;
          pinned.push_back(id);
        }
      }
      bool conflict = false;
      for (const PageId& id : rec->writeset) {
        if (installing_pages_.count(id) != 0) {
          conflict = true;
          break;
        }
      }
      if (!conflict) break;
      unpin();
      ++stats_.install_waits;
      install_cv_.wait(lock);
    }
  }

  CacheOpContext ctx(this, &lock);
  in_apply_ = overlapped;
  Status applied = registry_->Apply(ctx, *rec);
  in_apply_ = false;
  if (!applied.ok()) {
    unpin();
    return applied;
  }

  // Every writeset member must have been staged; no extras allowed.
  if (ctx.staged().size() != rec->writeset.size()) {
    unpin();
    return Status::Internal("apply wrote a different page set than declared");
  }
  for (const PageId& id : rec->writeset) {
    if (!ctx.staged().count(id)) {
      unpin();
      return Status::Internal("apply missed declared target " + id.ToString());
    }
  }

  // Restoring mode: fault in every writeset page BEFORE the record is
  // appended. Read pages faulted during Apply; blind-write targets did
  // not, and a concurrent Force could seal the record durably before the
  // page's restore/bit became durable — after a crash the fault path
  // would then overwrite the redone value with the backup state.
  // (Overlapped mode pre-faulted the whole writeset above.)
  if (page_fault_handler_ && !overlapped) {
    for (const PageId& id : rec->writeset) {
      Frame* frame = nullptr;
      LLB_RETURN_IF_ERROR(GetFrame(lock, id, &frame));
    }
  }

  Lsn lsn = log_->Append(rec);

  for (auto& [id, image] : ctx.staged()) {
    Frame* frame = nullptr;
    Status s = GetFrame(lock, id, &frame);
    if (!s.ok()) {
      unpin();
      return s;
    }
    frame->image = image;
    frame->image.set_lsn(lsn);
    frame->dirty = true;
  }
  graph_->OnOperation(*rec);
  ++stats_.ops_applied;
  unpin();
  return Status::OK();
}

void CacheManager::DecideBackupLogging(const InstallUnit& unit,
                                       const BackupProgress& progress,
                                       std::vector<PageId>* to_log) {
  if (!progress.active() || options_.policy == BackupPolicy::kNaive) return;

  if (options_.policy == BackupPolicy::kGeneral) {
    // Paper 3.5: Done(X) or Doubt(X) => Iw/oF; Pend(X) => plain flush.
    // ("Of course, we can flush pending objects to S, and log only the
    // non-pending objects.")
    for (const PageId& x : unit.vars) {
      BackupRegion region = progress.Classify(BackupPositionOf(x));
      ++stats_.decisions;
      switch (region) {
        case BackupRegion::kDone:
          ++stats_.region_done;
          break;
        case BackupRegion::kDoubt:
          ++stats_.region_doubt;
          break;
        case BackupRegion::kPend:
          ++stats_.region_pend;
          break;
      }
      if (region != BackupRegion::kPend) {
        to_log->push_back(x);
        ++stats_.decisions_logged;
      }
    }
    return;
  }

  // Tree policy (paper 4.2, Figure 4). Tree nodes have a single var.
  for (const PageId& x : unit.vars) {
    BackupRegion rx = progress.Classify(BackupPositionOf(x));
    ++stats_.decisions;
    if (unit.has_successors) ++stats_.decisions_succ;
    switch (rx) {
      case BackupRegion::kDone:
        ++stats_.region_done;
        break;
      case BackupRegion::kDoubt:
        ++stats_.region_doubt;
        break;
      case BackupRegion::kPend:
        ++stats_.region_pend;
        break;
    }

    bool log_it = false;
    if (rx == BackupRegion::kPend) {
      ++stats_.tree_plain_pend_x;  // Pend(X): will reach B
    } else if (!unit.has_successors) {
      ++stats_.tree_plain_done_succ;  // S(X) empty: nothing to order against
    } else {
      BackupRegion rs = progress.Classify(unit.max_successor_pos);
      if (rs == BackupRegion::kDone) {
        ++stats_.tree_plain_done_succ;  // Done(S(X)): no successor reaches B
      } else if (rx == BackupRegion::kDone) {
        log_it = true;  // Done(X) & !Done(S(X))
        ++stats_.tree_iwof_done_x;
      } else if (rs == BackupRegion::kPend) {
        log_it = true;  // Doubt(X) & Pend(S(X))
        ++stats_.tree_iwof_pend_succ;
      } else if (unit.violation) {
        log_it = true;  // Doubt & Doubt, dagger fails
        ++stats_.tree_iwof_doubt_viol;
      } else {
        ++stats_.tree_plain_doubt_ok;  // Doubt & Doubt, dagger holds
      }
    }
    if (log_it) {
      to_log->push_back(x);
      ++stats_.decisions_logged;
      if (unit.has_successors) ++stats_.decisions_succ_logged;
    }
  }
}

Status CacheManager::InstallUnitLocked(std::unique_lock<std::mutex>& lk,
                                       const InstallUnit& unit) {
  if (unit.vars.empty()) {
    graph_->MarkInstalled(unit.node_id);
    return Status::OK();
  }
  PartitionId partition = unit.vars[0].partition;
  for (const PageId& x : unit.vars) {
    if (x.partition != partition) {
      return Status::Internal("install unit spans partitions");
    }
  }

  BackupProgress* progress =
      coordinator_ != nullptr ? coordinator_->Get(partition) : nullptr;

  // Hold the backup latch (share mode) across decide + log + flush so the
  // fences cannot move mid-install (paper 3.4, Synchronization).
  std::shared_lock<std::shared_mutex> latch;
  if (progress != nullptr) {
    latch = std::shared_lock<std::shared_mutex>(progress->latch());
  }

  std::vector<PageId> to_log;
  if (progress != nullptr) DecideBackupLogging(unit, *progress, &to_log);

  // Iw/oF: identity-write the chosen pages — their values go to the media
  // recovery log, installing their operations in B without relying on the
  // sweep (paper 3.2).
  for (const PageId& x : to_log) {
    Frame* frame = nullptr;
    LLB_RETURN_IF_ERROR(GetFrame(lk, x, &frame));
    LogRecord wip = MakeIdentityWrite(x, frame->image);
    Lsn lsn = log_->Append(&wip);
    graph_->OnIdentityWrite(x, lsn);
    frame->image.set_lsn(lsn);
    ++stats_.identity_writes;
  }

  // WAL: the operations being installed (and the identity writes) must be
  // durable before their effects reach the stable database.
  LLB_RETURN_IF_ERROR(log_->Force());

  // Atomically flush vars(n). (The paper flushes identity-written pages
  // too before dropping them: "we both log and flush X".)
  std::vector<PageStore::Entry> batch;
  batch.reserve(unit.vars.size());
  for (const PageId& x : unit.vars) {
    Frame* frame = nullptr;
    LLB_RETURN_IF_ERROR(GetFrame(lk, x, &frame));
    batch.push_back(PageStore::Entry{x, frame->image});
  }
  LLB_RETURN_IF_ERROR(stable_->WriteBatchAtomic(batch));

  for (const PageId& x : unit.vars) {
    auto it = frames_.find(x);
    if (it != frames_.end()) it->second.dirty = false;
    if (tracker_ != nullptr) tracker_->OnPageFlushed(x);
  }
  graph_->MarkInstalled(unit.node_id);
  ++stats_.node_installs;
  stats_.pages_flushed += unit.vars.size();
  return Status::OK();
}

Status CacheManager::InstallPlanOverlapped(
    std::unique_lock<std::mutex>& lk, const std::vector<InstallUnit>& plan) {
  PartitionId partition = 0;
  bool have_partition = false;
  for (const InstallUnit& unit : plan) {
    for (const PageId& x : unit.vars) {
      if (!have_partition) {
        partition = x.partition;
        have_partition = true;
      } else if (x.partition != partition) {
        return Status::Internal("install plan spans partitions");
      }
    }
  }

  BackupProgress* progress = (coordinator_ != nullptr && have_partition)
                                 ? coordinator_->Get(partition)
                                 : nullptr;

  // The backup latch (share mode) is held from the Iw/oF decision until
  // the images land on S — phases 1 and 2 — so the fences cannot move in
  // between and the Done/Doubt/Pend classification stays valid at write
  // time. It is released BEFORE phase 3 retakes the cache mutex: the
  // protocol obligation ends with the S write, and a latch holder that
  // waited on the mutex could deadlock three ways with a mutex holder
  // entering phase 1 behind the backup job's queued exclusive fence
  // update (writer-preferring rwlock).
  std::shared_lock<std::shared_mutex> latch;
  if (progress != nullptr) {
    latch = std::shared_lock<std::shared_mutex>(progress->latch());
  }

  struct PendingInstall {
    uint64_t node_id = 0;
    std::vector<PageStore::Entry> batch;
  };
  std::vector<PendingInstall> pending;
  pending.reserve(plan.size());
  Epoch wait_epoch = kInvalidEpoch;

  auto clear_marks = [&] {
    for (const PendingInstall& pi : pending) {
      for (const PageStore::Entry& entry : pi.batch) {
        installing_pages_.erase(entry.id);
      }
      installing_nodes_.erase(pi.node_id);
      graph_->EndInstall(pi.node_id);
    }
    install_cv_.notify_all();
  };

  // Phase 1 (cache mutex held): decide + append Iw records + snapshot the
  // images to write + mark every unit installing. A planned node's vars
  // are dirty and therefore resident, so lookups must hit.
  for (const InstallUnit& unit : plan) {
    std::vector<PageId> to_log;
    if (progress != nullptr) DecideBackupLogging(unit, *progress, &to_log);

    for (const PageId& x : to_log) {
      auto it = frames_.find(x);
      if (it == frames_.end()) {
        clear_marks();
        return Status::Internal("installing page not resident: " +
                                x.ToString());
      }
      ++stats_.hits;
      Touch(x, it->second);
      Frame* frame = &it->second;
      LogRecord wip = MakeIdentityWrite(x, frame->image);
      Epoch epoch = kInvalidEpoch;
      Lsn lsn = log_->Append(&wip, &epoch);
      graph_->OnIdentityWrite(x, lsn);
      frame->image.set_lsn(lsn);
      ++stats_.identity_writes;
      wait_epoch = std::max(wait_epoch, epoch);
    }

    PendingInstall pi;
    pi.node_id = unit.node_id;
    pi.batch.reserve(unit.vars.size());
    for (const PageId& x : unit.vars) {
      auto it = frames_.find(x);
      if (it == frames_.end()) {
        clear_marks();
        return Status::Internal("installing page not resident: " +
                                x.ToString());
      }
      ++stats_.hits;
      Touch(x, it->second);
      pi.batch.push_back(PageStore::Entry{x, it->second.image});
    }
    for (const PageId& x : unit.vars) installing_pages_.insert(x);
    installing_nodes_.insert(unit.node_id);
    // Freeze the node's identity in the graph for the unlocked phase 2:
    // a cycle collapse merging it would make phase 3's MarkInstalled
    // retire operations whose pages were never part of this snapshot.
    graph_->BeginInstall(unit.node_id);
    pending.push_back(std::move(pi));
  }
  ++stats_.overlapped_installs;

  // Phase 2 (cache mutex released, backup latch still shared): wait for
  // the epoch watermark to cover the installed operations and their Iw
  // records — "the epoch containing the Iw record has been published" is
  // the commit point — then write the frozen images to S. Concurrent
  // installers piggyback on one group commit's single sync.
  lk.unlock();
  if (wait_epoch == kInvalidEpoch) wait_epoch = log_->CurrentEpoch();
  Status s = log_->WaitEpochDurable(wait_epoch);
  if (s.ok()) {
    for (const PendingInstall& pi : pending) {
      if (pi.batch.empty()) continue;
      s = stable_->WriteBatchAtomic(pi.batch);
      if (!s.ok()) break;
    }
  }
  // The fence obligation ends once the images are on S; phase 3 is pure
  // in-memory bookkeeping. Drop the latch BEFORE re-taking the cache
  // mutex: waiting on mu_ while holding the latch shared would deadlock
  // with a mu_ holder entering phase 1 behind the backup job's queued
  // exclusive fence update (writer-preferring rwlock).
  if (latch.owns_lock()) latch.unlock();
  lk.lock();

  // Phase 3 (cache mutex re-held): mark pages clean and nodes installed,
  // wake writers and planners that waited on these units.
  if (!s.ok()) {
    clear_marks();
    return s;
  }
  for (const PendingInstall& pi : pending) {
    for (const PageStore::Entry& entry : pi.batch) {
      auto it = frames_.find(entry.id);
      if (it != frames_.end()) it->second.dirty = false;
      if (tracker_ != nullptr) tracker_->OnPageFlushed(entry.id);
      installing_pages_.erase(entry.id);
    }
    graph_->MarkInstalled(pi.node_id);
    installing_nodes_.erase(pi.node_id);
    graph_->EndInstall(pi.node_id);
    ++stats_.node_installs;
    stats_.pages_flushed += pi.batch.size();
  }
  install_cv_.notify_all();
  return Status::OK();
}

Status CacheManager::FlushPageLocked(std::unique_lock<std::mutex>& lk,
                                     const PageId& x) {
  if (!Overlapped()) {
    if (!graph_->IsTracked(x)) {
      auto it = frames_.find(x);
      if (it != frames_.end() && it->second.dirty) {
        return Status::Internal("dirty page not tracked by write graph: " +
                                x.ToString());
      }
      return Status::OK();
    }
    std::vector<InstallUnit> plan;
    LLB_RETURN_IF_ERROR(graph_->PlanInstall(x, &plan));
    for (const InstallUnit& unit : plan) {
      LLB_RETURN_IF_ERROR(InstallUnitLocked(lk, unit));
    }
    return Status::OK();
  }

  // Overlapped mode: a plan touching a node already mid-install waits for
  // it to finish (its pages come out clean), then re-plans — the graph
  // may have changed while waiting.
  for (;;) {
    if (!graph_->IsTracked(x)) {
      auto it = frames_.find(x);
      if (it != frames_.end() && it->second.dirty) {
        if (installing_pages_.count(x) != 0) {
          // Mid-install: phase 1 already logged the page's Iw (untracking
          // it) but phase 3 has not marked the frame clean yet. Wait for
          // the installer rather than treating the state as corruption.
          ++stats_.install_waits;
          install_cv_.wait(lk);
          continue;
        }
        return Status::Internal("dirty page not tracked by write graph: " +
                                x.ToString());
      }
      return Status::OK();
    }
    std::vector<InstallUnit> plan;
    LLB_RETURN_IF_ERROR(graph_->PlanInstall(x, &plan));
    bool busy = false;
    for (const InstallUnit& unit : plan) {
      if (installing_nodes_.count(unit.node_id) != 0) {
        busy = true;
        break;
      }
    }
    if (!busy) return InstallPlanOverlapped(lk, plan);
    ++stats_.install_waits;
    install_cv_.wait(lk);
  }
}

Status CacheManager::FlushPage(const PageId& x) {
  std::unique_lock<std::mutex> lock(mu_);
  return FlushPageLocked(lock, x);
}

Status CacheManager::FlushAll() {
  std::unique_lock<std::mutex> lock(mu_);
  // Install until no dirty page remains. Installing one page's node can
  // clean several pages, so re-scan each round.
  while (true) {
    PageId dirty = kInvalidPageId;
    for (const auto& [id, frame] : frames_) {
      if (frame.dirty) {
        dirty = id;
        break;
      }
    }
    if (dirty == kInvalidPageId) break;
    LLB_RETURN_IF_ERROR(FlushPageLocked(lock, dirty));
  }
  return log_->Force();
}

Status CacheManager::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  LogRecord rec;
  rec.op_code = kOpCheckpoint;
  PutFixed64(&rec.payload, graph_->RedoStartLsn(log_->next_lsn()));
  // Checkpoints have no page writes; give them an empty writeset by
  // bypassing ExecuteOp.
  log_->Append(&rec);
  return log_->Force();
}

Lsn CacheManager::RedoStartLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_->RedoStartLsn(log_->next_lsn());
}

Status CacheManager::DropCleanPages() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (!it->second.dirty && it->second.pins == 0) {
      lru_.erase(it->second.lru_pos);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

CacheStats CacheManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

WriteGraphStats CacheManager::GraphStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_->GetStats();
}

void CacheManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = CacheStats{};
}

size_t CacheManager::CachedPageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

bool CacheManager::IsDirty(const PageId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  return it != frames_.end() && it->second.dirty;
}

}  // namespace llb
