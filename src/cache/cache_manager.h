#ifndef LLB_CACHE_CACHE_MANAGER_H_
#define LLB_CACHE_CACHE_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "backup/backup_progress.h"
#include "backup/incremental_tracker.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "ops/op_registry.h"
#include "recovery/write_graph.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

/// How flushes coordinate with an active backup.
enum class BackupPolicy {
  /// No coordination — the conventional fuzzy dump. Correct only for
  /// page-oriented operations; with logical operations the backup can be
  /// unrecoverable (the paper's Figure 1 problem).
  kNaive,
  /// Paper section 3: Iw/oF (identity-write logging) for every flushed
  /// object that is not known to be Pending.
  kGeneral,
  /// Paper section 4: tree-operation case analysis over (#X, #S(X)),
  /// logging only in the shaded region of Figure 4.
  kTree,
};

struct CacheOptions {
  size_t capacity_pages = 1024;
  BackupPolicy policy = BackupPolicy::kGeneral;
};

/// Counters used by the test suite and by the benchmarks that regenerate
/// the paper's figures.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t ops_applied = 0;
  uint64_t node_installs = 0;
  uint64_t pages_flushed = 0;
  uint64_t identity_writes = 0;  // Iw/oF page loggings

  // Overlapped-install path (log channels > 1): installs that released
  // the cache mutex for their durability wait + stable write, and the
  // times an operation or flush had to wait for an in-flight install.
  uint64_t overlapped_installs = 0;
  uint64_t install_waits = 0;

  // Per-object flush decisions while a backup is active (Figure 5's
  // Prob{log} = decisions_logged / decisions).
  uint64_t decisions = 0;
  uint64_t decisions_logged = 0;
  // Restricted to objects with a nonempty successor set S(X) — matches
  // the section-5.2 model's "|S(X)| = 1" assumption (tree policy only).
  uint64_t decisions_succ = 0;
  uint64_t decisions_succ_logged = 0;

  // Region tallies of decided objects (Figure 3).
  uint64_t region_done = 0;
  uint64_t region_doubt = 0;
  uint64_t region_pend = 0;

  // Tree-policy case tallies (Figure 4's six regions).
  uint64_t tree_plain_pend_x = 0;        // Pend(X)
  uint64_t tree_plain_done_succ = 0;     // Done(S(X)) (or no successors)
  uint64_t tree_plain_doubt_ok = 0;      // Doubt&Doubt, dagger holds
  uint64_t tree_iwof_done_x = 0;         // Done(X) & !Done(S(X))
  uint64_t tree_iwof_pend_succ = 0;      // Doubt(X) & Pend(S(X))
  uint64_t tree_iwof_doubt_viol = 0;     // Doubt&Doubt, violation
};

/// The cache manager: a buffer pool whose flushing obeys the write graph,
/// extended with the paper's backup-aware flush path (section 3.5):
///
///   Done(X) / Doubt(X): install via Iw/oF — log an identity write of X
///     (putting its value on the media recovery log), then flush X to S.
///   Pend(X): just flush — the value will reach B when the sweep passes.
///
/// The whole per-node decision+log+flush sequence runs under the
/// partition's backup latch in share mode, so the fences cannot move
/// mid-flush.
///
/// Thread-safe; operations are serialized by an internal mutex. The
/// backup job runs concurrently, touching only the page stores and the
/// backup latches.
class CacheManager {
 public:
  CacheManager(PageStore* stable, LogManager* log, const OpRegistry* registry,
               std::unique_ptr<WriteGraph> graph,
               BackupCoordinator* coordinator, IncrementalTracker* tracker,
               CacheOptions options);

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  /// Reads the current image of a page (through the cache).
  Status ReadPage(const PageId& id, PageImage* out);

  /// Installs (nullptr clears) the page-fault handler a restoring-mode
  /// database wires to its InstantRestorer: invoked on every cache miss,
  /// before the page is read from S, so a not-yet-restored page is
  /// restored on demand first. While a handler is installed, ExecuteOp
  /// additionally pre-faults each operation's writeset before logging it
  /// — a blind write's record must not become durable (a concurrent
  /// Force can seal it) before the page it overwrites is durably
  /// restored and marked, or a crash would let the fault path clobber
  /// the redone value. Takes the cache mutex: installation/removal
  /// excludes in-flight faults (lock order cache -> restorer).
  void SetPageFaultHandler(std::function<Status(const PageId&)> handler);

  /// Executes an operation: applies it to the cached pages via its
  /// registered apply function, assigns its LSN, logs it, and registers
  /// it with the write graph. On return *rec carries the assigned LSN.
  Status ExecuteOp(LogRecord* rec);

  /// Installs the node owning `x` (flushing predecessors first), making
  /// x clean. No-op if x is not dirty.
  Status FlushPage(const PageId& x);

  /// Installs every uninstalled node (in dependency order) and forces the
  /// log.
  Status FlushAll();

  /// Writes a fuzzy checkpoint record (no flushing).
  Status Checkpoint();

  /// Current redo-scan start point.
  Lsn RedoStartLsn() const;

  /// Drops every clean page; fails if dirty pages remain (test hook).
  Status DropCleanPages();

  CacheStats stats() const;
  void ResetStats();

  /// Write-graph counters under the cache mutex: the graph mutates inside
  /// ExecuteOp/flush (which hold mu_), so an unlocked GetStats from a
  /// monitoring thread would race.
  WriteGraphStats GraphStats() const;

  /// Unlocked reference; callers must not race with operations/flushes.
  const WriteGraph& graph() const { return *graph_; }
  size_t CachedPageCount() const;
  bool IsDirty(const PageId& id) const;

 private:
  struct Frame {
    PageImage image;
    bool dirty = false;
    uint32_t pins = 0;  // pinned frames are never evicted
    std::list<PageId>::iterator lru_pos;
  };

  class CacheOpContext;

  /// True when the log has >1 channel: installs overlap their durability
  /// wait and stable write with other operations (the cache mutex is
  /// released for phase 2). With one channel every path is the classic
  /// fully-serialized one — byte-identical behavior.
  bool Overlapped() const { return log_->channels() > 1; }

  Status GetFrame(std::unique_lock<std::mutex>& lk, const PageId& id,
                  Frame** frame);
  Status EnsureRoom(std::unique_lock<std::mutex>& lk);
  Status InstallUnitLocked(std::unique_lock<std::mutex>& lk,
                           const InstallUnit& unit);
  Status FlushPageLocked(std::unique_lock<std::mutex>& lk, const PageId& x);
  /// Overlapped install of a whole plan: phase 1 under the cache mutex
  /// (decide + Iw appends + image snapshots + mark units installing),
  /// phase 2 with the mutex released but the partition backup latch still
  /// held in share mode (epoch-watermark wait + stable writes), phase 3
  /// re-acquired (mark clean/installed, wake waiters).
  Status InstallPlanOverlapped(std::unique_lock<std::mutex>& lk,
                               const std::vector<InstallUnit>& plan);
  void Touch(const PageId& id, Frame& frame);

  /// Decides which vars of the unit need Iw/oF logging given backup
  /// progress (called with the partition backup latch held in share
  /// mode). Appends the pages to identity-write to *to_log.
  void DecideBackupLogging(const InstallUnit& unit,
                           const BackupProgress& progress,
                           std::vector<PageId>* to_log);

  PageStore* const stable_;
  LogManager* const log_;
  const OpRegistry* const registry_;
  const std::unique_ptr<WriteGraph> graph_;
  BackupCoordinator* const coordinator_;  // may be null
  IncrementalTracker* const tracker_;     // may be null
  const CacheOptions options_;

  mutable std::mutex mu_;
  std::function<Status(const PageId&)> page_fault_handler_;
  std::unordered_map<PageId, Frame, PageIdHash> frames_;
  std::list<PageId> lru_;  // front = most recent
  CacheStats stats_;

  // Overlapped-install bookkeeping (log channels > 1). While a plan is
  // in phase 2 its nodes/pages are marked here: writes to a marked page
  // and installs of a marked node wait on install_cv_ (reads stay
  // allowed — the installing image is frozen). in_apply_ is set while an
  // operation's apply function runs so a nested cache miss never
  // releases the mutex mid-apply (eviction falls back to clean pages or
  // a transient capacity overrun).
  std::unordered_set<uint64_t> installing_nodes_;
  std::unordered_set<PageId, PageIdHash> installing_pages_;
  std::condition_variable install_cv_;
  bool in_apply_ = false;
};

}  // namespace llb

#endif  // LLB_CACHE_CACHE_MANAGER_H_
