#ifndef LLB_FILESTORE_FILE_OPS_H_
#define LLB_FILESTORE_FILE_OPS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ops/op_registry.h"
#include "wal/log_record.h"

namespace llb {

/// Registers the file-store operation apply functions.
void RegisterFileOps(OpRegistry* registry);

/// File pages hold sorted/unsorted int64 records:
///   payload[0..4)  record count (u32)
///   payload[4..)   records (i64 each)
namespace file_page {
inline constexpr size_t kRecordsPerPage = 500;
uint32_t Count(const PageImage& page);
int64_t ValueAt(const PageImage& page, size_t i);
void SetValues(PageImage* page, const int64_t* values, size_t n);
}  // namespace file_page

/// Copy(X, Y): general logical operation reading every page of X and
/// writing every page of Y — "only source and target file identifiers are
/// logged" (paper 1.1).
LogRecord MakeFileCopy(const std::vector<PageId>& src,
                       const std::vector<PageId>& dst);

/// Sort(X, Y): reads X's records, writes them sorted into Y. "This same
/// operation form describes a sort" (paper 1.1).
LogRecord MakeFileSort(const std::vector<PageId>& src,
                       const std::vector<PageId>& dst);

/// Transform(X, seed): physiological multi-page operation rewriting X's
/// records in place (deterministic mix with seed). Exercises write-graph
/// nodes with |vars| > 1 and atomic multi-page flushes.
LogRecord MakeFileTransform(const std::vector<PageId>& pages, uint64_t seed);

}  // namespace llb

#endif  // LLB_FILESTORE_FILE_OPS_H_
