#include "filestore/filestore.h"

#include <algorithm>

#include "ops/operation.h"

namespace llb {

FileStore::FileStore(Database* db, PartitionId partition, uint32_t base_page,
                     uint32_t pages_per_file, uint32_t num_files)
    : db_(db),
      partition_(partition),
      base_page_(base_page),
      pages_per_file_(pages_per_file),
      num_files_(num_files) {}

std::vector<PageId> FileStore::PagesOf(uint32_t file_id) const {
  std::vector<PageId> pages;
  pages.reserve(pages_per_file_);
  uint32_t start = base_page_ + file_id * pages_per_file_;
  for (uint32_t i = 0; i < pages_per_file_; ++i) {
    pages.push_back(PageId{partition_, start + i});
  }
  return pages;
}

Status FileStore::WriteValues(uint32_t file_id,
                              const std::vector<int64_t>& values) {
  if (file_id >= num_files_) return Status::InvalidArgument("bad file id");
  if (values.size() > capacity_per_file()) {
    return Status::InvalidArgument("file too large");
  }
  std::vector<PageId> pages = PagesOf(file_id);
  size_t offset = 0;
  for (const PageId& id : pages) {
    size_t n = std::min(file_page::kRecordsPerPage, values.size() - offset);
    PageImage image;
    file_page::SetValues(&image, values.data() + offset, n);
    offset += n;
    LogRecord rec = MakePhysicalWrite(id, image);
    LLB_RETURN_IF_ERROR(db_->Execute(&rec));
  }
  return Status::OK();
}

Result<std::vector<int64_t>> FileStore::ReadValues(uint32_t file_id) {
  if (file_id >= num_files_) return Status::InvalidArgument("bad file id");
  std::vector<int64_t> values;
  for (const PageId& id : PagesOf(file_id)) {
    PageImage image;
    LLB_RETURN_IF_ERROR(db_->ReadPage(id, &image));
    uint32_t n = file_page::Count(image);
    for (uint32_t i = 0; i < n; ++i) {
      values.push_back(file_page::ValueAt(image, i));
    }
  }
  return values;
}

Status FileStore::Copy(uint32_t src, uint32_t dst) {
  if (src >= num_files_ || dst >= num_files_ || src == dst) {
    return Status::InvalidArgument("bad copy operands");
  }
  LogRecord rec = MakeFileCopy(PagesOf(src), PagesOf(dst));
  return db_->Execute(&rec);
}

Status FileStore::SortInto(uint32_t src, uint32_t dst) {
  if (src >= num_files_ || dst >= num_files_ || src == dst) {
    return Status::InvalidArgument("bad sort operands");
  }
  LogRecord rec = MakeFileSort(PagesOf(src), PagesOf(dst));
  return db_->Execute(&rec);
}

Status FileStore::Transform(uint32_t file_id, uint64_t seed) {
  if (file_id >= num_files_) return Status::InvalidArgument("bad file id");
  LogRecord rec = MakeFileTransform(PagesOf(file_id), seed);
  return db_->Execute(&rec);
}

}  // namespace llb
