#ifndef LLB_FILESTORE_FILESTORE_H_
#define LLB_FILESTORE_FILESTORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "filestore/file_ops.h"

namespace llb {

/// A recoverable store of fixed-size "files" (arrays of int64 records
/// spanning several pages) — the paper's file-system recovery example
/// domain (section 1.1). Copy and Sort are *general logical operations*:
/// they read multiple pages and write multiple pages, logging only
/// operand identifiers. Use with WriteGraphKind::kGeneral.
class FileStore {
 public:
  /// Files occupy pages [base_page + i*pages_per_file, ...) of the
  /// partition, for i in [0, num_files).
  FileStore(Database* db, PartitionId partition, uint32_t base_page,
            uint32_t pages_per_file, uint32_t num_files);

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  /// Replaces the file's contents (physical page writes).
  Status WriteValues(uint32_t file_id, const std::vector<int64_t>& values);

  Result<std::vector<int64_t>> ReadValues(uint32_t file_id);

  /// Logical copy of file src into file dst.
  Status Copy(uint32_t src, uint32_t dst);

  /// Logical sort of file src into file dst.
  Status SortInto(uint32_t src, uint32_t dst);

  /// In-place deterministic transform of a file (physiological,
  /// multi-page write set).
  Status Transform(uint32_t file_id, uint64_t seed);

  std::vector<PageId> PagesOf(uint32_t file_id) const;
  uint32_t pages_per_file() const { return pages_per_file_; }
  uint32_t num_files() const { return num_files_; }
  size_t capacity_per_file() const {
    return size_t{pages_per_file_} * file_page::kRecordsPerPage;
  }

 private:
  Database* const db_;
  const PartitionId partition_;
  const uint32_t base_page_;
  const uint32_t pages_per_file_;
  const uint32_t num_files_;
};

}  // namespace llb

#endif  // LLB_FILESTORE_FILESTORE_H_
