#include "filestore/file_ops.h"

#include <algorithm>
#include <vector>

#include "common/coding.h"

namespace llb {

namespace file_page {

uint32_t Count(const PageImage& page) {
  uint32_t n = DecodeFixed32(page.payload().data());
  return std::min<uint32_t>(n, kRecordsPerPage);  // defensive clamp
}

int64_t ValueAt(const PageImage& page, size_t i) {
  return static_cast<int64_t>(DecodeFixed64(page.payload().data() + 4 + 8 * i));
}

void SetValues(PageImage* page, const int64_t* values, size_t n) {
  n = std::min(n, kRecordsPerPage);
  char* p = page->mutable_payload();
  EncodeFixed32(p, static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    EncodeFixed64(p + 4 + 8 * i, static_cast<uint64_t>(values[i]));
  }
  page->set_type(PageType::kFile);
}

}  // namespace file_page

namespace {

uint64_t Mix(uint64_t value, uint64_t seed) {
  uint64_t z = value + seed + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<int64_t> GatherValues(OpContext& ctx,
                                  const std::vector<PageId>& pages,
                                  Status* status) {
  std::vector<int64_t> values;
  for (const PageId& id : pages) {
    PageImage page;
    *status = ctx.Read(id, &page);
    if (!status->ok()) return values;
    uint32_t n = file_page::Count(page);
    for (uint32_t i = 0; i < n; ++i) {
      values.push_back(file_page::ValueAt(page, i));
    }
  }
  return values;
}

Status ScatterValues(OpContext& ctx, const std::vector<PageId>& pages,
                     const std::vector<int64_t>& values) {
  size_t offset = 0;
  for (const PageId& id : pages) {
    size_t n = std::min(file_page::kRecordsPerPage, values.size() - offset);
    PageImage page;
    file_page::SetValues(&page, values.data() + offset, n);
    offset += n;
    LLB_RETURN_IF_ERROR(ctx.Write(id, page));
  }
  return Status::OK();
}

Status ApplyCopy(OpContext& ctx, const LogRecord& rec) {
  // Page-wise copy: readset[i] -> writeset[i]. Tolerates a size mismatch
  // (defensive) by copying the overlapping prefix and zero-filling.
  for (size_t i = 0; i < rec.writeset.size(); ++i) {
    PageImage out;
    if (i < rec.readset.size()) {
      LLB_RETURN_IF_ERROR(ctx.Read(rec.readset[i], &out));
      out.set_lsn(0);  // engine stamps the record LSN on commit
      out.set_type(PageType::kFile);
    }
    LLB_RETURN_IF_ERROR(ctx.Write(rec.writeset[i], out));
  }
  return Status::OK();
}

Status ApplySort(OpContext& ctx, const LogRecord& rec) {
  Status status = Status::OK();
  std::vector<int64_t> values = GatherValues(ctx, rec.readset, &status);
  LLB_RETURN_IF_ERROR(status);
  std::sort(values.begin(), values.end());
  values.resize(
      std::min(values.size(),
               rec.writeset.size() * file_page::kRecordsPerPage));
  return ScatterValues(ctx, rec.writeset, values);
}

Status ApplyTransform(OpContext& ctx, const LogRecord& rec) {
  SliceReader reader{Slice(rec.payload)};
  uint64_t seed = 0;
  if (!reader.ReadFixed64(&seed)) seed = 0;
  for (const PageId& id : rec.writeset) {
    PageImage page;
    LLB_RETURN_IF_ERROR(ctx.Read(id, &page));
    uint32_t n = file_page::Count(page);
    std::vector<int64_t> values(n);
    for (uint32_t i = 0; i < n; ++i) {
      values[i] =
          static_cast<int64_t>(Mix(
              static_cast<uint64_t>(file_page::ValueAt(page, i)), seed));
    }
    file_page::SetValues(&page, values.data(), values.size());
    LLB_RETURN_IF_ERROR(ctx.Write(id, page));
  }
  return Status::OK();
}

}  // namespace

void RegisterFileOps(OpRegistry* registry) {
  registry->Register(kOpFileCopy, ApplyCopy);
  registry->Register(kOpFileSort, ApplySort);
  registry->Register(kOpFileTransform, ApplyTransform);
}

LogRecord MakeFileCopy(const std::vector<PageId>& src,
                       const std::vector<PageId>& dst) {
  LogRecord rec;
  rec.op_code = kOpFileCopy;
  rec.readset = src;
  rec.writeset = dst;
  return rec;
}

LogRecord MakeFileSort(const std::vector<PageId>& src,
                       const std::vector<PageId>& dst) {
  LogRecord rec;
  rec.op_code = kOpFileSort;
  rec.readset = src;
  rec.writeset = dst;
  return rec;
}

LogRecord MakeFileTransform(const std::vector<PageId>& pages, uint64_t seed) {
  LogRecord rec;
  rec.op_code = kOpFileTransform;
  rec.readset = pages;
  rec.writeset = pages;
  PutFixed64(&rec.payload, seed);
  return rec;
}

}  // namespace llb
