#ifndef LLB_BTREE_BTREE_H_
#define LLB_BTREE_BTREE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "db/database.h"

namespace llb {

/// How node splits are logged — the paper's section 4.1 comparison:
///   kLogical      — MovRec + RmvRec: no record data logged (tree ops).
///   kPageOriented — W_P(new, log(image)) + RmvRec: the new page's full
///                   contents go to the log.
enum class SplitLogging {
  kLogical,
  kPageOriented,
};

struct BtreeStats {
  uint64_t splits = 0;
  uint64_t root_splits = 0;
};

struct BtreeCheckReport {
  uint64_t records = 0;
  uint64_t leaves = 0;
  uint64_t inners = 0;
  uint32_t height = 0;
};

/// A recoverable B+-tree over one partition of a Database. Keys are
/// int64; values are byte strings up to btree_node::kMaxValueSize.
///
/// All mutations are logged operations executed through the database, so
/// the tree is crash- and media-recoverable. With SplitLogging::kLogical,
/// all operations are in the paper's tree-operation class; pair it with
/// WriteGraphKind::kTree and BackupPolicy::kTree.
class BTree {
 public:
  BTree(Database* db, PartitionId partition, uint32_t meta_page,
        SplitLogging split_logging);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Initializes a fresh tree (meta page + empty root leaf).
  Status Create();

  /// Inserts (or replaces) a record.
  Status Insert(int64_t key, Slice value);

  /// Removes a record. NotFound if absent.
  Status Delete(int64_t key);

  /// Point lookup. NotFound if absent.
  Result<std::string> Get(int64_t key);

  /// All records with from <= key <= to, in key order.
  Status Scan(int64_t from, int64_t to,
              std::vector<std::pair<int64_t, std::string>>* out);

  /// Validates structural invariants (key order, separator consistency,
  /// leaf chain) and returns counts.
  Result<BtreeCheckReport> CheckInvariants();

  /// Number of records (walks the leaf chain).
  Result<uint64_t> Count();

  /// Smallest / largest key. NotFound on an empty tree.
  Result<int64_t> MinKey();
  Result<int64_t> MaxKey();

  const BtreeStats& stats() const { return stats_; }

 private:
  PageId Page(uint32_t page) const { return PageId{partition_, page}; }

  Status ReadMeta(PageImage* meta);
  /// Splits `child` (whose parent is `parent`, with room for one more
  /// separator); sets *split_key. Root splits pass parent = 0.
  Status SplitChild(uint32_t parent, uint32_t child, int64_t* split_key,
                    uint32_t* new_page);
  Status SplitRoot();
  bool NeedsSplit(const PageImage& page) const;
  /// Emits the new-page contents: logically (MovRec) or page-oriented
  /// (physical write of the computed image). `flags` goes on the emitted
  /// record — splits pass LogRecord::kGroupBegin since this is the first
  /// record of the multi-record split group.
  Status LogNewPage(uint32_t old_page, uint32_t new_page, int64_t split_key,
                    uint8_t flags);

  Database* const db_;
  const PartitionId partition_;
  const uint32_t meta_page_;
  const SplitLogging split_logging_;
  BtreeStats stats_;
};

}  // namespace llb

#endif  // LLB_BTREE_BTREE_H_
