#include "btree/btree.h"

#include <algorithm>
#include <limits>

#include "btree/btree_node.h"
#include "btree/btree_ops.h"
#include "ops/operation.h"

namespace llb {

namespace node = btree_node;

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

BTree::BTree(Database* db, PartitionId partition, uint32_t meta_page,
             SplitLogging split_logging)
    : db_(db),
      partition_(partition),
      meta_page_(meta_page),
      split_logging_(split_logging) {}

Status BTree::Create() {
  uint32_t root = meta_page_ + 1;
  // Empty root leaf via a physical blind write.
  PageImage leaf;
  node::InitLeaf(&leaf, 0);
  LogRecord init = MakePhysicalWrite(Page(root), leaf);
  LLB_RETURN_IF_ERROR(db_->Execute(&init));
  // Meta: root, next free page, height 1.
  LogRecord meta = MakeBtreeSetMeta(Page(meta_page_), root, root + 1, 1);
  return db_->Execute(&meta);
}

Status BTree::ReadMeta(PageImage* meta) {
  LLB_RETURN_IF_ERROR(db_->ReadPage(Page(meta_page_), meta));
  if (node::Kind(*meta) != node::kKindMeta) {
    return Status::FailedPrecondition("btree not initialized at page " +
                                      std::to_string(meta_page_));
  }
  return Status::OK();
}

bool BTree::NeedsSplit(const PageImage& page) const {
  if (node::Kind(page) == node::kKindInner) {
    return node::Count(page) >= node::kInnerCapacity;
  }
  return node::Count(page) >= node::kLeafCapacity;
}

Status BTree::LogNewPage(uint32_t old_page, uint32_t new_page,
                         int64_t split_key, uint8_t flags) {
  if (split_logging_ == SplitLogging::kLogical) {
    // The paper's logical split: log operand ids + split key only.
    LogRecord mov = MakeBtreeMovRec(Page(old_page), Page(new_page), split_key);
    mov.flags = flags;
    return db_->Execute(&mov);
  }
  // Page-oriented: compute the new page's image here and log it in full
  // (the logging cost the paper's tree operations avoid).
  PageImage old_image;
  LLB_RETURN_IF_ERROR(db_->ReadPage(Page(old_page), &old_image));
  PageImage new_image;
  if (node::Kind(old_image) == node::kKindInner) {
    node::InitInner(&new_image, 0);
    node::InnerCopyHigh(old_image, &new_image, split_key);
  } else {
    node::InitLeaf(&new_image, node::Link(old_image));
    node::LeafCopyHigh(old_image, &new_image, split_key);
  }
  LogRecord init = MakePhysicalWrite(Page(new_page), new_image);
  init.flags = flags;
  return db_->Execute(&init);
}

Status BTree::SplitChild(uint32_t parent, uint32_t child, int64_t* split_key,
                         uint32_t* new_page_out) {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t new_page = node::MetaNextFree(meta);
  if (new_page >= db_->options().pages_per_partition) {
    return Status::FailedPrecondition("partition out of pages");
  }

  PageImage child_image;
  LLB_RETURN_IF_ERROR(db_->ReadPage(Page(child), &child_image));
  size_t n = node::Count(child_image);
  if (n < 2) return Status::Internal("splitting a node with < 2 records");

  bool inner = node::Kind(child_image) == node::kKindInner;
  // Leaf: keys <= split stay. Inner: the median separator is promoted.
  *split_key = inner ? node::InnerKeyAt(child_image, n / 2)
                     : node::LeafKeyAt(child_image, (n - 1) / 2);
  *new_page_out = new_page;

  // Order (see DESIGN.md): every durable log prefix leaves a readable
  // tree. 1) move records into the (unreachable) new page; 2) allocate;
  // 3) link the separator into the parent; 4) truncate the old page.
  // The four records form one atomic group (Begin on the first, End on
  // the last) so PITR refuses to cut between them.
  LLB_RETURN_IF_ERROR(
      LogNewPage(child, new_page, *split_key, LogRecord::kGroupBegin));
  LogRecord alloc =
      MakeBtreeSetMeta(Page(meta_page_), node::MetaRoot(meta), new_page + 1,
                       node::MetaHeight(meta));
  LLB_RETURN_IF_ERROR(db_->Execute(&alloc));
  LogRecord link = MakeBtreeInsertIndex(Page(parent), *split_key, new_page);
  LLB_RETURN_IF_ERROR(db_->Execute(&link));
  LogRecord rmv = MakeBtreeRmvRec(Page(child), *split_key, new_page);
  rmv.flags = LogRecord::kGroupEnd;
  LLB_RETURN_IF_ERROR(db_->Execute(&rmv));
  ++stats_.splits;
  return Status::OK();
}

Status BTree::SplitRoot() {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t old_root = node::MetaRoot(meta);
  uint32_t new_page = node::MetaNextFree(meta);
  uint32_t new_root = new_page + 1;
  if (new_root >= db_->options().pages_per_partition) {
    return Status::FailedPrecondition("partition out of pages");
  }

  PageImage root_image;
  LLB_RETURN_IF_ERROR(db_->ReadPage(Page(old_root), &root_image));
  size_t n = node::Count(root_image);
  if (n < 2) return Status::Internal("splitting a root with < 2 records");
  bool inner = node::Kind(root_image) == node::kKindInner;
  int64_t split_key = inner ? node::InnerKeyAt(root_image, n / 2)
                            : node::LeafKeyAt(root_image, (n - 1) / 2);

  // 1) populate the new sibling (unreachable yet); Begin..End group as in
  // SplitChild;
  LLB_RETURN_IF_ERROR(
      LogNewPage(old_root, new_page, split_key, LogRecord::kGroupBegin));
  // 2) initialize the new root (unreachable yet);
  PageImage new_root_image;
  node::InitInner(&new_root_image, old_root);
  node::InnerInsert(&new_root_image, split_key, new_page);
  LogRecord init = MakePhysicalWrite(Page(new_root), new_root_image);
  LLB_RETURN_IF_ERROR(db_->Execute(&init));
  // 3) switch the root and allocate both pages atomically via the meta;
  LogRecord swap = MakeBtreeSetMeta(Page(meta_page_), new_root, new_root + 1,
                                    node::MetaHeight(meta) + 1);
  LLB_RETURN_IF_ERROR(db_->Execute(&swap));
  // 4) truncate the old root.
  LogRecord rmv = MakeBtreeRmvRec(Page(old_root), split_key, new_page);
  rmv.flags = LogRecord::kGroupEnd;
  LLB_RETURN_IF_ERROR(db_->Execute(&rmv));
  ++stats_.splits;
  ++stats_.root_splits;
  return Status::OK();
}

Status BTree::Insert(int64_t key, Slice value) {
  if (value.size() > node::kMaxValueSize) {
    return Status::InvalidArgument("value too large");
  }
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));

  PageImage image;
  LLB_RETURN_IF_ERROR(db_->ReadPage(Page(node::MetaRoot(meta)), &image));
  if (NeedsSplit(image)) {
    LLB_RETURN_IF_ERROR(SplitRoot());
    LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  }

  // Preemptive top-down descent: split any full child before entering it,
  // so the parent always has room for the separator.
  uint32_t current = node::MetaRoot(meta);
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) {
      LogRecord rec = MakeBtreeInsert(Page(current), key, value);
      return db_->Execute(&rec);
    }
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    uint32_t child = node::InnerDescend(image, key);
    PageImage child_image;
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(child), &child_image));
    if (NeedsSplit(child_image)) {
      int64_t split_key = 0;
      uint32_t new_page = 0;
      LLB_RETURN_IF_ERROR(SplitChild(current, child, &split_key, &new_page));
      if (key > split_key) child = new_page;
    }
    current = child;
  }
  return Status::Corruption("btree descent exceeded max depth");
}

Status BTree::Delete(int64_t key) {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) {
      if (!node::LeafFind(image, key)) {
        return Status::NotFound("key not present");
      }
      LogRecord rec = MakeBtreeDelete(Page(current), key);
      return db_->Execute(&rec);
    }
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    current = node::InnerDescend(image, key);
  }
  return Status::Corruption("btree descent exceeded max depth");
}

Result<std::string> BTree::Get(int64_t key) {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) {
      auto pos = node::LeafFind(image, key);
      if (!pos) return Status::NotFound("key not present");
      return node::LeafValueAt(image, *pos);
    }
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    current = node::InnerDescend(image, key);
  }
  return Status::Corruption("btree descent exceeded max depth");
}

Status BTree::Scan(int64_t from, int64_t to,
                   std::vector<std::pair<int64_t, std::string>>* out) {
  out->clear();
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  // Descend to the leaf containing `from`.
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) break;
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    current = node::InnerDescend(image, from);
  }
  // Walk the leaf chain.
  for (int hops = 0;; ++hops) {
    if (hops > static_cast<int>(db_->options().pages_per_partition)) {
      return Status::Corruption("leaf chain cycle");
    }
    size_t n = node::Count(image);
    for (size_t i = 0; i < n; ++i) {
      int64_t key = node::LeafKeyAt(image, i);
      if (key < from) continue;
      if (key > to) return Status::OK();
      out->emplace_back(key, node::LeafValueAt(image, i));
    }
    uint32_t next = node::Link(image);
    if (next == 0) return Status::OK();
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(next), &image));
  }
}

Result<uint64_t> BTree::Count() {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) break;
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    current = node::Link(image);  // leftmost path
  }
  uint64_t count = 0;
  for (uint32_t hops = 0; hops <= db_->options().pages_per_partition;
       ++hops) {
    count += node::Count(image);
    uint32_t next = node::Link(image);
    if (next == 0) return count;
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(next), &image));
  }
  return Status::Corruption("leaf chain cycle");
}

Result<int64_t> BTree::MinKey() {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) break;
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    current = node::Link(image);
  }
  // Skip (possibly emptied-by-delete) leaves along the chain.
  for (uint32_t hops = 0; hops <= db_->options().pages_per_partition;
       ++hops) {
    if (node::Count(image) > 0) return node::LeafKeyAt(image, 0);
    uint32_t next = node::Link(image);
    if (next == 0) return Status::NotFound("tree is empty");
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(next), &image));
  }
  return Status::Corruption("leaf chain cycle");
}

Result<int64_t> BTree::MaxKey() {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  uint32_t current = node::MetaRoot(meta);
  PageImage image;
  // The rightmost descent can reach an empty leaf after deletes; fall
  // back to a full chain walk in that case.
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(current), &image));
    if (node::Kind(image) == node::kKindLeaf) break;
    if (node::Kind(image) != node::kKindInner) {
      return Status::Corruption("unexpected node kind during descent");
    }
    size_t n = node::Count(image);
    current = n > 0 ? node::InnerChildAt(image, n - 1) : node::Link(image);
  }
  if (node::Count(image) > 0) {
    return node::LeafKeyAt(image, node::Count(image) - 1);
  }
  std::vector<std::pair<int64_t, std::string>> all;
  LLB_RETURN_IF_ERROR(Scan(std::numeric_limits<int64_t>::min() + 1,
                           std::numeric_limits<int64_t>::max(), &all));
  if (all.empty()) return Status::NotFound("tree is empty");
  return all.back().first;
}

Result<BtreeCheckReport> BTree::CheckInvariants() {
  PageImage meta;
  LLB_RETURN_IF_ERROR(ReadMeta(&meta));
  BtreeCheckReport report;
  report.height = node::MetaHeight(meta);

  // Recursive structural walk with key-range checks, done iteratively.
  struct Item {
    uint32_t page;
    int64_t lo;  // exclusive lower bound
    int64_t hi;  // inclusive upper bound
  };
  std::vector<Item> stack{{node::MetaRoot(meta),
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()}};
  int64_t last_leaf_key = std::numeric_limits<int64_t>::min();
  bool have_last = false;

  // Collect leaves in key order via the chain for the ordering check.
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    PageImage image;
    LLB_RETURN_IF_ERROR(db_->ReadPage(Page(item.page), &image));
    if (node::Kind(image) == node::kKindInner) {
      ++report.inners;
      size_t n = node::Count(image);
      int64_t prev = item.lo;
      for (size_t i = 0; i < n; ++i) {
        int64_t key = node::InnerKeyAt(image, i);
        if (key <= prev) return Status::Corruption("inner keys out of order");
        prev = key;
      }
      if (n > 0 && node::InnerKeyAt(image, n - 1) > item.hi) {
        return Status::Corruption("inner key exceeds parent bound");
      }
      // children: leftmost covers (lo, key0]; entry i covers
      // (key_i, key_{i+1}] (last: (key_{n-1}, hi]).
      stack.push_back({node::Link(image), item.lo,
                       n > 0 ? node::InnerKeyAt(image, 0) : item.hi});
      for (size_t i = 0; i < n; ++i) {
        int64_t lo = node::InnerKeyAt(image, i);
        int64_t hi = i + 1 < n ? node::InnerKeyAt(image, i + 1) : item.hi;
        stack.push_back({node::InnerChildAt(image, i), lo, hi});
      }
    } else if (node::Kind(image) == node::kKindLeaf) {
      ++report.leaves;
      size_t n = node::Count(image);
      report.records += n;
      for (size_t i = 0; i < n; ++i) {
        int64_t key = node::LeafKeyAt(image, i);
        if (i > 0 && key <= node::LeafKeyAt(image, i - 1)) {
          return Status::Corruption("leaf keys out of order");
        }
        if (key <= item.lo || key > item.hi) {
          return Status::Corruption("leaf key outside separator bounds");
        }
      }
    } else {
      return Status::Corruption("unexpected node kind in tree");
    }
  }

  // Leaf-chain ordering check.
  std::vector<std::pair<int64_t, std::string>> all;
  LLB_RETURN_IF_ERROR(Scan(std::numeric_limits<int64_t>::min() + 1,
                           std::numeric_limits<int64_t>::max(), &all));
  for (const auto& [key, value] : all) {
    if (have_last && key <= last_leaf_key) {
      return Status::Corruption("leaf chain out of order");
    }
    last_leaf_key = key;
    have_last = true;
  }
  if (all.size() != report.records) {
    return Status::Corruption("leaf chain misses records");
  }
  return report;
}

}  // namespace llb
