#ifndef LLB_BTREE_BTREE_NODE_H_
#define LLB_BTREE_BTREE_NODE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "storage/page.h"

namespace llb::btree_node {

/// On-page B+-tree node layout (within the page payload):
///
///   byte 0      : node kind (0 free, 1 leaf, 2 inner, 3 meta)
///   bytes 2..4  : record count (u16)
///   bytes 4..8  : leaf -> right sibling page, inner -> leftmost child
///   bytes 8..   : fixed-size records
///
/// Leaf records (64 bytes): key(i64) len(u16) value(54 bytes, padded).
/// Inner entries (12 bytes): key(i64) child(u32); the child of entry k
/// covers keys > k; keys <= first entry key go to the leftmost child.
/// Meta page: bytes 4..16 hold root page, next free page, height.

inline constexpr uint8_t kKindFree = 0;
inline constexpr uint8_t kKindLeaf = 1;
inline constexpr uint8_t kKindInner = 2;
inline constexpr uint8_t kKindMeta = 3;

inline constexpr size_t kLeafRecordSize = 64;
inline constexpr size_t kMaxValueSize = 54;
inline constexpr size_t kInnerEntrySize = 12;
inline constexpr size_t kRecordArea = kPagePayloadSize - 8;
inline constexpr size_t kLeafCapacity = kRecordArea / kLeafRecordSize;
inline constexpr size_t kInnerCapacity = kRecordArea / kInnerEntrySize;

uint8_t Kind(const PageImage& page);
uint16_t Count(const PageImage& page);
uint32_t Link(const PageImage& page);  // right sibling / leftmost child

void InitLeaf(PageImage* page, uint32_t right_sibling);
void InitInner(PageImage* page, uint32_t leftmost_child);
void InitMeta(PageImage* page, uint32_t root, uint32_t next_free,
              uint32_t height);
void SetLink(PageImage* page, uint32_t link);

// --- leaf records ---
int64_t LeafKeyAt(const PageImage& page, size_t i);
std::string LeafValueAt(const PageImage& page, size_t i);
std::optional<size_t> LeafFind(const PageImage& page, int64_t key);
/// Inserts or replaces; returns false when the leaf is full.
bool LeafInsert(PageImage* page, int64_t key, Slice value);
/// Removes; returns false when absent.
bool LeafRemove(PageImage* page, int64_t key);
/// Removes every record with key > split_key.
void LeafTruncateHigh(PageImage* page, int64_t split_key);
/// Appends all records with key > split_key from src to dst (dst must be
/// an empty leaf).
void LeafCopyHigh(const PageImage& src, PageImage* dst, int64_t split_key);

// --- inner entries ---
int64_t InnerKeyAt(const PageImage& page, size_t i);
uint32_t InnerChildAt(const PageImage& page, size_t i);
/// Child page covering `key` per the layout rule above.
uint32_t InnerDescend(const PageImage& page, int64_t key);
/// Inserts a separator entry; returns false when full or duplicate.
bool InnerInsert(PageImage* page, int64_t key, uint32_t child);
/// Removes entries with key >= split_key.
void InnerTruncateHigh(PageImage* page, int64_t split_key);
/// Moves entries with key > split_key into dst; dst's leftmost child is
/// the child of the (present) entry whose key == split_key.
void InnerCopyHigh(const PageImage& src, PageImage* dst, int64_t split_key);

// --- meta page ---
uint32_t MetaRoot(const PageImage& page);
uint32_t MetaNextFree(const PageImage& page);
uint32_t MetaHeight(const PageImage& page);

}  // namespace llb::btree_node

#endif  // LLB_BTREE_BTREE_NODE_H_
