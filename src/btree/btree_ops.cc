#include "btree/btree_ops.h"

#include "btree/btree_node.h"
#include "common/coding.h"

namespace llb {

namespace {

namespace node = btree_node;

Status ApplyInsert(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) return Status::Corruption("bad insert record");
  SliceReader reader{Slice(rec.payload)};
  uint64_t key = 0;
  Slice value;
  PageImage page;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &page));
  if (reader.ReadFixed64(&key) && reader.ReadLengthPrefixed(&value)) {
    node::LeafInsert(&page, static_cast<int64_t>(key), value);
  }
  return ctx.Write(rec.writeset[0], page);
}

Status ApplyDelete(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) return Status::Corruption("bad delete record");
  SliceReader reader{Slice(rec.payload)};
  uint64_t key = 0;
  PageImage page;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &page));
  if (reader.ReadFixed64(&key)) {
    node::LeafRemove(&page, static_cast<int64_t>(key));
  }
  return ctx.Write(rec.writeset[0], page);
}

Status ApplyMovRec(OpContext& ctx, const LogRecord& rec) {
  if (rec.readset.size() != 1 || rec.writeset.size() != 1) {
    return Status::Corruption("bad MovRec record");
  }
  SliceReader reader{Slice(rec.payload)};
  uint64_t raw_key = 0;
  PageImage old_page;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.readset[0], &old_page));
  PageImage new_page;
  if (reader.ReadFixed64(&raw_key)) {
    int64_t split_key = static_cast<int64_t>(raw_key);
    if (node::Kind(old_page) == node::kKindInner) {
      node::InitInner(&new_page, 0);
      node::InnerCopyHigh(old_page, &new_page, split_key);
    } else {
      // Leaf (or, defensively, anything else): the new leaf inherits the
      // old leaf's right sibling.
      node::InitLeaf(&new_page, node::Link(old_page));
      node::LeafCopyHigh(old_page, &new_page, split_key);
    }
  }
  return ctx.Write(rec.writeset[0], new_page);
}

Status ApplyRmvRec(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) return Status::Corruption("bad RmvRec record");
  SliceReader reader{Slice(rec.payload)};
  uint64_t raw_key = 0;
  uint32_t new_link = 0;
  PageImage page;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &page));
  if (reader.ReadFixed64(&raw_key) && reader.ReadFixed32(&new_link)) {
    int64_t split_key = static_cast<int64_t>(raw_key);
    if (node::Kind(page) == node::kKindInner) {
      node::InnerTruncateHigh(&page, split_key);
    } else {
      node::LeafTruncateHigh(&page, split_key);
      node::SetLink(&page, new_link);
    }
  }
  return ctx.Write(rec.writeset[0], page);
}

Status ApplyInsertIndex(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) {
    return Status::Corruption("bad InsertIndex record");
  }
  SliceReader reader{Slice(rec.payload)};
  uint64_t raw_key = 0;
  uint32_t child = 0;
  PageImage page;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &page));
  if (reader.ReadFixed64(&raw_key) && reader.ReadFixed32(&child)) {
    node::InnerInsert(&page, static_cast<int64_t>(raw_key), child);
  }
  return ctx.Write(rec.writeset[0], page);
}

Status ApplySetMeta(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) {
    return Status::Corruption("bad SetMeta record");
  }
  SliceReader reader{Slice(rec.payload)};
  uint32_t root = 0, next_free = 0, height = 0;
  PageImage page;
  if (reader.ReadFixed32(&root) && reader.ReadFixed32(&next_free) &&
      reader.ReadFixed32(&height)) {
    node::InitMeta(&page, root, next_free, height);
  }
  return ctx.Write(rec.writeset[0], page);
}

}  // namespace

void RegisterBtreeOps(OpRegistry* registry) {
  registry->Register(kOpBtreeInsert, ApplyInsert);
  registry->Register(kOpBtreeDelete, ApplyDelete);
  registry->Register(kOpBtreeMovRec, ApplyMovRec);
  registry->Register(kOpBtreeRmvRec, ApplyRmvRec);
  registry->Register(kOpBtreeInsertIndex, ApplyInsertIndex);
  registry->Register(kOpBtreeSetMeta, ApplySetMeta);
}

LogRecord MakeBtreeInsert(const PageId& leaf, int64_t key, Slice value) {
  LogRecord rec;
  rec.op_code = kOpBtreeInsert;
  rec.readset = {leaf};
  rec.writeset = {leaf};
  PutFixed64(&rec.payload, static_cast<uint64_t>(key));
  PutLengthPrefixed(&rec.payload, value);
  return rec;
}

LogRecord MakeBtreeDelete(const PageId& leaf, int64_t key) {
  LogRecord rec;
  rec.op_code = kOpBtreeDelete;
  rec.readset = {leaf};
  rec.writeset = {leaf};
  PutFixed64(&rec.payload, static_cast<uint64_t>(key));
  return rec;
}

LogRecord MakeBtreeMovRec(const PageId& old_page, const PageId& new_page,
                          int64_t split_key) {
  LogRecord rec;
  rec.op_code = kOpBtreeMovRec;
  rec.readset = {old_page};
  rec.writeset = {new_page};
  PutFixed64(&rec.payload, static_cast<uint64_t>(split_key));
  return rec;
}

LogRecord MakeBtreeRmvRec(const PageId& old_page, int64_t split_key,
                          uint32_t new_page_link) {
  LogRecord rec;
  rec.op_code = kOpBtreeRmvRec;
  rec.readset = {old_page};
  rec.writeset = {old_page};
  PutFixed64(&rec.payload, static_cast<uint64_t>(split_key));
  PutFixed32(&rec.payload, new_page_link);
  return rec;
}

LogRecord MakeBtreeInsertIndex(const PageId& inner, int64_t key,
                               uint32_t child) {
  LogRecord rec;
  rec.op_code = kOpBtreeInsertIndex;
  rec.readset = {inner};
  rec.writeset = {inner};
  PutFixed64(&rec.payload, static_cast<uint64_t>(key));
  PutFixed32(&rec.payload, child);
  return rec;
}

LogRecord MakeBtreeSetMeta(const PageId& meta, uint32_t root,
                           uint32_t next_free, uint32_t height) {
  LogRecord rec;
  rec.op_code = kOpBtreeSetMeta;
  rec.writeset = {meta};
  PutFixed32(&rec.payload, root);
  PutFixed32(&rec.payload, next_free);
  PutFixed32(&rec.payload, height);
  return rec;
}

}  // namespace llb
