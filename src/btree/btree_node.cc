#include "btree/btree_node.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace llb::btree_node {

namespace {

const char* Payload(const PageImage& page) { return page.payload().data(); }
char* Payload(PageImage* page) { return page->mutable_payload(); }

void SetCount(PageImage* page, uint16_t count) {
  char* p = Payload(page) + 2;
  p[0] = static_cast<char>(count & 0xFF);
  p[1] = static_cast<char>(count >> 8);
}

int64_t ReadKey(const char* p) {
  return static_cast<int64_t>(DecodeFixed64(p));
}

const char* LeafRecord(const PageImage& page, size_t i) {
  return Payload(page) + 8 + i * kLeafRecordSize;
}
char* LeafRecord(PageImage* page, size_t i) {
  return Payload(page) + 8 + i * kLeafRecordSize;
}
const char* InnerEntry(const PageImage& page, size_t i) {
  return Payload(page) + 8 + i * kInnerEntrySize;
}
char* InnerEntry(PageImage* page, size_t i) {
  return Payload(page) + 8 + i * kInnerEntrySize;
}

void WriteLeafRecord(char* dst, int64_t key, Slice value) {
  EncodeFixed64(dst, static_cast<uint64_t>(key));
  size_t len = std::min(value.size(), kMaxValueSize);
  dst[8] = static_cast<char>(len & 0xFF);
  dst[9] = static_cast<char>(len >> 8);
  std::memcpy(dst + 10, value.data(), len);
  std::memset(dst + 10 + len, 0, kMaxValueSize - len);
}

/// Index of the first leaf record with key >= target.
size_t LeafLowerBound(const PageImage& page, int64_t key) {
  size_t lo = 0, hi = Count(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKeyAt(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t InnerLowerBound(const PageImage& page, int64_t key) {
  size_t lo = 0, hi = Count(page);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InnerKeyAt(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

uint8_t Kind(const PageImage& page) {
  return static_cast<uint8_t>(Payload(page)[0]);
}

uint16_t Count(const PageImage& page) {
  const char* p = Payload(page) + 2;
  uint16_t count = static_cast<uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(p[1])) << 8));
  // Defensive clamp: replay may read garbage-state pages; never index
  // past the record area.
  uint16_t cap = static_cast<uint16_t>(
      Kind(page) == kKindInner ? kInnerCapacity : kLeafCapacity);
  return std::min(count, cap);
}

uint32_t Link(const PageImage& page) {
  return DecodeFixed32(Payload(page) + 4);
}

void SetLink(PageImage* page, uint32_t link) {
  EncodeFixed32(Payload(page) + 4, link);
}

void InitLeaf(PageImage* page, uint32_t right_sibling) {
  std::memset(Payload(page), 0, kPagePayloadSize);
  Payload(page)[0] = static_cast<char>(kKindLeaf);
  SetLink(page, right_sibling);
  page->set_type(PageType::kBtree);
}

void InitInner(PageImage* page, uint32_t leftmost_child) {
  std::memset(Payload(page), 0, kPagePayloadSize);
  Payload(page)[0] = static_cast<char>(kKindInner);
  SetLink(page, leftmost_child);
  page->set_type(PageType::kBtree);
}

void InitMeta(PageImage* page, uint32_t root, uint32_t next_free,
              uint32_t height) {
  std::memset(Payload(page), 0, kPagePayloadSize);
  Payload(page)[0] = static_cast<char>(kKindMeta);
  EncodeFixed32(Payload(page) + 4, root);
  EncodeFixed32(Payload(page) + 8, next_free);
  EncodeFixed32(Payload(page) + 12, height);
  page->set_type(PageType::kBtree);
}

int64_t LeafKeyAt(const PageImage& page, size_t i) {
  return ReadKey(LeafRecord(page, i));
}

std::string LeafValueAt(const PageImage& page, size_t i) {
  const char* rec = LeafRecord(page, i);
  size_t len = static_cast<unsigned char>(rec[8]) |
               (static_cast<size_t>(static_cast<unsigned char>(rec[9])) << 8);
  len = std::min(len, kMaxValueSize);
  return std::string(rec + 10, len);
}

std::optional<size_t> LeafFind(const PageImage& page, int64_t key) {
  size_t pos = LeafLowerBound(page, key);
  if (pos < Count(page) && LeafKeyAt(page, pos) == key) return pos;
  return std::nullopt;
}

bool LeafInsert(PageImage* page, int64_t key, Slice value) {
  size_t n = Count(*page);
  size_t pos = LeafLowerBound(*page, key);
  if (pos < n && LeafKeyAt(*page, pos) == key) {
    WriteLeafRecord(LeafRecord(page, pos), key, value);  // replace
    return true;
  }
  if (n >= kLeafCapacity) return false;
  std::memmove(LeafRecord(page, pos + 1), LeafRecord(page, pos),
               (n - pos) * kLeafRecordSize);
  WriteLeafRecord(LeafRecord(page, pos), key, value);
  SetCount(page, static_cast<uint16_t>(n + 1));
  return true;
}

bool LeafRemove(PageImage* page, int64_t key) {
  size_t n = Count(*page);
  size_t pos = LeafLowerBound(*page, key);
  if (pos >= n || LeafKeyAt(*page, pos) != key) return false;
  std::memmove(LeafRecord(page, pos), LeafRecord(page, pos + 1),
               (n - pos - 1) * kLeafRecordSize);
  SetCount(page, static_cast<uint16_t>(n - 1));
  return true;
}

void LeafTruncateHigh(PageImage* page, int64_t split_key) {
  size_t n = Count(*page);
  size_t keep = 0;
  while (keep < n && LeafKeyAt(*page, keep) <= split_key) ++keep;
  SetCount(page, static_cast<uint16_t>(keep));
}

void LeafCopyHigh(const PageImage& src, PageImage* dst, int64_t split_key) {
  size_t n = Count(src);
  size_t start = 0;
  while (start < n && LeafKeyAt(src, start) <= split_key) ++start;
  size_t moved = n - start;
  std::memcpy(LeafRecord(dst, 0), LeafRecord(src, start),
              moved * kLeafRecordSize);
  SetCount(dst, static_cast<uint16_t>(moved));
}

int64_t InnerKeyAt(const PageImage& page, size_t i) {
  return ReadKey(InnerEntry(page, i));
}

uint32_t InnerChildAt(const PageImage& page, size_t i) {
  return DecodeFixed32(InnerEntry(page, i) + 8);
}

uint32_t InnerDescend(const PageImage& page, int64_t key) {
  uint32_t child = Link(page);  // leftmost
  size_t n = Count(page);
  for (size_t i = 0; i < n; ++i) {
    if (key > InnerKeyAt(page, i)) {
      child = InnerChildAt(page, i);
    } else {
      break;
    }
  }
  return child;
}

bool InnerInsert(PageImage* page, int64_t key, uint32_t child) {
  size_t n = Count(*page);
  size_t pos = InnerLowerBound(*page, key);
  if (pos < n && InnerKeyAt(*page, pos) == key) return false;
  if (n >= kInnerCapacity) return false;
  std::memmove(InnerEntry(page, pos + 1), InnerEntry(page, pos),
               (n - pos) * kInnerEntrySize);
  char* e = InnerEntry(page, pos);
  EncodeFixed64(e, static_cast<uint64_t>(key));
  EncodeFixed32(e + 8, child);
  SetCount(page, static_cast<uint16_t>(n + 1));
  return true;
}

void InnerTruncateHigh(PageImage* page, int64_t split_key) {
  size_t n = Count(*page);
  size_t keep = 0;
  while (keep < n && InnerKeyAt(*page, keep) < split_key) ++keep;
  SetCount(page, static_cast<uint16_t>(keep));
}

void InnerCopyHigh(const PageImage& src, PageImage* dst, int64_t split_key) {
  size_t n = Count(src);
  // dst's leftmost child is the child of the promoted separator.
  size_t sep = 0;
  while (sep < n && InnerKeyAt(src, sep) < split_key) ++sep;
  bool promoted = sep < n && InnerKeyAt(src, sep) == split_key;
  if (promoted) SetLink(dst, InnerChildAt(src, sep));
  size_t start = promoted ? sep + 1 : sep;
  size_t moved = n - start;
  std::memcpy(InnerEntry(dst, 0), InnerEntry(src, start),
              moved * kInnerEntrySize);
  SetCount(dst, static_cast<uint16_t>(moved));
}

uint32_t MetaRoot(const PageImage& page) {
  return DecodeFixed32(Payload(page) + 4);
}

uint32_t MetaNextFree(const PageImage& page) {
  return DecodeFixed32(Payload(page) + 8);
}

uint32_t MetaHeight(const PageImage& page) {
  return DecodeFixed32(Payload(page) + 12);
}

}  // namespace llb::btree_node
