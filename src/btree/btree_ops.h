#ifndef LLB_BTREE_BTREE_OPS_H_
#define LLB_BTREE_BTREE_OPS_H_

#include <cstdint>

#include "common/slice.h"
#include "common/types.h"
#include "ops/op_registry.h"
#include "wal/log_record.h"

namespace llb {

/// Registers the B-tree operation apply functions. Call once per
/// OpRegistry before Database::Recover().
void RegisterBtreeOps(OpRegistry* registry);

/// Record builders. The split pair demonstrates the paper's running
/// example (sections 1.3 and 4.1):
///
///   MovRec(old, key, new) — logical W_L(old, new): move the records with
///     keys above `key` from old into the fresh page new. Only operand
///     ids and the split key are logged — no record data.
///   RmvRec(old, key)      — physiological: drop those records from old
///     (and point the leaf chain at new).
///
/// MovRec must precede RmvRec in the log; the write graph then requires
/// new to be flushed before old ("our write graph requires that new be
/// flushed to S prior to old being overwritten", paper 1.3).
LogRecord MakeBtreeInsert(const PageId& leaf, int64_t key, Slice value);
LogRecord MakeBtreeDelete(const PageId& leaf, int64_t key);
LogRecord MakeBtreeMovRec(const PageId& old_page, const PageId& new_page,
                          int64_t split_key);
LogRecord MakeBtreeRmvRec(const PageId& old_page, int64_t split_key,
                          uint32_t new_page_link);
LogRecord MakeBtreeInsertIndex(const PageId& inner, int64_t key,
                               uint32_t child);
LogRecord MakeBtreeSetMeta(const PageId& meta, uint32_t root,
                           uint32_t next_free, uint32_t height);

}  // namespace llb

#endif  // LLB_BTREE_BTREE_OPS_H_
