#include "ops/operation.h"

namespace llb {

OpContext::~OpContext() = default;

Status ApplyPhysicalWrite(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) {
    return Status::Corruption("physical write must have one target");
  }
  PageImage image = PageImage::FromRaw(rec.payload);
  return ctx.Write(rec.writeset[0], image);
}

LogRecord MakePhysicalWrite(const PageId& id, const PageImage& image) {
  LogRecord rec;
  rec.op_code = kOpPhysicalWrite;
  rec.writeset = {id};
  rec.payload = image.raw_string();
  return rec;
}

LogRecord MakeIdentityWrite(const PageId& id, const PageImage& current) {
  LogRecord rec;
  rec.op_code = kOpIdentityWrite;
  rec.writeset = {id};
  rec.payload = current.raw_string();
  return rec;
}

}  // namespace llb
