#include "ops/op_registry.h"

namespace llb {

OpRegistry::OpRegistry() {
  Register(kOpPhysicalWrite, ApplyPhysicalWrite);
  Register(kOpIdentityWrite, ApplyPhysicalWrite);
  // Checkpoint records carry no page writes; applying one is a no-op.
  Register(kOpCheckpoint,
           [](OpContext&, const LogRecord&) { return Status::OK(); });
}

void OpRegistry::Register(uint16_t op_code, OpApplyFn fn) {
  fns_[op_code] = std::move(fn);
}

bool OpRegistry::Contains(uint16_t op_code) const {
  return fns_.count(op_code) > 0;
}

Status OpRegistry::Apply(OpContext& ctx, const LogRecord& rec) const {
  auto it = fns_.find(rec.op_code);
  if (it == fns_.end()) {
    return Status::Internal("no apply function for op code " +
                            std::to_string(rec.op_code));
  }
  return it->second(ctx, rec);
}

}  // namespace llb
