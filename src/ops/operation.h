#ifndef LLB_OPS_OPERATION_H_
#define LLB_OPS_OPERATION_H_

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "wal/log_record.h"

namespace llb {

/// The state an operation reads and writes while being applied. During
/// normal execution the context is backed by the cache manager; during
/// redo it is backed by the recovery image. Using one apply function for
/// both guarantees replay reproduces execution (determinism by
/// construction).
class OpContext {
 public:
  virtual ~OpContext();

  /// Reads the current image of a page.
  virtual Status Read(const PageId& id, PageImage* out) = 0;

  /// Stages the new image of a page. The engine commits staged writes for
  /// the record's writeset (redo commits only stale targets, implementing
  /// the per-target LSN redo test).
  virtual Status Write(const PageId& id, const PageImage& image) = 0;

 protected:
  OpContext() = default;
};

/// Applies the core physical/identity write: payload is the full page
/// image for writeset[0]. Total: tolerates short payloads by
/// zero-extension.
Status ApplyPhysicalWrite(OpContext& ctx, const LogRecord& rec);

/// Builds a physical-write record (W_P) for `id` carrying `image`.
LogRecord MakePhysicalWrite(const PageId& id, const PageImage& image);

/// Builds an identity-write record (W_IP) for `id` carrying its current
/// image: the paper's cache-manager identity write (section 2.5), the
/// extra logging used by install-without-flush.
LogRecord MakeIdentityWrite(const PageId& id, const PageImage& current);

}  // namespace llb

#endif  // LLB_OPS_OPERATION_H_
