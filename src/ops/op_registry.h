#ifndef LLB_OPS_OP_REGISTRY_H_
#define LLB_OPS_OP_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "ops/operation.h"
#include "wal/log_record.h"

namespace llb {

/// Applies a logged operation to a context: reads the record's readset
/// through the context, computes, and stages writes for the full writeset.
///
/// Contract (required by the crude redo test, paper section 2.1 "redo
/// tests can be relatively crude ... and recovery can still succeed"):
/// apply functions must be *total* — on unexpected input state they must
/// still stage some value for every writeset member rather than fail,
/// because redo may legitimately replay an operation whose regenerated
/// values will be overwritten before any uninstalled operation reads them.
using OpApplyFn = std::function<Status(OpContext&, const LogRecord&)>;

/// Maps operation codes to their apply functions. The engine core
/// registers physical/identity writes; each domain (B-tree, file store,
/// application recovery) registers its operations when attached to a
/// database.
class OpRegistry {
 public:
  OpRegistry();

  OpRegistry(const OpRegistry&) = delete;
  OpRegistry& operator=(const OpRegistry&) = delete;

  /// Registers (or replaces) the apply function for an op code.
  void Register(uint16_t op_code, OpApplyFn fn);

  bool Contains(uint16_t op_code) const;

  /// Dispatches the record to its apply function.
  Status Apply(OpContext& ctx, const LogRecord& rec) const;

 private:
  std::unordered_map<uint16_t, OpApplyFn> fns_;
};

}  // namespace llb

#endif  // LLB_OPS_OP_REGISTRY_H_
