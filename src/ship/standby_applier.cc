#include "ship/standby_applier.h"

#include <algorithm>
#include <utility>

namespace llb {

std::string StandbyStatus::ToString() const {
  std::string out = "standby applied_lsn=" + std::to_string(applied_lsn);
  if (primary_durable_lsn != kInvalidLsn) {
    out += " primary_durable_lsn=" + std::to_string(primary_durable_lsn);
  }
  out += " lag{segments=" + std::to_string(segments_behind) +
         " lsns=" + std::to_string(lsns_behind) +
         " bytes=" + std::to_string(bytes_behind) + "}";
  out += promoted ? " role=primary(promoted)" : " role=standby";
  return out;
}

StandbyApplier::StandbyApplier(Database* standby, ShipChannel* channel)
    : db_(standby),
      channel_(channel),
      applier_(*standby->registry(), standby->stable()) {}

Status StandbyApplier::CatchUpFromLocalLog() {
  // Database::Recover made stable == redo(local log); everything durable
  // in the local log is therefore applied.
  applied_lsn_ = db_->log()->durable_lsn();
  return Status::OK();
}

void StandbyApplier::MarkConsumed(uint64_t seq) {
  consumed_seq_ = std::max(consumed_seq_, seq);
}

Status StandbyApplier::FinishInflight() {
  if (inflight_records_.empty()) return Status::OK();
  // WAL: the frame's records must be durable in the standby log before
  // any of their page writes land in the stable store.
  LLB_RETURN_IF_ERROR(db_->ForceLog());
  for (const LogRecord& rec : inflight_records_) {
    LLB_RETURN_IF_ERROR(applier_.Apply(rec));
  }
  LLB_RETURN_IF_ERROR(applier_.Flush());
  applied_lsn_ = inflight_last_lsn_;
  MarkConsumed(inflight_seq_);
  ++stats_.frames_applied;
  stats_.records_applied += inflight_records_.size();
  stats_.bytes_applied += inflight_bytes_;
  inflight_records_.clear();
  inflight_last_lsn_ = kInvalidLsn;
  inflight_bytes_ = 0;
  return Status::OK();
}

Status StandbyApplier::Drain() {
  LLB_RETURN_IF_ERROR(FinishInflight());

  std::vector<ShipFrame> polled;
  LLB_RETURN_IF_ERROR(channel_->Poll(consumed_seq_ + 1, &polled));
  stats_.frames_received += polled.size();
  for (ShipFrame& frame : polled) {
    if (frame.last_lsn <= applied_lsn_) {
      ++stats_.frames_duplicate;
      MarkConsumed(frame.seq);
      continue;
    }
    auto it = pending_.find(frame.first_lsn);
    if (it == pending_.end() || frame.last_lsn > it->second.last_lsn) {
      pending_[frame.first_lsn] = std::move(frame);
    } else {
      MarkConsumed(frame.seq);  // narrower duplicate of a buffered frame
    }
  }

  while (true) {
    const Lsn next = applied_lsn_ + 1;
    // Find a buffered frame covering `next`; discard those wholly behind.
    auto chosen = pending_.end();
    for (auto it = pending_.begin();
         it != pending_.end() && it->first <= next;) {
      if (it->second.last_lsn < next) {
        ++stats_.frames_duplicate;
        MarkConsumed(it->second.seq);
        it = pending_.erase(it);
        continue;
      }
      chosen = it;
      ++it;
    }
    if (chosen == pending_.end()) break;  // gap: wait for more frames

    ShipFrame frame = std::move(chosen->second);
    pending_.erase(chosen);

    // Re-shipped frames may overlap the applied prefix (shipper crash
    // between Send and cursor save; catch-up frames). Trim the leading
    // records so the segment starts exactly at the standby's next LSN.
    SealedSegment segment;
    segment.first_lsn = next;
    segment.last_lsn = frame.last_lsn;
    bool bad = false;
    if (frame.first_lsn == next) {
      segment.bytes = std::move(frame.bytes);
    } else {
      Slice cursor(frame.bytes);
      LogRecord rec;
      while (!cursor.empty()) {
        if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) {
          bad = true;
          break;
        }
        if (rec.lsn >= next) rec.EncodeTo(&segment.bytes);
      }
    }

    std::vector<LogRecord> records;
    Status appended = bad ? Status::Corruption("torn shipped frame")
                          : db_->log()->AppendSealed(segment, &records);
    if (appended.IsCorruption()) {
      // Rot in transit. Drop the frame — the shipper re-sends or resyncs
      // this range; nothing was buffered in the standby log.
      ++stats_.frames_corrupt;
      MarkConsumed(frame.seq);
      continue;
    }
    LLB_RETURN_IF_ERROR(appended);

    inflight_records_ = std::move(records);
    inflight_last_lsn_ = segment.last_lsn;
    inflight_seq_ = frame.seq;
    inflight_bytes_ = segment.bytes.size();
    LLB_RETURN_IF_ERROR(FinishInflight());
  }

  return channel_->Trim(consumed_seq_);
}

StandbyStatus StandbyApplier::GatherStatus(Lsn primary_durable_lsn) const {
  StandbyStatus status;
  status.applied_lsn = applied_lsn_;
  status.primary_durable_lsn = primary_durable_lsn;
  status.promoted = !db_->standby();
  status.segments_behind = pending_.size();
  for (const auto& [first, frame] : pending_) {
    status.bytes_behind += frame.bytes.size();
  }
  if (primary_durable_lsn != kInvalidLsn &&
      primary_durable_lsn > applied_lsn_) {
    status.lsns_behind = primary_durable_lsn - applied_lsn_;
  } else if (!pending_.empty()) {
    Lsn top = 0;
    for (const auto& [first, frame] : pending_) {
      top = std::max(top, frame.last_lsn);
    }
    if (top > applied_lsn_) status.lsns_behind = top - applied_lsn_;
  }
  return status;
}

}  // namespace llb
