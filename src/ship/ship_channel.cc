#include "ship/ship_channel.h"

#include <cstdlib>

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace {

constexpr uint32_t kFrameMagic = 0x4C4C5346;  // "LLSF"

/// Parses the numeric suffix of "<prefix>.f<seq>". Returns false when
/// `name` is not a frame file of this prefix.
bool ParseFrameSeq(const std::string& prefix, const std::string& name,
                   uint64_t* seq) {
  const std::string head = prefix + ".f";
  if (name.size() <= head.size() || name.compare(0, head.size(), head) != 0) {
    return false;
  }
  const char* digits = name.c_str() + head.size();
  char* end = nullptr;
  uint64_t value = std::strtoull(digits, &end, 10);
  if (end == digits || *end != '\0') return false;
  *seq = value;
  return true;
}

}  // namespace

ShipChannel::~ShipChannel() = default;

void ShipFrame::EncodeTo(std::string* dst) const {
  size_t start = dst->size();
  PutFixed32(dst, kFrameMagic);
  PutFixed64(dst, seq);
  PutFixed64(dst, first_lsn);
  PutFixed64(dst, last_lsn);
  PutLengthPrefixed(dst, Slice(bytes));
  uint32_t crc = crc32c::Value(dst->data() + start, dst->size() - start);
  PutFixed32(dst, crc);
}

Status ShipFrame::DecodeFrom(Slice input, ShipFrame* out) {
  if (input.size() < 4) return Status::Corruption("ship frame too short");
  uint32_t stored = DecodeFixed32(input.data() + input.size() - 4);
  uint32_t actual = crc32c::Value(input.data(), input.size() - 4);
  if (stored != actual) return Status::Corruption("ship frame checksum");
  SliceReader reader(Slice(input.data(), input.size() - 4));
  uint32_t magic = 0;
  Slice payload;
  if (!reader.ReadFixed32(&magic) || magic != kFrameMagic ||
      !reader.ReadFixed64(&out->seq) || !reader.ReadFixed64(&out->first_lsn) ||
      !reader.ReadFixed64(&out->last_lsn) ||
      !reader.ReadLengthPrefixed(&payload) || reader.remaining() != 0) {
    return Status::Corruption("ship frame malformed");
  }
  out->bytes.assign(payload.data(), payload.size());
  return Status::OK();
}

std::string FileShipChannel::FrameName(uint64_t seq) const {
  return prefix_ + ".f" + std::to_string(seq);
}

Status FileShipChannel::Send(const ShipFrame& frame) {
  std::string encoded;
  frame.EncodeTo(&encoded);
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env_->OpenFile(FrameName(frame.seq), /*create=*/true));
  LLB_RETURN_IF_ERROR(file->Truncate(0));
  LLB_RETURN_IF_ERROR(file->WriteAt(0, Slice(encoded)));
  return file->Sync();
}

Status FileShipChannel::Poll(uint64_t from_seq, std::vector<ShipFrame>* out) {
  for (const std::string& name : env_->ListFiles()) {
    uint64_t seq = 0;
    if (!ParseFrameSeq(prefix_, name, &seq) || seq < from_seq) continue;
    auto file = env_->OpenFile(name, /*create=*/false);
    if (!file.ok()) continue;  // raced with Trim, or transient fault
    auto size = (*file)->Size();
    if (!size.ok()) continue;
    std::string contents;
    if (!(*file)->ReadAt(0, *size, &contents).ok()) continue;
    ShipFrame frame;
    // A torn or rotten frame is a transient absence: the shipper still
    // holds the segment and will re-send or re-sync it.
    if (!ShipFrame::DecodeFrom(Slice(contents), &frame).ok()) continue;
    if (frame.seq != seq) continue;
    out->push_back(std::move(frame));
  }
  return Status::OK();
}

Status FileShipChannel::Trim(uint64_t upto_seq) {
  for (const std::string& name : env_->ListFiles()) {
    uint64_t seq = 0;
    if (!ParseFrameSeq(prefix_, name, &seq) || seq > upto_seq) continue;
    Status s = env_->DeleteFile(name);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  return Status::OK();
}

Status InProcessShipChannel::Send(const ShipFrame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  FaultAction action = FaultAction::kNone;
  if (policy_ != nullptr) action = policy_->OnOp(FaultOp::kWriteAt, name_);
  if (action == FaultAction::kFail) {
    return Status::IoError("ship channel send fault: " + name_);
  }
  ShipFrame stored = frame;
  if (action == FaultAction::kCorrupt && !stored.bytes.empty()) {
    stored.bytes[stored.bytes.size() / 2] ^= 0x40;  // rot in transit
  }
  frames_[stored.seq] = std::move(stored);
  return Status::OK();
}

Status InProcessShipChannel::Poll(uint64_t from_seq,
                                  std::vector<ShipFrame>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policy_ != nullptr &&
      policy_->OnOp(FaultOp::kReadAt, name_) == FaultAction::kFail) {
    return Status::IoError("ship channel poll fault: " + name_);
  }
  for (auto it = frames_.lower_bound(from_seq); it != frames_.end(); ++it) {
    out->push_back(it->second);
  }
  return Status::OK();
}

Status InProcessShipChannel::Trim(uint64_t upto_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_.erase(frames_.begin(), frames_.upper_bound(upto_seq));
  return Status::OK();
}

void InProcessShipChannel::SetPolicy(FaultPolicy* policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
}

size_t InProcessShipChannel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

}  // namespace llb
