#ifndef LLB_SHIP_LOG_SHIPPER_H_
#define LLB_SHIP_LOG_SHIPPER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "io/env.h"
#include "ship/ship_channel.h"
#include "wal/log_manager.h"

namespace llb {

struct ShipperOptions {
  /// Send attempts per frame before Pump gives up (the frame stays queued
  /// for the next Pump; nothing is ever dropped).
  uint32_t max_retries = 5;
  /// Sleep between attempts, doubled per retry. 0 = no sleep, which keeps
  /// crash-sweep runs deterministic.
  uint32_t backoff_ms = 0;
};

struct ShipStats {
  uint64_t segments_sealed = 0;  // seals observed from the log
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t retries = 0;        // extra send attempts after a fault
  uint64_t send_failures = 0;  // Pump calls that gave up on a frame
  uint64_t resyncs = 0;        // catch-up frames built from a log scan
  Lsn last_shipped_lsn = 0;    // durably in the channel AND in the cursor
};

/// Streams sealed log segments from a primary's LogManager into a
/// ShipChannel, exactly once from the standby's point of view.
///
/// Invariants (see DESIGN.md "Log shipping"):
///   - No gaps: every LSN in (cursor, last sent] is in the channel before
///     the cursor advances past it. The cursor is saved (DurableCursor)
///     only AFTER the frames covering it were durably sent.
///   - Duplicates allowed: a crash between Send and cursor save re-ships
///     the overlap on restart (Attach re-syncs from the cursor by
///     scanning the log); the applier dedups by LSN.
///   - Only durable records ship: the seal observer fires after the seal's
///     sync succeeded, and Attach's catch-up scan stops at durable_lsn().
///
/// Threading: the seal observer enqueues under the shipper's own mutex
/// and returns (it runs under the log mutex). Pump() drains the queue and
/// may be called from any one thread — typically a torture script's
/// deterministic pump loop or a bench's shipping thread.
class LogShipper {
 public:
  /// `primary_name` scopes the durable cursor file ("<name>.shipcursor"
  /// in `env`); `log` is the primary's log; `channel` the transport.
  LogShipper(Env* env, std::string primary_name, LogManager* log,
             ShipChannel* channel, const ShipperOptions& options = {});
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Loads the durable cursor (absent = ship from the beginning),
  /// installs the seal observer — atomically learning the durable LSN at
  /// the instant of installation (LogManager::InstallSealObserver swaps
  /// under the seal lock) — and builds a catch-up frame for the durable
  /// records past the cursor. Safe under concurrent Force(): a seal
  /// either lands before the install (covered by the catch-up scan) or
  /// after it (delivered to the observer); there is no window in
  /// between. Complete Attach before the first Pump.
  Status Attach();

  /// Uninstalls the seal observer. Called by the destructor; call it
  /// earlier if the LogManager outlives decisions about this shipper.
  void Detach();

  /// Drains queued segments into the channel with bounded retry, then
  /// durably advances the cursor. Returns non-OK when a frame exhausted
  /// its retries (frame stays queued; call Pump again) or the cursor
  /// save failed.
  Status Pump();

  /// Re-queues a catch-up frame covering [from_lsn, durable tail] built
  /// from a log scan: the NAK path for a frame that rotted in transit
  /// after the cursor already advanced past it (the applier observes the
  /// gap and asks for this range again). No-op when the log holds nothing
  /// durable at or past from_lsn.
  Status Resync(Lsn from_lsn);

  /// Queued segments not yet durably in the channel.
  size_t backlog() const;

  ShipStats stats() const;

  static std::string CursorName(const std::string& primary_name) {
    return primary_name + ".shipcursor";
  }

 private:
  Status SendWithRetry(const ShipFrame& frame);
  Status SaveCursor(uint64_t seq, Lsn lsn);

  Env* const env_;
  const std::string primary_name_;
  LogManager* const log_;
  ShipChannel* const channel_;
  const ShipperOptions options_;

  mutable std::mutex mu_;
  bool attached_ = false;
  std::deque<ShipFrame> outbox_;
  uint64_t next_seq_ = 1;        // seq for the next enqueued frame
  Lsn cursor_lsn_ = 0;           // durably shipped through here
  uint64_t cursor_seq_ = 0;      // highest seq covered by the cursor
  ShipStats stats_;
};

}  // namespace llb

#endif  // LLB_SHIP_LOG_SHIPPER_H_
