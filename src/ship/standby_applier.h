#ifndef LLB_SHIP_STANDBY_APPLIER_H_
#define LLB_SHIP_STANDBY_APPLIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "db/database.h"
#include "recovery/log_applier.h"
#include "ship/ship_channel.h"

namespace llb {

struct StandbyApplierStats {
  uint64_t frames_received = 0;   // frames returned by Poll
  uint64_t frames_applied = 0;    // frames appended + redone + flushed
  uint64_t frames_duplicate = 0;  // wholly below the applied LSN
  uint64_t frames_corrupt = 0;    // rejected by segment validation
  uint64_t records_applied = 0;
  uint64_t bytes_applied = 0;
};

/// Replication lag as seen from the standby. `primary_durable_lsn` is
/// whatever the caller sampled from the primary (kInvalidLsn when the
/// primary is unreachable — lag fields then fall back to what is visible
/// in the channel).
struct StandbyStatus {
  Lsn applied_lsn = 0;
  Lsn primary_durable_lsn = kInvalidLsn;
  uint64_t segments_behind = 0;  // frames buffered, not yet applied
  uint64_t lsns_behind = 0;
  uint64_t bytes_behind = 0;  // bytes buffered, not yet applied
  bool promoted = false;

  std::string ToString() const;
};

/// Drives continuous redo on a standby Database from shipped log frames.
///
/// Per in-order frame: records are appended to the standby's own log
/// (LogManager::AppendSealed, preserving primary LSNs), forced durable
/// (WAL: log before page writes), then replayed onto the standby's stable
/// store through the shared LogApplier and flushed. The invariant this
/// maintains: the standby's stable store always equals the in-order
/// re-execution of the standby's own log — which is exactly what
/// Database::Recover() rebuilds after a standby crash, so crash recovery
/// and steady-state apply converge on the same state.
///
/// Out-of-order frames are buffered until the gap fills; frames at or
/// below the applied LSN are dropped as duplicates; frames that fail
/// validation (rot in transit) are counted, discarded, and recovered via
/// LogShipper re-send or resync.
///
/// Single-threaded: one thread calls Drain()/GatherStatus(). (The
/// Database underneath stays internally locked; this class adds no locks
/// of its own.)
class StandbyApplier {
 public:
  /// `standby` must be open in standby mode and recovered.
  StandbyApplier(Database* standby, ShipChannel* channel);

  StandbyApplier(const StandbyApplier&) = delete;
  StandbyApplier& operator=(const StandbyApplier&) = delete;

  /// Adopts the standby's recovered local log as the applied position
  /// (stable == redo(log) holds after Database::Recover). Call once after
  /// opening, before the first Drain.
  Status CatchUpFromLocalLog();

  /// Polls the channel and applies every frame that is contiguous with
  /// the standby log, then trims consumed frames from the channel.
  /// Transient channel/IO errors propagate; calling Drain again resumes
  /// exactly where it stopped (an appended-but-unapplied frame is
  /// completed first).
  Status Drain();

  /// Applied through this LSN (standby stable and log agree up to here).
  Lsn applied_lsn() const { return applied_lsn_; }

  StandbyStatus GatherStatus(Lsn primary_durable_lsn = kInvalidLsn) const;

  const StandbyApplierStats& stats() const { return stats_; }

 private:
  /// Completes a frame whose records were appended to the log but not yet
  /// forced/applied (Drain was interrupted after AppendSealed).
  Status FinishInflight();

  void MarkConsumed(uint64_t seq);

  Database* const db_;
  ShipChannel* const channel_;
  LogApplier applier_;

  Lsn applied_lsn_ = 0;
  uint64_t consumed_seq_ = 0;  // channel frames <= this are consumed
  /// Buffered out-of-order frames, keyed by first_lsn (the larger
  /// last_lsn wins on collision).
  std::map<Lsn, ShipFrame> pending_;
  std::vector<LogRecord> inflight_records_;
  Lsn inflight_last_lsn_ = kInvalidLsn;
  uint64_t inflight_seq_ = 0;
  uint64_t inflight_bytes_ = 0;
  StandbyApplierStats stats_;
};

}  // namespace llb

#endif  // LLB_SHIP_STANDBY_APPLIER_H_
