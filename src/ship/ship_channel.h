#ifndef LLB_SHIP_SHIP_CHANNEL_H_
#define LLB_SHIP_SHIP_CHANNEL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"
#include "io/faulty_env.h"

namespace llb {

/// One replication unit in flight: a sealed log segment stamped with the
/// shipper's dense frame sequence number. `bytes` is the segment's framed
/// records verbatim (each record self-checksummed), and the frame adds an
/// envelope checksum of its own so a torn or rotten frame is detected at
/// the envelope before record decoding even starts.
struct ShipFrame {
  uint64_t seq = 0;  // dense, 1-based, assigned by the shipper
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;
  std::string bytes;

  /// Appends the wire encoding (magic + header + payload + crc) to *dst.
  void EncodeTo(std::string* dst) const;

  /// Decodes one frame from the whole of `input`. Trailing garbage, a
  /// short buffer, or a checksum mismatch all return Corruption.
  static Status DecodeFrom(Slice input, ShipFrame* out);
};

/// Transport between a primary's log shipper and a standby's applier.
///
/// Delivery contract (deliberately weak, so fault injection is honest):
///   - Send() durably publishes a frame; once it returns OK the frame
///     survives sender crashes. Re-sending a seq overwrites (idempotent).
///   - Poll() returns available frames with seq >= from_seq in ARBITRARY
///     order, possibly with duplicates; frames that are torn or rotten in
///     transit are silently absent (the sender still has them and retries
///     or re-syncs). The applier owns reordering and dedup.
///   - Trim() discards frames <= upto_seq once the applier has durably
///     consumed them.
class ShipChannel {
 public:
  virtual ~ShipChannel();

  ShipChannel(const ShipChannel&) = delete;
  ShipChannel& operator=(const ShipChannel&) = delete;

  virtual Status Send(const ShipFrame& frame) = 0;
  virtual Status Poll(uint64_t from_seq, std::vector<ShipFrame>* out) = 0;
  virtual Status Trim(uint64_t upto_seq) = 0;

 protected:
  ShipChannel() = default;
};

/// A spool-directory channel over an Env: frame `seq` lives in file
/// "<prefix>.f<seq>", published with write + sync. Wrapping the Env in a
/// FaultyEnv makes every transport hazard injectable: failed sends
/// (WriteAt/Sync faults), torn frames (corrupt-on-write -> envelope crc
/// rejects on Poll), lost frames (delete the file). Poll decodes whatever
/// files exist and skips undecodable ones — a torn frame is a transient
/// absence, not an error.
class FileShipChannel : public ShipChannel {
 public:
  FileShipChannel(Env* env, std::string prefix)
      : env_(env), prefix_(std::move(prefix)) {}

  Status Send(const ShipFrame& frame) override;
  Status Poll(uint64_t from_seq, std::vector<ShipFrame>* out) override;
  Status Trim(uint64_t upto_seq) override;

  std::string FrameName(uint64_t seq) const;

 private:
  Env* const env_;
  const std::string prefix_;
};

/// An in-memory channel for single-process primary/standby pairs (bench,
/// unit tests). An optional FaultPolicy makes it lossy: Send consults the
/// policy as a kWriteAt on the channel's pseudo-file (kFail -> the send
/// fails and nothing is stored; kCorrupt -> the stored frame gets one bit
/// flipped, so the applier's validation rejects it), Poll consults it as
/// a kReadAt (kFail -> the poll fails transiently).
class InProcessShipChannel : public ShipChannel {
 public:
  explicit InProcessShipChannel(std::string name = "ship.chan")
      : name_(std::move(name)) {}

  Status Send(const ShipFrame& frame) override;
  Status Poll(uint64_t from_seq, std::vector<ShipFrame>* out) override;
  Status Trim(uint64_t upto_seq) override;

  /// Installs the loss/corruption policy (not owned; nullptr = reliable).
  void SetPolicy(FaultPolicy* policy);

  /// Frames currently queued (not yet trimmed).
  size_t pending() const;

 private:
  const std::string name_;
  mutable std::mutex mu_;
  FaultPolicy* policy_ = nullptr;
  std::map<uint64_t, ShipFrame> frames_;
};

}  // namespace llb

#endif  // LLB_SHIP_SHIP_CHANNEL_H_
