#include "ship/log_shipper.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "io/durable_cursor.h"

namespace llb {

LogShipper::LogShipper(Env* env, std::string primary_name, LogManager* log,
                       ShipChannel* channel, const ShipperOptions& options)
    : env_(env),
      primary_name_(std::move(primary_name)),
      log_(log),
      channel_(channel),
      options_(options) {}

LogShipper::~LogShipper() { Detach(); }

Status LogShipper::Attach() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (attached_) {
      return Status::FailedPrecondition("shipper already attached");
    }

    cursor_seq_ = 0;
    cursor_lsn_ = 0;
    // Frames left queued by a prior Detach were never durably sent, so the
    // cursor still covers them; the catch-up scan below re-ships that
    // ground under fresh seqs.
    outbox_.clear();
    Result<std::string> payload =
        DurableCursor::Load(env_, CursorName(primary_name_));
    if (payload.ok()) {
      SliceReader reader{Slice(*payload)};
      uint64_t seq = 0;
      uint64_t lsn = 0;
      if (reader.ReadFixed64(&seq) && reader.ReadFixed64(&lsn) &&
          reader.remaining() == 0) {
        cursor_seq_ = seq;
        cursor_lsn_ = lsn;
      }
      // A malformed payload falls through to a from-scratch re-ship: safe,
      // because the applier dedups by LSN.
    } else if (!payload.status().IsNotFound() &&
               !payload.status().IsCorruption()) {
      return payload.status();
    }
    next_seq_ = cursor_seq_ + 1;
    stats_.last_shipped_lsn = cursor_lsn_;
  }

  // Install the observer FIRST, atomically learning the durable LSN at
  // the moment of installation: every seal <= `durable` happened before
  // the observer existed (the catch-up scan below covers it), every seal
  // after fires the observer. A Force() concurrent with Attach is safe —
  // no seal can land in the gap between scan and install, because there
  // is no such gap anymore.
  //
  // Lock order is log mutex -> shipper mutex (the observer runs under the
  // log mutex and takes the shipper mutex), so the observer must be
  // installed while NOT holding the shipper mutex.
  Lsn durable = log_->InstallSealObserver([this](const SealedSegment& segment) {
    std::lock_guard<std::mutex> inner(mu_);
    ++stats_.segments_sealed;
    ShipFrame frame;
    frame.seq = next_seq_++;
    frame.first_lsn = segment.first_lsn;
    frame.last_lsn = segment.last_lsn;
    frame.bytes = segment.bytes;
    outbox_.push_back(std::move(frame));
  });

  // Catch up: records sealed while no shipper was attached (or re-sealed
  // ground lost to a crash before the cursor advanced). Scanned outside
  // the shipper mutex; the log scan reads a durable snapshot. Concurrent
  // seals enqueue frames meanwhile — all strictly above `durable`, so the
  // ranges never overlap.
  std::string catchup;
  Lsn catchup_first = kInvalidLsn;
  Lsn catchup_last = kInvalidLsn;
  Lsn resume_from = cursor_lsn_ + 1;
  Status scanned = Status::OK();
  if (durable >= resume_from) {
    scanned = log_->Scan(resume_from, [&](const LogRecord& rec) {
      if (rec.lsn > durable) return Status::OK();
      if (catchup_first == kInvalidLsn) catchup_first = rec.lsn;
      catchup_last = rec.lsn;
      rec.EncodeTo(&catchup);
      return Status::OK();
    });
  }
  if (!scanned.ok()) {
    // Roll the install back; frames a racing seal already queued are
    // cleared by the next Attach.
    log_->SetSealObserver(nullptr);
    return scanned;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!catchup.empty()) {
      ShipFrame frame;
      frame.seq = next_seq_++;
      frame.first_lsn = catchup_first;
      frame.last_lsn = catchup_last;
      frame.bytes = std::move(catchup);
      // Front of the outbox: observer frames that raced the scan carry
      // strictly higher LSNs, and Pump's cursor must never advance past
      // LSNs that are not yet in the channel.
      outbox_.push_front(std::move(frame));
      ++stats_.resyncs;
    }
    attached_ = true;
  }
  return Status::OK();
}

void LogShipper::Detach() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!attached_) return;
    attached_ = false;
  }
  // Same lock-order rule as Attach: drop the shipper mutex before taking
  // the log mutex. SetSealObserver still blocks until any in-flight seal
  // (and its observer call) drains, so no observer runs after this
  // returns; a seal that races the flip at worst queues one frame that
  // the next Attach clears and re-covers via its catch-up scan.
  log_->SetSealObserver(nullptr);
}

Status LogShipper::Resync(Lsn from_lsn) {
  Lsn durable = log_->durable_lsn();
  if (durable < from_lsn || from_lsn == kInvalidLsn) return Status::OK();
  std::string bytes;
  Lsn first = kInvalidLsn;
  Lsn last = kInvalidLsn;
  LLB_RETURN_IF_ERROR(log_->Scan(from_lsn, [&](const LogRecord& rec) {
    if (rec.lsn > durable) return Status::OK();
    if (first == kInvalidLsn) first = rec.lsn;
    last = rec.lsn;
    rec.EncodeTo(&bytes);
    return Status::OK();
  }));
  if (bytes.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  ShipFrame frame;
  frame.seq = next_seq_++;
  frame.first_lsn = first;
  frame.last_lsn = last;
  frame.bytes = std::move(bytes);
  outbox_.push_back(std::move(frame));
  ++stats_.resyncs;
  return Status::OK();
}

Status LogShipper::SendWithRetry(const ShipFrame& frame) {
  Status last;
  for (uint32_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      if (options_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.backoff_ms << (attempt - 1)));
      }
    }
    last = channel_->Send(frame);
    if (last.ok()) return last;
  }
  ++stats_.send_failures;
  return last;
}

Status LogShipper::SaveCursor(uint64_t seq, Lsn lsn) {
  std::string payload;
  PutFixed64(&payload, seq);
  PutFixed64(&payload, lsn);
  return DurableCursor::Save(env_, CursorName(primary_name_), Slice(payload));
}

Status LogShipper::Pump() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!outbox_.empty()) {
    // Sends run without the mutex so the seal observer (under the log
    // mutex) never waits on channel IO.
    ShipFrame frame = outbox_.front();
    lock.unlock();
    Status s = SendWithRetry(frame);
    if (!s.ok()) return s;  // frame stays queued for the next Pump
    Status saved = SaveCursor(frame.seq, frame.last_lsn);
    if (!saved.ok()) return saved;
    lock.lock();
    outbox_.pop_front();
    cursor_seq_ = frame.seq;
    cursor_lsn_ = frame.last_lsn;
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.bytes.size();
    stats_.last_shipped_lsn = frame.last_lsn;
  }
  return Status::OK();
}

size_t LogShipper::backlog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outbox_.size();
}

ShipStats LogShipper::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace llb
