#ifndef LLB_IO_TRANSFER_PIPELINE_H_
#define LLB_IO_TRANSFER_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "io/sweep_pool.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace llb {

/// A contiguous run of pages inside one partition — the unit of bulk
/// movement: one latch acquisition and one vectored device IO per side.
struct TransferRun {
  PartitionId partition = 0;
  uint32_t first_page = 0;
  uint32_t count = 0;
};

/// An ordered list of runs to move. Plans are cheap value types built by
/// the caller (backup sweep step, restore chain member, scrub repair
/// range) and handed to a TransferPipeline for execution.
class TransferPlan {
 public:
  /// Appends maximal contiguous runs covering the positions of
  /// [from, to) in `partition` that `page_filter` accepts (sorted page
  /// list; nullptr = every position), chopped at `batch_pages`.
  void AddRange(PartitionId partition, uint32_t from, uint32_t to,
                const std::vector<uint32_t>* page_filter,
                uint32_t batch_pages);

  /// Appends runs coalescing a sorted page-id list (partition-major):
  /// adjacent ids in the same partition merge into one run, again
  /// chopped at `batch_pages`. Scattered ids (incremental deltas, scrub
  /// damage) become many short runs — exactly the split the device needs.
  void AddPages(const std::vector<PageId>& pages, uint32_t batch_pages);

  /// Appends one run verbatim (scrub repairs execute one latched run at
  /// a time).
  void AddRun(const TransferRun& run) { runs_.push_back(run); }

  const std::vector<TransferRun>& runs() const { return runs_; }
  uint64_t pages() const;
  bool empty() const { return runs_.empty(); }

 private:
  std::vector<TransferRun> runs_;
};

/// Counters a pipeline accumulates across Run/RunParallel calls. All
/// updates happen under an internal mutex, so snapshots are safe while
/// transfers are still executing on other threads.
struct TransferStats {
  uint64_t pages_moved = 0;
  /// Batched runs moved by the batch_pages > 1 path; each is one
  /// store-latch acquisition plus one device IO on its side of the
  /// pipeline (per-page mode keeps these at 0, like the legacy sweep).
  uint64_t read_batches = 0;
  uint64_t write_batches = 0;
  /// Wall-clock time inside the read / write stages, in microseconds.
  /// With pipelining the stages overlap, so their sum can exceed the
  /// transfer's elapsed time.
  uint64_t read_stage_us = 0;
  uint64_t write_stage_us = 0;
  /// Transient threads created because no SweepThreadPool was attached
  /// (std::thread per parallel worker, std::async per prefetch).
  uint64_t threads_spawned = 0;
  /// Pages dropped by the skip predicate at execution time (instant
  /// restore's background sweep skips pages already faulted in).
  uint64_t pages_skipped = 0;

  void MergeFrom(const TransferStats& other);
};

struct TransferOptions {
  /// Pages per batched device IO. <= 1 selects the legacy per-page mode:
  /// one ReadPage + one WritePage (seal + write + sync) per page, byte-
  /// and fault-sequence-compatible with the historical copy loops. > 1
  /// moves each run with one PageStore::ReadRun and one
  /// PageStore::WriteSealedRun.
  uint32_t batch_pages = 1;
  /// Double-buffered prefetch inside Run (only effective with
  /// batch_pages > 1): a reader stage fills run N+1 from the source
  /// while the writer stage flushes run N to the destination. Prefetch
  /// never reaches past the plan handed to Run, so callers bound what
  /// may be read ahead (the backup sweep passes one step's Doubt window
  /// at a time).
  bool pipelined = false;
  /// Deep-queue asynchronous IO (only effective with batch_pages > 1,
  /// where it supersedes `pipelined`): each worker moves windows of up
  /// to queue_depth runs with every read, then every write, in flight
  /// at once through PageStore's async reader/writer (Env::OpenAsync —
  /// io_uring on capable kernels, the portable thread pool elsewhere).
  /// Replaces the 1-deep prefetch with an N-deep device queue; like
  /// prefetch, a window never reaches past the plan handed in, so the
  /// read-ahead bound callers rely on is unchanged. <= 1 keeps the
  /// synchronous path byte-for-byte.
  uint32_t queue_depth = 0;
  /// Pool for prefetch tasks and RunParallel workers. Not owned. When
  /// null, prefetch falls back to std::async and RunParallel to
  /// transient std::threads — both counted in threads_spawned.
  SweepThreadPool* pool = nullptr;
  /// Concurrent workers for RunParallel (clamped to the number of
  /// partitions in the plan; 1 = serial).
  uint32_t workers = 1;
  /// Wraps every device IO call (run reads, run writes, per-page reads
  /// and writes). The backup sweep passes its retry policy here; null
  /// invokes the IO exactly once.
  std::function<Status(const std::function<Status()>&)> io_wrapper;
  /// Invoked between a run's read and its write with the images about to
  /// land in the destination. May mutate them (the scrubber appends
  /// identity-write log records and restamps LSNs); mutated images must
  /// be re-Sealed — batched mode writes them raw, without re-sealing.
  std::function<Status(const TransferRun&, std::vector<PageImage>*)>
      transform;
  /// Invoked after a run is durably in the destination, with the images
  /// that were written (the scrubber heals S from here).
  std::function<Status(const TransferRun&, const std::vector<PageImage>&)>
      after_run;
  /// Per-page filter re-evaluated just before each planned run executes:
  /// return true to drop the page. A partially-skipped run splits into
  /// maximal sub-runs of the surviving pages, so bulk IO stays coalesced
  /// across the gaps that remain. This is how the instant-restore
  /// background sweep excludes pages the fault path restored after the
  /// plan was built (belt and braces — the plan itself already omits
  /// restored pages).
  std::function<bool(const PageId&)> skip;
  /// Priority hook checked before each planned run: return true to stop
  /// the transfer early. The pipeline returns OK with partial progress;
  /// after_run has fired for every run that did move, so callers know
  /// exactly what landed. Instant restore points this at its
  /// fault-waiting flag so an on-demand single-page restore preempts a
  /// long background sweep at run granularity.
  std::function<bool()> pause;
};

/// Moves page runs between two PageStores over any Env: the run-oriented
/// copy engine factored out of the backup sweep (DESIGN.md "Shared
/// transfer pipeline") and shared by BackupJob (S -> B), media recovery
/// (B -> S) and the backup scrubber (S -> B repair ranges). The pipeline
/// itself knows nothing about fences, cursors or manifests — those stay
/// with the callers, wired in through the TransferOptions hooks.
///
/// Thread-safe: concurrent Run calls (the parallel backup sweep runs one
/// per partition sweeper) share only the stats, which are locked.
class TransferPipeline {
 public:
  TransferPipeline(PageStore* source, PageStore* dest,
                   TransferOptions options)
      : source_(source), dest_(dest), options_(options) {}

  TransferPipeline(const TransferPipeline&) = delete;
  TransferPipeline& operator=(const TransferPipeline&) = delete;

  /// Executes the plan's runs in order on the calling thread, double
  /// buffering reads when options.pipelined. Adds the number of pages
  /// durably written to *pages_moved (also on partial failure).
  Status Run(const TransferPlan& plan, uint64_t* pages_moved = nullptr);

  /// Shards the plan's runs by partition across up to options.workers
  /// concurrent workers (each partition's runs stay in order on one
  /// worker, so per-partition write ordering is preserved). Failure in
  /// one partition does not stop the others; the first error is
  /// returned.
  Status RunParallel(const TransferPlan& plan,
                     uint64_t* pages_moved = nullptr);

  /// Locked copy of the cumulative stats, safe mid-transfer.
  TransferStats StatsSnapshot() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 private:
  Status CallIo(const std::function<Status()>& fn) {
    return options_.io_wrapper ? options_.io_wrapper(fn) : fn();
  }

  /// Executes a span of runs serially with optional prefetch; the inner
  /// loop shared by Run and every RunParallel worker. When skip/pause
  /// hooks are set, each run is filtered and the pause hook consulted
  /// before it executes (ExecuteRunsRaw is the hook-free core).
  Status ExecuteRuns(const TransferRun* runs, size_t count,
                     uint64_t* pages_moved);
  Status ExecuteRunsRaw(const TransferRun* runs, size_t count,
                        uint64_t* pages_moved);
  /// Deep-queue path (queue_depth > 1): windows of runs move with all
  /// reads, then all writes, in flight at once. Applies the skip/pause
  /// hooks itself — pause is consulted between runs during window
  /// assembly, so a window never out-runs a pause by more than the IOs
  /// already submitted.
  Status ExecuteRunsAsync(const TransferRun* runs, size_t count,
                          uint64_t* pages_moved);
  Status ExecuteWindowAsync(PageStore::AsyncRunReader* reader,
                            PageStore::AsyncRunWriter* writer,
                            const std::vector<TransferRun>& window,
                            uint64_t* pages_moved);
  Status ExecutePerPage(const TransferRun& run, uint64_t* pages_moved);
  Status WriteRun(const TransferRun& run, std::vector<PageImage>* images,
                  uint64_t* pages_moved);

  PageStore* const source_;
  PageStore* const dest_;
  const TransferOptions options_;
  mutable std::mutex stats_mu_;
  TransferStats stats_;
};

}  // namespace llb

#endif  // LLB_IO_TRANSFER_PIPELINE_H_
