#ifndef LLB_IO_FAULT_ENV_H_
#define LLB_IO_FAULT_ENV_H_

#include <cstdint>

#include "io/env.h"

namespace llb {

/// Counts durability events without ever failing one. Crash-sweep property
/// tests first run a scenario under a RecordingInjector to learn how many
/// stable writes it performs, then re-run it once per k in [1, total] under
/// a CountdownFaultInjector(k) to crash at every possible point.
class RecordingInjector : public FaultInjector {
 public:
  bool AllowDurableEvent() override {
    ++count_;
    return true;
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Fails exactly the n-th durability event (1-based) and every one after,
/// i.e. the system crashes *during* that stable write. n == 0 is clamped
/// to 1 (crash at the very first event): the naive `n - 1` would wrap to
/// UINT64_MAX and the injector would effectively never fire.
class CrashAtEventInjector : public CountdownFaultInjector {
 public:
  explicit CrashAtEventInjector(uint64_t n)
      : CountdownFaultInjector(n == 0 ? 0 : n - 1) {}
};

}  // namespace llb

#endif  // LLB_IO_FAULT_ENV_H_
