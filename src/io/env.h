#ifndef LLB_IO_ENV_H_
#define LLB_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace llb {

class AsyncFile;
class SweepThreadPool;

/// Knobs for Env::OpenAsync (the async deep-queue IO backend; see
/// io/uring_env.h for the AsyncFile contract).
struct AsyncIoOptions {
  /// Maximum operations in flight (submitted and not yet reaped).
  uint32_t queue_depth = 8;
};

/// A caller-owned destination buffer for vectored reads.
struct IoBuffer {
  char* data = nullptr;
  size_t size = 0;
};

/// A random-access file. All engine IO (stable database, backup store,
/// recovery log) goes through this interface so that tests can interpose
/// deterministic crash/fault behavior.
///
/// Durability model: written data is volatile until Sync() succeeds.
/// A crash (Env::CrashAndRestart in the simulated env) discards all
/// unsynced data. There are no torn writes at sub-write granularity,
/// matching the paper's "I/O page atomicity" assumption: a write either
/// is entirely durable (it was followed by a successful Sync) or entirely
/// absent after a crash.
class File {
 public:
  virtual ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Reads up to n bytes at offset; appends the bytes actually available
  /// to *out (fewer than n at end of file).
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* out) const = 0;

  /// Vectored scatter read: fills `chunks` (caller-owned buffers) back to
  /// back from `offset`, as one logical read operation. Bytes past the
  /// end of the file are zero-filled — the never-written-page convention
  /// ReadAt callers implement by hand. The base implementation loops over
  /// ReadAt; environments that can do better (a single buffer scan, a
  /// single preadv) override it, so batching callers get one device IO
  /// per run instead of one per page.
  virtual Status ReadAtv(uint64_t offset,
                         const std::vector<IoBuffer>& chunks) const;

  /// Writes data at offset, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, Slice data) = 0;

  /// Vectored write: persists `chunks` back to back starting at `offset`,
  /// as one logical write operation. The base implementation loops over
  /// WriteAt; environments that can do better (a single buffer splice, a
  /// single writev) override it. Like WriteAt, the data is volatile until
  /// Sync() — batching callers pair one WriteAtv with one Sync to turn K
  /// per-page durability round trips into one.
  virtual Status WriteAtv(uint64_t offset, const std::vector<Slice>& chunks);

  /// Appends data at the current end of file.
  virtual Status Append(Slice data) = 0;

  /// Makes all previously written data durable.
  virtual Status Sync() = 0;

  virtual Result<uint64_t> Size() const = 0;

  virtual Status Truncate(uint64_t size) = 0;

 protected:
  File() = default;
};

/// Decides the fate of durability events (syncs). Used to schedule crashes
/// at precise points for recovery property tests.
class FaultInjector {
 public:
  virtual ~FaultInjector();
  /// Called before each durability event. Returning false makes the event
  /// (and all subsequent IO until restart) fail with IoError.
  virtual bool AllowDurableEvent() = 0;
};

/// Fails every durability event from the (count+1)-th onward.
class CountdownFaultInjector : public FaultInjector {
 public:
  explicit CountdownFaultInjector(uint64_t allowed) : remaining_(allowed) {}
  bool AllowDurableEvent() override {
    if (remaining_ == 0) return false;
    --remaining_;
    return true;
  }
  uint64_t remaining() const { return remaining_; }

 private:
  uint64_t remaining_;
};

/// File-system environment.
class Env {
 public:
  virtual ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Opens (or creates, if create is true) a file. The returned file stays
  /// valid across CrashAndRestart (its contents revert to the durable
  /// image).
  virtual Result<std::shared_ptr<File>> OpenFile(const std::string& name,
                                                 bool create) = 0;

  virtual Status DeleteFile(const std::string& name) = 0;
  virtual bool FileExists(const std::string& name) const = 0;
  virtual std::vector<std::string> ListFiles() const = 0;

  /// Atomically replaces `dst` with `src` (which must exist). After a
  /// crash, `dst` holds either its old contents or the durable contents
  /// of `src` — never a mix; this is the publish step of the
  /// write-tmp/sync/rename pattern (DurableCursor). The base
  /// implementation copies durably and deletes the source, which is
  /// atomic on the single-writer engine files it is used for;
  /// environments with a native atomic rename override it.
  virtual Status RenameFile(const std::string& src, const std::string& dst);

  /// Opens `name` for asynchronous deep-queue IO: up to
  /// options.queue_depth reads/writes in flight at once, submitted and
  /// reaped in batches (io/uring_env.h documents the AsyncFile
  /// contract). This is the capability probe of the async backend — the
  /// base implementation wraps OpenFile in a portable submission-queue
  /// thread pool (one SweepThreadPool shared by all of this env's async
  /// files), so every Env is async-capable; PosixEnv overrides it with a
  /// native io_uring when the kernel grants one. Both backends have
  /// byte-identical semantics.
  virtual Result<std::shared_ptr<AsyncFile>> OpenAsync(
      const std::string& name, bool create,
      const AsyncIoOptions& options = AsyncIoOptions());

 protected:
  Env() = default;

  /// The lazily-created pool backing the default OpenAsync fallback,
  /// shared across all async files of this env so queue depth does not
  /// multiply into unbounded threads.
  std::shared_ptr<SweepThreadPool> FallbackAsyncPool(uint32_t queue_depth);

 private:
  std::mutex async_pool_mu_;
  std::shared_ptr<SweepThreadPool> async_pool_;
};

}  // namespace llb

#endif  // LLB_IO_ENV_H_
