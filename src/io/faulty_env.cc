#include "io/faulty_env.h"

#include <utility>

namespace llb {

FaultPolicy::~FaultPolicy() = default;

FaultAction ScriptedFaultPolicy::OnOp(FaultOp op, const std::string& file) {
  for (FaultPoint& point : points_) {
    if (point.countdown == 0) continue;  // already fired
    if (point.op != op) continue;
    if (!point.file_substring.empty() &&
        file.find(point.file_substring) == std::string::npos) {
      continue;
    }
    if (--point.countdown == 0) {
      ++fired_;
      return point.action;
    }
  }
  return FaultAction::kNone;
}

FaultAction RandomFaultPolicy::OnOp(FaultOp op, const std::string& file) {
  if (!file_substring_.empty() &&
      file.find(file_substring_) == std::string::npos) {
    return FaultAction::kNone;
  }
  switch (op) {
    case FaultOp::kReadAt:
      if (rng_.Bernoulli(p_.read_error)) return FaultAction::kFail;
      if (rng_.Bernoulli(p_.read_corrupt)) return FaultAction::kCorrupt;
      return FaultAction::kNone;
    case FaultOp::kWriteAt:
      return rng_.Bernoulli(p_.write_error) ? FaultAction::kFail
                                            : FaultAction::kNone;
    case FaultOp::kAppend:
      return rng_.Bernoulli(p_.append_error) ? FaultAction::kFail
                                             : FaultAction::kNone;
    case FaultOp::kSync:
      return rng_.Bernoulli(p_.sync_error) ? FaultAction::kFail
                                           : FaultAction::kNone;
  }
  return FaultAction::kNone;
}

namespace {

/// Flips one bit near the middle of `data` — enough to break a page or
/// record checksum while staying silent at the IO layer.
void FlipOneBit(std::string* data) {
  if (data->empty()) return;
  (*data)[data->size() / 2] ^= 0x10;
}

}  // namespace

/// Wraps a base file, consulting the env's policy before each operation.
class FaultyFile : public File {
 public:
  FaultyFile(FaultyEnv* env, std::string name, std::shared_ptr<File> base)
      : env_(env), name_(std::move(name)), base_(std::move(base)) {}

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    switch (env_->Decide(FaultOp::kReadAt, name_)) {
      case FaultAction::kFail:
        return Status::IoError("injected transient read fault: " + name_);
      case FaultAction::kCorrupt: {
        size_t before = out->size();
        LLB_RETURN_IF_ERROR(base_->ReadAt(offset, n, out));
        if (out->size() > before) {
          (*out)[before + (out->size() - before) / 2] ^= 0x10;
        }
        return Status::OK();
      }
      case FaultAction::kNone:
        break;
    }
    return base_->ReadAt(offset, n, out);
  }

  /// One kReadAt decision covers the whole vectored call, mirroring
  /// WriteAtv: a scripted read fault fails the entire batch (one failed
  /// multi-page transfer), and a corrupt decision rots exactly one chunk.
  /// Countdown scripts therefore count batches, not pages, on batched
  /// sweeps.
  Status ReadAtv(uint64_t offset,
                 const std::vector<IoBuffer>& chunks) const override {
    switch (env_->Decide(FaultOp::kReadAt, name_)) {
      case FaultAction::kFail:
        return Status::IoError("injected transient read fault: " + name_);
      case FaultAction::kCorrupt: {
        LLB_RETURN_IF_ERROR(base_->ReadAtv(offset, chunks));
        // Flip one bit in the middle chunk so exactly one page of the
        // batch reads back rotten.
        if (!chunks.empty()) {
          const IoBuffer& middle = chunks[chunks.size() / 2];
          if (middle.size > 0) middle.data[middle.size / 2] ^= 0x10;
        }
        return Status::OK();
      }
      case FaultAction::kNone:
        break;
    }
    return base_->ReadAtv(offset, chunks);
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    switch (env_->Decide(FaultOp::kWriteAt, name_)) {
      case FaultAction::kFail:
        return Status::IoError("injected transient write fault: " + name_);
      case FaultAction::kCorrupt: {
        std::string rotten = data.ToString();
        FlipOneBit(&rotten);
        return base_->WriteAt(offset, Slice(rotten));
      }
      case FaultAction::kNone:
        break;
    }
    return base_->WriteAt(offset, data);
  }

  /// One kWriteAt decision covers the whole vectored call: a scripted
  /// write fault aborts (or rots) the entire batch, mirroring a device
  /// failing one multi-page transfer. Countdown scripts therefore count
  /// batches, not pages, on batched sweeps.
  Status WriteAtv(uint64_t offset,
                  const std::vector<Slice>& chunks) override {
    switch (env_->Decide(FaultOp::kWriteAt, name_)) {
      case FaultAction::kFail:
        return Status::IoError("injected transient write fault: " + name_);
      case FaultAction::kCorrupt: {
        // Flip one bit in the middle chunk so exactly one page of the
        // batch rots silently.
        std::vector<Slice> rotten = chunks;
        std::string middle;
        if (!chunks.empty()) {
          middle = chunks[chunks.size() / 2].ToString();
          FlipOneBit(&middle);
          rotten[chunks.size() / 2] = Slice(middle);
        }
        return base_->WriteAtv(offset, rotten);
      }
      case FaultAction::kNone:
        break;
    }
    return base_->WriteAtv(offset, chunks);
  }

  Status Append(Slice data) override {
    switch (env_->Decide(FaultOp::kAppend, name_)) {
      case FaultAction::kFail:
        return Status::IoError("injected transient append fault: " + name_);
      case FaultAction::kCorrupt: {
        std::string rotten = data.ToString();
        FlipOneBit(&rotten);
        return base_->Append(Slice(rotten));
      }
      case FaultAction::kNone:
        break;
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (env_->Decide(FaultOp::kSync, name_) == FaultAction::kFail) {
      return Status::IoError("injected transient sync fault: " + name_);
    }
    return base_->Sync();
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  FaultyEnv* const env_;
  const std::string name_;
  const std::shared_ptr<File> base_;
};

Result<std::shared_ptr<File>> FaultyEnv::OpenFile(const std::string& name,
                                                  bool create) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> base,
                       base_->OpenFile(name, create));
  return std::shared_ptr<File>(
      std::make_shared<FaultyFile>(this, name, std::move(base)));
}

Status FaultyEnv::DeleteFile(const std::string& name) {
  return base_->DeleteFile(name);
}

bool FaultyEnv::FileExists(const std::string& name) const {
  return base_->FileExists(name);
}

std::vector<std::string> FaultyEnv::ListFiles() const {
  return base_->ListFiles();
}

void FaultyEnv::SetPolicy(FaultPolicy* policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
}

FaultyEnvStats FaultyEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultAction FaultyEnv::Decide(FaultOp op, const std::string& file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (policy_ == nullptr) return FaultAction::kNone;
  FaultAction action = policy_->OnOp(op, file);
  switch (action) {
    case FaultAction::kNone:
      break;
    case FaultAction::kCorrupt:
      ++stats_.corruptions;
      break;
    case FaultAction::kFail:
      switch (op) {
        case FaultOp::kReadAt: ++stats_.read_faults; break;
        case FaultOp::kWriteAt: ++stats_.write_faults; break;
        case FaultOp::kAppend: ++stats_.append_faults; break;
        case FaultOp::kSync: ++stats_.sync_faults; break;
      }
      break;
  }
  return action;
}

}  // namespace llb
