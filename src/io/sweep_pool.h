#ifndef LLB_IO_SWEEP_POOL_H_
#define LLB_IO_SWEEP_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace llb {

/// A persistent pool of sweep workers shared by all backup work of one
/// database. Replaces the one-std::async-per-run prefetch thread churn
/// (ROADMAP PR 3 follow-up: "persistent reader thread"): threads are
/// created once — lazily, via Grow — and reused across every backup run,
/// so a fully pipelined sweep spawns zero transient threads.
///
/// Two submission paths with different blocking behavior:
///  - Submit() enqueues unconditionally, blocking while the bounded run
///    queue is full. Safe ONLY from threads outside the pool (the backup
///    driver); a pool worker calling it could deadlock the pool.
///  - TrySubmit() enqueues only if an idle worker can take the task right
///    now, else declines. This is the path for nested work (a partition
///    sweep running ON a worker submitting its read-ahead): when the pool
///    is saturated the caller falls back to doing the work inline, which
///    degrades throughput but can never deadlock.
///
/// Task results are Status futures; a task must not throw.
class SweepThreadPool {
 public:
  /// Creates a pool with `threads` workers (may be 0; Grow adds more).
  explicit SweepThreadPool(size_t threads = 0);

  /// Joins all workers. Pending queued tasks are still run to completion
  /// first — their futures stay valid.
  ~SweepThreadPool();

  SweepThreadPool(const SweepThreadPool&) = delete;
  SweepThreadPool& operator=(const SweepThreadPool&) = delete;

  /// Ensures the pool has at least `threads` workers. The pool never
  /// shrinks: a database that once ran an 8-way sweep keeps 8 workers
  /// parked (they cost an idle condvar wait each).
  void Grow(size_t threads);

  /// Enqueues a task, blocking while the run queue is at capacity.
  /// Must not be called from a pool worker thread.
  std::future<Status> Submit(std::function<Status()> fn);

  /// Enqueues a task only if an idle worker is available to start it
  /// immediately. Returns false (and leaves *out untouched) otherwise.
  /// Safe to call from pool worker threads.
  bool TrySubmit(std::function<Status()> fn, std::future<Status>* out);

  size_t threads() const;
  uint64_t tasks_run() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / stop
  std::condition_variable space_cv_;  // submitters wait for queue space
  std::deque<std::packaged_task<Status()>> queue_;
  std::vector<std::thread> workers_;
  size_t busy_ = 0;       // workers currently running a task
  uint64_t tasks_run_ = 0;
  bool stop_ = false;
};

}  // namespace llb

#endif  // LLB_IO_SWEEP_POOL_H_
