#ifndef LLB_IO_LATENCY_ENV_H_
#define LLB_IO_LATENCY_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"

namespace llb {

/// Device-shape parameters for LatencyEnv. Every IO charges one seek plus
/// a bandwidth-proportional transfer; Sync charges its own (typically
/// larger) cost. Zero fields disable that charge, so the default profile
/// is a no-op passthrough.
struct LatencyProfile {
  /// Fixed cost per IO operation (positioning / command overhead), us.
  uint64_t seek_us = 0;
  /// Fixed cost per Sync (flush barrier), us.
  uint64_t sync_us = 0;
  /// Transfer rate; 0 means infinite bandwidth (no per-byte charge).
  uint64_t bytes_per_us = 0;

  /// A spinning disk: expensive positioning, ~100 MB/s streaming. The
  /// profile the paper's arithmetic targets — sequential sweeps win big.
  static LatencyProfile Hdd() { return {2000, 4000, 100}; }
  /// A SATA-era SSD: cheap positioning, ~500 MB/s.
  static LatencyProfile Ssd() { return {80, 200, 500}; }
  /// An NVMe drive: near-free positioning, multi-GB/s.
  static LatencyProfile Nvme() { return {10, 30, 3000}; }
};

/// Aggregate counters for all files of a LatencyEnv.
struct LatencyEnvStats {
  uint64_t ops = 0;           // IO operations charged a seek
  uint64_t bytes = 0;         // bytes transferred (reads + writes)
  uint64_t syncs = 0;         // Sync calls
  uint64_t simulated_us = 0;  // total injected sleep time
};

/// Wraps any Env and injects device-shaped latency in front of every file
/// operation: one seek charge per op (vectored ops included — that is the
/// batching payoff: K pages in one ReadAtv/WriteAtv cost one seek, not K),
/// plus a transfer charge proportional to bytes moved.
///
/// The sleep happens BEFORE the inner call, outside whatever lock the
/// inner env takes — so concurrent sweep workers overlap their simulated
/// device time instead of serializing it behind MemEnv's env-wide mutex.
/// That property is what makes parallel-sweep speedups measurable on an
/// in-memory base env.
class LatencyEnv : public Env {
 public:
  /// Does not take ownership of `base`, which must outlive this env.
  LatencyEnv(Env* base, const LatencyProfile& profile)
      : base_(base), profile_(profile) {}

  Result<std::shared_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override;
  Status DeleteFile(const std::string& name) override;
  bool FileExists(const std::string& name) const override;
  std::vector<std::string> ListFiles() const override;
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }

  const LatencyProfile& profile() const { return profile_; }
  LatencyEnvStats stats() const;

 private:
  friend class LatencyFile;

  /// Sleeps for one op's worth of simulated device time and records it.
  void ChargeOp(size_t bytes);
  void ChargeSync();

  Env* const base_;
  const LatencyProfile profile_;

  mutable std::mutex mu_;  // guards stats_ only; sleeps happen unlocked
  LatencyEnvStats stats_;
};

}  // namespace llb

#endif  // LLB_IO_LATENCY_ENV_H_
