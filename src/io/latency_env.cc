#include "io/latency_env.h"

#include <chrono>
#include <thread>
#include <utility>

namespace llb {

/// Wraps a base file, charging the env's latency profile before each op.
class LatencyFile : public File {
 public:
  LatencyFile(LatencyEnv* env, std::shared_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    env_->ChargeOp(n);
    return base_->ReadAt(offset, n, out);
  }

  Status ReadAtv(uint64_t offset,
                 const std::vector<IoBuffer>& chunks) const override {
    size_t total = 0;
    for (const IoBuffer& chunk : chunks) total += chunk.size;
    env_->ChargeOp(total);  // one seek for the whole batch
    return base_->ReadAtv(offset, chunks);
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    env_->ChargeOp(data.size());
    return base_->WriteAt(offset, data);
  }

  Status WriteAtv(uint64_t offset, const std::vector<Slice>& chunks) override {
    size_t total = 0;
    for (const Slice& chunk : chunks) total += chunk.size();
    env_->ChargeOp(total);  // one seek for the whole batch
    return base_->WriteAtv(offset, chunks);
  }

  Status Append(Slice data) override {
    env_->ChargeOp(data.size());
    return base_->Append(data);
  }

  Status Sync() override {
    env_->ChargeSync();
    return base_->Sync();
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }

 private:
  LatencyEnv* const env_;
  const std::shared_ptr<File> base_;
};

Result<std::shared_ptr<File>> LatencyEnv::OpenFile(const std::string& name,
                                                   bool create) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> base,
                       base_->OpenFile(name, create));
  return std::shared_ptr<File>(
      std::make_shared<LatencyFile>(this, std::move(base)));
}

Status LatencyEnv::DeleteFile(const std::string& name) {
  return base_->DeleteFile(name);
}

bool LatencyEnv::FileExists(const std::string& name) const {
  return base_->FileExists(name);
}

std::vector<std::string> LatencyEnv::ListFiles() const {
  return base_->ListFiles();
}

LatencyEnvStats LatencyEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LatencyEnv::ChargeOp(size_t bytes) {
  uint64_t us = profile_.seek_us;
  if (profile_.bytes_per_us > 0) us += bytes / profile_.bytes_per_us;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ops;
    stats_.bytes += bytes;
    stats_.simulated_us += us;
  }
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void LatencyEnv::ChargeSync() {
  uint64_t us = profile_.sync_us;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.syncs;
    stats_.simulated_us += us;
  }
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace llb
