#include "io/transfer_pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>

#include "common/result.h"

namespace llb {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

void TransferPlan::AddRange(PartitionId partition, uint32_t from, uint32_t to,
                            const std::vector<uint32_t>* page_filter,
                            uint32_t batch_pages) {
  const uint32_t batch = std::max<uint32_t>(1, batch_pages);
  const size_t first_new = runs_.size();
  for (uint32_t page = from; page < to; ++page) {
    if (page_filter != nullptr &&
        !std::binary_search(page_filter->begin(), page_filter->end(), page)) {
      continue;
    }
    if (runs_.size() > first_new &&
        runs_.back().first_page + runs_.back().count == page &&
        runs_.back().count < batch) {
      ++runs_.back().count;
    } else {
      runs_.push_back(TransferRun{partition, page, 1});
    }
  }
}

void TransferPlan::AddPages(const std::vector<PageId>& pages,
                            uint32_t batch_pages) {
  const uint32_t batch = std::max<uint32_t>(1, batch_pages);
  const size_t first_new = runs_.size();
  for (const PageId& id : pages) {
    if (runs_.size() > first_new && runs_.back().partition == id.partition &&
        runs_.back().first_page + runs_.back().count == id.page &&
        runs_.back().count < batch) {
      ++runs_.back().count;
    } else {
      runs_.push_back(TransferRun{id.partition, id.page, 1});
    }
  }
}

uint64_t TransferPlan::pages() const {
  uint64_t total = 0;
  for (const TransferRun& run : runs_) total += run.count;
  return total;
}

void TransferStats::MergeFrom(const TransferStats& other) {
  pages_moved += other.pages_moved;
  read_batches += other.read_batches;
  write_batches += other.write_batches;
  read_stage_us += other.read_stage_us;
  write_stage_us += other.write_stage_us;
  threads_spawned += other.threads_spawned;
  pages_skipped += other.pages_skipped;
}

Status TransferPipeline::ExecutePerPage(const TransferRun& run,
                                        uint64_t* pages_moved) {
  // Legacy mode: the exact IO sequence of the historical copy loops —
  // one checksum-verified ReadPage and one seal + write + sync WritePage
  // per page — so scripted fault countdowns and recorded durability-event
  // sequences stay stable at batch_pages = 1.
  for (uint32_t i = 0; i < run.count; ++i) {
    PageId id{run.partition, run.first_page + i};
    PageImage image;
    LLB_RETURN_IF_ERROR(
        CallIo([&] { return source_->ReadPage(id, &image); }));
    if (options_.transform) {
      std::vector<PageImage> one(1, image);
      TransferRun single{run.partition, id.page, 1};
      LLB_RETURN_IF_ERROR(options_.transform(single, &one));
      image = std::move(one.front());
    }
    LLB_RETURN_IF_ERROR(CallIo([&] { return dest_->WritePage(id, image); }));
    if (options_.after_run) {
      TransferRun single{run.partition, id.page, 1};
      LLB_RETURN_IF_ERROR(
          options_.after_run(single, std::vector<PageImage>(1, image)));
    }
    ++*pages_moved;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.pages_moved;
    }
  }
  return Status::OK();
}

Status TransferPipeline::WriteRun(const TransferRun& run,
                                  std::vector<PageImage>* images,
                                  uint64_t* pages_moved) {
  if (options_.transform) {
    LLB_RETURN_IF_ERROR(options_.transform(run, images));
  }
  auto started = std::chrono::steady_clock::now();
  LLB_RETURN_IF_ERROR(CallIo([&] {
    return dest_->WriteSealedRun(run.partition, run.first_page, *images);
  }));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.write_batches;
    stats_.write_stage_us += ElapsedUs(started);
    stats_.pages_moved += images->size();
  }
  *pages_moved += images->size();
  if (options_.after_run) {
    LLB_RETURN_IF_ERROR(options_.after_run(run, *images));
  }
  return Status::OK();
}

Status TransferPipeline::ExecuteWindowAsync(
    PageStore::AsyncRunReader* reader, PageStore::AsyncRunWriter* writer,
    const std::vector<TransferRun>& window, uint64_t* pages_moved) {
  if (window.empty()) return Status::OK();

  // Read phase: every run of the window in flight at once, one reap.
  // Retried as a unit by the io_wrapper — reads are idempotent and
  // ReapAll always drains the queue, so a retry starts clean.
  std::vector<std::vector<PageImage>> images(window.size());
  auto read_window = [&]() -> Status {
    auto started = std::chrono::steady_clock::now();
    for (size_t i = 0; i < window.size(); ++i) {
      Status submitted = reader->SubmitRead(
          window[i].partition, window[i].first_page, window[i].count, i);
      if (!submitted.ok()) {
        // Earlier reads of this window may already be in flight: drain
        // them (results discarded) so the retry genuinely starts with an
        // empty queue instead of hitting "async reader full".
        std::vector<PageStore::AsyncRunResult> discard;
        reader->ReapAll(&discard);
        return submitted;
      }
    }
    std::vector<PageStore::AsyncRunResult> results;
    Status reaped = reader->ReapAll(&results);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.read_batches += window.size();
      stats_.read_stage_us += ElapsedUs(started);
    }
    LLB_RETURN_IF_ERROR(reaped);
    for (PageStore::AsyncRunResult& result : results) {
      LLB_RETURN_IF_ERROR(result.status);
      images[result.tag] = std::move(result.images);
    }
    return Status::OK();
  };
  LLB_RETURN_IF_ERROR(CallIo(read_window));

  for (size_t i = 0; i < window.size(); ++i) {
    if (options_.transform) {
      LLB_RETURN_IF_ERROR(options_.transform(window[i], &images[i]));
    }
  }

  // Write phase: the whole window in flight, one durability barrier per
  // touched partition. Also retried as a unit — rewriting the same
  // sealed bytes to the same slots is idempotent.
  auto write_window = [&]() -> Status {
    auto started = std::chrono::steady_clock::now();
    std::vector<PageStore::SealedRunWrite> writes;
    writes.reserve(window.size());
    for (size_t i = 0; i < window.size(); ++i) {
      writes.push_back(PageStore::SealedRunWrite{
          window[i].partition, window[i].first_page, &images[i], i});
    }
    std::vector<PageStore::AsyncRunResult> results;
    Status window_status = writer->WriteWindow(writes, &results);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.write_batches += window.size();
      stats_.write_stage_us += ElapsedUs(started);
    }
    LLB_RETURN_IF_ERROR(window_status);
    for (const PageStore::AsyncRunResult& result : results) {
      LLB_RETURN_IF_ERROR(result.status);
    }
    return Status::OK();
  };
  LLB_RETURN_IF_ERROR(CallIo(write_window));

  // Durable: count pages and fire after_run in plan order.
  for (size_t i = 0; i < window.size(); ++i) {
    *pages_moved += images[i].size();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.pages_moved += images[i].size();
    }
    if (options_.after_run) {
      LLB_RETURN_IF_ERROR(options_.after_run(window[i], images[i]));
    }
  }
  return Status::OK();
}

Status TransferPipeline::ExecuteRunsAsync(const TransferRun* runs,
                                          size_t count,
                                          uint64_t* pages_moved) {
  const uint32_t depth = options_.queue_depth;
  std::unique_ptr<PageStore::AsyncRunReader> reader =
      source_->NewAsyncReader(depth);
  std::unique_ptr<PageStore::AsyncRunWriter> writer =
      dest_->NewAsyncWriter(depth);

  std::vector<TransferRun> window;
  window.reserve(depth);
  for (size_t i = 0; i < count; ++i) {
    if (options_.pause && options_.pause()) {
      return ExecuteWindowAsync(reader.get(), writer.get(), window,
                                pages_moved);
    }
    if (!options_.skip) {
      window.push_back(runs[i]);
    } else {
      // Re-evaluate the skip predicate just before the run moves,
      // splitting it into maximal sub-runs of still-wanted pages (same
      // contract as the synchronous hooked path).
      uint64_t skipped = 0;
      size_t first_sub = window.size();
      for (uint32_t k = 0; k < runs[i].count; ++k) {
        const uint32_t page = runs[i].first_page + k;
        if (options_.skip(PageId{runs[i].partition, page})) {
          ++skipped;
          continue;
        }
        if (window.size() > first_sub &&
            window.back().first_page + window.back().count == page) {
          ++window.back().count;
        } else {
          window.push_back(TransferRun{runs[i].partition, page, 1});
        }
      }
      if (skipped != 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.pages_skipped += skipped;
      }
    }
    while (window.size() >= depth) {
      std::vector<TransferRun> full(window.begin(), window.begin() + depth);
      window.erase(window.begin(), window.begin() + depth);
      LLB_RETURN_IF_ERROR(
          ExecuteWindowAsync(reader.get(), writer.get(), full, pages_moved));
    }
  }
  return ExecuteWindowAsync(reader.get(), writer.get(), window, pages_moved);
}

Status TransferPipeline::ExecuteRuns(const TransferRun* runs, size_t count,
                                     uint64_t* pages_moved) {
  if (options_.queue_depth > 1 && options_.batch_pages > 1) {
    return ExecuteRunsAsync(runs, count, pages_moved);
  }
  if (!options_.skip && !options_.pause) {
    return ExecuteRunsRaw(runs, count, pages_moved);
  }
  // Hooked mode: consult the pause hook between planned runs (priority
  // yield, run granularity) and re-evaluate the skip predicate against
  // each run just before it moves, splitting it into maximal sub-runs of
  // still-wanted pages. Prefetch overlaps within one planned run's
  // sub-runs; cross-run prefetch is given up so a pause can never have
  // speculatively read past the stop point.
  for (size_t i = 0; i < count; ++i) {
    if (options_.pause && options_.pause()) return Status::OK();
    if (!options_.skip) {
      LLB_RETURN_IF_ERROR(ExecuteRunsRaw(&runs[i], 1, pages_moved));
      continue;
    }
    std::vector<TransferRun> sub;
    uint64_t skipped = 0;
    for (uint32_t k = 0; k < runs[i].count; ++k) {
      const uint32_t page = runs[i].first_page + k;
      if (options_.skip(PageId{runs[i].partition, page})) {
        ++skipped;
        continue;
      }
      if (!sub.empty() &&
          sub.back().first_page + sub.back().count == page) {
        ++sub.back().count;
      } else {
        sub.push_back(TransferRun{runs[i].partition, page, 1});
      }
    }
    if (skipped != 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.pages_skipped += skipped;
    }
    if (!sub.empty()) {
      LLB_RETURN_IF_ERROR(ExecuteRunsRaw(sub.data(), sub.size(), pages_moved));
    }
  }
  return Status::OK();
}

Status TransferPipeline::ExecuteRunsRaw(const TransferRun* runs, size_t count,
                                        uint64_t* pages_moved) {
  if (options_.batch_pages <= 1) {
    for (size_t i = 0; i < count; ++i) {
      LLB_RETURN_IF_ERROR(ExecutePerPage(runs[i], pages_moved));
    }
    return Status::OK();
  }

  // Reader stage: one latched, checksum-verified vectored read per run.
  // Runs on a prefetch thread when pipelined; the io_wrapper and the
  // stats counters are locked, so the two stages may overlap freely.
  auto read_run = [this](TransferRun run) -> Result<std::vector<PageImage>> {
    auto started = std::chrono::steady_clock::now();
    std::vector<PageImage> images;
    Status s = CallIo([&] {
      return source_->ReadRun(run.partition, run.first_page, run.count,
                              &images);
    });
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.read_batches;
      stats_.read_stage_us += ElapsedUs(started);
    }
    if (!s.ok()) return s;
    return images;
  };

  // Prefetch slot: a pool task filling a shared buffer when a pool is
  // attached (zero transient threads), else a std::async thread counted
  // in threads_spawned. When the pool is saturated (its workers are all
  // busy running partition sweeps), TrySubmit declines and the next read
  // simply happens inline — slower, never deadlocked.
  using RunImages = Result<std::vector<PageImage>>;
  std::shared_ptr<RunImages> pool_slot;
  std::future<Status> pool_prefetch;
  std::future<RunImages> async_prefetch;

  Status result;
  for (size_t i = 0; i < count && result.ok(); ++i) {
    RunImages batch = [&]() -> RunImages {
      if (pool_prefetch.valid()) {
        Status done = pool_prefetch.get();  // slot is filled once this returns
        (void)done;                         // same status lives in the slot
        return std::move(*pool_slot);
      }
      if (async_prefetch.valid()) return async_prefetch.get();
      return read_run(runs[i]);
    }();
    // Kick off the next read before draining this batch to the
    // destination: the writer stage below overlaps the reader stage
    // filling buffer N+1.
    if (options_.pipelined && i + 1 < count) {
      const TransferRun next_run = runs[i + 1];
      if (options_.pool != nullptr) {
        auto slot = std::make_shared<RunImages>(
            Status::Internal("prefetch task never ran"));
        std::future<Status> future;
        if (options_.pool->TrySubmit(
                [slot, read_run, next_run] {
                  *slot = read_run(next_run);
                  return slot->status();
                },
                &future)) {
          pool_slot = std::move(slot);
          pool_prefetch = std::move(future);
        }
      } else {
        async_prefetch = std::async(std::launch::async, read_run, next_run);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.threads_spawned;
      }
    }
    if (!batch.ok()) {
      result = batch.status();
      break;
    }
    result = WriteRun(runs[i], &batch.value(), pages_moved);
  }
  // Drain any in-flight prefetch before returning: its task captures
  // `this`, which an error return would otherwise let the caller destroy
  // while a pool worker is still reading. (The std::async future's
  // destructor blocks on its own.)
  if (pool_prefetch.valid()) pool_prefetch.wait();
  return result;
}

Status TransferPipeline::Run(const TransferPlan& plan,
                             uint64_t* pages_moved) {
  uint64_t moved = 0;
  Status s = ExecuteRuns(plan.runs().data(), plan.runs().size(), &moved);
  if (pages_moved != nullptr) *pages_moved += moved;
  return s;
}

Status TransferPipeline::RunParallel(const TransferPlan& plan,
                                     uint64_t* pages_moved) {
  // Group runs by partition, preserving their order within each group:
  // every partition stays single-writer, so parallel output is byte-
  // identical to serial (the partition stores serialize per-partition
  // anyway — cross-partition concurrency is where the device overlap is).
  std::vector<std::vector<TransferRun>> groups;
  for (const TransferRun& run : plan.runs()) {
    if (groups.empty() || groups.back().front().partition != run.partition) {
      groups.emplace_back();
    }
    groups.back().push_back(run);
  }

  const uint32_t workers =
      std::min<uint32_t>(std::max<uint32_t>(1, options_.workers),
                         static_cast<uint32_t>(groups.size()));
  if (workers <= 1) return Run(plan, pages_moved);

  // Workers claim the next unmoved partition group from a shared
  // counter. A failed group does not stop the others — each partition's
  // pages land or fail independently, and the first error is returned.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto moved_total = std::make_shared<std::atomic<uint64_t>>(0);
  auto worker = [this, next, moved_total, &groups]() -> Status {
    Status result;
    for (size_t g = next->fetch_add(1); g < groups.size();
         g = next->fetch_add(1)) {
      uint64_t moved = 0;
      Status s =
          ExecuteRuns(groups[g].data(), groups[g].size(), &moved);
      moved_total->fetch_add(moved);
      if (result.ok() && !s.ok()) result = s;
    }
    return result;
  };

  Status result;
  if (options_.pool != nullptr) {
    options_.pool->Grow(workers);
    std::vector<std::future<Status>> futures;
    futures.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      futures.push_back(options_.pool->Submit(worker));
    }
    for (std::future<Status>& future : futures) {
      Status s = future.get();
      if (result.ok() && !s.ok()) result = s;
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.threads_spawned += workers;
    }
    std::vector<Status> results(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      threads.emplace_back([&results, &worker, i]() { results[i] = worker(); });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& s : results) {
      if (result.ok() && !s.ok()) result = s;
    }
  }
  if (pages_moved != nullptr) *pages_moved += moved_total->load();
  return result;
}

}  // namespace llb
