#ifndef LLB_IO_POSIX_ENV_H_
#define LLB_IO_POSIX_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"

namespace llb {

/// A real file-backed environment: every engine file lives as one flat
/// file under a root directory, and IO goes straight to the kernel via
/// pread/pwrite/pwritev/preadv with fdatasync for durability. This is
/// what moves benchmarks and smoke runs off the zero-latency MemEnv and
/// onto device-shaped IO (ROADMAP: "BENCH_backup.json numbers
/// device-shaped").
///
/// Durability model: identical contract to MemEnv — written data is
/// volatile until Sync() (fdatasync) returns. There is no simulated
/// CrashAndRestart; crash testing stays on MemEnv, where the durable/
/// volatile split is observable.
///
/// Thread-safety: positional reads and writes go through concurrently
/// (pread/pwrite are atomic at the syscall level); Append serializes on a
/// per-file mutex because it must read-modify the end-of-file position.
struct PosixEnvOptions {
  /// Also open each file with O_DIRECT and route page-aligned IO
  /// through it (bounced via an aligned buffer), bypassing the page
  /// cache so throughput numbers reflect the device. Falls back to
  /// buffered IO silently when the kernel/filesystem refuses O_DIRECT
  /// or an op is not 4 KB-aligned.
  bool direct_io = false;
  /// Use fdatasync instead of fsync for Sync(). fdatasync skips
  /// flushing file metadata timestamps — the right default for page
  /// stores and logs, where only data and size matter.
  bool use_fdatasync = true;
  /// Back OpenAsync with a native io_uring when the kernel grants one
  /// (UringAvailable probes once; containers often refuse via seccomp).
  /// When false — or when the probe fails — OpenAsync falls back to the
  /// portable thread-pool backend, same semantics.
  bool use_io_uring = true;
};

class PosixEnv : public Env {
 public:
  using Options = PosixEnvOptions;

  /// Opens an environment rooted at `root` (created if absent). Engine
  /// file names map to `root`/`name`; names must be flat (no '/').
  static Result<std::unique_ptr<PosixEnv>> Open(
      const std::string& root, const Options& options = PosixEnvOptions());

  ~PosixEnv() override;

  Result<std::shared_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override;
  Status DeleteFile(const std::string& name) override;
  bool FileExists(const std::string& name) const override;
  std::vector<std::string> ListFiles() const override;

  /// Native ::rename — atomic within the root directory.
  Status RenameFile(const std::string& src, const std::string& dst) override;

  /// io_uring over the file's raw fd when options().use_io_uring and the
  /// kernel cooperates; otherwise defers to the base thread-pool backend.
  Result<std::shared_ptr<AsyncFile>> OpenAsync(
      const std::string& name, bool create,
      const AsyncIoOptions& options = AsyncIoOptions()) override;

  const std::string& root() const { return root_; }
  const Options& options() const { return options_; }

 private:
  PosixEnv(std::string root, const Options& options)
      : root_(root), options_(options) {}

  std::string PathOf(const std::string& name) const {
    return root_ + "/" + name;
  }

  const std::string root_;
  const Options options_;

  /// Open handles, shared so two OpenFile calls for one name return the
  /// same file object (the MemEnv contract PageStore relies on).
  mutable std::mutex mu_;
  std::map<std::string, std::weak_ptr<File>> files_;
};

}  // namespace llb

#endif  // LLB_IO_POSIX_ENV_H_
