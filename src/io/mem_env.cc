#include "io/mem_env.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

namespace llb {

/// A file in MemEnv. Thread-safe: the env mutex guards all file state
/// (files are few and operations short; a single lock keeps the crash
/// transition atomic with respect to in-flight IO).
class MemFile : public File {
 public:
  explicit MemFile(MemEnv* env) : env_(env) {}

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    if (offset >= data_.size()) return Status::OK();
    size_t avail = std::min<uint64_t>(n, data_.size() - offset);
    out->append(data_.data() + offset, avail);
    return Status::OK();
  }

  Status ReadAtv(uint64_t offset,
                 const std::vector<IoBuffer>& chunks) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    for (const IoBuffer& chunk : chunks) {
      size_t avail = offset < data_.size()
                         ? std::min<uint64_t>(chunk.size, data_.size() - offset)
                         : 0;
      if (avail > 0) std::memcpy(chunk.data, data_.data() + offset, avail);
      if (avail < chunk.size) {
        std::memset(chunk.data + avail, 0, chunk.size - avail);
      }
      offset += chunk.size;
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    if (offset + data.size() > data_.size()) {
      data_.resize(offset + data.size(), '\0');
    }
    std::copy(data.data(), data.data() + data.size(), data_.begin() + offset);
    MarkDirty(offset, data.size());
    return Status::OK();
  }

  Status WriteAtv(uint64_t offset,
                  const std::vector<Slice>& chunks) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    size_t total = 0;
    for (const Slice& chunk : chunks) total += chunk.size();
    if (total == 0) return Status::OK();
    if (offset + total > data_.size()) {
      data_.resize(offset + total, '\0');
    }
    uint64_t at = offset;
    for (const Slice& chunk : chunks) {
      std::copy(chunk.data(), chunk.data() + chunk.size(),
                data_.begin() + at);
      at += chunk.size();
    }
    MarkDirty(offset, total);
    return Status::OK();
  }

  Status Append(Slice data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    MarkDirty(data_.size(), data.size());
    data_.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    uint64_t delta =
        data_.size() >= durable_.size() ? data_.size() - durable_.size() : 0;
    if (!env_->BeginDurableEvent(delta)) {
      return Status::IoError("simulated device failure at sync");
    }
    // Incremental sync: copy only the ranges written since the last sync
    // (a full `durable_ = data_` would make every 4 KB page write cost
    // O(file size)).
    durable_.resize(data_.size(), '\0');
    for (const auto& [offset, length] : dirty_ranges_) {
      size_t end = std::min(offset + length, data_.size());
      if (offset < end) {
        std::copy(data_.begin() + offset, data_.begin() + end,
                  durable_.begin() + offset);
      }
    }
    dirty_ranges_.clear();
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    return uint64_t{data_.size()};
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    if (!env_->IoAllowed()) return Status::IoError("simulated device failure");
    uint64_t old_size = data_.size();
    data_.resize(size, '\0');
    if (size > old_size) MarkDirty(old_size, size - old_size);
    return Status::OK();
  }

 private:
  friend class MemEnv;

  // mu_ held by callers.
  void MarkDirty(uint64_t offset, uint64_t length) {
    if (length == 0) return;
    // Coalesce with the previous range when adjacent/overlapping (the
    // common sequential-append pattern).
    if (!dirty_ranges_.empty()) {
      auto& [last_offset, last_length] = dirty_ranges_.back();
      if (offset <= last_offset + last_length &&
          offset + length >= last_offset) {
        uint64_t begin = std::min(last_offset, offset);
        uint64_t end = std::max(last_offset + last_length, offset + length);
        last_offset = begin;
        last_length = end - begin;
        return;
      }
    }
    dirty_ranges_.emplace_back(offset, length);
  }

  void OnCrashRestart() {
    data_ = durable_;
    dirty_ranges_.clear();
  }

  MemEnv* const env_;
  std::string data_;     // volatile contents
  std::string durable_;  // last synced snapshot
  std::vector<std::pair<uint64_t, uint64_t>> dirty_ranges_;  // since sync
};

Result<std::shared_ptr<File>> MemEnv::OpenFile(const std::string& name,
                                               bool create) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it != files_.end()) return std::shared_ptr<File>(it->second);
  if (!create) return Status::NotFound("no such file: " + name);
  auto file = std::make_shared<MemFile>(this);
  files_[name] = file;
  return std::shared_ptr<File>(file);
}

Status MemEnv::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IoAllowed()) return Status::IoError("simulated device failure");
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound("no such file: " + src);
  files_[dst] = it->second;
  files_.erase(src);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

std::vector<std::string> MemEnv::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;
}

void MemEnv::SetFaultInjector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

void MemEnv::CrashAndRestart() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, file] : files_) {
    file->OnCrashRestart();
  }
  blocked_ = false;
  injector_ = nullptr;
}

uint64_t MemEnv::durable_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_events_;
}

uint64_t MemEnv::bytes_synced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_synced_;
}

bool MemEnv::io_blocked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_;
}

bool MemEnv::BeginDurableEvent(uint64_t bytes) {
  // mu_ held by caller (file method).
  if (injector_ != nullptr && !injector_->AllowDurableEvent()) {
    blocked_ = true;
    return false;
  }
  ++durable_events_;
  bytes_synced_ += bytes;
  return true;
}

bool MemEnv::IoAllowed() const { return !blocked_; }

}  // namespace llb
