#include "io/uring_env.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define LLB_HAVE_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define LLB_HAVE_URING 0
#endif

namespace llb {

AsyncFile::~AsyncFile() = default;

AlignedIoString MakeAlignedIoString(size_t size) {
  AlignedIoString out;
  // size + alignment always exceeds the small-string buffer, so the
  // storage is heap-allocated and the aligned view survives moves.
  out.storage.resize(size + kIoAlignment);
  auto base = reinterpret_cast<uintptr_t>(out.storage.data());
  uintptr_t aligned = (base + kIoAlignment - 1) & ~uintptr_t(kIoAlignment - 1);
  out.data = out.storage.data() + (aligned - base);
  out.size = size;
  return out;
}

namespace {

/// Portable fallback: each submitted op becomes a SweepThreadPool task
/// running the synchronous File call; completions queue up locally for
/// Reap. Queue depth genuinely overlaps device time because every
/// in-flight op occupies its own pool worker (LatencyEnv sleeps there).
class ThreadPoolAsyncFile : public AsyncFile {
 public:
  ThreadPoolAsyncFile(std::shared_ptr<File> file, uint32_t queue_depth,
                      std::shared_ptr<SweepThreadPool> pool)
      : file_(std::move(file)), pool_(std::move(pool)), depth_(queue_depth) {}

  ~ThreadPoolAsyncFile() override {
    // Tasks hold `this`: wait for every dispatched op to finish before
    // the members go away. Their completions are dropped unreaped.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  Status SubmitReadAt(uint64_t offset, const IoBuffer& buffer,
                      uint64_t tag) override {
    if (buffer.data == nullptr || buffer.size == 0) {
      return Status::InvalidArgument("async read needs a non-empty buffer");
    }
    LLB_RETURN_IF_ERROR(ReserveSlot());
    pool_->Submit([this, offset, buffer, tag] {
      Status status = file_->ReadAtv(offset, {buffer});
      Complete(tag, std::move(status));
      return Status::OK();
    });
    return Status::OK();
  }

  Status SubmitWriteAt(uint64_t offset, Slice data, uint64_t tag) override {
    if (data.empty()) {
      return Status::InvalidArgument("async write needs a non-empty buffer");
    }
    LLB_RETURN_IF_ERROR(ReserveSlot());
    pool_->Submit([this, offset, data, tag] {
      Status status = file_->WriteAt(offset, data);
      Complete(tag, std::move(status));
      return Status::OK();
    });
    return Status::OK();
  }

  Status Reap(size_t min_completions,
              std::vector<AsyncIoCompletion>* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    size_t target = std::min(min_completions, pending_ + completed_.size());
    done_cv_.wait(lock, [this, target] { return completed_.size() >= target; });
    for (AsyncIoCompletion& completion : completed_) {
      out->push_back(std::move(completion));
    }
    completed_.clear();
    return Status::OK();
  }

  Status Sync() override {
    {
      // Drain the device queue (completions stay reapable), then issue
      // one durability barrier for everything written so far.
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return pending_ == 0; });
    }
    return file_->Sync();
  }

  uint32_t queue_depth() const override { return depth_; }

  size_t in_flight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_ + completed_.size();
  }

  const char* backend() const override { return "thread-pool"; }

 private:
  Status ReserveSlot() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ + completed_.size() >= depth_) {
      return Status::FailedPrecondition("async queue full: reap first");
    }
    ++pending_;
    return Status::OK();
  }

  void Complete(uint64_t tag, Status status) {
    // Notify while still holding the lock: the destructor waits on
    // done_cv_ and destroys it as soon as pending_ hits 0, so a
    // notify after unlock could touch a dead condvar.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    completed_.push_back(AsyncIoCompletion{tag, std::move(status)});
    done_cv_.notify_all();
  }

  const std::shared_ptr<File> file_;
  const std::shared_ptr<SweepThreadPool> pool_;
  const uint32_t depth_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;  // dispatched to the pool, not yet completed
  std::deque<AsyncIoCompletion> completed_;
};

}  // namespace

std::shared_ptr<AsyncFile> NewThreadPoolAsyncFile(
    std::shared_ptr<File> file, uint32_t queue_depth,
    std::shared_ptr<SweepThreadPool> pool) {
  return std::make_shared<ThreadPoolAsyncFile>(
      std::move(file), std::max<uint32_t>(1, queue_depth), std::move(pool));
}

#if LLB_HAVE_URING

namespace {

int SysUringSetup(unsigned entries, struct io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

bool UringAligned(uint64_t offset, const void* data, size_t len) {
  return offset % kIoAlignment == 0 && len % kIoAlignment == 0 &&
         reinterpret_cast<uintptr_t>(data) % kIoAlignment == 0;
}

/// Native backend: one io_uring per async file, driven with raw syscalls
/// (the toolchain has the kernel uapi header but no liburing). SQ/CQ ring
/// heads and tails are shared with the kernel, so they are accessed with
/// explicit acquire/release atomics.
class UringAsyncFile : public AsyncFile {
 public:
  UringAsyncFile(int fd, int direct_fd, uint32_t queue_depth,
                 std::function<void(uint64_t)> on_write_extent,
                 std::function<Status()> sync_fn)
      : fd_(fd),
        direct_fd_(direct_fd),
        depth_(queue_depth),
        on_write_extent_(std::move(on_write_extent)),
        sync_fn_(std::move(sync_fn)) {}

  ~UringAsyncFile() override {
    if (ring_fd_ >= 0) {
      // Drain the kernel's view of our buffers before unmapping.
      std::vector<AsyncIoCompletion> discard;
      std::unique_lock<std::mutex> lock(mu_);
      while (pending_ > 0) {
        if (!WaitLocked(&discard).ok()) break;
      }
    }
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sq_entries_ * sizeof(struct io_uring_sqe));
    }
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  Status Init() {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysUringSetup(depth_, &params);
    if (ring_fd_ < 0) {
      return Status::NotSupported(std::string("io_uring_setup: ") +
                                  std::strerror(errno));
    }
    sq_entries_ = params.sq_entries;
    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(__u32);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                                 cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return Status::NotSupported("io_uring sq mmap failed");
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return Status::NotSupported("io_uring cq mmap failed");
      }
    }
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sq_entries_ * sizeof(struct io_uring_sqe),
               PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, ring_fd_,
               IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return Status::NotSupported("io_uring sqe mmap failed");
    }
    auto* sq = static_cast<char*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    slots_.resize(depth_);
    free_slots_.reserve(depth_);
    for (uint32_t i = 0; i < depth_; ++i) free_slots_.push_back(i);
    return Status::OK();
  }

  Status SubmitReadAt(uint64_t offset, const IoBuffer& buffer,
                      uint64_t tag) override {
    if (buffer.data == nullptr || buffer.size == 0) {
      return Status::InvalidArgument("async read needs a non-empty buffer");
    }
    return SubmitOp(/*write=*/false, offset, buffer.data, buffer.size, tag);
  }

  Status SubmitWriteAt(uint64_t offset, Slice data, uint64_t tag) override {
    if (data.empty()) {
      return Status::InvalidArgument("async write needs a non-empty buffer");
    }
    return SubmitOp(/*write=*/true, offset,
                    const_cast<char*>(data.data()), data.size(), tag);
  }

  Status Reap(size_t min_completions,
              std::vector<AsyncIoCompletion>* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    size_t target = std::min(min_completions, pending_ + completed_.size());
    DrainCqLocked();
    while (completed_.size() < target) {
      LLB_RETURN_IF_ERROR(WaitLocked(nullptr));
    }
    for (AsyncIoCompletion& completion : completed_) {
      out->push_back(std::move(completion));
    }
    completed_.clear();
    return Status::OK();
  }

  Status Sync() override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      DrainCqLocked();
      while (pending_ > 0) {
        LLB_RETURN_IF_ERROR(WaitLocked(nullptr));
      }
    }
    return sync_fn_();
  }

  uint32_t queue_depth() const override { return depth_; }

  size_t in_flight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_ + completed_.size();
  }

  const char* backend() const override { return "io_uring"; }

 private:
  /// Book-keeping for one in-flight operation; user_data is the slot
  /// index so completions map back here.
  struct Op {
    uint64_t tag = 0;
    char* data = nullptr;
    size_t len = 0;
    uint64_t offset = 0;
    bool write = false;
  };

  Status SubmitOp(bool write, uint64_t offset, char* data, size_t len,
                  uint64_t tag) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_ + completed_.size() >= depth_ || free_slots_.empty()) {
      return Status::FailedPrecondition("async queue full: reap first");
    }
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = Op{tag, data, len, offset, write};

    int op_fd = fd_;
    if (direct_fd_ >= 0 && UringAligned(offset, data, len)) op_fd = direct_fd_;

    unsigned tail = *sq_tail_;  // we are the only SQ producer (mu_ held)
    unsigned index = tail & *sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = write ? IORING_OP_WRITE : IORING_OP_READ;
    sqe->fd = op_fd;
    sqe->off = offset;
    sqe->addr = reinterpret_cast<uint64_t>(data);
    sqe->len = static_cast<unsigned>(len);
    sqe->user_data = slot;
    sq_array_[index] = index;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);

    ++pending_;
    int rc = SysUringEnter(ring_fd_, 1, 0, 0);
    if (rc < 0 &&
        __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) != tail + 1) {
      // enter failed before the kernel consumed the sqe (the kernel only
      // consumes SQEs inside io_uring_enter, and sq_head has not passed
      // ours). Unpublish it by restoring the tail — safe, mu_ is held so
      // we are the only producer — then surface the failure as this op's
      // completion, keeping the error-on-Reap contract. Leaving the sqe
      // published would let the next successful enter submit it after
      // the slot (and its buffer) had been recycled.
      __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
      --pending_;
      free_slots_.push_back(slot);
      completed_.push_back(AsyncIoCompletion{
          tag, Status::IoError(std::string("io_uring_enter: ") +
                               std::strerror(errno))});
    }
    return Status::OK();
  }

  /// Consumes every posted cqe into completed_. Caller holds mu_.
  void DrainCqLocked() {
    unsigned head = *cq_head_;
    unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const struct io_uring_cqe* cqe = &cqes_[head & *cq_mask_];
      uint32_t slot = static_cast<uint32_t>(cqe->user_data);
      const Op& op = slots_[slot];
      Status status;
      if (cqe->res < 0) {
        status = Status::IoError(std::string(op.write ? "async write: "
                                                      : "async read: ") +
                                 std::strerror(-cqe->res));
      } else if (op.write) {
        if (static_cast<size_t>(cqe->res) < op.len) {
          status = Status::IoError("short async write");
        } else if (on_write_extent_) {
          on_write_extent_(op.offset + op.len);
        }
      } else if (static_cast<size_t>(cqe->res) < op.len) {
        // Past end of file: zero-fill, the never-written-page convention.
        std::memset(op.data + cqe->res, 0, op.len - cqe->res);
      }
      completed_.push_back(AsyncIoCompletion{op.tag, std::move(status)});
      free_slots_.push_back(slot);
      --pending_;
      ++head;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }

  /// Blocks in the kernel for one completion, then drains. Caller holds
  /// mu_; `discard` is unused (kept for the destructor's call shape).
  Status WaitLocked(std::vector<AsyncIoCompletion>* /*discard*/) {
    int rc = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (rc < 0 && errno != EINTR) {
      return Status::IoError(std::string("io_uring_enter(wait): ") +
                             std::strerror(errno));
    }
    DrainCqLocked();
    return Status::OK();
  }

  const int fd_;
  const int direct_fd_;
  const uint32_t depth_;
  const std::function<void(uint64_t)> on_write_extent_;
  const std::function<Status()> sync_fn_;

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  unsigned sq_entries_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Op> slots_;
  std::vector<uint32_t> free_slots_;
  size_t pending_ = 0;
  std::deque<AsyncIoCompletion> completed_;
};

}  // namespace

bool UringAvailable() {
  static const bool available = [] {
    if (std::getenv("LLB_NO_URING") != nullptr) return false;
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    int fd = SysUringSetup(4, &params);
    if (fd < 0) return false;  // old kernel, or seccomp EPERM in containers
    ::close(fd);
    return true;
  }();
  return available;
}

Result<std::shared_ptr<AsyncFile>> NewUringAsyncFile(
    int fd, int direct_fd, uint32_t queue_depth,
    std::function<void(uint64_t)> on_write_extent,
    std::function<Status()> sync_fn) {
  auto file = std::make_shared<UringAsyncFile>(
      fd, direct_fd, std::max<uint32_t>(1, queue_depth),
      std::move(on_write_extent), std::move(sync_fn));
  LLB_RETURN_IF_ERROR(file->Init());
  return {std::shared_ptr<AsyncFile>(std::move(file))};
}

#else  // !LLB_HAVE_URING

bool UringAvailable() { return false; }

Result<std::shared_ptr<AsyncFile>> NewUringAsyncFile(
    int /*fd*/, int /*direct_fd*/, uint32_t /*queue_depth*/,
    std::function<void(uint64_t)> /*on_write_extent*/,
    std::function<Status()> /*sync_fn*/) {
  return Status::NotSupported("io_uring not available on this platform");
}

#endif  // LLB_HAVE_URING

}  // namespace llb
