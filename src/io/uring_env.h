#ifndef LLB_IO_URING_ENV_H_
#define LLB_IO_URING_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "io/sweep_pool.h"

namespace llb {

/// The asynchronous deep-queue IO backend (ROADMAP "raw-speed IO
/// backend"). An AsyncFile exposes a batched submit/reap interface over
/// one engine file: up to queue_depth() operations may be in flight at
/// once, so a bulk sweep keeps the device queue deep instead of hiding
/// exactly one IO behind double buffering.
///
/// Two implementations, byte-identical in semantics and selected at
/// runtime by Env::OpenAsync:
///  * io_uring (NewUringAsyncFile) where the kernel grants it — a real
///    submission/completion ring over the raw fd, no IO threads at all;
///  * a portable submission-queue thread pool (NewThreadPoolAsyncFile)
///    everywhere else — ops dispatch to SweepThreadPool workers that run
///    the plain File calls, so MemEnv / LatencyEnv / FaultyEnv all gain
///    async semantics (and LatencyEnv's simulated device time genuinely
///    overlaps, since each in-flight op sleeps on its own worker).
///
/// Error contract: Submit* enqueues and never reports device errors —
/// a failed operation surfaces on Reap, in its completion's status
/// (tests/async_io_test.cc pins this). Submit itself fails only on
/// misuse: a full queue or an empty buffer.
///
/// Durability: like File::WriteAt, a reaped write is volatile until
/// Sync(). Sync drains every in-flight operation (their completions stay
/// reapable) and then issues one durability barrier, so N async writes
/// cost one sync instead of N.

/// One finished async operation, identified by the caller's tag.
/// (The AsyncIoOptions knobs live in io/env.h next to Env::OpenAsync.)
struct AsyncIoCompletion {
  uint64_t tag = 0;
  Status status;
};

class AsyncFile {
 public:
  virtual ~AsyncFile();

  AsyncFile(const AsyncFile&) = delete;
  AsyncFile& operator=(const AsyncFile&) = delete;

  /// Enqueues a read of buffer.size bytes at `offset` into the
  /// caller-owned buffer, which must stay valid until the completion is
  /// reaped. Bytes past end of file read as zero (the never-written-page
  /// convention, matching File::ReadAtv).
  virtual Status SubmitReadAt(uint64_t offset, const IoBuffer& buffer,
                              uint64_t tag) = 0;

  /// Enqueues a write of `data` (caller-owned until reaped) at `offset`,
  /// extending the file if needed.
  virtual Status SubmitWriteAt(uint64_t offset, Slice data, uint64_t tag) = 0;

  /// Blocks until at least min_completions operations have finished
  /// (clamped to the number in flight) and appends their completions to
  /// *out, freeing their queue slots. Completion order is not submission
  /// order — match by tag.
  virtual Status Reap(size_t min_completions,
                      std::vector<AsyncIoCompletion>* out) = 0;

  /// Drains all in-flight operations (their completions remain queued
  /// for Reap) and makes every reapable write durable.
  virtual Status Sync() = 0;

  virtual uint32_t queue_depth() const = 0;
  /// Operations submitted and not yet reaped.
  virtual size_t in_flight() const = 0;
  /// "io_uring" or "thread-pool" — surfaced by `dbtool env-caps`.
  virtual const char* backend() const = 0;

 protected:
  AsyncFile() = default;
};

/// True when this kernel lets us set up an io_uring (probed once; many
/// container seccomp policies return EPERM even on new kernels). The
/// LLB_NO_URING environment variable forces false, so the thread-pool
/// fallback is testable on uring-capable machines.
bool UringAvailable();

/// Portable fallback: async semantics over any File via a SweepThreadPool
/// whose workers run the synchronous calls. The pool is shared (the env
/// owns one for all its async files) and kept alive by the returned file.
std::shared_ptr<AsyncFile> NewThreadPoolAsyncFile(
    std::shared_ptr<File> file, uint32_t queue_depth,
    std::shared_ptr<SweepThreadPool> pool);

/// Native backend: an io_uring over `fd` (and, when >= 0, `direct_fd`
/// for 4 KB-aligned operations on O_DIRECT-capable files — buffers must
/// also be 4 KB-aligned to ride it; see MakeAlignedIoString).
/// `on_write_extent` is invoked with the end offset of each completed
/// write so the owning File can keep its cached size honest; `sync_fn`
/// supplies the durability barrier (the File's Sync). Fails if the
/// kernel refuses the ring — callers fall back to the thread pool.
Result<std::shared_ptr<AsyncFile>> NewUringAsyncFile(
    int fd, int direct_fd, uint32_t queue_depth,
    std::function<void(uint64_t)> on_write_extent,
    std::function<Status()> sync_fn);

/// IO buffer alignment required for O_DIRECT and for the uring backend's
/// direct-fd path.
inline constexpr size_t kIoAlignment = 4096;

/// A std::string whose data() is kIoAlignment-aligned (std::string has
/// no alignment guarantee, so the aligned storage is reserved explicitly
/// and the result views a suffix). Returned as the backing store plus an
/// aligned pointer/size view.
struct AlignedIoString {
  std::string storage;
  char* data = nullptr;
  size_t size = 0;
};
AlignedIoString MakeAlignedIoString(size_t size);

}  // namespace llb

#endif  // LLB_IO_URING_ENV_H_
