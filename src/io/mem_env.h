#ifndef LLB_IO_MEM_ENV_H_
#define LLB_IO_MEM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/env.h"

namespace llb {

class MemFile;

/// In-memory environment with an explicit durable/volatile split and
/// deterministic crash simulation:
///
///  * each file keeps volatile contents plus the last synced (durable)
///    snapshot;
///  * `CrashAndRestart()` reverts every file to its durable snapshot,
///    simulating loss of all unflushed state;
///  * an optional FaultInjector can veto durability events, after which
///    the whole env rejects IO until CrashAndRestart — this is how the
///    recovery property tests sweep "crash after the k-th stable write".
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Result<std::shared_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override;
  Status DeleteFile(const std::string& name) override;
  bool FileExists(const std::string& name) const override;
  std::vector<std::string> ListFiles() const override;

  /// Atomic namespace move. Like DeleteFile, the namespace change itself
  /// is immediate and survives CrashAndRestart (the map is the durable
  /// directory); the file's durable/volatile content split moves with it.
  /// Not a durability event — it consumes no sync — but a blocked env
  /// (triggered fault) refuses it, so a crash scheduled at the tmp-file
  /// sync also kills the rename that would have published it.
  Status RenameFile(const std::string& src, const std::string& dst) override;

  /// Installs a fault injector consulted on every Sync. Not owned.
  /// Pass nullptr to clear.
  void SetFaultInjector(FaultInjector* injector);

  /// Simulates a crash: all volatile data is lost, files revert to their
  /// durable snapshots, any triggered fault is cleared, IO is re-enabled.
  void CrashAndRestart();

  /// Total successful durability events (syncs) so far. One page write in
  /// the page store and one log force each count as one event.
  uint64_t durable_events() const;

  /// Total bytes made durable by syncs (volume actually persisted).
  uint64_t bytes_synced() const;

  /// True once a fault has been triggered (IO is failing).
  bool io_blocked() const;

 private:
  friend class MemFile;

  // Called by files before persisting. Returns false (and blocks future
  // IO) if the injector vetoes the event.
  bool BeginDurableEvent(uint64_t bytes);
  bool IoAllowed() const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemFile>> files_;
  FaultInjector* injector_ = nullptr;
  bool blocked_ = false;
  uint64_t durable_events_ = 0;
  uint64_t bytes_synced_ = 0;
};

}  // namespace llb

#endif  // LLB_IO_MEM_ENV_H_
