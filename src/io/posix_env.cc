#include "io/posix_env.h"

#include "io/uring_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace llb {

namespace {

constexpr size_t kDirectAlignment = 4096;
constexpr size_t kMaxIov = 1024;  // stay well under any IOV_MAX

Status PosixError(const std::string& context, int err) {
  return Status::IoError(context + ": " + std::strerror(err));
}

bool Aligned(uint64_t offset, size_t n) {
  return offset % kDirectAlignment == 0 && n % kDirectAlignment == 0;
}

/// A page-aligned heap buffer for O_DIRECT bounce IO.
struct AlignedBuffer {
  explicit AlignedBuffer(size_t n) {
    if (posix_memalign(&data, kDirectAlignment, n) != 0) data = nullptr;
  }
  ~AlignedBuffer() { std::free(data); }
  void* data = nullptr;
};

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd, int direct_fd, bool use_fdatasync,
            uint64_t size)
      : path_(std::move(path)),
        fd_(fd),
        direct_fd_(direct_fd),
        use_fdatasync_(use_fdatasync),
        size_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
    if (direct_fd_ >= 0) ::close(direct_fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    if (n == 0) return Status::OK();
    if (direct_fd_ >= 0 && Aligned(offset, n)) {
      AlignedBuffer buffer(n);
      if (buffer.data != nullptr) {
        LLB_ASSIGN_OR_RETURN(size_t got,
                             PreadFull(direct_fd_, buffer.data, n, offset));
        out->append(static_cast<char*>(buffer.data), got);
        return Status::OK();
      }
    }
    size_t before = out->size();
    out->resize(before + n);
    LLB_ASSIGN_OR_RETURN(size_t got,
                         PreadFull(fd_, out->data() + before, n, offset));
    out->resize(before + got);
    return Status::OK();
  }

  Status ReadAtv(uint64_t offset,
                 const std::vector<IoBuffer>& chunks) const override {
    size_t total = 0;
    for (const IoBuffer& chunk : chunks) total += chunk.size;
    if (total == 0) return Status::OK();
    if (direct_fd_ >= 0 && Aligned(offset, total)) {
      return ReadvDirect(offset, chunks, total);
    }
    std::vector<struct iovec> iov;
    iov.reserve(std::min(chunks.size(), kMaxIov));
    size_t i = 0;
    while (i < chunks.size()) {
      iov.clear();
      size_t batch_bytes = 0;
      for (; i < chunks.size() && iov.size() < kMaxIov; ++i) {
        if (chunks[i].size == 0) continue;
        iov.push_back({chunks[i].data, chunks[i].size});
        batch_bytes += chunks[i].size;
      }
      if (iov.empty()) break;
      LLB_ASSIGN_OR_RETURN(
          size_t got, PreadvFull(fd_, iov.data(), iov.size(), batch_bytes,
                                 offset));
      if (got < batch_bytes) {
        // Past end of file: zero-fill the remainder of this batch (and
        // the loop exits because every later batch starts past EOF too).
        ZeroTail(iov, got);
      }
      offset += batch_bytes;
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    if (data.empty()) return Status::OK();
    if (direct_fd_ >= 0 && Aligned(offset, data.size())) {
      AlignedBuffer buffer(data.size());
      if (buffer.data != nullptr) {
        std::memcpy(buffer.data, data.data(), data.size());
        LLB_RETURN_IF_ERROR(
            PwriteFull(direct_fd_, buffer.data, data.size(), offset));
        NoteSize(offset + data.size());
        return Status::OK();
      }
    }
    LLB_RETURN_IF_ERROR(PwriteFull(fd_, data.data(), data.size(), offset));
    NoteSize(offset + data.size());
    return Status::OK();
  }

  Status WriteAtv(uint64_t offset, const std::vector<Slice>& chunks) override {
    size_t total = 0;
    for (const Slice& chunk : chunks) total += chunk.size();
    if (total == 0) return Status::OK();
    if (direct_fd_ >= 0 && Aligned(offset, total)) {
      // One gathered copy into an aligned buffer, one direct pwrite.
      AlignedBuffer buffer(total);
      if (buffer.data != nullptr) {
        char* at = static_cast<char*>(buffer.data);
        for (const Slice& chunk : chunks) {
          std::memcpy(at, chunk.data(), chunk.size());
          at += chunk.size();
        }
        LLB_RETURN_IF_ERROR(PwriteFull(direct_fd_, buffer.data, total, offset));
        NoteSize(offset + total);
        return Status::OK();
      }
    }
    std::vector<struct iovec> iov;
    iov.reserve(std::min(chunks.size(), kMaxIov));
    size_t i = 0;
    while (i < chunks.size()) {
      iov.clear();
      size_t batch_bytes = 0;
      for (; i < chunks.size() && iov.size() < kMaxIov; ++i) {
        if (chunks[i].empty()) continue;
        iov.push_back({const_cast<char*>(chunks[i].data()), chunks[i].size()});
        batch_bytes += chunks[i].size();
      }
      if (iov.empty()) break;
      LLB_RETURN_IF_ERROR(
          PwritevFull(fd_, iov.data(), iov.size(), batch_bytes, offset));
      offset += batch_bytes;
    }
    NoteSize(offset);
    return Status::OK();
  }

  Status Append(Slice data) override {
    // Append must read-modify the end-of-file position, so it serializes
    // on the size mutex (log appends are already serialized by the log
    // writer; this keeps raw concurrent appends safe too).
    std::lock_guard<std::mutex> lock(size_mu_);
    LLB_RETURN_IF_ERROR(PwriteFull(fd_, data.data(), data.size(), size_));
    size_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    int rc = use_fdatasync_ ? ::fdatasync(fd_) : ::fsync(fd_);
    if (rc != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(size_mu_);
    return size_;
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(size_mu_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate " + path_, errno);
    }
    size_ = size;
    return Status::OK();
  }

  // Raw descriptors and the size-advance hook, for the io_uring async
  // backend, which writes past the File interface and must keep the
  // cached size honest (Size() drives PageStore::PageCount).
  int fd() const { return fd_; }
  int direct_fd() const { return direct_fd_; }
  void NoteExtent(uint64_t end) { NoteSize(end); }

 private:
  static Result<size_t> PreadFull(int fd, void* buffer, size_t n,
                                  uint64_t offset) {
    char* at = static_cast<char*>(buffer);
    size_t done = 0;
    while (done < n) {
      ssize_t got = ::pread(fd, at + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread", errno);
      }
      if (got == 0) break;  // end of file
      done += static_cast<size_t>(got);
    }
    return done;
  }

  static Result<size_t> PreadvFull(int fd, struct iovec* iov, size_t iovcnt,
                                   size_t total, uint64_t offset) {
    size_t done = 0;
    struct iovec* at = iov;
    size_t remaining_cnt = iovcnt;
    while (done < total && remaining_cnt > 0) {
      ssize_t got = ::preadv(fd, at, static_cast<int>(remaining_cnt),
                             static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return PosixError("preadv", errno);
      }
      if (got == 0) break;  // end of file
      done += static_cast<size_t>(got);
      // Advance the iovec cursor past fully consumed buffers.
      size_t skip = static_cast<size_t>(got);
      while (remaining_cnt > 0 && skip >= at->iov_len) {
        skip -= at->iov_len;
        ++at;
        --remaining_cnt;
      }
      if (remaining_cnt > 0 && skip > 0) {
        at->iov_base = static_cast<char*>(at->iov_base) + skip;
        at->iov_len -= skip;
      }
    }
    return done;
  }

  static Status PwriteFull(int fd, const void* buffer, size_t n,
                           uint64_t offset) {
    const char* at = static_cast<const char*>(buffer);
    size_t done = 0;
    while (done < n) {
      ssize_t put = ::pwrite(fd, at + done, n - done,
                             static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite", errno);
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  static Status PwritevFull(int fd, struct iovec* iov, size_t iovcnt,
                            size_t total, uint64_t offset) {
    size_t done = 0;
    struct iovec* at = iov;
    size_t remaining_cnt = iovcnt;
    while (done < total && remaining_cnt > 0) {
      ssize_t put = ::pwritev(fd, at, static_cast<int>(remaining_cnt),
                              static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwritev", errno);
      }
      done += static_cast<size_t>(put);
      size_t skip = static_cast<size_t>(put);
      while (remaining_cnt > 0 && skip >= at->iov_len) {
        skip -= at->iov_len;
        ++at;
        --remaining_cnt;
      }
      if (remaining_cnt > 0 && skip > 0) {
        at->iov_base = static_cast<char*>(at->iov_base) + skip;
        at->iov_len -= skip;
      }
    }
    return Status::OK();
  }

  Status ReadvDirect(uint64_t offset, const std::vector<IoBuffer>& chunks,
                     size_t total) const {
    AlignedBuffer buffer(total);
    if (buffer.data == nullptr) {
      return Status::IoError("posix_memalign failed for " + path_);
    }
    LLB_ASSIGN_OR_RETURN(size_t got,
                         PreadFull(direct_fd_, buffer.data, total, offset));
    std::memset(static_cast<char*>(buffer.data) + got, 0, total - got);
    const char* at = static_cast<const char*>(buffer.data);
    for (const IoBuffer& chunk : chunks) {
      std::memcpy(chunk.data, at, chunk.size);
      at += chunk.size;
    }
    return Status::OK();
  }

  static void ZeroTail(const std::vector<struct iovec>& iov, size_t got) {
    size_t skip = got;
    for (const struct iovec& entry : iov) {
      if (skip >= entry.iov_len) {
        skip -= entry.iov_len;
        continue;
      }
      std::memset(static_cast<char*>(entry.iov_base) + skip, 0,
                  entry.iov_len - skip);
      skip = 0;
    }
  }

  void NoteSize(uint64_t end) {
    std::lock_guard<std::mutex> lock(size_mu_);
    size_ = std::max(size_, end);
  }

  const std::string path_;
  const int fd_;
  const int direct_fd_;
  const bool use_fdatasync_;
  mutable std::mutex size_mu_;
  uint64_t size_;
};

}  // namespace

Result<std::unique_ptr<PosixEnv>> PosixEnv::Open(const std::string& root,
                                                 const Options& options) {
  if (root.empty()) return Status::InvalidArgument("posix env needs a root");
  if (::mkdir(root.c_str(), 0755) != 0 && errno != EEXIST) {
    return PosixError("mkdir " + root, errno);
  }
  struct stat st;
  if (::stat(root.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("posix env root is not a directory: " +
                                   root);
  }
  return std::unique_ptr<PosixEnv>(new PosixEnv(root, options));
}

PosixEnv::~PosixEnv() = default;

Result<std::shared_ptr<File>> PosixEnv::OpenFile(const std::string& name,
                                                 bool create) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("posix env file names must be flat: " +
                                   name);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it != files_.end()) {
    if (std::shared_ptr<File> live = it->second.lock()) return live;
    files_.erase(it);
  }
  const std::string path = PathOf(name);
  int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return PosixError("open " + path, errno);
  }
  int direct_fd = -1;
#ifdef O_DIRECT
  if (options_.direct_io) {
    // Best effort: tmpfs and some filesystems refuse O_DIRECT; buffered
    // IO stays correct, just not cache-bypassing.
    direct_fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC | O_DIRECT);
  }
#endif
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    if (direct_fd >= 0) ::close(direct_fd);
    return PosixError("fstat " + path, err);
  }
  auto file = std::make_shared<PosixFile>(path, fd, direct_fd,
                                          options_.use_fdatasync,
                                          static_cast<uint64_t>(st.st_size));
  files_[name] = file;
  return std::shared_ptr<File>(file);
}

Result<std::shared_ptr<AsyncFile>> PosixEnv::OpenAsync(
    const std::string& name, bool create, const AsyncIoOptions& options) {
  if (options_.use_io_uring && UringAvailable()) {
    LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file, OpenFile(name, create));
    // Same translation unit: every File this env hands out is a PosixFile.
    auto* posix = static_cast<PosixFile*>(file.get());
    Result<std::shared_ptr<AsyncFile>> ring = NewUringAsyncFile(
        posix->fd(), posix->direct_fd(),
        std::max<uint32_t>(1, options.queue_depth),
        [file](uint64_t end) {
          static_cast<PosixFile*>(file.get())->NoteExtent(end);
        },
        [file] { return file->Sync(); });
    if (ring.ok()) return ring;
    // Ring refused (exotic kernel config): portable fallback below.
  }
  return Env::OpenAsync(name, create, options);
}

Status PosixEnv::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(name);
  if (::unlink(PathOf(name).c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + name);
    return PosixError("unlink " + PathOf(name), errno);
  }
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  if (::rename(PathOf(src).c_str(), PathOf(dst).c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + src);
    return PosixError("rename " + PathOf(src), errno);
  }
  // Open handles follow the inode: the src handle (if any) now serves dst.
  auto it = files_.find(src);
  if (it != files_.end()) {
    files_[dst] = std::move(it->second);
    files_.erase(it);
  } else {
    files_.erase(dst);
  }
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& name) const {
  return ::access(PathOf(name).c_str(), F_OK) == 0;
}

std::vector<std::string> PosixEnv::ListFiles() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(root_.c_str());
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace llb
