#ifndef LLB_IO_DURABLE_CURSOR_H_
#define LLB_IO_DURABLE_CURSOR_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/env.h"

namespace llb {

/// A small durable key/value cell: one file holding one checksummed
/// payload, replaced atomically via the write-tmp / sync / rename
/// pattern. Both the backup sweep's progress cursor (BackupCursor) and
/// the log shipper's ship cursor persist through this helper instead of
/// hand-rolling the protocol twice.
///
/// Invariants:
///  * Save costs exactly one durability event (the tmp-file sync); the
///    rename is a namespace move, not a sync.
///  * After a crash at any point of Save, Load returns either the
///    previous payload or the new one — never a torn mix. A crash
///    between sync and rename leaves an orphan "<name>.tmp", which the
///    next Save simply overwrites.
///  * Corruption (bit rot, short file) is detected by a crc32c trailer
///    and surfaces as Status::Corruption.
class DurableCursor {
 public:
  /// Atomically replaces the cell `name` with `payload`.
  static Status Save(Env* env, const std::string& name, Slice payload);

  /// Loads the cell's payload. NotFound if it was never saved.
  static Result<std::string> Load(Env* env, const std::string& name);

  /// Deletes the cell. Missing file is OK.
  static Status Remove(Env* env, const std::string& name);
};

}  // namespace llb

#endif  // LLB_IO_DURABLE_CURSOR_H_
