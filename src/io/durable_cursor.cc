#include "io/durable_cursor.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace {
constexpr uint32_t kCellMagic = 0x4C4C4443u;  // "LLDC"
}  // namespace

Status DurableCursor::Save(Env* env, const std::string& name, Slice payload) {
  std::string blob;
  PutFixed32(&blob, kCellMagic);
  PutLengthPrefixed(&blob, payload);
  PutFixed32(&blob, crc32c::Value(blob.data(), blob.size()));

  const std::string tmp = name + ".tmp";
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(tmp, /*create=*/true));
  LLB_RETURN_IF_ERROR(file->Truncate(0));
  LLB_RETURN_IF_ERROR(file->WriteAt(0, Slice(blob)));
  LLB_RETURN_IF_ERROR(file->Sync());
  return env->RenameFile(tmp, name);
}

Result<std::string> DurableCursor::Load(Env* env, const std::string& name) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name, /*create=*/false));
  LLB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string blob;
  LLB_RETURN_IF_ERROR(file->ReadAt(0, size, &blob));
  if (blob.size() < 8) return Status::Corruption("cursor cell too small");
  uint32_t stored_crc = DecodeFixed32(blob.data() + blob.size() - 4);
  if (stored_crc != crc32c::Value(blob.data(), blob.size() - 4)) {
    return Status::Corruption("cursor cell crc mismatch: " + name);
  }
  SliceReader reader(Slice(blob.data(), blob.size() - 4));
  uint32_t magic = 0;
  Slice payload;
  if (!reader.ReadFixed32(&magic) || magic != kCellMagic ||
      !reader.ReadLengthPrefixed(&payload) || reader.remaining() != 0) {
    return Status::Corruption("malformed cursor cell: " + name);
  }
  return payload.ToString();
}

Status DurableCursor::Remove(Env* env, const std::string& name) {
  Status s = env->DeleteFile(name);
  if (s.IsNotFound()) return Status::OK();
  return s;
}

}  // namespace llb
