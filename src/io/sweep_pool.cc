#include "io/sweep_pool.h"

#include <utility>

namespace llb {

namespace {
/// Run-queue capacity headroom beyond the worker count. Small on purpose:
/// the queue exists to hand tasks off, not to buffer a backlog — sweep
/// callers pace themselves against device speed, not queue depth.
constexpr size_t kQueueSlack = 2;
}  // namespace

SweepThreadPool::SweepThreadPool(size_t threads) { Grow(threads); }

SweepThreadPool::~SweepThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void SweepThreadPool::Grow(size_t threads) {
  std::vector<std::thread> started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (workers_.size() + started.size() < threads) {
      started.emplace_back([this] { WorkerLoop(); });
    }
    for (std::thread& worker : started) {
      workers_.push_back(std::move(worker));
    }
  }
}

std::future<Status> SweepThreadPool::Submit(std::function<Status()> fn) {
  std::packaged_task<Status()> task(std::move(fn));
  std::future<Status> future = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return stop_ || queue_.size() < workers_.size() + kQueueSlack;
    });
    // After Shutdown-in-progress, still enqueue: the destructor drains
    // the queue before joining, so the future resolves.
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return future;
}

bool SweepThreadPool::TrySubmit(std::function<Status()> fn,
                                std::future<Status>* out) {
  std::packaged_task<Status()> task(std::move(fn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t idle = workers_.size() - busy_;
    if (stop_ || queue_.size() >= idle) return false;
    *out = task.get_future();
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

size_t SweepThreadPool::threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

uint64_t SweepThreadPool::tasks_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_run_;
}

void SweepThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      ++tasks_run_;
    }
    space_cv_.notify_one();
    task();  // exceptions are captured into the future by packaged_task
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
  }
}

}  // namespace llb
