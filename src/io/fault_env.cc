#include "io/fault_env.h"

// All fault-injection helpers are header-only; this file intentionally
// anchors the translation unit for the llb_io library target.
