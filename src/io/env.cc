#include "io/env.h"

namespace llb {

File::~File() = default;
FaultInjector::~FaultInjector() = default;
Env::~Env() = default;

}  // namespace llb
