#include "io/env.h"

#include <algorithm>
#include <cstring>

#include "io/sweep_pool.h"
#include "io/uring_env.h"

namespace llb {

namespace {
/// Thread cap for an env's shared fallback pool: beyond this, extra
/// queue depth just queues inside the pool instead of adding threads.
constexpr uint32_t kMaxFallbackAsyncThreads = 16;
}  // namespace

File::~File() = default;

Status File::ReadAtv(uint64_t offset,
                     const std::vector<IoBuffer>& chunks) const {
  for (const IoBuffer& chunk : chunks) {
    if (chunk.size == 0) continue;
    std::string tmp;
    tmp.reserve(chunk.size);
    LLB_RETURN_IF_ERROR(ReadAt(offset, chunk.size, &tmp));
    std::memcpy(chunk.data, tmp.data(), tmp.size());
    if (tmp.size() < chunk.size) {
      std::memset(chunk.data + tmp.size(), 0, chunk.size - tmp.size());
    }
    offset += chunk.size;
  }
  return Status::OK();
}

Status File::WriteAtv(uint64_t offset, const std::vector<Slice>& chunks) {
  for (const Slice& chunk : chunks) {
    LLB_RETURN_IF_ERROR(WriteAt(offset, chunk));
    offset += chunk.size();
  }
  return Status::OK();
}
FaultInjector::~FaultInjector() = default;
Env::~Env() = default;

Result<std::shared_ptr<AsyncFile>> Env::OpenAsync(const std::string& name,
                                                  bool create,
                                                  const AsyncIoOptions& options) {
  uint32_t depth = std::max<uint32_t>(1, options.queue_depth);
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file, OpenFile(name, create));
  return {NewThreadPoolAsyncFile(std::move(file), depth,
                                 FallbackAsyncPool(depth))};
}

std::shared_ptr<SweepThreadPool> Env::FallbackAsyncPool(uint32_t queue_depth) {
  std::lock_guard<std::mutex> lock(async_pool_mu_);
  if (async_pool_ == nullptr) {
    async_pool_ = std::make_shared<SweepThreadPool>();
  }
  async_pool_->Grow(
      std::min<uint32_t>(std::max<uint32_t>(1, queue_depth),
                         kMaxFallbackAsyncThreads));
  return async_pool_;
}

Status Env::RenameFile(const std::string& src, const std::string& dst) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> from,
                       OpenFile(src, /*create=*/false));
  LLB_ASSIGN_OR_RETURN(uint64_t size, from->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(from->ReadAt(0, size, &contents));
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> to,
                       OpenFile(dst, /*create=*/true));
  LLB_RETURN_IF_ERROR(to->Truncate(0));
  LLB_RETURN_IF_ERROR(to->WriteAt(0, Slice(contents)));
  LLB_RETURN_IF_ERROR(to->Sync());
  return DeleteFile(src);
}

}  // namespace llb
