#include "io/env.h"

namespace llb {

File::~File() = default;

Status File::WriteAtv(uint64_t offset, const std::vector<Slice>& chunks) {
  for (const Slice& chunk : chunks) {
    LLB_RETURN_IF_ERROR(WriteAt(offset, chunk));
    offset += chunk.size();
  }
  return Status::OK();
}
FaultInjector::~FaultInjector() = default;
Env::~Env() = default;

}  // namespace llb
