#ifndef LLB_IO_FAULTY_ENV_H_
#define LLB_IO_FAULTY_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/env.h"

namespace llb {

/// The file operations a FaultPolicy can target. Sync faults model a
/// device that fails a flush; read/write/append faults model transient
/// controller or path errors that succeed on retry.
enum class FaultOp {
  kReadAt,
  kWriteAt,
  kAppend,
  kSync,
};

/// What to do to one intercepted operation.
enum class FaultAction {
  kNone,     // let the operation through untouched
  kFail,     // fail it with IoError (transient: later ops may succeed)
  kCorrupt,  // let it through but flip one bit of its data (silent rot)
};

/// Decides, per intercepted operation, whether to inject a fault.
/// Unlike FaultInjector (a crash: the env fails forever after the veto),
/// a FaultPolicy injects *transient* faults — each decision is
/// independent, and the environment keeps working afterwards.
class FaultPolicy {
 public:
  virtual ~FaultPolicy();

  /// Called once per intercepted operation, before it executes.
  virtual FaultAction OnOp(FaultOp op, const std::string& file) = 0;
};

/// One scripted fault: fires on the `countdown`-th matching operation
/// (1-based) on files whose name contains `file_substring` (empty
/// matches every file), then disarms. Scripts are how tests place a
/// single deterministic fault at an exact point of a backup sweep.
struct FaultPoint {
  FaultOp op = FaultOp::kSync;
  std::string file_substring;
  uint64_t countdown = 1;
  FaultAction action = FaultAction::kFail;
};

/// Fires each FaultPoint exactly once at its scripted position.
class ScriptedFaultPolicy : public FaultPolicy {
 public:
  ScriptedFaultPolicy() = default;
  explicit ScriptedFaultPolicy(std::vector<FaultPoint> points)
      : points_(std::move(points)) {}

  void Add(FaultPoint point) { points_.push_back(point); }

  FaultAction OnOp(FaultOp op, const std::string& file) override;

  /// Number of scripted points that have fired.
  uint64_t fired() const { return fired_; }

 private:
  std::vector<FaultPoint> points_;
  uint64_t fired_ = 0;
};

/// Injects faults at random with per-operation probabilities, scoped to
/// files whose name contains `file_substring`. Deterministic for a given
/// seed and operation sequence.
class RandomFaultPolicy : public FaultPolicy {
 public:
  struct Probabilities {
    double read_error = 0;
    double write_error = 0;
    double append_error = 0;
    double sync_error = 0;
    double read_corrupt = 0;  // silent bit-flip on reads
  };

  RandomFaultPolicy(uint64_t seed, Probabilities p,
                    std::string file_substring = "")
      : rng_(seed), p_(p), file_substring_(std::move(file_substring)) {}

  FaultAction OnOp(FaultOp op, const std::string& file) override;

 private:
  Random rng_;
  const Probabilities p_;
  const std::string file_substring_;
};

/// Counts of injected faults, by kind.
struct FaultyEnvStats {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t append_faults = 0;
  uint64_t sync_faults = 0;
  uint64_t corruptions = 0;

  uint64_t total_failures() const {
    return read_faults + write_faults + append_faults + sync_faults;
  }
};

/// An Env decorator that injects transient faults decided by a
/// FaultPolicy into every file operation, composable over any base Env
/// (MemEnv keeps its own crash-style FaultInjector; the two layers are
/// independent). With no policy installed it is a transparent
/// pass-through, so an engine can run over a FaultyEnv permanently and
/// have faults switched on only for a test window.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(Env* base) : base_(base) {}

  Result<std::shared_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override;
  Status DeleteFile(const std::string& name) override;
  bool FileExists(const std::string& name) const override;
  std::vector<std::string> ListFiles() const override;

  /// Renames pass through un-faulted: the write-tmp/sync/rename pattern
  /// already exposes its fault surface through the tmp file's WriteAt and
  /// Sync, which the policy does intercept.
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }

  /// Installs the fault policy consulted on every file operation. Not
  /// owned; pass nullptr to return to pass-through behavior.
  void SetPolicy(FaultPolicy* policy);

  FaultyEnvStats stats() const;

 private:
  friend class FaultyFile;

  /// Consults the policy and updates stats. Thread-safe.
  FaultAction Decide(FaultOp op, const std::string& file);

  Env* const base_;
  mutable std::mutex mu_;
  FaultPolicy* policy_ = nullptr;
  FaultyEnvStats stats_;
};

}  // namespace llb

#endif  // LLB_IO_FAULTY_ENV_H_
