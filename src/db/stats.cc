#include "db/stats.h"

#include <sstream>

namespace llb {

std::string DbStats::ToString() const {
  std::ostringstream out;
  out << "ops=" << cache.ops_applied << " flushes=" << cache.pages_flushed
      << " iwof=" << cache.identity_writes
      << " decisions=" << cache.decisions
      << " logged=" << cache.decisions_logged
      << " p_log=" << ExtraLoggingProbability()
      << " log_bytes=" << log.bytes
      << " identity_bytes=" << log.identity_bytes
      << " backup_pages=" << backup_pages_copied;
  if (log_channels > 1) {
    out << " log_channels=" << log_channels << " group_commits="
        << log.group_commits << " durable_epoch=" << durable_epoch
        << " open_epoch=" << open_epoch;
  }
  return out.str();
}

}  // namespace llb
