#ifndef LLB_DB_DATABASE_H_
#define LLB_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>

#include "backup/backup_job.h"
#include "backup/backup_progress.h"
#include "backup/backup_scrubber.h"
#include "backup/backup_store.h"
#include "backup/incremental_tracker.h"
#include "cache/cache_manager.h"
#include "common/result.h"
#include "common/status.h"
#include "db/stats.h"
#include "io/env.h"
#include "ops/op_registry.h"
#include "recovery/instant_restore.h"
#include "recovery/media_recovery.h"
#include "recovery/redo.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

/// Which write graph governs flush ordering. Pick the narrowest class
/// that covers the operations a workload logs — narrower classes need
/// less backup-time logging (the paper's central trade-off).
enum class WriteGraphKind {
  /// Physical/physiological single-page operations only. No flush-order
  /// constraints (paper 1.1).
  kPageOriented,
  /// Arbitrary logical operations (paper 2.4/3).
  kGeneral,
  /// Tree operations: page-oriented plus write-new (paper 4).
  kTree,
};

struct DbOptions {
  uint32_t partitions = 1;
  uint32_t pages_per_partition = 1024;
  size_t cache_pages = 256;
  WriteGraphKind graph = WriteGraphKind::kGeneral;
  BackupPolicy backup_policy = BackupPolicy::kGeneral;
  uint32_t backup_steps = 8;
  bool parallel_backup = false;
  /// Sweep batching (see BackupJobOptions::batch_pages / pipelined):
  /// pages per batched backup IO, and whether the sweep double-buffers
  /// reads from S against writes to B. 1 / false reproduce the legacy
  /// page-at-a-time sweep exactly.
  uint32_t backup_batch_pages = 1;
  bool backup_pipelined = false;
  /// Concurrent sweep workers for backups driven through this database
  /// (see BackupJobOptions::sweep_threads). Workers come from the
  /// database's persistent SweepThreadPool, created lazily and reused
  /// across all backup runs — no per-backup thread churn. 1 = serial
  /// sweep.
  uint32_t backup_sweep_threads = 1;
  /// Pages per bulk device IO while an instant restore runs under this
  /// database: closure seeding from backup carriers and installs into S
  /// (see InstantRestoreOptions::batch_pages). Irrelevant outside
  /// OpenRestoring.
  uint32_t restore_batch_pages = 32;
  /// Deep-queue asynchronous IO for every bulk transfer this database
  /// drives — backup sweeps, instant-restore seeding and installs (see
  /// TransferOptions::queue_depth): up to this many run IOs stay in
  /// flight per worker through Env::OpenAsync (io_uring where the
  /// kernel grants it, the portable thread pool elsewhere). <= 1 keeps
  /// the synchronous paths byte-for-byte. Only effective where the
  /// matching batch_pages knob is > 1.
  uint32_t io_queue_depth = 0;
  /// Number of per-thread WAL append channels (LogManagerOptions::
  /// channels). 1 keeps the classic single-mutex append path and the
  /// fully-serialized install path — byte-identical log file and
  /// behavior. >1 shards appends across channels with epoch-based group
  /// commit: flush decisions ride a channel and wait on the epoch
  /// watermark instead of forcing inline, and installs overlap their
  /// durability wait + stable write with concurrent updaters.
  uint32_t log_channels = 1;
  /// With log_channels > 1: when >0, a background advancer group-commits
  /// every interval and waiters block on the watermark; 0 means the
  /// first durability waiter leads the commit and concurrent waiters
  /// piggyback on its single sync.
  uint32_t group_commit_interval_us = 0;
  /// Open as a warm standby: mutating entry points (Execute, flushes,
  /// checkpoints, backups) are refused, reads bypass the cache, and the
  /// log is fed by a StandbyApplier replaying shipped segments. The role
  /// is remembered durably in "<name>.role": a standby that was promoted
  /// reopens writable even when this flag is still set.
  bool standby = false;
};

/// The storage engine facade: stable database + recovery log + cache
/// manager + write graph + backup machinery, wired together.
///
/// Lifecycle:
///   1. Database::Open
///   2. register domain operations (e.g. RegisterBtreeOps(db->registry()))
///   3. db->Recover()  — crash redo; a no-op on a fresh database
///   4. execute operations / take backups
///
/// Crash simulation: MemEnv::CrashAndRestart() then reopen (steps 1-3).
/// Media recovery: destroy/corrupt the stable store while closed, then
/// RestoreFromBackup(...) and reopen.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(Env* env,
                                                const std::string& name,
                                                const DbOptions& options);

  /// Instant restore: opens the database over a wiped (or half-restored)
  /// stable store and serves transactions immediately while media
  /// recovery from `backup_name`'s chain proceeds underneath. A page
  /// fault on a not-yet-restored page restores its influence closure on
  /// demand; RestoreStep / FinishRestore drive the background sweep that
  /// fills in the rest. Progress survives crashes via a durable
  /// restored-bitmap ("<name>.rbm") — reopen with OpenRestoring to
  /// resume. Refused with options.standby set. Call Recover() after
  /// registering domain operations, exactly like a normal open.
  static Result<std::unique_ptr<Database>> OpenRestoring(
      Env* env, const std::string& name, const DbOptions& options,
      const std::string& backup_name);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Crash recovery: redo from the last checkpoint's scan start. Must be
  /// called after all domain operations are registered.
  ///
  /// In standby mode redo runs from LSN 1 instead: checkpoint records
  /// shipped from the primary anchor redo in the PRIMARY's cache state
  /// ("records before X are installed over there"), which says nothing
  /// about what this standby has flushed. Replaying the whole retained
  /// log is always sound (the per-page LSN test skips what is already
  /// installed).
  Status Recover();

  /// Executes one logged operation (see CacheManager::ExecuteOp).
  Status Execute(LogRecord* rec);

  /// Reads the current image of a page through the cache.
  Status ReadPage(const PageId& id, PageImage* out);

  /// Installs the node owning the page (respecting flush order).
  Status FlushPage(const PageId& id);

  /// Flushes everything and forces the log.
  Status FlushAll();

  /// Writes a fuzzy checkpoint record.
  Status Checkpoint();

  /// Forces the log (for tests that need buffered records durable).
  Status ForceLog();

  /// Reclaims log space: drops every record no recovery path can need —
  /// records below both the current crash-redo scan start and
  /// `oldest_backup_start_lsn` (the start_lsn of the oldest backup that
  /// should remain restorable; pass kInvalidLsn if no backup is kept).
  /// Writes a fresh checkpoint afterwards.
  Status TruncateLog(Lsn oldest_backup_start_lsn);

  /// Takes a full on-line backup. Safe to call from a separate thread
  /// while operations execute. `steps` overrides options.backup_steps
  /// when nonzero.
  Result<BackupManifest> TakeBackup(const std::string& backup_name,
                                    uint32_t steps = 0);

  /// Full control over the job (step count, parallelism, retry policy,
  /// mid-step hook). `stats_out`, when non-null, receives the job's
  /// stats — also filled in when the job fails, so an aborted sweep's
  /// fault counts remain observable.
  Result<BackupManifest> TakeBackupWithOptions(
      const std::string& backup_name, const BackupJobOptions& job,
      BackupJobStats* stats_out = nullptr);

  /// Takes an incremental backup of pages changed since the previous
  /// backup, chained to `base_name`.
  Result<BackupManifest> TakeIncrementalBackup(const std::string& backup_name,
                                               const std::string& base_name,
                                               uint32_t steps = 0);

  /// Continues an aborted resumable backup from its persisted cursor
  /// (see BackupJob::Resume). `stats_out`, when non-null, receives the
  /// resumed job's stats (retries, pages skipped, ...).
  Result<BackupManifest> ResumeBackup(const std::string& backup_name,
                                      const BackupJobOptions& job_options = {},
                                      BackupJobStats* stats_out = nullptr);

  /// Verifies every page checksum and the manifest chain of a finished
  /// backup. Read-only: never mutates the backup, S, or the log.
  Result<ScrubReport> VerifyBackup(const std::string& backup_name);

  /// Verify plus repair: bad backup pages are re-copied from S under the
  /// fence protocol (identity write first), or rebuilt from the log when
  /// S is bad too (healing S as a side effect). Run quiesced — see
  /// BackupScrubber's repair caveats.
  Result<ScrubReport> ScrubBackup(const std::string& backup_name);

  /// Offline media recovery for the database called `name`: restores S
  /// from `backup_name`'s chain (base + incrementals, coalesced) and
  /// rolls the log forward. `registry` must hold the same operations the
  /// database logs with. Must NOT run while a Database over `name` is
  /// open — media recovery owns the store files. RestoreOptions carries
  /// the bulk-transfer knobs (batch_pages / pipelined / threads) and the
  /// point-in-time / single-partition targets.
  static Result<MediaRecoveryReport> RestoreFromBackup(
      Env* env, const std::string& name, const std::string& backup_name,
      const OpRegistry& registry, const RestoreOptions& options = {});

  /// Point-in-time restore: rebuilds the database as of exactly `target`
  /// by picking the newest retained backup chain whose end LSN does not
  /// exceed the target, then rolling the log forward only through
  /// `target` (discarding the suffix). Refuses targets past the durable
  /// log tail, targets older than every retained backup, and targets
  /// that cut a multi-record atomic group (e.g. a B-tree split) in half
  /// — except the exact durable tail, which equals a plain restore. Same
  /// offline contract as RestoreFromBackup.
  static Result<MediaRecoveryReport> RestoreToLsn(
      Env* env, const std::string& name, Lsn target,
      const OpRegistry& registry, const RestoreOptions& options = {});

  /// True while operating as a warm standby (not yet promoted).
  bool standby() const { return standby_.load(std::memory_order_acquire); }

  /// True while an instant restore is still in flight under this
  /// database (faults restore on demand; backups/checkpoints refused).
  bool restoring() const { return restoring_.load(std::memory_order_acquire); }

  /// Runs one background restore sweep step (up to
  /// options.restore_batch_pages seed pages plus their closures),
  /// yielding to concurrent page faults. Returns pages durably restored;
  /// finalizes the restore automatically once every page is in. OK(0)
  /// when not restoring.
  Result<uint64_t> RestoreStep();

  /// Drives the background sweep to completion and finalizes: fault
  /// handler detached, a checkpoint written (re-anchoring crash redo now
  /// that checkpoint-based recovery is sound again), and the
  /// restored-bitmap removed. Idempotent; OK when not restoring.
  Status FinishRestore();

  /// Progress snapshot of the in-flight restore (all-zero, restoring =
  /// false once finished).
  RestoreStatus restore_status() const;

  /// Promotes a standby to a writable primary: writes a checkpoint
  /// anchoring crash redo at the promotion point, durably flips the role
  /// file, and re-enables the mutating entry points. The caller must
  /// have fully drained replication first (StandbyApplier::Drain until
  /// the lag is zero) — the checkpoint asserts that everything in the
  /// local log is installed in the stable store.
  Status Promote();

  OpRegistry* registry() { return &registry_; }
  /// The persistent worker pool every Database-driven backup runs on
  /// (partition sweepers + pipelined prefetch). Starts empty; jobs grow
  /// it to what they need and the threads persist for the next backup.
  SweepThreadPool* sweep_pool() { return &sweep_pool_; }
  CacheManager* cache() { return cache_.get(); }
  LogManager* log() { return log_.get(); }
  PageStore* stable() { return stable_.get(); }
  BackupCoordinator* coordinator() { return &coordinator_; }
  Env* env() { return env_; }
  const DbOptions& options() const { return options_; }
  const std::string& name() const { return name_; }

  /// Conventional store/log names for a database called `name`.
  static std::string StableName(const std::string& name) {
    return name + ".stable";
  }
  static std::string LogName(const std::string& name) { return name + ".log"; }
  static std::string RoleName(const std::string& name) {
    return name + ".role";
  }
  /// Durable restored-bitmap cell of an in-flight instant restore.
  static std::string RestoreBitmapName(const std::string& name) {
    return name + ".rbm";
  }

  DbStats GatherStats() const;
  void ResetStats();

 private:
  Database(Env* env, std::string name, const DbOptions& options);

  Status Init();
  Status RequirePrimary(const char* op) const;
  Status RequireNotRestoring(const char* op) const;
  /// Final restore handshake; requires the restorer complete. Ordered
  /// for crash safety: detach the fault handler (cache mutex excludes
  /// in-flight faults), checkpoint, remove the bitmap cell, clear the
  /// flag. A crash anywhere in between reopens via OpenRestoring with a
  /// full bitmap and finalizes again — idempotent.
  Status FinalizeRestore();

  Env* const env_;
  const std::string name_;
  const DbOptions options_;

  OpRegistry registry_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<PageStore> stable_;
  BackupCoordinator coordinator_;
  IncrementalTracker tracker_;
  std::unique_ptr<CacheManager> cache_;
  /// Declared after the stores it sweeps: destroyed first, and idle by
  /// then (every job joins its futures before returning).
  SweepThreadPool sweep_pool_;

  /// Standby role flag: written by Init/Promote, read by every mutating
  /// entry point (possibly from other threads).
  std::atomic<bool> standby_{false};

  /// Instant-restore state: the backup chain head OpenRestoring was given
  /// (empty on a plain open), the flag the gates read, and the restorer
  /// (alive exactly while restoring_ is true).
  std::string restore_backup_name_;
  std::atomic<bool> restoring_{false};
  std::unique_ptr<InstantRestorer> restorer_;

  /// Atomics: updated by whichever thread runs a backup, read by
  /// GatherStats from concurrent foreground/monitoring threads.
  std::atomic<uint64_t> backups_taken_{0};
  std::atomic<uint64_t> backup_pages_copied_{0};
  std::atomic<uint64_t> backup_fence_updates_{0};
};

}  // namespace llb

#endif  // LLB_DB_DATABASE_H_
