#ifndef LLB_DB_STATS_H_
#define LLB_DB_STATS_H_

#include <cstdint>
#include <string>

#include "cache/cache_manager.h"
#include "recovery/write_graph.h"
#include "wal/log_manager.h"

namespace llb {

/// One snapshot of every counter the engine keeps. The benchmarks sample
/// deltas of this to regenerate the paper's figures.
struct DbStats {
  CacheStats cache;
  LogStats log;
  WriteGraphStats graph;
  uint64_t backups_taken = 0;
  uint64_t backup_pages_copied = 0;
  uint64_t backup_fence_updates = 0;

  // WAL channel/epoch status (group commit; see LogManagerOptions).
  uint32_t log_channels = 1;
  Epoch durable_epoch = kInvalidEpoch;
  Epoch open_epoch = kInvalidEpoch;

  /// Fraction of object flushes during active backup that required Iw/oF
  /// logging — the paper's Prob{log} (section 5).
  double ExtraLoggingProbability() const {
    if (cache.decisions == 0) return 0.0;
    return static_cast<double>(cache.decisions_logged) /
           static_cast<double>(cache.decisions);
  }

  std::string ToString() const;
};

}  // namespace llb

#endif  // LLB_DB_STATS_H_
