#include "db/database.h"

#include "io/durable_cursor.h"
#include "recovery/checkpoint.h"
#include "recovery/general_write_graph.h"
#include "recovery/tree_write_graph.h"

namespace llb {

namespace {

constexpr char kRolePrimary[] = "primary";
constexpr char kRoleStandby[] = "standby";

std::unique_ptr<WriteGraph> MakeGraph(WriteGraphKind kind) {
  switch (kind) {
    case WriteGraphKind::kPageOriented:
      return std::make_unique<PageOrientedWriteGraph>();
    case WriteGraphKind::kGeneral:
      return std::make_unique<GeneralWriteGraph>();
    case WriteGraphKind::kTree:
      return std::make_unique<TreeWriteGraph>();
  }
  return std::make_unique<GeneralWriteGraph>();
}

}  // namespace

Database::Database(Env* env, std::string name, const DbOptions& options)
    : env_(env),
      name_(std::move(name)),
      options_(options),
      coordinator_(options.partitions) {}

Result<std::unique_ptr<Database>> Database::Open(Env* env,
                                                 const std::string& name,
                                                 const DbOptions& options) {
  if (options.partitions == 0 || options.pages_per_partition == 0) {
    return Status::InvalidArgument("database needs >= 1 partition and page");
  }
  std::unique_ptr<Database> db(new Database(env, name, options));
  LLB_RETURN_IF_ERROR(db->Init());
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenRestoring(
    Env* env, const std::string& name, const DbOptions& options,
    const std::string& backup_name) {
  if (options.partitions == 0 || options.pages_per_partition == 0) {
    return Status::InvalidArgument("database needs >= 1 partition and page");
  }
  if (options.standby) {
    return Status::InvalidArgument(
        "instant restore opens a primary; standby catches up by log "
        "shipping instead");
  }
  if (backup_name.empty()) {
    return Status::InvalidArgument("instant restore needs a backup name");
  }
  std::unique_ptr<Database> db(new Database(env, name, options));
  db->restore_backup_name_ = backup_name;
  LLB_RETURN_IF_ERROR(db->Init());
  return db;
}

Status Database::Init() {
  LogManagerOptions log_options;
  log_options.channels = options_.log_channels;
  log_options.group_commit_interval_us = options_.group_commit_interval_us;
  LLB_ASSIGN_OR_RETURN(log_,
                       LogManager::Open(env_, LogName(name_), log_options));
  LLB_ASSIGN_OR_RETURN(
      stable_, PageStore::Open(env_, StableName(name_), options_.partitions));
  CacheOptions cache_options;
  cache_options.capacity_pages = options_.cache_pages;
  cache_options.policy = options_.backup_policy;
  cache_ = std::make_unique<CacheManager>(
      stable_.get(), log_.get(), &registry_, MakeGraph(options_.graph),
      &coordinator_, &tracker_, cache_options);

  if (!restore_backup_name_.empty()) {
    InstantRestoreOptions restore_options;
    restore_options.batch_pages = options_.restore_batch_pages;
    restore_options.queue_depth = options_.io_queue_depth;
    restore_options.step_pages = options_.restore_batch_pages;
    LLB_ASSIGN_OR_RETURN(
        restorer_,
        InstantRestorer::Open(env_, RestoreBitmapName(name_),
                              restore_backup_name_, registry_, stable_.get(),
                              log_.get(), restore_options));
    if (restorer_->partitions() != options_.partitions ||
        restorer_->pages_per_partition() != options_.pages_per_partition) {
      return Status::InvalidArgument(
          "OpenRestoring geometry does not match the backup chain (" +
          std::to_string(restorer_->partitions()) + "x" +
          std::to_string(restorer_->pages_per_partition()) + ")");
    }
    restoring_.store(true, std::memory_order_release);
  } else {
    // A leftover restored-bitmap means an instant restore never finished:
    // parts of S still hold pre-failure garbage. Refuse a plain open —
    // resume via OpenRestoring (or redo the restore offline, which
    // discards the cell).
    Result<std::string> cell =
        DurableCursor::Load(env_, RestoreBitmapName(name_));
    if (cell.ok()) {
      return Status::FailedPrecondition(
          "unfinished instant restore for '" + name_ +
          "'; reopen with OpenRestoring to resume it");
    }
    if (!cell.status().IsNotFound()) return cell.status();
  }

  if (options_.standby) {
    // The durable role file outranks the flag: a standby promoted in a
    // previous incarnation stays a primary across crashes.
    Result<std::string> role = DurableCursor::Load(env_, RoleName(name_));
    if (role.ok()) {
      standby_.store(*role != kRolePrimary, std::memory_order_release);
    } else if (role.status().IsNotFound()) {
      LLB_RETURN_IF_ERROR(
          DurableCursor::Save(env_, RoleName(name_), Slice(kRoleStandby)));
      standby_.store(true, std::memory_order_release);
    } else {
      return role.status();
    }
  }
  return Status::OK();
}

Status Database::RequirePrimary(const char* op) const {
  if (standby_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(std::string(op) +
                                      " refused on a standby (promote first)");
  }
  return Status::OK();
}

Status Database::RequireNotRestoring(const char* op) const {
  if (restoring_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        std::string(op) + " refused during instant restore (finish it first)");
  }
  return Status::OK();
}

Status Database::Recover() {
  if (restoring_.load(std::memory_order_acquire)) {
    // Crash redo for a restoring database: checkpoints predating the
    // media failure anchor in pre-failure cache state and say nothing
    // about the wiped store, so replay everything after the pinned
    // recovery tail instead. Sound over a half-restored store: a record
    // got past the tail only after the fault path durably restored and
    // marked every page it touches.
    LLB_RETURN_IF_ERROR(restorer_->ResumeRedo());
    if (restorer_->complete()) return FinalizeRestore();
    cache_->SetPageFaultHandler(
        [this](const PageId& id) { return restorer_->RestoreOnFault(id); });
    return Status::OK();
  }
  Lsn start = 1;
  if (!standby_.load(std::memory_order_acquire)) {
    LLB_ASSIGN_OR_RETURN(start, FindCrashRedoStart(*log_));
  }
  LLB_ASSIGN_OR_RETURN(RedoReport report,
                       RunRedo(*log_, registry_, stable_.get(), start));
  (void)report;
  return Status::OK();
}

Status Database::Execute(LogRecord* rec) {
  LLB_RETURN_IF_ERROR(RequirePrimary("Execute"));
  return cache_->ExecuteOp(rec);
}

Status Database::ReadPage(const PageId& id, PageImage* out) {
  // Standby reads bypass the cache: the applier writes the stable store
  // directly, so cached images could go stale (and a stale cache would
  // poison the first operations after promotion).
  if (standby_.load(std::memory_order_acquire)) {
    return stable_->ReadPage(id, out);
  }
  return cache_->ReadPage(id, out);
}

Status Database::FlushPage(const PageId& id) {
  LLB_RETURN_IF_ERROR(RequirePrimary("FlushPage"));
  return cache_->FlushPage(id);
}

Status Database::FlushAll() {
  LLB_RETURN_IF_ERROR(RequirePrimary("FlushAll"));
  return cache_->FlushAll();
}

Status Database::Checkpoint() {
  LLB_RETURN_IF_ERROR(RequirePrimary("Checkpoint"));
  // A checkpoint asserts "records before the scan start are installed in
  // S" — false while pages of S still await media recovery.
  LLB_RETURN_IF_ERROR(RequireNotRestoring("Checkpoint"));
  return cache_->Checkpoint();
}

Result<uint64_t> Database::RestoreStep() {
  if (!restoring_.load(std::memory_order_acquire)) return uint64_t{0};
  LLB_ASSIGN_OR_RETURN(uint64_t moved, restorer_->Step());
  if (restorer_->complete()) {
    LLB_RETURN_IF_ERROR(FinalizeRestore());
  }
  return moved;
}

Status Database::FinishRestore() {
  if (!restoring_.load(std::memory_order_acquire)) return Status::OK();
  LLB_RETURN_IF_ERROR(restorer_->Drain());
  return FinalizeRestore();
}

Status Database::FinalizeRestore() {
  cache_->SetPageFaultHandler(nullptr);
  LLB_RETURN_IF_ERROR(cache_->Checkpoint());
  LLB_RETURN_IF_ERROR(restorer_->Finalize());
  restoring_.store(false, std::memory_order_release);
  restorer_.reset();
  return Status::OK();
}

RestoreStatus Database::restore_status() const {
  if (!restoring_.load(std::memory_order_acquire)) return RestoreStatus{};
  return restorer_->status();
}

Status Database::Promote() {
  if (!standby_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("Promote: not a standby");
  }
  // Order matters for crash safety (torture sweeps every point here):
  //  1. Checkpoint while still a standby. The cache is empty (Execute was
  //     refused), so the record anchors crash redo at the log tail —
  //     valid because the caller drained replication, i.e. every logged
  //     record is installed in the stable store. Crash after this, before
  //     the role flip: still a standby, redo-from-1 as usual.
  //  2. Durably flip the role file. Crash after: reopen finds "primary"
  //     and anchors redo at the checkpoint from step 1 — exactly right.
  //  3. Only then enable writes in this process.
  LLB_RETURN_IF_ERROR(cache_->Checkpoint());
  LLB_RETURN_IF_ERROR(
      DurableCursor::Save(env_, RoleName(name_), Slice(kRolePrimary)));
  standby_.store(false, std::memory_order_release);
  return Status::OK();
}

Status Database::ForceLog() { return log_->Force(); }

Status Database::TruncateLog(Lsn oldest_backup_start_lsn) {
  LLB_RETURN_IF_ERROR(RequirePrimary("TruncateLog"));
  // The in-flight restore still replays from its chain's start_lsn.
  LLB_RETURN_IF_ERROR(RequireNotRestoring("TruncateLog"));
  Lsn keep_from = cache_->RedoStartLsn();
  if (oldest_backup_start_lsn != kInvalidLsn &&
      oldest_backup_start_lsn < keep_from) {
    keep_from = oldest_backup_start_lsn;
  }
  LLB_RETURN_IF_ERROR(log_->TruncatePrefix(keep_from));
  // Re-anchor crash recovery: the old checkpoint records are gone.
  return cache_->Checkpoint();
}

Result<BackupManifest> Database::TakeBackup(const std::string& backup_name,
                                            uint32_t steps) {
  BackupJobOptions job_options;
  job_options.steps = steps != 0 ? steps : options_.backup_steps;
  job_options.parallel_partitions = options_.parallel_backup;
  job_options.batch_pages = options_.backup_batch_pages;
  job_options.pipelined = options_.backup_pipelined;
  job_options.queue_depth = options_.io_queue_depth;
  job_options.sweep_threads = options_.backup_sweep_threads;
  return TakeBackupWithOptions(backup_name, job_options);
}

Result<BackupManifest> Database::TakeBackupWithOptions(
    const std::string& backup_name, const BackupJobOptions& job_options,
    BackupJobStats* stats_out) {
  LLB_RETURN_IF_ERROR(RequirePrimary("TakeBackup"));
  // Backing up a store whose pages partly predate the media failure
  // would capture garbage with a manifest that claims otherwise.
  LLB_RETURN_IF_ERROR(RequireNotRestoring("TakeBackup"));
  // The media recovery log scan start point is the crash recovery log
  // scan start point at the time backup begins (paper 1.2). The log up to
  // here must be durable so a media recovery never misses operations.
  Lsn start_lsn = cache_->RedoStartLsn();
  LLB_RETURN_IF_ERROR(log_->Force());

  // Clear the change tracker at backup start: anything flushed during the
  // sweep is conservatively counted as changed for the next incremental.
  tracker_.SnapshotAndClear();

  // Every Database-driven job runs on the persistent pool: zero
  // transient threads per backup (stats().threads_spawned == 0).
  BackupJobOptions effective = job_options;
  if (effective.pool == nullptr) effective.pool = &sweep_pool_;
  BackupJob job(env_, stable_.get(), &coordinator_, log_.get(),
                options_.pages_per_partition, effective);
  Result<BackupManifest> manifest = job.Run(backup_name, start_lsn);
  if (stats_out != nullptr) *stats_out = job.stats();
  if (!manifest.ok()) return manifest.status();
  ++backups_taken_;
  backup_pages_copied_ += job.stats().pages_copied;
  backup_fence_updates_ += job.stats().fence_updates;
  return manifest;
}

Result<BackupManifest> Database::ResumeBackup(
    const std::string& backup_name, const BackupJobOptions& job_options,
    BackupJobStats* stats_out) {
  LLB_RETURN_IF_ERROR(RequirePrimary("ResumeBackup"));
  LLB_RETURN_IF_ERROR(RequireNotRestoring("ResumeBackup"));
  BackupJobOptions effective = job_options;
  if (effective.pool == nullptr) effective.pool = &sweep_pool_;
  BackupJob job(env_, stable_.get(), &coordinator_, log_.get(),
                options_.pages_per_partition, effective);
  Result<BackupManifest> manifest = job.Resume(backup_name);
  if (stats_out != nullptr) *stats_out = job.stats();
  if (!manifest.ok()) return manifest.status();
  ++backups_taken_;
  backup_pages_copied_ += job.stats().pages_copied;
  backup_fence_updates_ += job.stats().fence_updates;
  return manifest;
}

Result<ScrubReport> Database::VerifyBackup(const std::string& backup_name) {
  BackupScrubber scrubber(env_, ScrubOptions{});
  return scrubber.Scrub(backup_name);
}

Result<ScrubReport> Database::ScrubBackup(const std::string& backup_name) {
  LLB_RETURN_IF_ERROR(RequirePrimary("ScrubBackup"));
  LLB_RETURN_IF_ERROR(RequireNotRestoring("ScrubBackup"));
  ScrubOptions scrub_options;
  scrub_options.repair = true;
  scrub_options.stable = stable_.get();
  scrub_options.log = log_.get();
  scrub_options.registry = &registry_;
  scrub_options.coordinator = &coordinator_;
  scrub_options.install_current = [this](const PageId& id) {
    return cache_->FlushPage(id);
  };
  BackupScrubber scrubber(env_, scrub_options);
  return scrubber.Scrub(backup_name);
}

Result<MediaRecoveryReport> Database::RestoreFromBackup(
    Env* env, const std::string& name, const std::string& backup_name,
    const OpRegistry& registry, const RestoreOptions& options) {
  LLB_ASSIGN_OR_RETURN(
      MediaRecoveryReport report,
      RestoreFromBackupWithOptions(env, StableName(name), LogName(name),
                                   backup_name, registry, options));
  // A full offline restore supersedes any half-finished instant restore:
  // drop its bitmap so plain opens stop refusing.
  if (!options.partition_only) {
    LLB_RETURN_IF_ERROR(
        DurableCursor::Remove(env, RestoreBitmapName(name)));
  }
  return report;
}

Result<MediaRecoveryReport> Database::RestoreToLsn(
    Env* env, const std::string& name, Lsn target, const OpRegistry& registry,
    const RestoreOptions& options) {
  return RestoreToPointInTime(env, StableName(name), LogName(name), target,
                              registry, options);
}

Result<BackupManifest> Database::TakeIncrementalBackup(
    const std::string& backup_name, const std::string& base_name,
    uint32_t steps) {
  LLB_RETURN_IF_ERROR(RequirePrimary("TakeIncrementalBackup"));
  LLB_RETURN_IF_ERROR(RequireNotRestoring("TakeIncrementalBackup"));
  BackupJobOptions job_options;
  job_options.steps = steps != 0 ? steps : options_.backup_steps;
  job_options.parallel_partitions = options_.parallel_backup;
  job_options.batch_pages = options_.backup_batch_pages;
  job_options.pipelined = options_.backup_pipelined;
  job_options.queue_depth = options_.io_queue_depth;
  job_options.sweep_threads = options_.backup_sweep_threads;
  job_options.pool = &sweep_pool_;

  Lsn start_lsn = cache_->RedoStartLsn();
  LLB_RETURN_IF_ERROR(log_->Force());

  std::vector<PageId> changed = tracker_.SnapshotAndClear();

  BackupJob job(env_, stable_.get(), &coordinator_, log_.get(),
                options_.pages_per_partition, job_options);
  LLB_ASSIGN_OR_RETURN(
      BackupManifest manifest,
      job.RunIncremental(backup_name, base_name, start_lsn,
                         std::move(changed)));
  ++backups_taken_;
  backup_pages_copied_ += job.stats().pages_copied;
  backup_fence_updates_ += job.stats().fence_updates;
  return manifest;
}

DbStats Database::GatherStats() const {
  DbStats stats;
  stats.cache = cache_->stats();
  stats.log = log_->stats();
  stats.graph = cache_->GraphStats();
  stats.backups_taken = backups_taken_;
  stats.backup_pages_copied = backup_pages_copied_;
  stats.backup_fence_updates = backup_fence_updates_;
  stats.log_channels = log_->channels();
  stats.durable_epoch = log_->durable_epoch();
  stats.open_epoch = log_->CurrentEpoch();
  return stats;
}

void Database::ResetStats() {
  cache_->ResetStats();
  log_->ResetStats();
}

}  // namespace llb
