#ifndef LLB_WAL_LOG_MANAGER_H_
#define LLB_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "wal/log_channel.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace llb {

/// Per-operation-class logging statistics, used by the benchmarks to
/// measure the extra logging the backup protocol induces (paper section 5).
struct LogStats {
  uint64_t records = 0;
  uint64_t identity_records = 0;  // W_IP records: the Iw/oF "extra logging"
  uint64_t bytes = 0;
  uint64_t identity_bytes = 0;
  uint64_t forces = 0;
  uint64_t group_commits = 0;  // epoch seals that wrote + synced channels
};

/// One sealed log segment: the contiguous run of framed records a single
/// successful Force() made durable. The log is one file, so a "segment"
/// is a byte range, not a separate file; seq numbers seals densely within
/// one LogManager session (they restart at 1 after reopen — cross-session
/// continuity is the ship cursor's job, keyed by LSN).
struct SealedSegment {
  uint64_t seq = 0;
  /// The group-commit epoch this seal published (kInvalidEpoch for seals
  /// that are not commit points, e.g. TruncatePrefix's internal force).
  /// Informational for observers; the shipping path keys on LSN only.
  Epoch epoch = kInvalidEpoch;
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;
  std::string bytes;  // framed records, appendable to another log verbatim
};

/// Tuning knobs for the WAL append path.
struct LogManagerOptions {
  /// Number of per-thread log channels. 1 (the default) keeps the classic
  /// single-mutex append path — byte-identical log file, identical
  /// locking. >1 shards appends across channels; records become durable
  /// in (epoch, LSN) order at the next group commit.
  uint32_t channels = 1;
  /// When >0 (and channels > 1), a background advancer closes the open
  /// epoch and group-commits every interval; WaitEpochDurable() then
  /// blocks on the watermark instead of leading a commit itself. 0 means
  /// caller-driven: the first waiter leads the commit and concurrent
  /// waiters piggyback on its single sync.
  uint32_t group_commit_interval_us = 0;
};

/// Owns the recovery log: assigns LSNs, appends records, forces them
/// durable (WAL), and scans them for redo. The same log serves crash
/// recovery and media recovery ("maintaining the media recovery log is
/// conventional", paper section 1); media recovery simply scans from the
/// start point recorded when its backup began.
///
/// With channels > 1 the append path is sharded: each appender thread is
/// bound round-robin to a LogChannel and only contends on its channel's
/// mutex plus a tiny (lsn, epoch) issuance lock. A group commit closes
/// the open epoch E, drains every channel's records for epochs <= E,
/// merges them by LSN into the single log file (byte format unchanged),
/// syncs once, and publishes durable_epoch = E — the commit point. The
/// fence protocol's "identity write durable before flush to S" becomes
/// "the epoch containing the Iw record has been published".
class LogManager {
 public:
  /// Observes segment seals. Invoked after the seal is durable (the
  /// force's sync succeeded), under the log mutex: observers must be
  /// quick and must not call back into the LogManager (enqueue and
  /// return — the shipper's pattern).
  using SealObserver = std::function<void(const SealedSegment&)>;

  /// Opens (creating if needed) the log, scanning any existing durable
  /// records to find the next LSN to assign.
  static Result<std::unique_ptr<LogManager>> Open(
      Env* env, const std::string& name, LogManagerOptions options = {});

  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Assigns the next LSN to *record, buffers it, and returns the LSN.
  /// If epoch_out is non-null it receives the open epoch the record was
  /// issued in: the record is durable once durable_epoch() >= *epoch_out.
  Lsn Append(LogRecord* record, Epoch* epoch_out = nullptr);

  /// Makes all appended records durable. With channels > 1 this is a
  /// full group commit (closes the open epoch, drains every channel,
  /// publishes the watermark). If the seal covered records, the seal
  /// observer (if any) fires before Force returns.
  Status Force();

  /// Blocks until durable_epoch() >= epoch (i.e. every record issued in
  /// `epoch` is durable). Caller-driven mode: the first waiter leads a
  /// group commit under the commit lock and concurrent waiters piggyback
  /// on its one sync. Background mode: waits on the advancer's watermark.
  /// With channels == 1 this simply Force()s if the epoch is not yet
  /// published.
  Status WaitEpochDurable(Epoch epoch);

  /// The epoch any subsequent Append() would be issued in. Waiting for
  /// this epoch makes everything appended so far durable (epoch barrier).
  Epoch CurrentEpoch() const;

  /// Highest published (group-committed) epoch.
  Epoch durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }

  uint32_t channels() const { return options_.channels; }

  /// Installs the seal observer (nullptr clears). Seals that happened
  /// before installation are not replayed — a late-attaching shipper
  /// catches up by Scan()ning from its durable cursor instead.
  void SetSealObserver(SealObserver observer);

  /// Atomically installs the seal observer and returns the durable LSN
  /// at the moment of installation, under the seal lock: every seal up
  /// to the returned LSN happened strictly before installation, every
  /// later seal fires the new observer. This closes the attach race a
  /// shipper would otherwise have between its catch-up scan and the
  /// observer install.
  Lsn InstallSealObserver(SealObserver observer);

  /// Appends an already-sealed segment replicated from a primary log,
  /// preserving its LSNs (standby side). The segment must be contiguous
  /// with this log: first_lsn == next_lsn(); its bytes are validated
  /// (framing, CRC, dense LSNs matching [first_lsn, last_lsn]). On
  /// success the decoded records are appended to *records_out (if non
  /// -null) and the segment is buffered — call Force() to make it
  /// durable before applying it to the standby's stable store (WAL rule).
  ///
  /// Epoch-stamped segments (epoch != kInvalidEpoch) additionally keep
  /// the media-recovery merge keyed by (epoch, LSN) sane:
  ///  - an empty segment (no bytes, first_lsn == kInvalidLsn) with a new
  ///    epoch just advances the ingested-epoch bookkeeping (an idle
  ///    channel epoch published with no records);
  ///  - replaying an epoch <= the last ingested one is an idempotent
  ///    no-op iff its records are already ingested (last_lsn < next_lsn),
  ///    and InvalidArgument otherwise (a stale epoch cannot introduce
  ///    unseen records).
  Status AppendSealed(const SealedSegment& segment,
                      std::vector<LogRecord>* records_out);

  /// Highest epoch accepted through AppendSealed (kInvalidEpoch if only
  /// unstamped segments were ingested).
  Epoch last_ingested_epoch() const;

  /// LSN that will be assigned to the next record.
  Lsn next_lsn() const;

  /// Highest LSN known durable (<= last appended).
  Lsn durable_lsn() const;

  /// Scans durable records with lsn >= start_lsn in order. The callback
  /// may return non-OK to abort the scan.
  Status Scan(Lsn start_lsn,
              const std::function<Status(const LogRecord&)>& fn) const;

  LogStats stats() const;

  /// Resets the identity-record counters (benchmarks sample deltas).
  void ResetStats();

  /// Physically discards all records with lsn < keep_from, rewriting the
  /// log file. Callers must ensure no recovery path still needs the
  /// prefix: keep_from must not exceed the crash-redo scan start NOR the
  /// start_lsn of any backup that may still be restored (identity-write
  /// records "permit the truncation of the log in the same way that
  /// flushing does", paper 3.2).
  Status TruncatePrefix(Lsn keep_from);

 private:
  LogManager(Env* env, std::string name, std::shared_ptr<File> file,
             Lsn next_lsn, LogManagerOptions options);

  /// Forces the writer and, if records were sealed, fires the observer.
  /// mu_ held by caller. Does not touch stats_.forces (TruncatePrefix's
  /// internal force is not a logical WAL force).
  Status SealLocked(Epoch sealed_epoch);

  /// Closes the open epoch, drains every channel, merges by LSN into the
  /// writer, seals, and publishes the watermark. commit_mu_ held by the
  /// caller; takes issue_mu_, each channel mutex, and mu_ in turn (never
  /// nested with each other). On IO failure the drained bytes stay in
  /// the writer buffer and the watermark does not advance — the next
  /// commit retries them (classic LogWriter retry semantics).
  Status GroupCommitLocked();

  LogChannel& ChannelForThisThread();
  void AdvancerLoop();

  Env* const env_;
  const std::string name_;
  const LogManagerOptions options_;
  std::shared_ptr<File> file_;

  // Lock order: commit_mu_ -> { channel mu / issue_mu_ (never nested
  // with each other by the commit path; an appender holds its channel
  // mutex across issue_mu_) } -> mu_ -> issue_mu_. watermark_mu_ is a
  // leaf taken with nothing else held.
  mutable std::mutex mu_;
  LogWriter writer_;
  Lsn durable_lsn_;
  Lsn last_appended_ = kInvalidLsn;
  LogStats stats_;
  SealObserver seal_observer_;
  uint64_t seal_seq_ = 0;
  Lsn seal_first_lsn_ = kInvalidLsn;  // first LSN buffered since last seal
  Epoch last_ingested_epoch_ = kInvalidEpoch;

  // (lsn, epoch) issuance — the only cross-channel append coordination.
  mutable std::mutex issue_mu_;
  Lsn next_lsn_;
  Epoch open_epoch_ = 1;

  // Group commit: serializes epoch closes; piggybacking waiters queue
  // on commit_mu_ and re-check the watermark once the leader publishes.
  std::mutex commit_mu_;
  std::vector<std::unique_ptr<LogChannel>> channels_;
  std::atomic<Epoch> durable_epoch_{kInvalidEpoch};

  // Watermark publication + background advancer.
  mutable std::mutex watermark_mu_;
  std::condition_variable watermark_cv_;
  Status advancer_error_;  // sticky until the next successful commit
  bool stop_advancer_ = false;
  std::thread advancer_;
};

}  // namespace llb

#endif  // LLB_WAL_LOG_MANAGER_H_
