#ifndef LLB_WAL_LOG_MANAGER_H_
#define LLB_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace llb {

/// Per-operation-class logging statistics, used by the benchmarks to
/// measure the extra logging the backup protocol induces (paper section 5).
struct LogStats {
  uint64_t records = 0;
  uint64_t identity_records = 0;  // W_IP records: the Iw/oF "extra logging"
  uint64_t bytes = 0;
  uint64_t identity_bytes = 0;
  uint64_t forces = 0;
};

/// One sealed log segment: the contiguous run of framed records a single
/// successful Force() made durable. The log is one file, so a "segment"
/// is a byte range, not a separate file; seq numbers seals densely within
/// one LogManager session (they restart at 1 after reopen — cross-session
/// continuity is the ship cursor's job, keyed by LSN).
struct SealedSegment {
  uint64_t seq = 0;
  Lsn first_lsn = kInvalidLsn;
  Lsn last_lsn = kInvalidLsn;
  std::string bytes;  // framed records, appendable to another log verbatim
};

/// Owns the recovery log: assigns LSNs, appends records, forces them
/// durable (WAL), and scans them for redo. The same log serves crash
/// recovery and media recovery ("maintaining the media recovery log is
/// conventional", paper section 1); media recovery simply scans from the
/// start point recorded when its backup began.
class LogManager {
 public:
  /// Observes segment seals. Invoked after the seal is durable (the
  /// force's sync succeeded), under the log mutex: observers must be
  /// quick and must not call back into the LogManager (enqueue and
  /// return — the shipper's pattern).
  using SealObserver = std::function<void(const SealedSegment&)>;

  /// Opens (creating if needed) the log, scanning any existing durable
  /// records to find the next LSN to assign.
  static Result<std::unique_ptr<LogManager>> Open(Env* env,
                                                  const std::string& name);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Assigns the next LSN to *record, buffers it, and returns the LSN.
  Lsn Append(LogRecord* record);

  /// Makes all appended records durable. If that sealed a non-empty
  /// segment, the seal observer (if any) fires before Force returns.
  Status Force();

  /// Installs the seal observer (nullptr clears). Seals that happened
  /// before installation are not replayed — a late-attaching shipper
  /// catches up by Scan()ning from its durable cursor instead.
  void SetSealObserver(SealObserver observer);

  /// Appends an already-sealed segment replicated from a primary log,
  /// preserving its LSNs (standby side). The segment must be contiguous
  /// with this log: first_lsn == next_lsn(); its bytes are validated
  /// (framing, CRC, dense LSNs matching [first_lsn, last_lsn]). On
  /// success the decoded records are appended to *records_out (if non
  /// -null) and the segment is buffered — call Force() to make it
  /// durable before applying it to the standby's stable store (WAL rule).
  Status AppendSealed(const SealedSegment& segment,
                      std::vector<LogRecord>* records_out);

  /// LSN that will be assigned to the next record.
  Lsn next_lsn() const;

  /// Highest LSN known durable (<= last appended).
  Lsn durable_lsn() const;

  /// Scans durable records with lsn >= start_lsn in order. The callback
  /// may return non-OK to abort the scan.
  Status Scan(Lsn start_lsn,
              const std::function<Status(const LogRecord&)>& fn) const;

  LogStats stats() const;

  /// Resets the identity-record counters (benchmarks sample deltas).
  void ResetStats();

  /// Physically discards all records with lsn < keep_from, rewriting the
  /// log file. Callers must ensure no recovery path still needs the
  /// prefix: keep_from must not exceed the crash-redo scan start NOR the
  /// start_lsn of any backup that may still be restored (identity-write
  /// records "permit the truncation of the log in the same way that
  /// flushing does", paper 3.2).
  Status TruncatePrefix(Lsn keep_from);

 private:
  LogManager(Env* env, std::string name, std::shared_ptr<File> file,
             Lsn next_lsn)
      : env_(env),
        name_(std::move(name)),
        file_(std::move(file)),
        writer_(file_),
        next_lsn_(next_lsn),
        durable_lsn_(next_lsn - 1) {}

  /// Forces the writer and, if records were sealed, fires the observer.
  /// mu_ held by caller. Does not touch stats_.forces (TruncatePrefix's
  /// internal force is not a logical WAL force).
  Status SealLocked();

  Env* const env_;
  const std::string name_;
  std::shared_ptr<File> file_;

  mutable std::mutex mu_;
  LogWriter writer_;
  Lsn next_lsn_;
  Lsn durable_lsn_;
  Lsn last_appended_ = kInvalidLsn;
  LogStats stats_;
  SealObserver seal_observer_;
  uint64_t seal_seq_ = 0;
  Lsn seal_first_lsn_ = kInvalidLsn;  // first LSN buffered since last seal
};

}  // namespace llb

#endif  // LLB_WAL_LOG_MANAGER_H_
