#ifndef LLB_WAL_LOG_MANAGER_H_
#define LLB_WAL_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace llb {

/// Per-operation-class logging statistics, used by the benchmarks to
/// measure the extra logging the backup protocol induces (paper section 5).
struct LogStats {
  uint64_t records = 0;
  uint64_t identity_records = 0;  // W_IP records: the Iw/oF "extra logging"
  uint64_t bytes = 0;
  uint64_t identity_bytes = 0;
  uint64_t forces = 0;
};

/// Owns the recovery log: assigns LSNs, appends records, forces them
/// durable (WAL), and scans them for redo. The same log serves crash
/// recovery and media recovery ("maintaining the media recovery log is
/// conventional", paper section 1); media recovery simply scans from the
/// start point recorded when its backup began.
class LogManager {
 public:
  /// Opens (creating if needed) the log, scanning any existing durable
  /// records to find the next LSN to assign.
  static Result<std::unique_ptr<LogManager>> Open(Env* env,
                                                  const std::string& name);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Assigns the next LSN to *record, buffers it, and returns the LSN.
  Lsn Append(LogRecord* record);

  /// Makes all appended records durable.
  Status Force();

  /// LSN that will be assigned to the next record.
  Lsn next_lsn() const;

  /// Highest LSN known durable (<= last appended).
  Lsn durable_lsn() const;

  /// Scans durable records with lsn >= start_lsn in order. The callback
  /// may return non-OK to abort the scan.
  Status Scan(Lsn start_lsn,
              const std::function<Status(const LogRecord&)>& fn) const;

  LogStats stats() const;

  /// Resets the identity-record counters (benchmarks sample deltas).
  void ResetStats();

  /// Physically discards all records with lsn < keep_from, rewriting the
  /// log file. Callers must ensure no recovery path still needs the
  /// prefix: keep_from must not exceed the crash-redo scan start NOR the
  /// start_lsn of any backup that may still be restored (identity-write
  /// records "permit the truncation of the log in the same way that
  /// flushing does", paper 3.2).
  Status TruncatePrefix(Lsn keep_from);

 private:
  LogManager(Env* env, std::string name, std::shared_ptr<File> file,
             Lsn next_lsn)
      : env_(env),
        name_(std::move(name)),
        file_(std::move(file)),
        writer_(file_),
        next_lsn_(next_lsn),
        durable_lsn_(next_lsn - 1) {}

  Env* const env_;
  const std::string name_;
  std::shared_ptr<File> file_;

  mutable std::mutex mu_;
  LogWriter writer_;
  Lsn next_lsn_;
  Lsn durable_lsn_;
  Lsn last_appended_ = kInvalidLsn;
  LogStats stats_;
};

}  // namespace llb

#endif  // LLB_WAL_LOG_MANAGER_H_
