#ifndef LLB_WAL_LOG_RECORD_H_
#define LLB_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace llb {

/// Operation codes. The engine core interprets 1 and 2; all other codes
/// are domain operations dispatched through the OpRegistry.
enum OpCode : uint16_t {
  kOpInvalid = 0,

  // --- engine core ---
  /// Physical blind write W_P(X, log(v)): payload is the full page image.
  kOpPhysicalWrite = 1,
  /// Cache-manager identity write W_IP(X, log(X)): payload is the full
  /// current page image. Semantically a physical write, but distinguished
  /// because (a) it is the extra logging the paper's backup protocol
  /// charges for, and (b) redo may *seed* pages from identity values
  /// (install-without-flush; see recovery/redo.h).
  kOpIdentityWrite = 2,
  /// Checkpoint record: payload carries the crash-redo scan start LSN.
  kOpCheckpoint = 3,

  // --- B-tree domain (tree operations) ---
  kOpBtreeInsert = 16,       // physiological: insert record into a leaf
  kOpBtreeDelete = 17,       // physiological: delete record from a leaf
  kOpBtreeMovRec = 19,       // logical W_L(old, new): move high records
  kOpBtreeRmvRec = 20,       // physiological: remove high records from old
  kOpBtreeInsertIndex = 21,  // physiological: insert separator into inner
  kOpBtreeSetMeta = 22,      // blind write of the tree meta page

  // --- file-store domain (general logical operations) ---
  kOpFileCopy = 32,         // logical: copy file X to file Y (multi-page)
  kOpFileSort = 33,         // logical: sort file X into file Y
  kOpFileWrite = 34,        // physical write of one file page
  kOpFileTransform = 35,    // physiological multi-page in-place transform

  // --- application-recovery domain ---
  kOpAppExec = 48,          // Ex(A): physiological on the app state page
  kOpAppRead = 49,          // R(X, A): reads X and A, writes A
  kOpAppWrite = 50,         // W_L(A, X): reads A, writes X
};

/// A logged operation: LSN, code, the read and write sets (object ids),
/// and an opaque payload interpreted by the op's replay function.
///
/// This is the paper's operation model (Table 1): an operation reads
/// readset(Op) and writes writeset(Op); logical operations log operand
/// *identifiers* plus a small descriptor instead of data values.
struct LogRecord {
  /// Group flags: a multi-record atomic group (e.g. a logical B-tree
  /// split: MovRec / SetMeta / InsertIndex / RmvRec) marks its first
  /// record kGroupBegin and its last kGroupEnd. Point-in-time restore
  /// refuses cut points with an open group — stopping between Begin and
  /// End would leave a half-applied structure modification (the split's
  /// records are only atomic as a unit). Single-record operations carry
  /// no flags.
  static constexpr uint8_t kGroupBegin = 0x1;
  static constexpr uint8_t kGroupEnd = 0x2;

  Lsn lsn = kInvalidLsn;
  uint16_t op_code = kOpInvalid;
  uint8_t flags = 0;
  std::vector<PageId> readset;
  std::vector<PageId> writeset;
  std::string payload;

  bool IsGroupBegin() const { return (flags & kGroupBegin) != 0; }
  bool IsGroupEnd() const { return (flags & kGroupEnd) != 0; }
  bool IsIdentityWrite() const { return op_code == kOpIdentityWrite; }
  bool IsBlindWrite() const {
    return op_code == kOpPhysicalWrite || op_code == kOpIdentityWrite;
  }
  bool IsCheckpoint() const { return op_code == kOpCheckpoint; }

  /// Serialized size on disk including framing.
  size_t EncodedSize() const;

  /// Appends the framed encoding ([len][crc][body]) to *dst.
  void EncodeTo(std::string* dst) const;

  /// Decodes one framed record from the front of *input, advancing it.
  /// Returns Corruption on CRC/format mismatch and NotFound when input is
  /// an incomplete tail (normal end of a crashed log).
  static Status DecodeFrom(Slice* input, LogRecord* out);
};

}  // namespace llb

#endif  // LLB_WAL_LOG_RECORD_H_
