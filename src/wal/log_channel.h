#ifndef LLB_WAL_LOG_CHANNEL_H_
#define LLB_WAL_LOG_CHANNEL_H_

#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace llb {

/// One per-thread WAL append channel (the limestone `log_channel` shape).
/// Appenders encode records into the channel's staging queue under the
/// channel mutex — held across LSN/epoch issuance AND buffering, so that
/// once an epoch is closed, every record issued in it is either fully
/// buffered or its appender still holds the channel mutex. The group
/// commit drains each channel in turn and therefore never observes a
/// half-buffered epoch.
class LogChannel {
 public:
  /// One buffered record: its (epoch, LSN) key for the commit-time merge
  /// plus its already-framed bytes.
  struct Pending {
    Epoch epoch = kInvalidEpoch;
    Lsn lsn = kInvalidLsn;
    bool identity = false;
    std::string bytes;
  };

  std::mutex& mu() { return mu_; }

  /// Buffers an already-LSN-stamped record under `epoch`. mu_ held by
  /// the caller (the LogManager's append path).
  void AddLocked(Epoch epoch, const LogRecord& record) {
    Pending p;
    p.epoch = epoch;
    p.lsn = record.lsn;
    p.identity = record.IsIdentityWrite();
    record.EncodeTo(&p.bytes);
    pending_.push_back(std::move(p));
  }

  /// Moves every buffered record with epoch <= up_to into *out. Epochs
  /// are issued monotonically per channel, so the eligible records form
  /// a prefix of the queue. Takes mu_ internally; the caller (group
  /// commit) must NOT hold any other LogManager lock while calling.
  void Drain(Epoch up_to, std::vector<Pending>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    while (!pending_.empty() && pending_.front().epoch <= up_to) {
      out->push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }

 private:
  std::mutex mu_;
  std::deque<Pending> pending_;
};

}  // namespace llb

#endif  // LLB_WAL_LOG_CHANNEL_H_
