#include "wal/log_manager.h"

namespace llb {

Result<std::unique_ptr<LogManager>> LogManager::Open(Env* env,
                                                     const std::string& name) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name, /*create=*/true));

  // Find the next LSN by scanning the durable records.
  Lsn next = 1;
  {
    LogReader reader(file);
    LLB_RETURN_IF_ERROR(reader.Init());
    LogRecord rec;
    while (reader.Next(&rec)) {
      if (rec.lsn >= next) next = rec.lsn + 1;
    }
  }
  return std::unique_ptr<LogManager>(
      new LogManager(env, name, std::move(file), next));
}

Lsn LogManager::Append(LogRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  record->lsn = next_lsn_++;
  writer_.Add(*record);
  if (seal_first_lsn_ == kInvalidLsn) seal_first_lsn_ = record->lsn;
  last_appended_ = record->lsn;
  size_t encoded = record->EncodedSize();
  ++stats_.records;
  stats_.bytes += encoded;
  if (record->IsIdentityWrite()) {
    ++stats_.identity_records;
    stats_.identity_bytes += encoded;
  }
  return record->lsn;
}

Status LogManager::Force() {
  std::lock_guard<std::mutex> lock(mu_);
  LLB_RETURN_IF_ERROR(SealLocked());
  ++stats_.forces;
  return Status::OK();
}

Status LogManager::SealLocked() {
  std::string sealed;
  LLB_RETURN_IF_ERROR(writer_.Force(&sealed));
  if (last_appended_ != kInvalidLsn) durable_lsn_ = last_appended_;
  if (!sealed.empty()) {
    SealedSegment segment;
    segment.seq = ++seal_seq_;
    segment.first_lsn = seal_first_lsn_;
    segment.last_lsn = last_appended_;
    segment.bytes = std::move(sealed);
    seal_first_lsn_ = kInvalidLsn;
    if (seal_observer_) seal_observer_(segment);
  }
  return Status::OK();
}

void LogManager::SetSealObserver(SealObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  seal_observer_ = std::move(observer);
}

Status LogManager::AppendSealed(const SealedSegment& segment,
                                std::vector<LogRecord>* records_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (segment.first_lsn != next_lsn_) {
    return Status::InvalidArgument(
        "sealed segment not contiguous: first_lsn " +
        std::to_string(segment.first_lsn) + " != next_lsn " +
        std::to_string(next_lsn_));
  }
  // Validate before buffering: framing + CRC, and LSNs dense over
  // [first_lsn, last_lsn]. A torn or rotten segment is rejected whole.
  std::vector<LogRecord> records;
  Slice cursor(segment.bytes);
  Lsn expect = segment.first_lsn;
  while (!cursor.empty()) {
    LogRecord rec;
    Status s = LogRecord::DecodeFrom(&cursor, &rec);
    if (!s.ok()) return Status::Corruption("sealed segment: " + s.ToString());
    if (rec.lsn != expect) {
      return Status::Corruption("sealed segment LSNs not dense");
    }
    ++expect;
    records.push_back(std::move(rec));
  }
  if (records.empty() || records.back().lsn != segment.last_lsn) {
    return Status::Corruption("sealed segment does not end at last_lsn");
  }
  writer_.AddRaw(Slice(segment.bytes));
  if (seal_first_lsn_ == kInvalidLsn) seal_first_lsn_ = segment.first_lsn;
  for (const LogRecord& rec : records) {
    size_t encoded = rec.EncodedSize();
    ++stats_.records;
    stats_.bytes += encoded;
    if (rec.IsIdentityWrite()) {
      ++stats_.identity_records;
      stats_.identity_bytes += encoded;
    }
  }
  next_lsn_ = segment.last_lsn + 1;
  last_appended_ = segment.last_lsn;
  if (records_out != nullptr) {
    for (LogRecord& rec : records) records_out->push_back(std::move(rec));
  }
  return Status::OK();
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Status LogManager::Scan(
    Lsn start_lsn, const std::function<Status(const LogRecord&)>& fn) const {
  // Readers take their own snapshot of the durable contents; no lock held
  // during the scan so recovery can read while nothing else is running and
  // benches can scan concurrently with appends (they see a prefix).
  LogReader reader(file_);
  LLB_RETURN_IF_ERROR(reader.Init());
  LogRecord rec;
  while (reader.Next(&rec)) {
    if (rec.lsn < start_lsn) continue;
    LLB_RETURN_IF_ERROR(fn(rec));
  }
  return Status::OK();
}

LogStats LogManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = LogStats{};
}

Status LogManager::TruncatePrefix(Lsn keep_from) {
  std::lock_guard<std::mutex> lock(mu_);
  // Flush buffered records first so the rewrite sees everything. Routed
  // through SealLocked so records sealed by this internal force still
  // reach the seal observer (a shipper must not lose them).
  LLB_RETURN_IF_ERROR(SealLocked());

  LLB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(file_->ReadAt(0, size, &contents));

  std::string kept;
  Slice cursor(contents);
  LogRecord rec;
  while (!cursor.empty()) {
    const char* record_start = cursor.data();
    size_t before = cursor.size();
    if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) break;
    if (rec.lsn >= keep_from) {
      kept.append(record_start, before - cursor.size());
    }
  }
  LLB_RETURN_IF_ERROR(file_->Truncate(0));
  LLB_RETURN_IF_ERROR(file_->WriteAt(0, Slice(kept)));
  return file_->Sync();
}

}  // namespace llb
