#include "wal/log_manager.h"

#include <algorithm>
#include <chrono>

namespace llb {

Result<std::unique_ptr<LogManager>> LogManager::Open(Env* env,
                                                     const std::string& name,
                                                     LogManagerOptions options) {
  if (options.channels == 0) options.channels = 1;
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name, /*create=*/true));

  // Find the next LSN by scanning the durable records.
  Lsn next = 1;
  {
    LogReader reader(file);
    LLB_RETURN_IF_ERROR(reader.Init());
    LogRecord rec;
    while (reader.Next(&rec)) {
      if (rec.lsn >= next) next = rec.lsn + 1;
    }
  }
  return std::unique_ptr<LogManager>(
      new LogManager(env, name, std::move(file), next, options));
}

LogManager::LogManager(Env* env, std::string name, std::shared_ptr<File> file,
                       Lsn next_lsn, LogManagerOptions options)
    : env_(env),
      name_(std::move(name)),
      options_(options),
      file_(std::move(file)),
      writer_(file_),
      durable_lsn_(next_lsn - 1),
      next_lsn_(next_lsn) {
  if (options_.channels > 1) {
    channels_.reserve(options_.channels);
    for (uint32_t i = 0; i < options_.channels; ++i) {
      channels_.push_back(std::make_unique<LogChannel>());
    }
    if (options_.group_commit_interval_us > 0) {
      advancer_ = std::thread([this] { AdvancerLoop(); });
    }
  }
}

LogManager::~LogManager() {
  if (advancer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watermark_mu_);
      stop_advancer_ = true;
    }
    watermark_cv_.notify_all();
    advancer_.join();
  }
}

LogChannel& LogManager::ChannelForThisThread() {
  // Threads bind to channels round-robin at first append; the binding is
  // process-wide (not per-LogManager) which only affects which channel a
  // thread lands on, never correctness.
  static std::atomic<uint64_t> next_slot{0};
  thread_local uint64_t slot = next_slot.fetch_add(1);
  return *channels_[slot % channels_.size()];
}

Lsn LogManager::Append(LogRecord* record, Epoch* epoch_out) {
  if (options_.channels <= 1) {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> issue(issue_mu_);
      record->lsn = next_lsn_++;
      if (epoch_out != nullptr) *epoch_out = open_epoch_;
    }
    writer_.Add(*record);
    if (seal_first_lsn_ == kInvalidLsn) seal_first_lsn_ = record->lsn;
    last_appended_ = record->lsn;
    size_t encoded = record->EncodedSize();
    ++stats_.records;
    stats_.bytes += encoded;
    if (record->IsIdentityWrite()) {
      ++stats_.identity_records;
      stats_.identity_bytes += encoded;
    }
    return record->lsn;
  }

  LogChannel& channel = ChannelForThisThread();
  // The channel mutex is held across issuance AND buffering: once the
  // group commit closes epoch E, any record issued in an epoch <= E is
  // either fully buffered or its appender still holds the channel mutex
  // the drain must take — the drain never sees a half-buffered epoch.
  std::lock_guard<std::mutex> lock(channel.mu());
  Epoch epoch;
  {
    std::lock_guard<std::mutex> issue(issue_mu_);
    record->lsn = next_lsn_++;
    epoch = open_epoch_;
  }
  channel.AddLocked(epoch, *record);
  if (epoch_out != nullptr) *epoch_out = epoch;
  return record->lsn;
}

Status LogManager::Force() {
  if (options_.channels <= 1) {
    std::lock_guard<std::mutex> lock(mu_);
    Epoch sealed;
    {
      std::lock_guard<std::mutex> issue(issue_mu_);
      sealed = open_epoch_++;
    }
    LLB_RETURN_IF_ERROR(SealLocked(sealed));
    ++stats_.forces;
    durable_epoch_.store(sealed, std::memory_order_release);
    watermark_cv_.notify_all();
    return Status::OK();
  }
  std::lock_guard<std::mutex> commit(commit_mu_);
  return GroupCommitLocked();
}

Status LogManager::GroupCommitLocked() {
  // Close the open epoch. Everything issued before this point belongs to
  // an epoch <= sealed and is (or is being) buffered in some channel.
  Epoch sealed;
  Lsn tail;
  {
    std::lock_guard<std::mutex> issue(issue_mu_);
    sealed = open_epoch_++;
    tail = next_lsn_ - 1;
  }

  std::vector<LogChannel::Pending> entries;
  for (auto& channel : channels_) channel->Drain(sealed, &entries);
  std::sort(entries.begin(), entries.end(),
            [](const LogChannel::Pending& a, const LogChannel::Pending& b) {
              return a.lsn < b.lsn;
            });

  std::unique_lock<std::mutex> lock(mu_);
  if (!entries.empty()) {
    // The merged records must continue the log densely up to the LSN
    // issuance tail captured at the epoch close; a gap means a record
    // was issued but never buffered — an invariant violation, not an
    // IO error.
    Lsn expect =
        (last_appended_ != kInvalidLsn ? last_appended_ : durable_lsn_) + 1;
    for (const LogChannel::Pending& entry : entries) {
      if (entry.lsn != expect) {
        return Status::Internal("group commit: channel merge gap at lsn " +
                                std::to_string(expect));
      }
      ++expect;
    }
    if (entries.back().lsn != tail) {
      return Status::Internal("group commit: merge does not reach epoch tail");
    }
    for (const LogChannel::Pending& entry : entries) {
      size_t encoded = entry.bytes.size();
      writer_.AddRaw(Slice(entry.bytes));
      if (seal_first_lsn_ == kInvalidLsn) seal_first_lsn_ = entry.lsn;
      last_appended_ = entry.lsn;
      ++stats_.records;
      stats_.bytes += encoded;
      if (entry.identity) {
        ++stats_.identity_records;
        stats_.identity_bytes += encoded;
      }
    }
  }
  LLB_RETURN_IF_ERROR(SealLocked(sealed));
  ++stats_.forces;
  ++stats_.group_commits;
  lock.unlock();

  {
    std::lock_guard<std::mutex> watermark(watermark_mu_);
    durable_epoch_.store(sealed, std::memory_order_release);
    advancer_error_ = Status::OK();
  }
  watermark_cv_.notify_all();
  return Status::OK();
}

Status LogManager::WaitEpochDurable(Epoch epoch) {
  if (epoch == kInvalidEpoch) return Status::OK();
  if (durable_epoch() >= epoch) return Status::OK();
  if (options_.channels <= 1) return Force();
  if (options_.group_commit_interval_us == 0) {
    // Caller-driven: lead a commit, or piggyback if a concurrent leader
    // already published our epoch while we queued on the commit lock.
    std::lock_guard<std::mutex> commit(commit_mu_);
    if (durable_epoch() >= epoch) return Status::OK();
    return GroupCommitLocked();
  }
  std::unique_lock<std::mutex> watermark(watermark_mu_);
  watermark_cv_.wait(watermark, [&] {
    return durable_epoch() >= epoch || !advancer_error_.ok() || stop_advancer_;
  });
  if (durable_epoch() >= epoch) return Status::OK();
  if (!advancer_error_.ok()) return advancer_error_;
  return Status::Internal("log manager shut down while waiting for epoch");
}

Epoch LogManager::CurrentEpoch() const {
  std::lock_guard<std::mutex> issue(issue_mu_);
  return open_epoch_;
}

void LogManager::AdvancerLoop() {
  const auto interval =
      std::chrono::microseconds(options_.group_commit_interval_us);
  while (true) {
    {
      std::unique_lock<std::mutex> watermark(watermark_mu_);
      watermark_cv_.wait_for(watermark, interval,
                             [&] { return stop_advancer_; });
      if (stop_advancer_) return;
    }
    Status s;
    {
      std::lock_guard<std::mutex> commit(commit_mu_);
      s = GroupCommitLocked();
    }
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> watermark(watermark_mu_);
        advancer_error_ = s;
      }
      watermark_cv_.notify_all();
    }
  }
}

Status LogManager::SealLocked(Epoch sealed_epoch) {
  std::string sealed;
  LLB_RETURN_IF_ERROR(writer_.Force(&sealed));
  if (last_appended_ != kInvalidLsn) durable_lsn_ = last_appended_;
  if (!sealed.empty()) {
    SealedSegment segment;
    segment.seq = ++seal_seq_;
    segment.epoch = sealed_epoch;
    segment.first_lsn = seal_first_lsn_;
    segment.last_lsn = last_appended_;
    segment.bytes = std::move(sealed);
    seal_first_lsn_ = kInvalidLsn;
    if (seal_observer_) seal_observer_(segment);
  }
  return Status::OK();
}

void LogManager::SetSealObserver(SealObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  seal_observer_ = std::move(observer);
}

Lsn LogManager::InstallSealObserver(SealObserver observer) {
  // Seals happen under mu_, so swapping the observer under mu_ and
  // reading durable_lsn_ in the same critical section gives the caller
  // an exact cut: LSNs <= the returned value were sealed before the new
  // observer existed, anything later will fire it.
  std::lock_guard<std::mutex> lock(mu_);
  seal_observer_ = std::move(observer);
  return durable_lsn_;
}

Status LogManager::AppendSealed(const SealedSegment& segment,
                                std::vector<LogRecord>* records_out) {
  std::lock_guard<std::mutex> lock(mu_);
  Lsn next;
  {
    std::lock_guard<std::mutex> issue(issue_mu_);
    next = next_lsn_;
  }
  if (segment.epoch != kInvalidEpoch &&
      segment.epoch <= last_ingested_epoch_) {
    // Duplicate epoch replay: idempotent iff everything it carries is
    // already ingested; a stale epoch must not introduce unseen records.
    if (segment.first_lsn == kInvalidLsn ||
        (segment.last_lsn != kInvalidLsn && segment.last_lsn < next)) {
      return Status::OK();
    }
    return Status::InvalidArgument(
        "sealed segment replays epoch " + std::to_string(segment.epoch) +
        " with records beyond next_lsn " + std::to_string(next));
  }
  if (segment.first_lsn == kInvalidLsn && segment.bytes.empty()) {
    // An idle epoch published with no records: nothing to buffer, just
    // advance the (epoch, LSN) merge bookkeeping.
    if (segment.epoch != kInvalidEpoch) last_ingested_epoch_ = segment.epoch;
    return Status::OK();
  }
  if (segment.first_lsn != next) {
    return Status::InvalidArgument(
        "sealed segment not contiguous: first_lsn " +
        std::to_string(segment.first_lsn) + " != next_lsn " +
        std::to_string(next));
  }
  // Validate before buffering: framing + CRC, and LSNs dense over
  // [first_lsn, last_lsn]. A torn or rotten segment is rejected whole.
  std::vector<LogRecord> records;
  Slice cursor(segment.bytes);
  Lsn expect = segment.first_lsn;
  while (!cursor.empty()) {
    LogRecord rec;
    Status s = LogRecord::DecodeFrom(&cursor, &rec);
    if (!s.ok()) return Status::Corruption("sealed segment: " + s.ToString());
    if (rec.lsn != expect) {
      return Status::Corruption("sealed segment LSNs not dense");
    }
    ++expect;
    records.push_back(std::move(rec));
  }
  if (records.empty() || records.back().lsn != segment.last_lsn) {
    return Status::Corruption("sealed segment does not end at last_lsn");
  }
  writer_.AddRaw(Slice(segment.bytes));
  if (seal_first_lsn_ == kInvalidLsn) seal_first_lsn_ = segment.first_lsn;
  for (const LogRecord& rec : records) {
    size_t encoded = rec.EncodedSize();
    ++stats_.records;
    stats_.bytes += encoded;
    if (rec.IsIdentityWrite()) {
      ++stats_.identity_records;
      stats_.identity_bytes += encoded;
    }
  }
  {
    std::lock_guard<std::mutex> issue(issue_mu_);
    next_lsn_ = segment.last_lsn + 1;
  }
  last_appended_ = segment.last_lsn;
  if (segment.epoch != kInvalidEpoch) last_ingested_epoch_ = segment.epoch;
  if (records_out != nullptr) {
    for (LogRecord& rec : records) records_out->push_back(std::move(rec));
  }
  return Status::OK();
}

Epoch LogManager::last_ingested_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ingested_epoch_;
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> issue(issue_mu_);
  return next_lsn_;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Status LogManager::Scan(
    Lsn start_lsn, const std::function<Status(const LogRecord&)>& fn) const {
  // Readers take their own snapshot of the durable contents; no lock held
  // during the scan so recovery can read while nothing else is running and
  // benches can scan concurrently with appends (they see a prefix).
  LogReader reader(file_);
  LLB_RETURN_IF_ERROR(reader.Init());
  LogRecord rec;
  while (reader.Next(&rec)) {
    if (rec.lsn < start_lsn) continue;
    LLB_RETURN_IF_ERROR(fn(rec));
  }
  return Status::OK();
}

LogStats LogManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = LogStats{};
}

Status LogManager::TruncatePrefix(Lsn keep_from) {
  if (options_.channels > 1) {
    // Drain the channels through a full group commit first so the file
    // rewrite below sees every buffered record.
    std::lock_guard<std::mutex> commit(commit_mu_);
    LLB_RETURN_IF_ERROR(GroupCommitLocked());
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Flush buffered records first so the rewrite sees everything. Routed
  // through SealLocked so records sealed by this internal force still
  // reach the seal observer (a shipper must not lose them).
  LLB_RETURN_IF_ERROR(SealLocked(kInvalidEpoch));

  LLB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(file_->ReadAt(0, size, &contents));

  std::string kept;
  Slice cursor(contents);
  LogRecord rec;
  while (!cursor.empty()) {
    const char* record_start = cursor.data();
    size_t before = cursor.size();
    if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) break;
    if (rec.lsn >= keep_from) {
      kept.append(record_start, before - cursor.size());
    }
  }
  LLB_RETURN_IF_ERROR(file_->Truncate(0));
  LLB_RETURN_IF_ERROR(file_->WriteAt(0, Slice(kept)));
  return file_->Sync();
}

}  // namespace llb
