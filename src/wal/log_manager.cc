#include "wal/log_manager.h"

namespace llb {

Result<std::unique_ptr<LogManager>> LogManager::Open(Env* env,
                                                     const std::string& name) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name, /*create=*/true));

  // Find the next LSN by scanning the durable records.
  Lsn next = 1;
  {
    LogReader reader(file);
    LLB_RETURN_IF_ERROR(reader.Init());
    LogRecord rec;
    while (reader.Next(&rec)) {
      if (rec.lsn >= next) next = rec.lsn + 1;
    }
  }
  return std::unique_ptr<LogManager>(
      new LogManager(env, name, std::move(file), next));
}

Lsn LogManager::Append(LogRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  record->lsn = next_lsn_++;
  writer_.Add(*record);
  last_appended_ = record->lsn;
  size_t encoded = record->EncodedSize();
  ++stats_.records;
  stats_.bytes += encoded;
  if (record->IsIdentityWrite()) {
    ++stats_.identity_records;
    stats_.identity_bytes += encoded;
  }
  return record->lsn;
}

Status LogManager::Force() {
  std::lock_guard<std::mutex> lock(mu_);
  LLB_RETURN_IF_ERROR(writer_.Force());
  ++stats_.forces;
  if (last_appended_ != kInvalidLsn) durable_lsn_ = last_appended_;
  return Status::OK();
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Status LogManager::Scan(
    Lsn start_lsn, const std::function<Status(const LogRecord&)>& fn) const {
  // Readers take their own snapshot of the durable contents; no lock held
  // during the scan so recovery can read while nothing else is running and
  // benches can scan concurrently with appends (they see a prefix).
  LogReader reader(file_);
  LLB_RETURN_IF_ERROR(reader.Init());
  LogRecord rec;
  while (reader.Next(&rec)) {
    if (rec.lsn < start_lsn) continue;
    LLB_RETURN_IF_ERROR(fn(rec));
  }
  return Status::OK();
}

LogStats LogManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = LogStats{};
}

Status LogManager::TruncatePrefix(Lsn keep_from) {
  std::lock_guard<std::mutex> lock(mu_);
  // Flush buffered records first so the rewrite sees everything.
  LLB_RETURN_IF_ERROR(writer_.Force());
  if (last_appended_ != kInvalidLsn) durable_lsn_ = last_appended_;

  LLB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  std::string contents;
  LLB_RETURN_IF_ERROR(file_->ReadAt(0, size, &contents));

  std::string kept;
  Slice cursor(contents);
  LogRecord rec;
  while (!cursor.empty()) {
    const char* record_start = cursor.data();
    size_t before = cursor.size();
    if (!LogRecord::DecodeFrom(&cursor, &rec).ok()) break;
    if (rec.lsn >= keep_from) {
      kept.append(record_start, before - cursor.size());
    }
  }
  LLB_RETURN_IF_ERROR(file_->Truncate(0));
  LLB_RETURN_IF_ERROR(file_->WriteAt(0, Slice(kept)));
  return file_->Sync();
}

}  // namespace llb
