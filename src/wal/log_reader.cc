#include "wal/log_reader.h"

namespace llb {

Status LogReader::Init() {
  LLB_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  contents_.clear();
  LLB_RETURN_IF_ERROR(file_->ReadAt(0, size, &contents_));
  cursor_ = Slice(contents_);
  return Status::OK();
}

bool LogReader::Next(LogRecord* record) {
  if (cursor_.empty()) return false;
  Status s = LogRecord::DecodeFrom(&cursor_, record);
  if (!s.ok()) {
    // Incomplete or corrupt tail: the log ends here. (A corrupt record
    // mid-log would also stop the scan; with force-before-use WAL
    // discipline the tail is the only place this occurs.)
    cursor_ = Slice();
    return false;
  }
  return true;
}

}  // namespace llb
