#include "wal/log_writer.h"

namespace llb {

Status LogWriter::Add(const LogRecord& record) {
  size_t before = buffer_.size();
  record.EncodeTo(&buffer_);
  bytes_logged_ += buffer_.size() - before;
  return Status::OK();
}

Status LogWriter::Force() {
  if (!buffer_.empty()) {
    LLB_RETURN_IF_ERROR(file_->Append(Slice(buffer_)));
    buffer_.clear();
  }
  return file_->Sync();
}

}  // namespace llb
