#include "wal/log_writer.h"

namespace llb {

Status LogWriter::Add(const LogRecord& record) {
  size_t before = buffer_.size();
  record.EncodeTo(&buffer_);
  bytes_logged_ += buffer_.size() - before;
  return Status::OK();
}

Status LogWriter::AddRaw(Slice framed) {
  buffer_.append(framed.data(), framed.size());
  bytes_logged_ += framed.size();
  return Status::OK();
}

Status LogWriter::Force(std::string* sealed) {
  if (!buffer_.empty()) {
    LLB_RETURN_IF_ERROR(file_->Append(Slice(buffer_)));
    if (sealed != nullptr) {
      *sealed = std::move(buffer_);
    }
    buffer_.clear();
  } else if (sealed != nullptr) {
    sealed->clear();
  }
  return file_->Sync();
}

}  // namespace llb
