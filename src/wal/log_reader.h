#ifndef LLB_WAL_LOG_READER_H_
#define LLB_WAL_LOG_READER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "wal/log_record.h"

namespace llb {

/// Sequentially decodes records from a log file. Stops cleanly at the
/// first incomplete or corrupt tail record (data that never made it to a
/// successful force before a crash).
class LogReader {
 public:
  explicit LogReader(std::shared_ptr<File> file) : file_(std::move(file)) {}

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Loads the durable contents. Must be called before Next().
  Status Init();

  /// Reads the next record. Returns false at end of (valid) log.
  bool Next(LogRecord* record);

 private:
  std::shared_ptr<File> file_;
  std::string contents_;
  Slice cursor_;
};

}  // namespace llb

#endif  // LLB_WAL_LOG_READER_H_
