#ifndef LLB_WAL_LOG_WRITER_H_
#define LLB_WAL_LOG_WRITER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "io/env.h"
#include "wal/log_record.h"

namespace llb {

/// Appends framed log records to a file. Records are buffered in memory
/// until Force() (the WAL force) appends and syncs them; this matches the
/// usual group-commit structure and lets fault injection distinguish
/// volatile appends from durable forces.
class LogWriter {
 public:
  explicit LogWriter(std::shared_ptr<File> file) : file_(std::move(file)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Buffers a record for the next Force().
  Status Add(const LogRecord& record);

  /// Buffers already-framed record bytes (a sealed segment replicated
  /// from another log) for the next Force().
  Status AddRaw(Slice framed);

  /// Appends all buffered records and syncs the file. When `sealed` is
  /// non-null it receives the byte range this force made durable (empty
  /// if nothing was buffered) — the "sealed segment" the log shipper
  /// streams to a standby.
  Status Force(std::string* sealed = nullptr);

  /// Bytes appended + buffered since construction (logging-volume metric).
  uint64_t bytes_logged() const { return bytes_logged_; }

 private:
  std::shared_ptr<File> file_;
  std::string buffer_;
  uint64_t bytes_logged_ = 0;
};

}  // namespace llb

#endif  // LLB_WAL_LOG_WRITER_H_
