#include "wal/log_record.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace {

void EncodeBody(const LogRecord& rec, std::string* body) {
  PutFixed64(body, rec.lsn);
  PutFixed16(body, rec.op_code);
  body->push_back(static_cast<char>(rec.flags));
  PutVarint32(body, static_cast<uint32_t>(rec.readset.size()));
  for (const PageId& id : rec.readset) PutPageId(body, id);
  PutVarint32(body, static_cast<uint32_t>(rec.writeset.size()));
  for (const PageId& id : rec.writeset) PutPageId(body, id);
  body->append(rec.payload);
}

}  // namespace

size_t LogRecord::EncodedSize() const {
  std::string body;
  EncodeBody(*this, &body);
  return 8 + body.size();
}

void LogRecord::EncodeTo(std::string* dst) const {
  std::string body;
  EncodeBody(*this, &body);
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  PutFixed32(dst, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  dst->append(body);
}

Status LogRecord::DecodeFrom(Slice* input, LogRecord* out) {
  if (input->size() < 8) return Status::NotFound("end of log");
  uint32_t len = DecodeFixed32(input->data());
  uint32_t masked_crc = DecodeFixed32(input->data() + 4);
  if (input->size() < 8 + uint64_t{len}) return Status::NotFound("end of log");
  Slice body(input->data() + 8, len);
  if (crc32c::Unmask(masked_crc) != crc32c::Value(body.data(), len)) {
    return Status::Corruption("log record crc mismatch");
  }

  SliceReader reader(body);
  uint32_t nread = 0, nwrite = 0;
  out->readset.clear();
  out->writeset.clear();
  Slice flags_byte;
  if (!reader.ReadFixed64(&out->lsn) || !reader.ReadFixed16(&out->op_code) ||
      !reader.ReadBytes(1, &flags_byte) || !reader.ReadVarint32(&nread)) {
    return Status::Corruption("malformed log record");
  }
  out->flags = static_cast<uint8_t>(flags_byte[0]);
  for (uint32_t i = 0; i < nread; ++i) {
    PageId id;
    if (!reader.ReadPageId(&id)) return Status::Corruption("bad readset");
    out->readset.push_back(id);
  }
  if (!reader.ReadVarint32(&nwrite)) return Status::Corruption("bad writeset");
  for (uint32_t i = 0; i < nwrite; ++i) {
    PageId id;
    if (!reader.ReadPageId(&id)) return Status::Corruption("bad writeset");
    out->writeset.push_back(id);
  }
  out->payload.assign(reader.rest().data(), reader.remaining());
  input->RemovePrefix(8 + len);
  return Status::OK();
}

}  // namespace llb
