#include "backup/incremental_tracker.h"

#include <algorithm>

namespace llb {

std::vector<PageId> IncrementalTracker::SnapshotAndClear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> out(changed_.begin(), changed_.end());
  changed_.clear();
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace llb
