#ifndef LLB_BACKUP_BACKUP_JOB_H_
#define LLB_BACKUP_BACKUP_JOB_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "backup/backup_progress.h"
#include "backup/backup_store.h"
#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

struct BackupJobOptions {
  /// Number of progress-reporting steps per partition (paper section 5's
  /// N). One step degenerates to "backup active / not active"; more steps
  /// mean finer fences and less extra logging.
  uint32_t steps = 8;
  /// Back up partitions on concurrent threads (each partition has its own
  /// fences and latch, so they interleave freely — paper 3.4).
  bool parallel_partitions = false;
  /// Test/benchmark hook: invoked once per step, after the pending fence
  /// has been advanced but before the step's pages are copied — i.e.
  /// while the Doubt window [D, P) is genuinely in doubt. Runs without
  /// any latch held, so it may execute operations and flushes. An error
  /// aborts the backup.
  std::function<Status(PartitionId, uint32_t)> mid_step;
};

struct BackupJobStats {
  uint64_t pages_copied = 0;
  uint64_t fence_updates = 0;
};

/// The on-line backup process: sweeps the stable database S in backup
/// order, copying pages directly into the backup store B — bypassing the
/// cache manager entirely — while reporting progress through the backup
/// fences. Update activity continues concurrently; the cache manager's
/// backup-aware flush path (cache/cache_manager.h) keeps B recoverable.
class BackupJob {
 public:
  BackupJob(Env* env, PageStore* stable, BackupCoordinator* coordinator,
            LogManager* log, uint32_t pages_per_partition,
            BackupJobOptions options);

  BackupJob(const BackupJob&) = delete;
  BackupJob& operator=(const BackupJob&) = delete;

  /// Takes a full backup named `name`. `start_lsn` must be the crash-redo
  /// scan start point captured at the moment the backup begins (the cache
  /// manager's RedoStartLsn()).
  Result<BackupManifest> Run(const std::string& name, Lsn start_lsn);

  /// Takes an incremental backup containing only `changed_pages`,
  /// chained to `base_name` (paper 6.1).
  Result<BackupManifest> RunIncremental(const std::string& name,
                                        const std::string& base_name,
                                        Lsn start_lsn,
                                        std::vector<PageId> changed_pages);

  const BackupJobStats& stats() const { return stats_; }

 private:
  Status BackupPartition(PageStore* dest, PartitionId partition,
                         const std::vector<uint32_t>* page_filter);

  Env* const env_;
  PageStore* const stable_;
  BackupCoordinator* const coordinator_;
  LogManager* const log_;
  const uint32_t pages_per_partition_;
  const BackupJobOptions options_;
  std::mutex stats_mu_;
  BackupJobStats stats_;
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_JOB_H_
