#ifndef LLB_BACKUP_BACKUP_JOB_H_
#define LLB_BACKUP_BACKUP_JOB_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "backup/backup_progress.h"
#include "backup/backup_store.h"
#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "io/sweep_pool.h"
#include "io/transfer_pipeline.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

/// Bounded retries with deterministic exponential backoff for transient
/// faults during the sweep. IoError statuses are retried, as are
/// Corruption statuses (a checksum mismatch on a read may be a transient
/// bit-flip on the wire — the persistent kind still surfaces once the
/// retry budget is exhausted); other failures surface immediately.
struct RetryPolicy {
  /// Additional attempts after the first failure (0 = fail fast).
  uint32_t max_retries = 0;
  /// Sleep before the first retry, in microseconds (0 = no sleeping —
  /// the deterministic choice for tests). Each subsequent retry waits
  /// `backoff_multiplier` times longer.
  uint32_t backoff_start_us = 0;
  double backoff_multiplier = 2.0;
};

struct BackupJobOptions {
  /// Number of progress-reporting steps per partition (paper section 5's
  /// N). One step degenerates to "backup active / not active"; more steps
  /// mean finer fences and less extra logging.
  uint32_t steps = 8;
  /// Back up partitions on concurrent threads (each partition has its own
  /// fences and latch, so they interleave freely — paper 3.4). Legacy
  /// all-out switch: equivalent to sweep_threads = num_partitions.
  bool parallel_partitions = false;
  /// Number of concurrent sweep workers. Partitions are sharded across
  /// the workers (each worker claims the next unswept partition), so the
  /// device sees up to sweep_threads concurrent streams while every
  /// partition still has exactly one sweeper advancing its own (D, P)
  /// fences — the per-partition latch protocol is untouched, and fence
  /// advances on different partitions commute (DESIGN.md "Parallel
  /// sweeps"). 1 = serial. Clamped to the partition count.
  uint32_t sweep_threads = 1;
  /// Persistent worker pool to run sweep workers and pipelined prefetch
  /// on. Not owned. When null, parallel sweeps fall back to transient
  /// std::threads and pipelined prefetch to std::async — both counted in
  /// BackupJobStats::threads_spawned. Database attaches its own pool to
  /// every job it drives, so Database-driven sweeps spawn zero transient
  /// threads.
  SweepThreadPool* pool = nullptr;
  /// Retry policy for transient IO errors on page copies and sweep
  /// metadata writes.
  RetryPolicy retry;
  /// Pages moved per batched device IO inside a step (the sweep's K).
  /// 1 keeps the legacy per-page copy loop: one read, one write + sync,
  /// and two store-latch round trips per page. K > 1 copies maximal
  /// contiguous runs of up to K pages with one PageStore::ReadRun and
  /// one PageStore::WriteSealedRun each — one latch acquisition, one
  /// device IO, and one durability round trip per run instead of per
  /// page. The fence protocol is untouched: fences move only at step
  /// boundaries, so Done/Doubt/Pend classification of any concurrent
  /// flush is identical for every K.
  uint32_t batch_pages = 1;
  /// Double-buffered prefetch inside each step (only effective with
  /// batch_pages > 1): a reader stage fills batch N+1 from S while the
  /// writer stage flushes batch N to B. Prefetch never crosses the
  /// pending fence — only pages the current step already moved into
  /// Doubt are read ahead, so a concurrent flush to a Pend page can
  /// never race a read the fence maths doesn't know about.
  bool pipelined = false;
  /// Deep-queue asynchronous IO inside each step (only effective with
  /// batch_pages > 1, superseding `pipelined`): each sweep worker keeps
  /// up to queue_depth run IOs in flight through Env::OpenAsync
  /// (io_uring where the kernel grants it, the portable thread pool
  /// elsewhere). Read-ahead stays bounded by the step's Doubt window,
  /// exactly like prefetch: the pipeline never reaches past the plan it
  /// is handed, and plans stop at the pending fence. <= 1 keeps the
  /// synchronous path.
  uint32_t queue_depth = 0;
  /// Persist a per-partition cursor in the backup store after every
  /// completed step, so an aborted Run can be continued with Resume
  /// instead of restarting from page 0. Costs one small durable write
  /// per step per partition.
  bool resumable = true;
  /// Test/benchmark hook: invoked once per step, after the pending fence
  /// has been advanced but before the step's pages are copied — i.e.
  /// while the Doubt window [D, P) is genuinely in doubt. Runs without
  /// any latch held, so it may execute operations and flushes. An error
  /// aborts the backup.
  std::function<Status(PartitionId, uint32_t)> mid_step;
};

struct BackupJobStats {
  uint64_t pages_copied = 0;
  uint64_t fence_updates = 0;
  /// Transient IO errors observed by the sweep (including ones that a
  /// retry then absorbed).
  uint64_t io_faults = 0;
  /// Retry attempts performed under the RetryPolicy.
  uint64_t retries = 0;
  /// Partitions continued past page 0 by Resume.
  uint64_t partitions_resumed = 0;
  /// Page positions Resume skipped because the cursor showed them
  /// already durably in B.
  uint64_t pages_skipped_on_resume = 0;
  /// Batched runs moved by the batch_pages > 1 path; each is one
  /// store-latch acquisition plus one device IO on its side of the
  /// pipeline (and, for writes, one durability round trip).
  uint64_t read_batches = 0;
  uint64_t write_batches = 0;
  /// Wall-clock time spent inside the read / write stages, in
  /// microseconds. With pipelining the stages overlap, so their sum can
  /// exceed the sweep's elapsed time.
  uint64_t read_stage_us = 0;
  uint64_t write_stage_us = 0;
  /// Transient threads created because no SweepThreadPool was attached
  /// (std::thread per partition worker, std::async per prefetch). A job
  /// with a pool keeps this at exactly 0 — the regression guard for the
  /// persistent-worker design.
  uint64_t threads_spawned = 0;
};

/// The on-line backup process: sweeps the stable database S in backup
/// order, copying pages directly into the backup store B — bypassing the
/// cache manager entirely — while reporting progress through the backup
/// fences. Update activity continues concurrently; the cache manager's
/// backup-aware flush path (cache/cache_manager.h) keeps B recoverable.
///
/// Fault tolerance: transient IO errors are retried per the RetryPolicy.
/// If a sweep still fails, it leaves behind (1) an incomplete manifest
/// holding the original start_lsn, (2) a durable BackupCursor recording
/// each partition's last completed step boundary, and (3) the partition
/// fences, still up, so concurrent flushes keep being identity-logged.
/// Resume(name) then continues each partition from its cursor; the D/P
/// fence math stays correct because everything below the cursor is
/// durably in B (Done) and everything above is re-swept (Pending).
class BackupJob {
 public:
  BackupJob(Env* env, PageStore* stable, BackupCoordinator* coordinator,
            LogManager* log, uint32_t pages_per_partition,
            BackupJobOptions options);

  BackupJob(const BackupJob&) = delete;
  BackupJob& operator=(const BackupJob&) = delete;

  /// Takes a full backup named `name`. `start_lsn` must be the crash-redo
  /// scan start point captured at the moment the backup begins (the cache
  /// manager's RedoStartLsn()).
  Result<BackupManifest> Run(const std::string& name, Lsn start_lsn);

  /// Takes an incremental backup containing only `changed_pages`,
  /// chained to `base_name` (paper 6.1).
  Result<BackupManifest> RunIncremental(const std::string& name,
                                        const std::string& base_name,
                                        Lsn start_lsn,
                                        std::vector<PageId> changed_pages);

  /// Continues an aborted resumable backup from its persisted cursor.
  /// The start_lsn (and, for incrementals, the page list) comes from the
  /// incomplete manifest the aborted Run left behind. Correct only while
  /// the partition fences have stayed up since the abort (same
  /// coordinator, no Reset in between): the fences are what kept flushes
  /// into already-copied regions identity-logged.
  Result<BackupManifest> Resume(const std::string& name);

  /// Locked copy of the stats, safe to call while Run/RunIncremental/
  /// Resume is still executing on other threads (parallel partitions
  /// update the counters under stats_mu_).
  BackupJobStats StatsSnapshot() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  /// Unlocked reference; only valid once the job has returned.
  const BackupJobStats& stats() const { return stats_; }

 private:
  /// Sweeps one partition from `start_from` (0 for a fresh run). `steps`
  /// comes from the manifest so resumed sweeps reuse the original fence
  /// boundaries. `cursor`, when non-null, is durably updated after every
  /// completed step. Page movement goes through `pipeline` (the shared
  /// TransferPipeline for this sweep), one step's Doubt window per plan.
  Status BackupPartition(TransferPipeline* pipeline, PartitionId partition,
                         const std::vector<uint32_t>* page_filter,
                         uint32_t steps, uint32_t start_from,
                         BackupCursor* cursor);

  /// Shared sweep driver for Run/RunIncremental/Resume. Fills in
  /// end_lsn, marks the manifest complete, and retires the cursor.
  Result<BackupManifest> Sweep(BackupManifest manifest, BackupCursor cursor,
                               bool resuming);

  /// Runs `body` once per partition on up to `SweepWorkers()` concurrent
  /// workers (pool tasks when a pool is attached, transient std::threads
  /// otherwise). Workers claim partitions from a shared counter, so any
  /// worker count ≤ the partition count keeps every partition
  /// single-sweeper.
  Status RunPartitions(const std::function<Status(PartitionId)>& body);

  /// Effective concurrent sweep-worker count for this job's options.
  uint32_t SweepWorkers() const;

  /// Runs fn, retrying IoError/Corruption failures per options_.retry.
  Status WithRetry(const std::function<Status()>& fn);

  /// Durably records that `partition` completed the step ending at
  /// `boundary`.
  Status UpdateCursor(BackupCursor* cursor, PartitionId partition,
                      uint32_t boundary);

  Env* const env_;
  PageStore* const stable_;
  BackupCoordinator* const coordinator_;
  LogManager* const log_;
  const uint32_t pages_per_partition_;
  const BackupJobOptions options_;
  std::mutex cursor_mu_;
  mutable std::mutex stats_mu_;
  BackupJobStats stats_;
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_JOB_H_
