#include "backup/backup_store.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "io/durable_cursor.h"

namespace llb {

namespace {
constexpr uint32_t kManifestMagic = 0x4C4C424Du;  // "LLBM"
constexpr uint32_t kCursorMagic = 0x4C4C4243u;    // "LLBC"
}  // namespace

Status BackupManifest::Save(Env* env) const {
  std::string blob;
  PutFixed32(&blob, kManifestMagic);
  PutLengthPrefixed(&blob, Slice(name));
  PutFixed64(&blob, start_lsn);
  PutFixed64(&blob, end_lsn);
  PutFixed32(&blob, partitions);
  PutFixed32(&blob, pages_per_partition);
  PutFixed32(&blob, steps);
  blob.push_back(complete ? '\1' : '\0');
  blob.push_back(incremental ? '\1' : '\0');
  PutLengthPrefixed(&blob, Slice(base_name));
  PutVarint64(&blob, pages.size());
  for (const PageId& id : pages) PutPageId(&blob, id);
  PutFixed32(&blob, crc32c::Value(blob.data(), blob.size()));

  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name + ".manifest", /*create=*/true));
  LLB_RETURN_IF_ERROR(file->Truncate(0));
  LLB_RETURN_IF_ERROR(file->WriteAt(0, Slice(blob)));
  return file->Sync();
}

Result<BackupManifest> BackupManifest::Load(Env* env,
                                            const std::string& name) {
  LLB_ASSIGN_OR_RETURN(std::shared_ptr<File> file,
                       env->OpenFile(name + ".manifest", /*create=*/false));
  LLB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string blob;
  LLB_RETURN_IF_ERROR(file->ReadAt(0, size, &blob));
  if (blob.size() < 8) return Status::Corruption("manifest too small");

  uint32_t stored_crc = DecodeFixed32(blob.data() + blob.size() - 4);
  if (stored_crc != crc32c::Value(blob.data(), blob.size() - 4)) {
    return Status::Corruption("manifest crc mismatch");
  }

  SliceReader reader(Slice(blob.data(), blob.size() - 4));
  BackupManifest m;
  uint32_t magic = 0;
  Slice name_slice, base_slice;
  uint64_t num_pages = 0;
  Slice flag_bytes;
  if (!reader.ReadFixed32(&magic) || magic != kManifestMagic ||
      !reader.ReadLengthPrefixed(&name_slice) ||
      !reader.ReadFixed64(&m.start_lsn) || !reader.ReadFixed64(&m.end_lsn) ||
      !reader.ReadFixed32(&m.partitions) ||
      !reader.ReadFixed32(&m.pages_per_partition) ||
      !reader.ReadFixed32(&m.steps) || !reader.ReadBytes(2, &flag_bytes) ||
      !reader.ReadLengthPrefixed(&base_slice) ||
      !reader.ReadVarint64(&num_pages)) {
    return Status::Corruption("malformed manifest");
  }
  m.name = name_slice.ToString();
  m.complete = flag_bytes[0] != '\0';
  m.incremental = flag_bytes[1] != '\0';
  m.base_name = base_slice.ToString();
  m.pages.reserve(num_pages);
  for (uint64_t i = 0; i < num_pages; ++i) {
    PageId id;
    if (!reader.ReadPageId(&id)) return Status::Corruption("bad page list");
    m.pages.push_back(id);
  }
  return m;
}

Status BackupCursor::Save(Env* env) const {
  // Framing (tmp write, sync, rename, crc) is DurableCursor's job; this
  // blob is just the cursor fields.
  std::string blob;
  PutFixed32(&blob, kCursorMagic);
  PutLengthPrefixed(&blob, Slice(backup_name));
  PutFixed32(&blob, partitions);
  PutFixed32(&blob, pages_per_partition);
  PutFixed32(&blob, steps);
  for (uint32_t boundary : next_page) PutFixed32(&blob, boundary);
  return DurableCursor::Save(env, FileName(backup_name), Slice(blob));
}

Result<BackupCursor> BackupCursor::Load(Env* env, const std::string& name) {
  LLB_ASSIGN_OR_RETURN(std::string blob,
                       DurableCursor::Load(env, FileName(name)));
  SliceReader reader{Slice(blob)};
  BackupCursor c;
  uint32_t magic = 0;
  Slice name_slice;
  if (!reader.ReadFixed32(&magic) || magic != kCursorMagic ||
      !reader.ReadLengthPrefixed(&name_slice) ||
      !reader.ReadFixed32(&c.partitions) ||
      !reader.ReadFixed32(&c.pages_per_partition) ||
      !reader.ReadFixed32(&c.steps) ||
      reader.remaining() != uint64_t{c.partitions} * 4) {
    return Status::Corruption("malformed cursor");
  }
  c.backup_name = name_slice.ToString();
  c.next_page.resize(c.partitions);
  for (uint32_t p = 0; p < c.partitions; ++p) {
    if (!reader.ReadFixed32(&c.next_page[p])) {
      return Status::Corruption("malformed cursor");
    }
  }
  return c;
}

Status BackupCursor::Remove(Env* env, const std::string& name) {
  return DurableCursor::Remove(env, FileName(name));
}

}  // namespace llb
