#ifndef LLB_BACKUP_INCREMENTAL_TRACKER_H_
#define LLB_BACKUP_INCREMENTAL_TRACKER_H_

#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace llb {

/// Records which pages changed in the stable database since the last
/// backup, enabling incremental backups (paper 6.1: "identify the set of
/// database objects updated since the last backup"). The cache manager
/// reports every page it flushes; the backup job snapshots and clears.
class IncrementalTracker {
 public:
  IncrementalTracker() = default;

  IncrementalTracker(const IncrementalTracker&) = delete;
  IncrementalTracker& operator=(const IncrementalTracker&) = delete;

  void OnPageFlushed(const PageId& id) {
    std::lock_guard<std::mutex> lock(mu_);
    changed_.insert(id);
  }

  /// Pages changed since the last Snapshot-and-clear, sorted in backup
  /// order within partitions.
  std::vector<PageId> SnapshotAndClear();

  size_t PendingCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return changed_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_set<PageId, PageIdHash> changed_;
};

}  // namespace llb

#endif  // LLB_BACKUP_INCREMENTAL_TRACKER_H_
