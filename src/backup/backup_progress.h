#ifndef LLB_BACKUP_BACKUP_PROGRESS_H_
#define LLB_BACKUP_BACKUP_PROGRESS_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/types.h"

namespace llb {

/// Region of the backup order an object position falls in (paper 3.4,
/// Figure 3).
enum class BackupRegion {
  kDone,   // #X <  D : already copied to B; a flush now will NOT reach B
  kDoubt,  // D <= #X < P : may or may not have been copied
  kPend,   // #X >= P : not yet copied; a flush now WILL reach B
};

/// Per-partition backup progress: the fences D (done) and P (pending)
/// over the partition's backup order, protected by the backup latch.
///
/// Protocol (paper 3.4):
///  * between backups D = P = Min (0): every object is pending, so the
///    cache manager needs no extra logging;
///  * the backup process advances in steps: set P to the next boundary
///    (exclusive latch), copy all pages below P, then set D = P;
///  * the cache manager holds the latch in share mode across an entire
///    flush so D and P cannot move mid-flush.
class BackupProgress {
 public:
  BackupProgress() = default;

  BackupProgress(const BackupProgress&) = delete;
  BackupProgress& operator=(const BackupProgress&) = delete;

  /// The backup latch. Share mode: cache-manager flushes. Exclusive mode:
  /// fence updates by the backup process.
  std::shared_mutex& latch() { return latch_; }

  // --- readers (call with latch held in share or exclusive mode) ---

  /// True while a backup of this partition is under way.
  bool active() const { return done_ != 0 || pending_ != 0; }

  BackupRegion Classify(BackupPos pos) const {
    if (pos >= pending_) return BackupRegion::kPend;
    if (pos < done_) return BackupRegion::kDone;
    return BackupRegion::kDoubt;
  }

  BackupPos done_fence() const { return done_; }
  BackupPos pending_fence() const { return pending_; }

  // --- writers (call with latch held exclusively) ---

  /// Advances the pending fence to `p` (start of a step).
  void SetPendingFence(BackupPos p) {
    pending_ = p;
    ++fence_updates_;
  }

  /// Marks everything below the pending fence done (end of a step).
  void SetDoneFence() {
    done_ = pending_;
    ++fence_updates_;
  }

  /// Re-establishes the fences when a previously aborted sweep of this
  /// partition resumes: every position below `done` is durably in B, and
  /// no step copy is in flight, so D = P = done. Positions at or above
  /// `done` become Pending again — correct because the resumed sweep
  /// re-copies from `done` — and positions below stay Done. An aborted
  /// sweep leaves its fences up (the job never calls Reset on failure),
  /// so flushes between abort and resume keep being identity-logged; this
  /// call only pulls the pending fence back to the durable cursor.
  void RestoreFences(BackupPos done) {
    done_ = done;
    pending_ = done;
    ++fence_updates_;
  }

  /// Resets to the between-backups state D = P = Min.
  void Reset() {
    done_ = 0;
    pending_ = 0;
    ++fence_updates_;
  }

  /// Number of exclusive fence updates — the synchronization cost knob
  /// the paper's step count N controls.
  uint64_t fence_updates() const { return fence_updates_; }

 private:
  std::shared_mutex latch_;
  BackupPos done_ = 0;
  BackupPos pending_ = 0;
  uint64_t fence_updates_ = 0;
};

/// One BackupProgress per partition ("we define a backup latch per
/// partition. This permits us to back up partitions in parallel").
class BackupCoordinator {
 public:
  explicit BackupCoordinator(uint32_t num_partitions) {
    progress_.reserve(num_partitions);
    for (uint32_t i = 0; i < num_partitions; ++i) {
      progress_.push_back(std::make_unique<BackupProgress>());
    }
  }

  BackupCoordinator(const BackupCoordinator&) = delete;
  BackupCoordinator& operator=(const BackupCoordinator&) = delete;

  BackupProgress* Get(PartitionId partition) {
    return progress_[partition].get();
  }
  const BackupProgress* Get(PartitionId partition) const {
    return progress_[partition].get();
  }

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(progress_.size());
  }

 private:
  std::vector<std::unique_ptr<BackupProgress>> progress_;
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_PROGRESS_H_
