#ifndef LLB_BACKUP_BACKUP_SCRUBBER_H_
#define LLB_BACKUP_BACKUP_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "backup/backup_progress.h"
#include "backup/backup_store.h"
#include "common/result.h"
#include "common/status.h"
#include "io/env.h"
#include "ops/op_registry.h"
#include "storage/page_store.h"
#include "wal/log_manager.h"

namespace llb {

struct ScrubOptions {
  /// false = verify only (no mutation); true = repair bad pages.
  bool repair = false;

  /// Repair source 1: the live stable database S. A bad backup page is
  /// re-copied from S under the normal fence protocol — an identity
  /// write W_IP(X) is logged first (Iw/oF), making the fresher image
  /// blind-replayable, then the page is installed in B. Null disables
  /// this source.
  PageStore* stable = nullptr;

  /// The recovery log. Required for repair: the identity write of
  /// source 1 is appended here, and source 2 replays it.
  LogManager* log = nullptr;

  /// Repair source 2 (when S is bad too): media-recovery redo — the
  /// page is rebuilt by re-executing the log from its beginning onto a
  /// scratch store (partition-scoped), the rebuilt image heals S, and
  /// the re-copy of source 1 proceeds. Requires the log to reach back
  /// to LSN 1 (i.e. not truncated past the first record). Null disables
  /// this source.
  const OpRegistry* registry = nullptr;

  /// When set, the identity write and re-copy run under the partition's
  /// backup latch in share mode, so a concurrently running sweep's
  /// fences cannot move mid-repair. Null is fine for offline scrubs.
  BackupCoordinator* coordinator = nullptr;

  /// Invoked before a page is re-read from `stable` for repair. Wire it
  /// to CacheManager::FlushPage: it installs any newer uninstalled value
  /// of the page into S first (under the normal flush-order discipline),
  /// so the identity write below logs the page's CURRENT value. Without
  /// it, repairing while the cache holds uninstalled updates to the page
  /// would identity-log a stale value at a too-new LSN, suppressing redo
  /// of the newer operations.
  std::function<Status(const PageId&)> install_current;
};

struct ScrubReport {
  /// Manifests in the verified chain (1 for a full backup, more with
  /// incrementals).
  uint32_t manifests_checked = 0;
  uint64_t pages_scanned = 0;
  /// Pages whose checksum verification failed.
  uint64_t bad_pages = 0;
  /// Bad pages repaired by re-copying from a healthy S (+ identity
  /// write).
  uint64_t repaired_from_stable = 0;
  /// Bad pages repaired via media-recovery redo from the log (S was bad
  /// too; S was healed as a side effect).
  uint64_t repaired_from_log = 0;
  /// Bad pages no source could repair.
  uint64_t unrepaired = 0;

  bool clean() const { return bad_pages == 0; }
  bool fully_repaired() const { return unrepaired == 0; }
};

/// End-to-end verification (and optional repair) of a finished backup:
/// walks the manifest chain (full + incrementals), re-reads every page
/// each chain element contributes, and verifies its checksum. With
/// `repair` set, bad pages are re-copied from S under the fence protocol
/// or, if S is also bad, rebuilt via media-recovery redo from the log.
///
/// Repair soundness: every repaired page gets an identity write appended
/// to the recovery log, so any restore that rolls forward past that
/// record blind-reinstalls the repaired image regardless of what the
/// chain overlay produced. Two caveats:
///  * point-in-time restores targeting an LSN before the repair would
///    see a too-new image for repaired pages — take a fresh backup after
///    heavy repair if PITR matters;
///  * repair (not verify) assumes no operations execute concurrently
///    against the repaired pages: the identity value is captured from S
///    (after install_current) or the durable log, and an update racing
///    between that capture and the identity append could be masked at
///    redo. Run repairs quiesced, as dbtool's scrub subcommand does.
class BackupScrubber {
 public:
  BackupScrubber(Env* env, ScrubOptions options)
      : env_(env), options_(options) {}

  BackupScrubber(const BackupScrubber&) = delete;
  BackupScrubber& operator=(const BackupScrubber&) = delete;

  /// Verifies (and, per options, repairs) the chain ending at
  /// `backup_name`. Returns an error only when the scrub itself cannot
  /// proceed (missing/corrupt manifest, incomplete backup, broken
  /// chain); page damage is reported in the ScrubReport.
  Result<ScrubReport> Scrub(const std::string& backup_name);

 private:
  /// Repairs one manifest's bad pages (sorted). Pages a healthy S can
  /// supply are re-copied in bulk runs through a TransferPipeline
  /// (identity writes logged per run, Iw/oF preserved); the rest fall
  /// back to per-page media-recovery redo from the log.
  Status RepairManifest(PageStore* store, const BackupManifest& manifest,
                        const std::vector<PageId>& bad, ScrubReport* report);

  /// Source-2 repair: rebuild `id` by replaying the log from its first
  /// record onto a scratch store, then install under the fence protocol.
  Status RepairPageFromLog(PageStore* store, const BackupManifest& manifest,
                           const PageId& id, ScrubReport* report);

  Env* const env_;
  const ScrubOptions options_;
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_SCRUBBER_H_
