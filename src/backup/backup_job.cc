#include "backup/backup_job.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace llb {

BackupJob::BackupJob(Env* env, PageStore* stable,
                     BackupCoordinator* coordinator, LogManager* log,
                     uint32_t pages_per_partition, BackupJobOptions options)
    : env_(env),
      stable_(stable),
      coordinator_(coordinator),
      log_(log),
      pages_per_partition_(pages_per_partition),
      options_(options) {}

Status BackupJob::BackupPartition(PageStore* dest, PartitionId partition,
                                  const std::vector<uint32_t>* page_filter) {
  BackupProgress* progress = coordinator_->Get(partition);
  const uint32_t steps = std::max<uint32_t>(1, options_.steps);
  uint64_t copied = 0;

  uint32_t copy_from = 0;
  for (uint32_t m = 1; m <= steps; ++m) {
    // Advance the pending fence to this step's boundary (exclusive latch:
    // "When the backup process updates its progress, it requests the
    // partition backup latch in exclusive mode").
    uint32_t boundary = (m == steps)
                            ? pages_per_partition_
                            : (pages_per_partition_ * m) / steps;
    {
      std::unique_lock<std::shared_mutex> latch(progress->latch());
      progress->SetPendingFence(boundary);
    }

    if (options_.mid_step) {
      LLB_RETURN_IF_ERROR(options_.mid_step(partition, m));
    }

    // Copy the pages of this step from S to B at full speed, without any
    // cache-manager involvement. Concurrent flushes to these positions
    // are in the Doubt region and hence identity-logged by the cache
    // manager; page-level read/write atomicity is all we need here.
    for (uint32_t page = copy_from; page < boundary; ++page) {
      if (page_filter != nullptr &&
          !std::binary_search(page_filter->begin(), page_filter->end(),
                              page)) {
        continue;
      }
      PageId id{partition, page};
      PageImage image;
      LLB_RETURN_IF_ERROR(stable_->ReadPage(id, &image));
      LLB_RETURN_IF_ERROR(dest->WritePage(id, image));
      ++copied;
    }
    copy_from = boundary;

    // All pages below the boundary are now in B: Done.
    {
      std::unique_lock<std::shared_mutex> latch(progress->latch());
      progress->SetDoneFence();
    }
  }

  // Backup of this partition complete: back to the between-backups state.
  {
    std::unique_lock<std::shared_mutex> latch(progress->latch());
    progress->Reset();
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.pages_copied += copied;
  return Status::OK();
}

namespace {

Status RunPartitions(BackupJob* job, BackupCoordinator* coordinator,
                     bool parallel,
                     const std::function<Status(PartitionId)>& body) {
  (void)job;
  uint32_t n = coordinator->num_partitions();
  if (!parallel || n == 1) {
    for (PartitionId p = 0; p < n; ++p) LLB_RETURN_IF_ERROR(body(p));
    return Status::OK();
  }
  std::vector<Status> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (PartitionId p = 0; p < n; ++p) {
    threads.emplace_back([&, p]() { results[p] = body(p); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& s : results) LLB_RETURN_IF_ERROR(s);
  return Status::OK();
}

}  // namespace

Result<BackupManifest> BackupJob::Run(const std::string& name, Lsn start_lsn) {
  BackupManifest manifest;
  manifest.name = name;
  manifest.start_lsn = start_lsn;
  manifest.partitions = coordinator_->num_partitions();
  manifest.pages_per_partition = pages_per_partition_;
  manifest.steps = options_.steps;

  uint64_t fences_before = 0;
  for (PartitionId p = 0; p < manifest.partitions; ++p) {
    fences_before += coordinator_->Get(p)->fence_updates();
  }

  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> dest,
      PageStore::Open(env_, manifest.StoreName(), manifest.partitions));

  LLB_RETURN_IF_ERROR(RunPartitions(
      this, coordinator_, options_.parallel_partitions, [&](PartitionId p) {
        return BackupPartition(dest.get(), p, /*page_filter=*/nullptr);
      }));

  manifest.end_lsn = log_->next_lsn() - 1;
  manifest.complete = true;
  LLB_RETURN_IF_ERROR(manifest.Save(env_));

  uint64_t fences_after = 0;
  for (PartitionId p = 0; p < manifest.partitions; ++p) {
    fences_after += coordinator_->Get(p)->fence_updates();
  }
  stats_.fence_updates += fences_after - fences_before;
  return manifest;
}

Result<BackupManifest> BackupJob::RunIncremental(
    const std::string& name, const std::string& base_name, Lsn start_lsn,
    std::vector<PageId> changed_pages) {
  BackupManifest manifest;
  manifest.name = name;
  manifest.start_lsn = start_lsn;
  manifest.partitions = coordinator_->num_partitions();
  manifest.pages_per_partition = pages_per_partition_;
  manifest.steps = options_.steps;
  manifest.incremental = true;
  manifest.base_name = base_name;
  std::sort(changed_pages.begin(), changed_pages.end());
  manifest.pages = changed_pages;

  // Per-partition sorted page filters.
  std::unordered_map<PartitionId, std::vector<uint32_t>> filters;
  for (PartitionId p = 0; p < manifest.partitions; ++p) filters[p] = {};
  for (const PageId& id : changed_pages) filters[id.partition].push_back(id.page);

  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> dest,
      PageStore::Open(env_, manifest.StoreName(), manifest.partitions));

  LLB_RETURN_IF_ERROR(RunPartitions(
      this, coordinator_, options_.parallel_partitions, [&](PartitionId p) {
        return BackupPartition(dest.get(), p, &filters[p]);
      }));

  manifest.end_lsn = log_->next_lsn() - 1;
  manifest.complete = true;
  LLB_RETURN_IF_ERROR(manifest.Save(env_));
  return manifest;
}

}  // namespace llb
