#include "backup/backup_job.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/transfer_pipeline.h"

namespace llb {

BackupJob::BackupJob(Env* env, PageStore* stable,
                     BackupCoordinator* coordinator, LogManager* log,
                     uint32_t pages_per_partition, BackupJobOptions options)
    : env_(env),
      stable_(stable),
      coordinator_(coordinator),
      log_(log),
      pages_per_partition_(pages_per_partition),
      options_(options) {}

Status BackupJob::WithRetry(const std::function<Status()>& fn) {
  uint64_t backoff_us = options_.retry.backoff_start_us;
  for (uint32_t attempt = 0;; ++attempt) {
    Status s = fn();
    if (s.ok() || (!s.IsIoError() && !s.IsCorruption())) return s;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.io_faults;
    }
    if (attempt >= options_.retry.max_retries) return s;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.retries;
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = static_cast<uint64_t>(
          static_cast<double>(backoff_us) * options_.retry.backoff_multiplier);
    }
  }
}

Status BackupJob::UpdateCursor(BackupCursor* cursor, PartitionId partition,
                               uint32_t boundary) {
  std::lock_guard<std::mutex> lock(cursor_mu_);
  cursor->next_page[partition] = boundary;
  return WithRetry([&] { return cursor->Save(env_); });
}

Status BackupJob::BackupPartition(TransferPipeline* pipeline,
                                  PartitionId partition,
                                  const std::vector<uint32_t>* page_filter,
                                  uint32_t steps, uint32_t start_from,
                                  BackupCursor* cursor) {
  BackupProgress* progress = coordinator_->Get(partition);
  uint64_t copied = 0;

  // Resuming: everything below the durable cursor is Done, nothing is in
  // flight. The fences have stayed up since the abort (conservatively
  // classifying [cursor, old P) as Doubt); pulling P back to the cursor
  // is safe because the sweep below re-copies everything from there.
  if (start_from > 0) {
    std::unique_lock<std::shared_mutex> latch(progress->latch());
    progress->RestoreFences(start_from);
  }

  uint32_t copy_from = start_from;
  for (uint32_t m = 1; m <= steps; ++m) {
    // Advance the pending fence to this step's boundary (exclusive latch:
    // "When the backup process updates its progress, it requests the
    // partition backup latch in exclusive mode").
    uint32_t boundary = (m == steps)
                            ? pages_per_partition_
                            : (pages_per_partition_ * m) / steps;
    if (boundary <= start_from) continue;  // step completed before abort
    {
      std::unique_lock<std::shared_mutex> latch(progress->latch());
      progress->SetPendingFence(boundary);
    }

    if (options_.mid_step) {
      LLB_RETURN_IF_ERROR(options_.mid_step(partition, m));
    }

    // Copy the pages of this step from S to B at full speed, without any
    // cache-manager involvement. Concurrent flushes to these positions
    // are in the Doubt region and hence identity-logged by the cache
    // manager; page-level read/write atomicity is all we need here.
    // Transient IO errors are retried (the pipeline wraps every IO in
    // WithRetry); if retries are exhausted the sweep aborts with the
    // fences still up and the cursor at the last completed step, ready
    // for Resume. Each step is one plan, so pipelined prefetch never
    // reads past this step's Doubt window [D, P).
    TransferPlan plan;
    plan.AddRange(partition, copy_from, boundary, page_filter,
                  options_.batch_pages);
    LLB_RETURN_IF_ERROR(pipeline->Run(plan, &copied));
    copy_from = boundary;

    // All pages below the boundary are now in B: Done. Persist the
    // cursor so a later fault can resume from this boundary.
    {
      std::unique_lock<std::shared_mutex> latch(progress->latch());
      progress->SetDoneFence();
    }
    if (cursor != nullptr) {
      LLB_RETURN_IF_ERROR(UpdateCursor(cursor, partition, boundary));
    }
  }

  // Backup of this partition complete: back to the between-backups state.
  {
    std::unique_lock<std::shared_mutex> latch(progress->latch());
    progress->Reset();
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.pages_copied += copied;
  return Status::OK();
}

uint32_t BackupJob::SweepWorkers() const {
  uint32_t n = coordinator_->num_partitions();
  uint32_t desired = options_.parallel_partitions
                         ? n
                         : std::max<uint32_t>(1, options_.sweep_threads);
  return std::min(desired, n);
}

Status BackupJob::RunPartitions(
    const std::function<Status(PartitionId)>& body) {
  const uint32_t n = coordinator_->num_partitions();
  const uint32_t workers = SweepWorkers();
  if (workers <= 1) {
    for (PartitionId p = 0; p < n; ++p) LLB_RETURN_IF_ERROR(body(p));
    return Status::OK();
  }

  // Each worker claims the next unswept partition from a shared counter,
  // so exactly one worker ever advances a given partition's fences. A
  // failed partition does not stop the others — matching the serial
  // behavior where every partition's cursor reflects its own progress,
  // which is what Resume relies on.
  auto next = std::make_shared<std::atomic<uint32_t>>(0);
  auto worker = [n, next, &body]() -> Status {
    Status result;
    for (uint32_t p = next->fetch_add(1); p < n; p = next->fetch_add(1)) {
      Status s = body(p);
      if (result.ok() && !s.ok()) result = s;
    }
    return result;
  };

  Status result;
  if (options_.pool != nullptr) {
    // Blocking Submit is safe here: Run/Resume execute on the caller's
    // thread, never on a pool worker.
    std::vector<std::future<Status>> futures;
    futures.reserve(workers);
    for (uint32_t i = 0; i < workers; ++i) {
      futures.push_back(options_.pool->Submit(worker));
    }
    for (std::future<Status>& future : futures) {
      Status s = future.get();
      if (result.ok() && !s.ok()) result = s;
    }
    return result;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.threads_spawned += workers;
  }
  std::vector<Status> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    threads.emplace_back([&, i]() { results[i] = worker(); });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& s : results) {
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Result<BackupManifest> BackupJob::Sweep(BackupManifest manifest,
                                        BackupCursor cursor, bool resuming) {
  uint64_t fences_before = 0;
  for (PartitionId p = 0; p < manifest.partitions; ++p) {
    fences_before += coordinator_->Get(p)->fence_updates();
  }

  // Per-partition sorted page filters (incremental backups only).
  std::unordered_map<PartitionId, std::vector<uint32_t>> filters;
  if (manifest.incremental) {
    for (PartitionId p = 0; p < manifest.partitions; ++p) filters[p] = {};
    for (const PageId& id : manifest.pages) {
      filters[id.partition].push_back(id.page);
    }
  }

  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> dest,
      PageStore::Open(env_, manifest.StoreName(), manifest.partitions));

  // Size the pool up front: one worker per concurrent partition sweeper,
  // plus one prefetch slot per sweeper when the pipelined reader stage is
  // on. Grow is idempotent and the pool never shrinks, so repeated
  // backups reuse the same threads.
  if (options_.pool != nullptr) {
    uint32_t workers = SweepWorkers();
    size_t need = workers > 1 ? workers : 0;
    if (options_.pipelined && options_.batch_pages > 1) need += workers;
    options_.pool->Grow(need);
  }

  // One shared pipeline for every partition sweeper: the run-oriented
  // copy engine (batched vectored IO, double-buffered prefetch) lives in
  // TransferPipeline; the sweep contributes its retry policy as the IO
  // wrapper and keeps the fence/cursor protocol to itself.
  TransferOptions transfer;
  transfer.batch_pages = options_.batch_pages;
  transfer.pipelined = options_.pipelined;
  transfer.queue_depth = options_.queue_depth;
  transfer.pool = options_.pool;
  transfer.io_wrapper = [this](const std::function<Status()>& fn) {
    return WithRetry(fn);
  };
  TransferPipeline pipeline(stable_, dest.get(), transfer);

  Status swept = RunPartitions([&](PartitionId p) {
    uint32_t start_from = cursor.next_page[p];
    if (start_from >= pages_per_partition_) return Status::OK();
    if (resuming && start_from > 0) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.partitions_resumed;
      stats_.pages_skipped_on_resume += start_from;
    }
    return BackupPartition(
        &pipeline, p,
        manifest.incremental ? &filters.find(p)->second : nullptr,
        manifest.steps, start_from, options_.resumable ? &cursor : nullptr);
  });

  // Fold the pipeline's transfer counters into the job stats even when
  // the sweep failed: partial-batch numbers feed the resume diagnostics.
  // pages_copied is intentionally not taken from the pipeline — each
  // partition accumulates it so a failed partition still counts exactly
  // the pages it durably moved.
  {
    TransferStats moved = pipeline.StatsSnapshot();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.read_batches += moved.read_batches;
    stats_.write_batches += moved.write_batches;
    stats_.read_stage_us += moved.read_stage_us;
    stats_.write_stage_us += moved.write_stage_us;
    stats_.threads_spawned += moved.threads_spawned;
  }
  LLB_RETURN_IF_ERROR(swept);

  manifest.end_lsn = log_->next_lsn() - 1;
  manifest.complete = true;
  LLB_RETURN_IF_ERROR(WithRetry([&] { return manifest.Save(env_); }));
  if (options_.resumable) {
    LLB_RETURN_IF_ERROR(BackupCursor::Remove(env_, manifest.name));
  }

  uint64_t fences_after = 0;
  for (PartitionId p = 0; p < manifest.partitions; ++p) {
    fences_after += coordinator_->Get(p)->fence_updates();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.fence_updates += fences_after - fences_before;
  return manifest;
}

Result<BackupManifest> BackupJob::Run(const std::string& name, Lsn start_lsn) {
  BackupManifest manifest;
  manifest.name = name;
  manifest.start_lsn = start_lsn;
  manifest.partitions = coordinator_->num_partitions();
  manifest.pages_per_partition = pages_per_partition_;
  manifest.steps = std::max<uint32_t>(1, options_.steps);

  // Persist the incomplete manifest (carrying start_lsn) and an all-zero
  // cursor before sweeping: an aborted run leaves everything Resume
  // needs.
  LLB_RETURN_IF_ERROR(WithRetry([&] { return manifest.Save(env_); }));
  BackupCursor cursor;
  cursor.backup_name = name;
  cursor.partitions = manifest.partitions;
  cursor.pages_per_partition = pages_per_partition_;
  cursor.steps = manifest.steps;
  cursor.next_page.assign(manifest.partitions, 0);
  if (options_.resumable) {
    LLB_RETURN_IF_ERROR(WithRetry([&] { return cursor.Save(env_); }));
  }
  return Sweep(std::move(manifest), std::move(cursor), /*resuming=*/false);
}

Result<BackupManifest> BackupJob::RunIncremental(
    const std::string& name, const std::string& base_name, Lsn start_lsn,
    std::vector<PageId> changed_pages) {
  BackupManifest manifest;
  manifest.name = name;
  manifest.start_lsn = start_lsn;
  manifest.partitions = coordinator_->num_partitions();
  manifest.pages_per_partition = pages_per_partition_;
  manifest.steps = std::max<uint32_t>(1, options_.steps);
  manifest.incremental = true;
  manifest.base_name = base_name;
  std::sort(changed_pages.begin(), changed_pages.end());
  manifest.pages = changed_pages;

  LLB_RETURN_IF_ERROR(WithRetry([&] { return manifest.Save(env_); }));
  BackupCursor cursor;
  cursor.backup_name = name;
  cursor.partitions = manifest.partitions;
  cursor.pages_per_partition = pages_per_partition_;
  cursor.steps = manifest.steps;
  cursor.next_page.assign(manifest.partitions, 0);
  if (options_.resumable) {
    LLB_RETURN_IF_ERROR(WithRetry([&] { return cursor.Save(env_); }));
  }
  return Sweep(std::move(manifest), std::move(cursor), /*resuming=*/false);
}

Result<BackupManifest> BackupJob::Resume(const std::string& name) {
  LLB_ASSIGN_OR_RETURN(BackupManifest manifest,
                       BackupManifest::Load(env_, name));
  if (manifest.complete) {
    return Status::FailedPrecondition("backup already complete: " + name);
  }
  LLB_ASSIGN_OR_RETURN(BackupCursor cursor, BackupCursor::Load(env_, name));
  if (cursor.partitions != manifest.partitions ||
      cursor.partitions != coordinator_->num_partitions() ||
      cursor.pages_per_partition != pages_per_partition_ ||
      cursor.pages_per_partition != manifest.pages_per_partition ||
      cursor.steps != manifest.steps) {
    return Status::FailedPrecondition(
        "backup cursor does not match the job geometry: " + name);
  }
  return Sweep(std::move(manifest), std::move(cursor), /*resuming=*/true);
}

}  // namespace llb
