#ifndef LLB_BACKUP_BACKUP_STORE_H_
#define LLB_BACKUP_BACKUP_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"

namespace llb {

/// Describes one completed backup: which pages it holds and, crucially,
/// the media-recovery-log scan start point captured when it began ("the
/// media recovery log scan start point can be the crash recovery log scan
/// start point at the time backup begins", paper 1.2).
struct BackupManifest {
  std::string name;
  Lsn start_lsn = kInvalidLsn;  // roll-forward scan start
  Lsn end_lsn = kInvalidLsn;    // log position when the backup finished
  uint32_t partitions = 0;
  uint32_t pages_per_partition = 0;
  uint32_t steps = 0;
  bool complete = false;

  /// Incremental backups (paper 6.1) copy only changed pages and chain to
  /// a base backup.
  bool incremental = false;
  std::string base_name;
  std::vector<PageId> pages;  // pages contained (incremental only)

  /// Persists to "<name>.manifest" in env.
  Status Save(Env* env) const;

  /// Loads "<name>.manifest".
  static Result<BackupManifest> Load(Env* env, const std::string& name);

  /// Page-store prefix used for this backup's pages.
  std::string StoreName() const { return name + ".pages"; }
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_STORE_H_
