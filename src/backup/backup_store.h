#ifndef LLB_BACKUP_BACKUP_STORE_H_
#define LLB_BACKUP_BACKUP_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"

namespace llb {

/// Describes one completed backup: which pages it holds and, crucially,
/// the media-recovery-log scan start point captured when it began ("the
/// media recovery log scan start point can be the crash recovery log scan
/// start point at the time backup begins", paper 1.2).
struct BackupManifest {
  std::string name;
  Lsn start_lsn = kInvalidLsn;  // roll-forward scan start
  Lsn end_lsn = kInvalidLsn;    // log position when the backup finished
  uint32_t partitions = 0;
  uint32_t pages_per_partition = 0;
  uint32_t steps = 0;
  bool complete = false;

  /// Incremental backups (paper 6.1) copy only changed pages and chain to
  /// a base backup.
  bool incremental = false;
  std::string base_name;
  std::vector<PageId> pages;  // pages contained (incremental only)

  /// Persists to "<name>.manifest" in env.
  Status Save(Env* env) const;

  /// Loads "<name>.manifest".
  static Result<BackupManifest> Load(Env* env, const std::string& name);

  /// Page-store prefix used for this backup's pages.
  std::string StoreName() const { return name + ".pages"; }
};

/// Durable per-partition progress of an in-flight backup sweep, persisted
/// in the backup store after every completed step. If the sweep aborts on
/// a transient fault, BackupJob::Resume reloads the cursor and continues
/// each partition from its recorded boundary instead of re-copying from
/// page 0. Deleted when the backup completes.
struct BackupCursor {
  std::string backup_name;
  uint32_t partitions = 0;
  uint32_t pages_per_partition = 0;
  uint32_t steps = 0;
  /// Per partition: first page position NOT yet durably copied to B
  /// (== pages_per_partition once the partition's sweep finished).
  std::vector<uint32_t> next_page;

  /// Persists to "<backup_name>.cursor" in env (atomic rewrite).
  Status Save(Env* env) const;

  /// Loads "<name>.cursor".
  static Result<BackupCursor> Load(Env* env, const std::string& name);

  /// Removes the cursor file (backup complete). Missing file is OK.
  static Status Remove(Env* env, const std::string& name);

  static std::string FileName(const std::string& name) {
    return name + ".cursor";
  }
};

}  // namespace llb

#endif  // LLB_BACKUP_BACKUP_STORE_H_
