#include "backup/backup_progress.h"

// BackupProgress and BackupCoordinator are header-only; this file anchors
// the translation unit for the llb_backup library target.
