#include "backup/backup_scrubber.h"

#include <algorithm>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "io/transfer_pipeline.h"
#include "ops/operation.h"
#include "recovery/redo.h"
#include "storage/page.h"

namespace llb {

namespace {

/// Pages per bulk repair IO when re-copying from S. Repair runs offline
/// (or quiesced), so this is purely a throughput knob.
constexpr uint32_t kRepairBatchPages = 32;

/// Best-effort removal of a page store's files (the scrub scratch store).
void RemoveStoreFiles(Env* env, const std::string& prefix,
                      uint32_t partitions) {
  for (uint32_t p = 0; p < partitions; ++p) {
    (void)env->DeleteFile(prefix + ".p" + std::to_string(p));
  }
  (void)env->DeleteFile(prefix + ".journal");
}

}  // namespace

Status BackupScrubber::RepairManifest(PageStore* store,
                                      const BackupManifest& manifest,
                                      const std::vector<PageId>& bad,
                                      ScrubReport* report) {
  // Both repair paths log an identity write, so without the log there is
  // nothing sound we can do.
  if (options_.log == nullptr) {
    report->unrepaired += bad.size();
    return Status::OK();
  }
  // Make the log tail durable: the rebuild paths replay only durable
  // records, and the identity writes must not outrank buffered ones.
  LLB_RETURN_IF_ERROR(options_.log->Force());

  // Split the damage by repair source. Source 1 is the live stable
  // database S: probe each page (after installing any newer uninstalled
  // value, so the re-copy captures the page's CURRENT image). Whatever S
  // cannot supply falls to the per-page log rebuild.
  std::vector<PageId> from_stable;
  std::vector<PageId> from_log;
  for (const PageId& id : bad) {
    bool healthy = false;
    if (options_.stable != nullptr) {
      if (options_.install_current) {
        LLB_RETURN_IF_ERROR(options_.install_current(id));
      }
      PageImage probe;
      healthy = options_.stable->ReadPage(id, &probe).ok();
    }
    (healthy ? from_stable : from_log).push_back(id);
  }

  // Re-copy S -> B in bulk runs (adjacent bad pages coalesce; scattered
  // ones become runs of 1). The fence protocol moves to run granularity:
  // per run, every page's identity write W_IP(X) is appended and forced
  // BEFORE the run is installed in B (Iw/oF — log before install), all
  // under the partition's backup latch in share mode so a concurrent
  // sweep's fences cannot move mid-repair.
  if (!from_stable.empty()) {
    TransferOptions transfer;
    transfer.batch_pages = kRepairBatchPages;
    transfer.transform = [this](const TransferRun& run,
                                std::vector<PageImage>* images) -> Status {
      std::vector<Lsn> lsns(images->size(), kInvalidLsn);
      for (size_t i = 0; i < images->size(); ++i) {
        PageId id{run.partition, run.first_page + static_cast<uint32_t>(i)};
        LogRecord rec = MakeIdentityWrite(id, (*images)[i]);
        options_.log->Append(&rec);
        lsns[i] = rec.lsn;
      }
      LLB_RETURN_IF_ERROR(options_.log->Force());
      // Redo of W_IP stamps the page with the record's LSN, so stamp
      // (and re-seal — the batched writer installs raw bytes) the copies
      // the same way: B and the healed S must be byte-identical to what
      // any recovery replaying these records produces.
      for (size_t i = 0; i < images->size(); ++i) {
        (*images)[i].set_lsn(lsns[i]);
        (*images)[i].Seal();
      }
      return Status::OK();
    };
    transfer.after_run = [this, report](
                             const TransferRun& run,
                             const std::vector<PageImage>& images) -> Status {
      // Heal S with the repaired images (here: just the advanced LSNs,
      // since S was the source).
      if (options_.stable != nullptr) {
        LLB_RETURN_IF_ERROR(options_.stable->WriteSealedRun(
            run.partition, run.first_page, images));
      }
      report->repaired_from_stable += images.size();
      return Status::OK();
    };
    TransferPipeline pipeline(options_.stable, store, transfer);
    TransferPlan plan;
    plan.AddPages(from_stable, kRepairBatchPages);
    for (const TransferRun& run : plan.runs()) {
      std::shared_lock<std::shared_mutex> latch;
      if (options_.coordinator != nullptr) {
        latch = std::shared_lock<std::shared_mutex>(
            options_.coordinator->Get(run.partition)->latch());
      }
      TransferPlan one;
      one.AddRun(run);
      LLB_RETURN_IF_ERROR(pipeline.Run(one));
    }
  }

  for (const PageId& id : from_log) {
    LLB_RETURN_IF_ERROR(RepairPageFromLog(store, manifest, id, report));
  }
  return Status::OK();
}

Status BackupScrubber::RepairPageFromLog(PageStore* store,
                                         const BackupManifest& manifest,
                                         const PageId& id,
                                         ScrubReport* report) {
  PageImage image;
  bool have_image = false;

  // S is bad too (or absent) — rebuild the page by media-recovery redo:
  // re-execute the partition's log history from LSN 1 onto an empty
  // scratch store. Sound only if the log still reaches back to its first
  // record.
  if (options_.registry != nullptr) {
    Lsn first = kInvalidLsn;
    Status scan = options_.log->Scan(1, [&](const LogRecord& rec) {
      first = rec.lsn;
      // Sentinel abort: one record is all we need.
      return Status::FailedPrecondition("first record found");
    });
    if (!scan.ok() && first == kInvalidLsn) return scan;
    if (first == 1) {
      const std::string scratch_prefix = manifest.name + ".scrub_scratch";
      RemoveStoreFiles(env_, scratch_prefix, manifest.partitions);
      LLB_ASSIGN_OR_RETURN(
          std::unique_ptr<PageStore> scratch,
          PageStore::Open(env_, scratch_prefix, manifest.partitions));
      PartitionId part = id.partition;
      Result<RedoReport> redo =
          RunRedoRange(*options_.log, *options_.registry, scratch.get(),
                       /*start_lsn=*/1, kInvalidLsn, &part,
                       /*use_identity_seeds=*/false);
      Status read;
      if (redo.ok()) read = scratch->ReadPage(id, &image);
      scratch.reset();
      RemoveStoreFiles(env_, scratch_prefix, manifest.partitions);
      if (!redo.ok()) return redo.status();
      if (read.ok()) have_image = true;
    }
  }

  if (!have_image) {
    ++report->unrepaired;
    return Status::OK();
  }

  // Install under the fence protocol: log the identity write W_IP(X)
  // first (Iw/oF ordering — log before install), force it, then write
  // the page into B. Any restore that rolls forward past the record
  // blind-reinstalls this image, so the repair is sound regardless of
  // which chain member held the bad page.
  {
    std::shared_lock<std::shared_mutex> latch;
    if (options_.coordinator != nullptr) {
      latch = std::shared_lock<std::shared_mutex>(
          options_.coordinator->Get(id.partition)->latch());
    }
    LogRecord rec = MakeIdentityWrite(id, image);
    options_.log->Append(&rec);
    LLB_RETURN_IF_ERROR(options_.log->Force());
    // Redo of W_IP stamps the page with the record's LSN, so stamp the
    // installed copies the same way — B (and a healed S) must be
    // byte-identical to what any recovery replaying this record produces.
    image.set_lsn(rec.lsn);
    LLB_RETURN_IF_ERROR(store->WritePage(id, image));
    // Heal S with the rebuilt image.
    if (options_.stable != nullptr) {
      LLB_RETURN_IF_ERROR(options_.stable->WritePage(id, image));
    }
  }
  ++report->repaired_from_log;
  return Status::OK();
}

Result<ScrubReport> BackupScrubber::Scrub(const std::string& backup_name) {
  // Walk the manifest chain newest -> base, then scrub base-first.
  std::vector<BackupManifest> chain;
  std::string cur = backup_name;
  while (true) {
    LLB_ASSIGN_OR_RETURN(BackupManifest m, BackupManifest::Load(env_, cur));
    if (!m.complete) {
      return Status::FailedPrecondition(
          "backup not complete (resume it first): " + cur);
    }
    const bool incremental = m.incremental;
    const std::string base = m.base_name;
    chain.push_back(std::move(m));
    if (!incremental) break;
    if (base.empty()) {
      return Status::Corruption("incremental backup without a base: " + cur);
    }
    cur = base;
  }
  std::reverse(chain.begin(), chain.end());

  for (size_t i = 1; i < chain.size(); ++i) {
    if (chain[i].partitions != chain[0].partitions ||
        chain[i].pages_per_partition != chain[0].pages_per_partition) {
      return Status::Corruption("backup chain geometry mismatch: " +
                                chain[i].name);
    }
  }

  ScrubReport report;
  report.manifests_checked = static_cast<uint32_t>(chain.size());

  for (const BackupManifest& m : chain) {
    LLB_ASSIGN_OR_RETURN(std::unique_ptr<PageStore> store,
                         PageStore::Open(env_, m.StoreName(), m.partitions));
    // Verify pass first, collecting the damage; repair then moves whole
    // runs of adjacent bad pages at once. The scan stays per-page — its
    // granularity is checksum verification, not bulk movement.
    std::vector<PageId> bad;
    auto check = [&](const PageId& id) -> Status {
      ++report.pages_scanned;
      PageImage image;
      Status s = store->ReadPage(id, &image);
      if (s.ok()) return Status::OK();
      // Checksum mismatches and unreadable sectors are page damage;
      // anything else (e.g. bad partition id) is a scrub failure.
      if (!s.IsCorruption() && !s.IsIoError()) return s;
      ++report.bad_pages;
      if (options_.repair) bad.push_back(id);
      return Status::OK();
    };
    if (m.incremental) {
      for (const PageId& id : m.pages) LLB_RETURN_IF_ERROR(check(id));
    } else {
      for (PartitionId p = 0; p < m.partitions; ++p) {
        for (uint32_t page = 0; page < m.pages_per_partition; ++page) {
          LLB_RETURN_IF_ERROR(check(PageId{p, page}));
        }
      }
    }
    if (!bad.empty()) {
      LLB_RETURN_IF_ERROR(RepairManifest(store.get(), m, bad, &report));
    }
  }
  return report;
}

}  // namespace llb
