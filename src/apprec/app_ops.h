#ifndef LLB_APPREC_APP_OPS_H_
#define LLB_APPREC_APP_OPS_H_

#include <cstdint>

#include "common/types.h"
#include "ops/op_registry.h"
#include "wal/log_record.h"

namespace llb {

/// Registers the application-recovery operation apply functions.
void RegisterAppOps(OpRegistry* registry);

/// Application state pages (paper 1.1, "Application Recovery"):
///   payload[0..8)   running digest of everything the app consumed
///   payload[8..16)  count of operations executed
namespace app_page {
uint64_t Digest(const PageImage& page);
uint64_t OpCount(const PageImage& page);
void SetState(PageImage* page, uint64_t digest, uint64_t op_count);
/// Deterministic state-transition mix.
uint64_t MixDigest(uint64_t digest, uint64_t input);
/// Digest of a message page's contents (what R(X, A) consumes).
uint64_t PageDigest(const PageImage& page);
}  // namespace app_page

/// Ex(A): "execution of A between resource manager calls is a
/// physiological operation that reads and writes A's state".
LogRecord MakeAppExec(const PageId& app, uint64_t seed);

/// R(X, A): "A reads X into its input buffer, transforming its state ...
/// the values of X and A' are not logged". Logical: reads X and A,
/// writes A.
LogRecord MakeAppRead(const PageId& msg, const PageId& app);

/// W_L(A, X): "A writes X from its output buffer. A's state is
/// unchanged ... we do not log the new value of X". Logical: reads A,
/// writes X.
LogRecord MakeAppWrite(const PageId& app, const PageId& msg);

}  // namespace llb

#endif  // LLB_APPREC_APP_OPS_H_
