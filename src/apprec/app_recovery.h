#ifndef LLB_APPREC_APP_RECOVERY_H_
#define LLB_APPREC_APP_RECOVERY_H_

#include <cstdint>

#include "apprec/app_ops.h"
#include "common/result.h"
#include "common/status.h"
#include "db/database.h"

namespace llb {

/// Application-recovery domain (paper 1.1 and 6.2): applications whose
/// state transitions are logged as Ex(A) / R(X, A) / W_L(A, X) operations
/// instead of physically logging state or message values.
///
/// Layout note: the paper observes (6.2) that if applications are the
/// *last* objects in the backup order, the dagger property always holds
/// and backup incurs NO Iw/oF logging. This class therefore places
/// application state pages at the high end of the partition's page range
/// and message pages at the low end by default (reversible for the
/// ablation experiment).
class AppRecovery {
 public:
  /// Messages at pages [msg_base, msg_base+num_msgs), application states
  /// at [app_base, app_base+num_apps).
  AppRecovery(Database* db, PartitionId partition, uint32_t msg_base,
              uint32_t num_msgs, uint32_t app_base, uint32_t num_apps);

  AppRecovery(const AppRecovery&) = delete;
  AppRecovery& operator=(const AppRecovery&) = delete;

  /// Initializes an application's state page (physical write).
  Status InitApp(uint32_t app_id);

  /// Writes a message page physically (the conventional logging path —
  /// used so the only logical operation in the workload is R, matching
  /// paper 6.2).
  Status WriteMessage(uint32_t msg_id, uint64_t content_seed);

  /// Ex(A).
  Status Exec(uint32_t app_id, uint64_t seed);

  /// R(X, A).
  Status Read(uint32_t app_id, uint32_t msg_id);

  /// W_L(A, X).
  Status Write(uint32_t app_id, uint32_t msg_id);

  Result<uint64_t> AppDigest(uint32_t app_id);
  Result<uint64_t> AppOpCount(uint32_t app_id);

  PageId AppPage(uint32_t app_id) const {
    return PageId{partition_, app_base_ + app_id};
  }
  PageId MsgPage(uint32_t msg_id) const {
    return PageId{partition_, msg_base_ + msg_id};
  }

 private:
  Database* const db_;
  const PartitionId partition_;
  const uint32_t msg_base_;
  const uint32_t num_msgs_;
  const uint32_t app_base_;
  const uint32_t num_apps_;
};

}  // namespace llb

#endif  // LLB_APPREC_APP_RECOVERY_H_
