#include "apprec/app_recovery.h"

#include "common/coding.h"
#include "ops/operation.h"

namespace llb {

AppRecovery::AppRecovery(Database* db, PartitionId partition,
                         uint32_t msg_base, uint32_t num_msgs,
                         uint32_t app_base, uint32_t num_apps)
    : db_(db),
      partition_(partition),
      msg_base_(msg_base),
      num_msgs_(num_msgs),
      app_base_(app_base),
      num_apps_(num_apps) {}

Status AppRecovery::InitApp(uint32_t app_id) {
  if (app_id >= num_apps_) return Status::InvalidArgument("bad app id");
  PageImage state;
  app_page::SetState(&state, /*digest=*/app_id + 1, /*op_count=*/0);
  LogRecord rec = MakePhysicalWrite(AppPage(app_id), state);
  return db_->Execute(&rec);
}

Status AppRecovery::WriteMessage(uint32_t msg_id, uint64_t content_seed) {
  if (msg_id >= num_msgs_) return Status::InvalidArgument("bad msg id");
  PageImage msg;
  char* p = msg.mutable_payload();
  for (size_t i = 0; i + 8 <= 128; i += 8) {
    EncodeFixed64(p + i, app_page::MixDigest(content_seed, i));
  }
  msg.set_type(PageType::kApp);
  LogRecord rec = MakePhysicalWrite(MsgPage(msg_id), msg);
  return db_->Execute(&rec);
}

Status AppRecovery::Exec(uint32_t app_id, uint64_t seed) {
  if (app_id >= num_apps_) return Status::InvalidArgument("bad app id");
  LogRecord rec = MakeAppExec(AppPage(app_id), seed);
  return db_->Execute(&rec);
}

Status AppRecovery::Read(uint32_t app_id, uint32_t msg_id) {
  if (app_id >= num_apps_ || msg_id >= num_msgs_) {
    return Status::InvalidArgument("bad app/msg id");
  }
  LogRecord rec = MakeAppRead(MsgPage(msg_id), AppPage(app_id));
  return db_->Execute(&rec);
}

Status AppRecovery::Write(uint32_t app_id, uint32_t msg_id) {
  if (app_id >= num_apps_ || msg_id >= num_msgs_) {
    return Status::InvalidArgument("bad app/msg id");
  }
  LogRecord rec = MakeAppWrite(AppPage(app_id), MsgPage(msg_id));
  return db_->Execute(&rec);
}

Result<uint64_t> AppRecovery::AppDigest(uint32_t app_id) {
  if (app_id >= num_apps_) return Status::InvalidArgument("bad app id");
  PageImage state;
  LLB_RETURN_IF_ERROR(db_->ReadPage(AppPage(app_id), &state));
  return app_page::Digest(state);
}

Result<uint64_t> AppRecovery::AppOpCount(uint32_t app_id) {
  if (app_id >= num_apps_) return Status::InvalidArgument("bad app id");
  PageImage state;
  LLB_RETURN_IF_ERROR(db_->ReadPage(AppPage(app_id), &state));
  return app_page::OpCount(state);
}

}  // namespace llb
