#include "apprec/app_ops.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace app_page {

uint64_t Digest(const PageImage& page) {
  return DecodeFixed64(page.payload().data());
}

uint64_t OpCount(const PageImage& page) {
  return DecodeFixed64(page.payload().data() + 8);
}

void SetState(PageImage* page, uint64_t digest, uint64_t op_count) {
  EncodeFixed64(page->mutable_payload(), digest);
  EncodeFixed64(page->mutable_payload() + 8, op_count);
  page->set_type(PageType::kApp);
}

uint64_t MixDigest(uint64_t digest, uint64_t input) {
  uint64_t z = digest ^ (input + 0x9E3779B97F4A7C15ull + (digest << 6) +
                         (digest >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  return z ^ (z >> 31);
}

uint64_t PageDigest(const PageImage& page) {
  Slice payload = page.payload();
  return crc32c::Value(payload.data(), payload.size());
}

}  // namespace app_page

namespace {

Status ApplyExec(OpContext& ctx, const LogRecord& rec) {
  if (rec.writeset.size() != 1) return Status::Corruption("bad Ex record");
  SliceReader reader{Slice(rec.payload)};
  uint64_t seed = 0;
  if (!reader.ReadFixed64(&seed)) seed = 0;
  PageImage app;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &app));
  app_page::SetState(&app, app_page::MixDigest(app_page::Digest(app), seed),
                     app_page::OpCount(app) + 1);
  return ctx.Write(rec.writeset[0], app);
}

Status ApplyRead(OpContext& ctx, const LogRecord& rec) {
  // readset = {X, A}, writeset = {A}.
  if (rec.readset.size() != 2 || rec.writeset.size() != 1) {
    return Status::Corruption("bad R(X,A) record");
  }
  PageImage msg, app;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.readset[0], &msg));
  LLB_RETURN_IF_ERROR(ctx.Read(rec.writeset[0], &app));
  app_page::SetState(&app,
                     app_page::MixDigest(app_page::Digest(app),
                                         app_page::PageDigest(msg)),
                     app_page::OpCount(app) + 1);
  return ctx.Write(rec.writeset[0], app);
}

Status ApplyWrite(OpContext& ctx, const LogRecord& rec) {
  // readset = {A}, writeset = {X}: X's contents are a deterministic
  // function of A's state (the "output buffer").
  if (rec.readset.size() != 1 || rec.writeset.size() != 1) {
    return Status::Corruption("bad W_L(A,X) record");
  }
  PageImage app;
  LLB_RETURN_IF_ERROR(ctx.Read(rec.readset[0], &app));
  PageImage msg;
  uint64_t digest = app_page::Digest(app);
  char* p = msg.mutable_payload();
  for (size_t i = 0; i + 8 <= 64; i += 8) {
    EncodeFixed64(p + i, app_page::MixDigest(digest, i));
  }
  msg.set_type(PageType::kApp);
  return ctx.Write(rec.writeset[0], msg);
}

}  // namespace

void RegisterAppOps(OpRegistry* registry) {
  registry->Register(kOpAppExec, ApplyExec);
  registry->Register(kOpAppRead, ApplyRead);
  registry->Register(kOpAppWrite, ApplyWrite);
}

LogRecord MakeAppExec(const PageId& app, uint64_t seed) {
  LogRecord rec;
  rec.op_code = kOpAppExec;
  rec.readset = {app};
  rec.writeset = {app};
  PutFixed64(&rec.payload, seed);
  return rec;
}

LogRecord MakeAppRead(const PageId& msg, const PageId& app) {
  LogRecord rec;
  rec.op_code = kOpAppRead;
  rec.readset = {msg, app};
  rec.writeset = {app};
  return rec;
}

LogRecord MakeAppWrite(const PageId& app, const PageId& msg) {
  LogRecord rec;
  rec.op_code = kOpAppWrite;
  rec.readset = {app};
  rec.writeset = {msg};
  return rec;
}

}  // namespace llb
