#include "storage/page_store.h"

#include <memory>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace {
constexpr uint32_t kJournalMagic = 0x4C4C424Au;  // "LLBJ"
}  // namespace

Result<std::unique_ptr<PageStore>> PageStore::Open(Env* env,
                                                   const std::string& prefix,
                                                   uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("page store needs >= 1 partition");
  }
  std::unique_ptr<PageStore> store(
      new PageStore(env, prefix, num_partitions));
  LLB_RETURN_IF_ERROR(store->OpenFiles());
  LLB_RETURN_IF_ERROR(store->RecoverJournal());
  return store;
}

Status PageStore::OpenFiles() {
  partition_files_.resize(num_partitions_);
  partition_mu_.resize(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    LLB_ASSIGN_OR_RETURN(
        partition_files_[p],
        env_->OpenFile(prefix_ + ".p" + std::to_string(p), /*create=*/true));
    partition_mu_[p] = std::make_unique<std::mutex>();
  }
  LLB_ASSIGN_OR_RETURN(journal_,
                       env_->OpenFile(prefix_ + ".journal", /*create=*/true));
  return Status::OK();
}

Status PageStore::RecoverJournal() {
  LLB_ASSIGN_OR_RETURN(uint64_t size, journal_->Size());
  if (size == 0) return Status::OK();
  std::string blob;
  LLB_RETURN_IF_ERROR(journal_->ReadAt(0, size, &blob));

  // Journal layout: magic(4) count(4) entries{partition(4) page(4)
  // image(kPageSize)}* crc(4). If the blob does not parse or the CRC is
  // wrong, the batch never committed: discard it.
  auto discard = [&]() -> Status {
    LLB_RETURN_IF_ERROR(journal_->Truncate(0));
    return journal_->Sync();
  };

  SliceReader reader{Slice(blob)};
  uint32_t magic = 0, count = 0;
  if (!reader.ReadFixed32(&magic) || magic != kJournalMagic ||
      !reader.ReadFixed32(&count)) {
    return discard();
  }
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    Slice image;
    if (!reader.ReadFixed32(&e.id.partition) ||
        !reader.ReadFixed32(&e.id.page) ||
        !reader.ReadBytes(kPageSize, &image) ||
        e.id.partition >= num_partitions_) {
      return discard();
    }
    e.image = PageImage::FromRaw(image.ToString());
    entries.push_back(std::move(e));
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc) ||
      stored_crc !=
          crc32c::Value(blob.data(), blob.size() - reader.remaining() - 4)) {
    return discard();
  }

  // Committed: (re)apply all page writes, then clear the journal.
  // (Open-time, single-threaded; the partition locks are uncontended.)
  for (const Entry& e : entries) {
    std::lock_guard<std::mutex> lock(PartitionMutex(e.id.partition));
    LLB_RETURN_IF_ERROR(WritePageLocked(e.id, e.image));
  }
  return discard();
}

Status PageStore::ReadPage(const PageId& id, PageImage* out) const {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  return ReadPageLocked(id, out);
}

Status PageStore::ReadPageLocked(const PageId& id, PageImage* out) const {
  std::string raw;
  LLB_RETURN_IF_ERROR(partition_files_[id.partition]->ReadAt(
      uint64_t{id.page} * kPageSize, kPageSize, &raw));
  *out = PageImage::FromRaw(std::move(raw));
  return out->VerifyChecksum();
}

Status PageStore::WritePage(const PageId& id, const PageImage& image) {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  PageImage sealed = image;
  sealed.Seal();
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  return WritePageLocked(id, sealed);
}

Status PageStore::WritePageLocked(const PageId& id, const PageImage& sealed) {
  File* file = partition_files_[id.partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAt(uint64_t{id.page} * kPageSize, sealed.raw()));
  return file->Sync();
}

Status PageStore::ReadRun(PartitionId partition, uint32_t first_page,
                          uint32_t count, std::vector<PageImage>* out) const {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  out->clear();
  if (count == 0) return Status::OK();
  // One vectored scatter read straight into per-page buffers: a single
  // device IO and no reassembly copies. ReadAtv zero-fills past the end
  // of the file — never-written all-zero pages, exactly as ReadPage
  // would report them.
  std::vector<std::string> buffers(count, std::string(kPageSize, '\0'));
  std::vector<IoBuffer> chunks(count);
  for (uint32_t i = 0; i < count; ++i) {
    chunks[i] = {buffers[i].data(), kPageSize};
  }
  {
    std::lock_guard<std::mutex> lock(PartitionMutex(partition));
    LLB_RETURN_IF_ERROR(partition_files_[partition]->ReadAtv(
        uint64_t{first_page} * kPageSize, chunks));
  }
  // Checksum verification happens outside the latch: it is pure CPU work
  // on private buffers, and keeping it out lets other partitions' IO in.
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(PageImage::FromRaw(std::move(buffers[i])));
    LLB_RETURN_IF_ERROR(out->back().VerifyChecksum());
  }
  return Status::OK();
}

Status PageStore::WriteSealedRun(PartitionId partition, uint32_t first_page,
                                 const std::vector<PageImage>& images) {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  if (images.empty()) return Status::OK();
  std::vector<Slice> chunks;
  chunks.reserve(images.size());
  for (const PageImage& image : images) chunks.push_back(image.raw());
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  File* file = partition_files_[partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAtv(uint64_t{first_page} * kPageSize, chunks));
  return file->Sync();
}

Status PageStore::WriteBatchAtomic(const std::vector<Entry>& entries) {
  if (entries.empty()) return Status::OK();
  for (const Entry& e : entries) {
    if (e.id.partition >= num_partitions_) {
      return Status::InvalidArgument("partition out of range");
    }
  }
  if (entries.size() == 1) {
    PageImage sealed = entries[0].image;
    sealed.Seal();
    std::lock_guard<std::mutex> lock(PartitionMutex(entries[0].id.partition));
    return WritePageLocked(entries[0].id, sealed);
  }
  // Lock order: the journal mutex first, then partition mutexes one at a
  // time per page write. Batches serialize against each other on
  // journal_mu_ (they share the shadow journal file) but let sweep IO on
  // untouched partitions through.
  std::lock_guard<std::mutex> journal_lock(journal_mu_);

  std::vector<Entry> sealed;
  sealed.reserve(entries.size());
  for (const Entry& e : entries) {
    sealed.push_back(e);
    sealed.back().image.Seal();
  }

  // 1. Persist the shadow journal.
  std::string blob;
  PutFixed32(&blob, kJournalMagic);
  PutFixed32(&blob, static_cast<uint32_t>(sealed.size()));
  for (const Entry& e : sealed) {
    PutFixed32(&blob, e.id.partition);
    PutFixed32(&blob, e.id.page);
    blob.append(e.image.raw().data(), kPageSize);
  }
  PutFixed32(&blob, crc32c::Value(blob.data(), blob.size()));
  LLB_RETURN_IF_ERROR(journal_->Truncate(0));
  LLB_RETURN_IF_ERROR(journal_->WriteAt(0, Slice(blob)));
  LLB_RETURN_IF_ERROR(journal_->Sync());

  // 2. Apply the page writes (each durable; a crash here is repaired by
  //    journal replay at the next open).
  for (const Entry& e : sealed) {
    std::lock_guard<std::mutex> lock(PartitionMutex(e.id.partition));
    LLB_RETURN_IF_ERROR(WritePageLocked(e.id, e.image));
  }

  // 3. Retire the journal.
  LLB_RETURN_IF_ERROR(journal_->Truncate(0));
  return journal_->Sync();
}

Result<uint32_t> PageStore::PageCount(PartitionId partition) const {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  LLB_ASSIGN_OR_RETURN(uint64_t size, partition_files_[partition]->Size());
  return static_cast<uint32_t>(size / kPageSize);
}

Status PageStore::WipePartition(PartitionId partition) {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  LLB_RETURN_IF_ERROR(partition_files_[partition]->Truncate(0));
  return partition_files_[partition]->Sync();
}

Status PageStore::CorruptPage(const PageId& id) {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::string junk(kPageSize, '\xDB');
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  File* file = partition_files_[id.partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAt(uint64_t{id.page} * kPageSize, Slice(junk)));
  return file->Sync();
}

Status PageStore::CopyAllFrom(const PageStore& src,
                              uint32_t pages_per_partition) {
  for (uint32_t p = 0; p < num_partitions_ && p < src.num_partitions(); ++p) {
    for (uint32_t page = 0; page < pages_per_partition; ++page) {
      PageId id{p, page};
      PageImage image;
      LLB_RETURN_IF_ERROR(src.ReadPage(id, &image));
      std::lock_guard<std::mutex> lock(PartitionMutex(p));
      LLB_RETURN_IF_ERROR(WritePageLocked(id, image));
    }
  }
  return Status::OK();
}

}  // namespace llb
