#include "storage/page_store.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

namespace {
constexpr uint32_t kJournalMagic = 0x4C4C424Au;  // "LLBJ"
}  // namespace

Result<std::unique_ptr<PageStore>> PageStore::Open(Env* env,
                                                   const std::string& prefix,
                                                   uint32_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("page store needs >= 1 partition");
  }
  std::unique_ptr<PageStore> store(
      new PageStore(env, prefix, num_partitions));
  LLB_RETURN_IF_ERROR(store->OpenFiles());
  LLB_RETURN_IF_ERROR(store->RecoverJournal());
  return store;
}

Status PageStore::OpenFiles() {
  partition_files_.resize(num_partitions_);
  partition_mu_.resize(num_partitions_);
  for (uint32_t p = 0; p < num_partitions_; ++p) {
    LLB_ASSIGN_OR_RETURN(
        partition_files_[p],
        env_->OpenFile(prefix_ + ".p" + std::to_string(p), /*create=*/true));
    partition_mu_[p] = std::make_unique<std::mutex>();
  }
  LLB_ASSIGN_OR_RETURN(journal_,
                       env_->OpenFile(prefix_ + ".journal", /*create=*/true));
  return Status::OK();
}

Status PageStore::RecoverJournal() {
  LLB_ASSIGN_OR_RETURN(uint64_t size, journal_->Size());
  if (size == 0) return Status::OK();
  std::string blob;
  LLB_RETURN_IF_ERROR(journal_->ReadAt(0, size, &blob));

  // Journal layout: magic(4) count(4) entries{partition(4) page(4)
  // image(kPageSize)}* crc(4). If the blob does not parse or the CRC is
  // wrong, the batch never committed: discard it.
  auto discard = [&]() -> Status {
    LLB_RETURN_IF_ERROR(journal_->Truncate(0));
    return journal_->Sync();
  };

  SliceReader reader{Slice(blob)};
  uint32_t magic = 0, count = 0;
  if (!reader.ReadFixed32(&magic) || magic != kJournalMagic ||
      !reader.ReadFixed32(&count)) {
    return discard();
  }
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    Slice image;
    if (!reader.ReadFixed32(&e.id.partition) ||
        !reader.ReadFixed32(&e.id.page) ||
        !reader.ReadBytes(kPageSize, &image) ||
        e.id.partition >= num_partitions_) {
      return discard();
    }
    e.image = PageImage::FromRaw(image.ToString());
    entries.push_back(std::move(e));
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadFixed32(&stored_crc) ||
      stored_crc !=
          crc32c::Value(blob.data(), blob.size() - reader.remaining() - 4)) {
    return discard();
  }

  // Committed: (re)apply all page writes, then clear the journal.
  // (Open-time, single-threaded; the partition locks are uncontended.)
  for (const Entry& e : entries) {
    std::lock_guard<std::mutex> lock(PartitionMutex(e.id.partition));
    LLB_RETURN_IF_ERROR(WritePageLocked(e.id, e.image));
  }
  return discard();
}

Status PageStore::ReadPage(const PageId& id, PageImage* out) const {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  return ReadPageLocked(id, out);
}

Status PageStore::ReadPageLocked(const PageId& id, PageImage* out) const {
  std::string raw;
  LLB_RETURN_IF_ERROR(partition_files_[id.partition]->ReadAt(
      uint64_t{id.page} * kPageSize, kPageSize, &raw));
  *out = PageImage::FromRaw(std::move(raw));
  return out->VerifyChecksum();
}

Status PageStore::WritePage(const PageId& id, const PageImage& image) {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  PageImage sealed = image;
  sealed.Seal();
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  return WritePageLocked(id, sealed);
}

Status PageStore::WritePageLocked(const PageId& id, const PageImage& sealed) {
  File* file = partition_files_[id.partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAt(uint64_t{id.page} * kPageSize, sealed.raw()));
  return file->Sync();
}

Status PageStore::ReadRun(PartitionId partition, uint32_t first_page,
                          uint32_t count, std::vector<PageImage>* out) const {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  out->clear();
  if (count == 0) return Status::OK();
  // One vectored scatter read straight into per-page buffers: a single
  // device IO and no reassembly copies. ReadAtv zero-fills past the end
  // of the file — never-written all-zero pages, exactly as ReadPage
  // would report them.
  std::vector<std::string> buffers(count, std::string(kPageSize, '\0'));
  std::vector<IoBuffer> chunks(count);
  for (uint32_t i = 0; i < count; ++i) {
    chunks[i] = {buffers[i].data(), kPageSize};
  }
  {
    std::lock_guard<std::mutex> lock(PartitionMutex(partition));
    LLB_RETURN_IF_ERROR(partition_files_[partition]->ReadAtv(
        uint64_t{first_page} * kPageSize, chunks));
  }
  // Checksum verification happens outside the latch: it is pure CPU work
  // on private buffers, and keeping it out lets other partitions' IO in.
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(PageImage::FromRaw(std::move(buffers[i])));
    LLB_RETURN_IF_ERROR(out->back().VerifyChecksum());
  }
  return Status::OK();
}

Status PageStore::WriteSealedRun(PartitionId partition, uint32_t first_page,
                                 const std::vector<PageImage>& images) {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  if (images.empty()) return Status::OK();
  std::vector<Slice> chunks;
  chunks.reserve(images.size());
  for (const PageImage& image : images) chunks.push_back(image.raw());
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  File* file = partition_files_[partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAtv(uint64_t{first_page} * kPageSize, chunks));
  return file->Sync();
}

PageStore::AsyncRunReader::AsyncRunReader(const PageStore* store,
                                          uint32_t queue_depth)
    : store_(store), depth_(std::max<uint32_t>(1, queue_depth)) {
  channels_.resize(store_->num_partitions_);
}

PageStore::AsyncRunReader::~AsyncRunReader() {
  // Channel destructors drain any still-in-flight reads (the kernel may
  // hold our buffers); results are discarded.
  std::vector<AsyncRunResult> discard;
  if (!pending_.empty()) ReapAll(&discard);
}

Result<AsyncFile*> PageStore::AsyncRunReader::Channel(PartitionId partition) {
  if (channels_[partition] == nullptr) {
    AsyncIoOptions options;
    options.queue_depth = depth_;
    LLB_ASSIGN_OR_RETURN(
        channels_[partition],
        store_->env_->OpenAsync(
            store_->prefix_ + ".p" + std::to_string(partition),
            /*create=*/false, options));
  }
  return channels_[partition].get();
}

const char* PageStore::AsyncRunReader::backend() const {
  for (const std::shared_ptr<AsyncFile>& channel : channels_) {
    if (channel != nullptr) return channel->backend();
  }
  return "none";
}

Status PageStore::AsyncRunReader::SubmitRead(PartitionId partition,
                                             uint32_t first_page,
                                             uint32_t count, uint64_t tag) {
  if (partition >= store_->num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  if (count == 0) return Status::InvalidArgument("empty run read");
  if (pending_.size() >= depth_) {
    return Status::FailedPrecondition("async reader full: reap first");
  }
  LLB_ASSIGN_OR_RETURN(AsyncFile * channel, Channel(partition));
  const uint64_t op = next_op_++;
  PendingRead& read = pending_[op];
  read.partition = partition;
  read.first_page = first_page;
  read.count = count;
  read.tag = tag;
  read.buffer = MakeAlignedIoString(uint64_t{count} * kPageSize);
  Status s = channel->SubmitReadAt(uint64_t{first_page} * kPageSize,
                                   IoBuffer{read.buffer.data,
                                            read.buffer.size},
                                   op);
  if (!s.ok()) pending_.erase(op);
  return s;
}

Status PageStore::AsyncRunReader::ReapAll(std::vector<AsyncRunResult>* out) {
  std::vector<AsyncIoCompletion> completions;
  for (const std::shared_ptr<AsyncFile>& channel : channels_) {
    if (channel == nullptr) continue;
    size_t in_flight = channel->in_flight();
    if (in_flight == 0) continue;
    LLB_RETURN_IF_ERROR(channel->Reap(in_flight, &completions));
  }
  for (AsyncIoCompletion& completion : completions) {
    auto it = pending_.find(completion.tag);
    if (it == pending_.end()) continue;  // cannot happen; be defensive
    PendingRead& read = it->second;
    AsyncRunResult result;
    result.tag = read.tag;
    if (!completion.status.ok()) {
      // Device error: propagate as-is. No sync retry here — scripted
      // fault injection means this sweep must abort, not self-heal.
      result.status = std::move(completion.status);
    } else {
      result.images.reserve(read.count);
      Status verify;
      for (uint32_t i = 0; i < read.count && verify.ok(); ++i) {
        result.images.push_back(PageImage::FromRaw(
            std::string(read.buffer.data + uint64_t{i} * kPageSize,
                        kPageSize)));
        verify = result.images.back().VerifyChecksum();
      }
      if (!verify.ok()) {
        // A checksum failure on an optimistic unlatched read is usually a
        // torn read (a writer was mid-run). One latched synchronous
        // re-read settles it: success means torn, failure means the
        // corruption is really on the media.
        result.images.clear();
        result.status = store_->ReadRun(read.partition, read.first_page,
                                        read.count, &result.images);
      }
    }
    out->push_back(std::move(result));
    pending_.erase(it);
  }
  return Status::OK();
}

PageStore::AsyncRunWriter::AsyncRunWriter(PageStore* store,
                                          uint32_t queue_depth)
    : store_(store), depth_(std::max<uint32_t>(1, queue_depth)) {
  channels_.resize(store_->num_partitions_);
}

PageStore::AsyncRunWriter::~AsyncRunWriter() = default;

Result<AsyncFile*> PageStore::AsyncRunWriter::Channel(PartitionId partition) {
  if (channels_[partition] == nullptr) {
    AsyncIoOptions options;
    options.queue_depth = depth_;
    LLB_ASSIGN_OR_RETURN(
        channels_[partition],
        store_->env_->OpenAsync(
            store_->prefix_ + ".p" + std::to_string(partition),
            /*create=*/false, options));
  }
  return channels_[partition].get();
}

const char* PageStore::AsyncRunWriter::backend() const {
  for (const std::shared_ptr<AsyncFile>& channel : channels_) {
    if (channel != nullptr) return channel->backend();
  }
  return "none";
}

Status PageStore::AsyncRunWriter::WriteWindow(
    const std::vector<SealedRunWrite>& runs,
    std::vector<AsyncRunResult>* results) {
  if (runs.empty()) return Status::OK();
  std::vector<PartitionId> touched;
  for (const SealedRunWrite& run : runs) {
    if (run.partition >= store_->num_partitions_) {
      return Status::InvalidArgument("partition out of range");
    }
    if (run.images == nullptr || run.images->empty()) {
      return Status::InvalidArgument("empty run write");
    }
    touched.push_back(run.partition);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Latch every partition of the window, ascending — the whole window is
  // one critical section per partition, so readers never see a torn page
  // and concurrent writers (always a disjoint or identically-ordered
  // partition set) cannot deadlock.
  std::vector<std::unique_lock<std::mutex>> latches;
  latches.reserve(touched.size());
  for (PartitionId partition : touched) {
    latches.emplace_back(store_->PartitionMutex(partition));
  }

  // Submit all writes: each run's sealed images gather into one aligned
  // buffer (O_DIRECT-ready) and ride the deep queue. Every failure exit
  // between the first submit and the last reap goes through
  // drain_for_error below — in-flight ops reference `gathers`, so none
  // may outlive this frame.
  std::vector<AlignedIoString> gathers(runs.size());
  std::vector<Status> statuses(runs.size());
  auto submit_and_reap = [&]() -> Status {
    for (size_t i = 0; i < runs.size(); ++i) {
      const SealedRunWrite& run = runs[i];
      LLB_ASSIGN_OR_RETURN(AsyncFile * channel, Channel(run.partition));
      gathers[i] = MakeAlignedIoString(run.images->size() * kPageSize);
      char* at = gathers[i].data;
      for (const PageImage& image : *run.images) {
        std::memcpy(at, image.raw().data(), kPageSize);
        at += kPageSize;
      }
      Status submitted = channel->SubmitWriteAt(
          uint64_t{run.first_page} * kPageSize,
          Slice(gathers[i].data, gathers[i].size), i);
      if (!submitted.ok() && submitted.IsFailedPrecondition()) {
        // Channel momentarily full (window larger than one channel's
        // queue): absorb a round of completions and retry once.
        std::vector<AsyncIoCompletion> completions;
        LLB_RETURN_IF_ERROR(channel->Reap(1, &completions));
        for (AsyncIoCompletion& completion : completions) {
          statuses[completion.tag] = std::move(completion.status);
        }
        submitted = channel->SubmitWriteAt(
            uint64_t{run.first_page} * kPageSize,
            Slice(gathers[i].data, gathers[i].size), i);
      }
      LLB_RETURN_IF_ERROR(submitted);
    }
    for (PartitionId partition : touched) {
      AsyncFile* channel = channels_[partition].get();
      if (channel == nullptr) continue;
      size_t in_flight = channel->in_flight();
      if (in_flight == 0) continue;
      std::vector<AsyncIoCompletion> completions;
      LLB_RETURN_IF_ERROR(channel->Reap(in_flight, &completions));
      for (AsyncIoCompletion& completion : completions) {
        statuses[completion.tag] = std::move(completion.status);
      }
    }
    return Status::OK();
  };
  Status window = submit_and_reap();
  if (!window.ok()) {
    // Drain every touched channel (discarding results) while the latches
    // are still held, so no op can reference `gathers` after we return.
    // If a channel cannot be drained (backend enter failure), its ops may
    // still DMA into the buffers, so leak that storage rather than free
    // it under an in-flight write.
    for (PartitionId partition : touched) {
      AsyncFile* channel = channels_[partition].get();
      if (channel == nullptr) continue;
      while (channel->in_flight() > 0) {
        std::vector<AsyncIoCompletion> discard;
        if (!channel->Reap(channel->in_flight(), &discard).ok()) {
          for (AlignedIoString& gather : gathers) {
            new std::string(std::move(gather.storage));  // intentional leak
          }
          return window;
        }
      }
    }
    return window;
  }

  // Queues are empty: one durability barrier per touched partition.
  for (PartitionId partition : touched) {
    AsyncFile* channel = channels_[partition].get();
    if (channel == nullptr) continue;
    Status synced = channel->Sync();
    if (window.ok() && !synced.ok()) window = synced;
  }
  for (size_t i = 0; i < runs.size(); ++i) {
    AsyncRunResult result;
    result.tag = runs[i].tag;
    result.status = std::move(statuses[i]);
    results->push_back(std::move(result));
  }
  return window;
}

std::unique_ptr<PageStore::AsyncRunReader> PageStore::NewAsyncReader(
    uint32_t queue_depth) const {
  return std::unique_ptr<AsyncRunReader>(
      new AsyncRunReader(this, queue_depth));
}

std::unique_ptr<PageStore::AsyncRunWriter> PageStore::NewAsyncWriter(
    uint32_t queue_depth) {
  return std::unique_ptr<AsyncRunWriter>(
      new AsyncRunWriter(this, queue_depth));
}

Status PageStore::WriteBatchAtomic(const std::vector<Entry>& entries) {
  if (entries.empty()) return Status::OK();
  for (const Entry& e : entries) {
    if (e.id.partition >= num_partitions_) {
      return Status::InvalidArgument("partition out of range");
    }
  }
  if (entries.size() == 1) {
    PageImage sealed = entries[0].image;
    sealed.Seal();
    std::lock_guard<std::mutex> lock(PartitionMutex(entries[0].id.partition));
    return WritePageLocked(entries[0].id, sealed);
  }
  // Lock order: the journal mutex first, then partition mutexes one at a
  // time per page write. Batches serialize against each other on
  // journal_mu_ (they share the shadow journal file) but let sweep IO on
  // untouched partitions through.
  std::lock_guard<std::mutex> journal_lock(journal_mu_);

  std::vector<Entry> sealed;
  sealed.reserve(entries.size());
  for (const Entry& e : entries) {
    sealed.push_back(e);
    sealed.back().image.Seal();
  }

  // 1. Persist the shadow journal.
  std::string blob;
  PutFixed32(&blob, kJournalMagic);
  PutFixed32(&blob, static_cast<uint32_t>(sealed.size()));
  for (const Entry& e : sealed) {
    PutFixed32(&blob, e.id.partition);
    PutFixed32(&blob, e.id.page);
    blob.append(e.image.raw().data(), kPageSize);
  }
  PutFixed32(&blob, crc32c::Value(blob.data(), blob.size()));
  LLB_RETURN_IF_ERROR(journal_->Truncate(0));
  LLB_RETURN_IF_ERROR(journal_->WriteAt(0, Slice(blob)));
  LLB_RETURN_IF_ERROR(journal_->Sync());

  // 2. Apply the page writes (each durable; a crash here is repaired by
  //    journal replay at the next open).
  for (const Entry& e : sealed) {
    std::lock_guard<std::mutex> lock(PartitionMutex(e.id.partition));
    LLB_RETURN_IF_ERROR(WritePageLocked(e.id, e.image));
  }

  // 3. Retire the journal.
  LLB_RETURN_IF_ERROR(journal_->Truncate(0));
  return journal_->Sync();
}

Result<uint32_t> PageStore::PageCount(PartitionId partition) const {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  LLB_ASSIGN_OR_RETURN(uint64_t size, partition_files_[partition]->Size());
  return static_cast<uint32_t>(size / kPageSize);
}

Status PageStore::WipePartition(PartitionId partition) {
  if (partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::lock_guard<std::mutex> lock(PartitionMutex(partition));
  LLB_RETURN_IF_ERROR(partition_files_[partition]->Truncate(0));
  return partition_files_[partition]->Sync();
}

Status PageStore::CorruptPage(const PageId& id) {
  if (id.partition >= num_partitions_) {
    return Status::InvalidArgument("partition out of range");
  }
  std::string junk(kPageSize, '\xDB');
  std::lock_guard<std::mutex> lock(PartitionMutex(id.partition));
  File* file = partition_files_[id.partition].get();
  LLB_RETURN_IF_ERROR(
      file->WriteAt(uint64_t{id.page} * kPageSize, Slice(junk)));
  return file->Sync();
}

Status PageStore::CopyAllFrom(const PageStore& src,
                              uint32_t pages_per_partition) {
  for (uint32_t p = 0; p < num_partitions_ && p < src.num_partitions(); ++p) {
    for (uint32_t page = 0; page < pages_per_partition; ++page) {
      PageId id{p, page};
      PageImage image;
      LLB_RETURN_IF_ERROR(src.ReadPage(id, &image));
      std::lock_guard<std::mutex> lock(PartitionMutex(p));
      LLB_RETURN_IF_ERROR(WritePageLocked(id, image));
    }
  }
  return Status::OK();
}

}  // namespace llb
