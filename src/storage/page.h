#ifndef LLB_STORAGE_PAGE_H_
#define LLB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace llb {

/// Fixed page size for the whole engine.
inline constexpr size_t kPageSize = 4096;

/// On-page header layout (16 bytes, little-endian):
///   [0..8)  page LSN — LSN of the last operation applied to this page
///   [8..12) CRC32C of bytes [12..kPageSize), masked
///   [12..14) page type (domain tag: free/btree/file/app/...)
///   [14..16) reserved flags
inline constexpr size_t kPageHeaderSize = 16;
inline constexpr size_t kPagePayloadSize = kPageSize - kPageHeaderSize;

enum class PageType : uint16_t {
  kFree = 0,
  kRaw = 1,
  kBtree = 2,
  kFile = 3,
  kApp = 4,
};

/// An in-memory page image. Value type (copyable); the cache manager,
/// page stores, redo, and the backup sweep all traffic in PageImage.
class PageImage {
 public:
  /// Zero-filled page (LSN 0, type kFree). A zero page is the state of
  /// every never-written page and verifies as valid.
  PageImage() : data_(kPageSize, '\0') {}

  /// Adopts a raw page-sized buffer (checksum not verified here).
  static PageImage FromRaw(std::string raw);

  Lsn lsn() const;
  void set_lsn(Lsn lsn);

  PageType type() const;
  void set_type(PageType type);

  /// Read-only payload view (kPagePayloadSize bytes).
  Slice payload() const {
    return Slice(data_.data() + kPageHeaderSize, kPagePayloadSize);
  }
  /// Mutable payload pointer.
  char* mutable_payload() { return data_.data() + kPageHeaderSize; }

  /// Replaces the payload with `value` (truncated / zero-padded to fit).
  void SetPayload(Slice value);

  /// Recomputes and stores the header checksum. Must be called after any
  /// mutation, before the page is written to a store.
  void Seal();

  /// Verifies the stored checksum.
  Status VerifyChecksum() const;

  /// Entire kPageSize image.
  Slice raw() const { return Slice(data_.data(), data_.size()); }
  const std::string& raw_string() const { return data_; }

  bool IsZero() const;

  friend bool operator==(const PageImage& a, const PageImage& b) {
    return a.data_ == b.data_;
  }

 private:
  std::string data_;
};

}  // namespace llb

#endif  // LLB_STORAGE_PAGE_H_
