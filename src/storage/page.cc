#include "storage/page.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace llb {

PageImage PageImage::FromRaw(std::string raw) {
  PageImage image;
  raw.resize(kPageSize, '\0');
  image.data_ = std::move(raw);
  return image;
}

Lsn PageImage::lsn() const { return DecodeFixed64(data_.data()); }

void PageImage::set_lsn(Lsn lsn) { EncodeFixed64(data_.data(), lsn); }

PageType PageImage::type() const {
  return static_cast<PageType>(static_cast<uint16_t>(
      static_cast<unsigned char>(data_[12]) |
      (uint16_t{static_cast<unsigned char>(data_[13])} << 8)));
}

void PageImage::set_type(PageType type) {
  uint16_t v = static_cast<uint16_t>(type);
  data_[12] = static_cast<char>(v & 0xFF);
  data_[13] = static_cast<char>(v >> 8);
}

void PageImage::SetPayload(Slice value) {
  size_t n = std::min(value.size(), kPagePayloadSize);
  std::memcpy(data_.data() + kPageHeaderSize, value.data(), n);
  if (n < kPagePayloadSize) {
    std::memset(data_.data() + kPageHeaderSize + n, 0, kPagePayloadSize - n);
  }
}

void PageImage::Seal() {
  uint32_t crc = crc32c::Value(data_.data() + 12, kPageSize - 12);
  EncodeFixed32(data_.data() + 8, crc32c::Mask(crc));
}

Status PageImage::VerifyChecksum() const {
  if (IsZero()) return Status::OK();  // never-written page
  uint32_t stored = crc32c::Unmask(DecodeFixed32(data_.data() + 8));
  uint32_t actual = crc32c::Value(data_.data() + 12, kPageSize - 12);
  if (stored != actual) return Status::Corruption("bad page checksum");
  return Status::OK();
}

bool PageImage::IsZero() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](char c) { return c == '\0'; });
}

}  // namespace llb
