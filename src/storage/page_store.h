#ifndef LLB_STORAGE_PAGE_STORE_H_
#define LLB_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"
#include "storage/page.h"

namespace llb {

/// A durable, partitioned page store. Used both for the stable database S
/// and for backup databases B (a backup is just a stable database — paper
/// section 1, "a backup is a stable database").
///
/// Guarantees:
///  * single-page writes are atomic and durable on return (write + sync),
///    the paper's "I/O page atomicity" assumption;
///  * `WriteBatchAtomic` writes a set of pages atomically with respect to
///    crashes, via a shadow journal: either all pages of the batch are in
///    the store after recovery, or none are. This is what lets the cache
///    manager atomically flush a multi-object vars(n) set (paper 2.4);
///  * pages never written read back as all-zero images with LSN 0.
///
/// Thread-safe: reads/writes are serialized by a per-partition mutex, so
/// a concurrent backup sweep sees each page either entirely before or
/// entirely after any write ("coordination ... occurs at the disk arm",
/// paper 1.2) — while sweeps of DIFFERENT partitions proceed fully in
/// parallel, which is what makes a multi-threaded partitioned backup
/// faster than a serial one. WriteBatchAtomic additionally serializes on
/// a store-wide journal mutex (lock order: journal, then partition;
/// nothing acquires the journal mutex while holding a partition mutex).
class PageStore {
 public:
  struct Entry {
    PageId id;
    PageImage image;
  };

  /// Opens (creating if absent) a store of `num_partitions` partitions
  /// under the given file-name prefix, and replays any committed shadow
  /// journal left by a crash mid-batch.
  static Result<std::unique_ptr<PageStore>> Open(Env* env,
                                                 const std::string& prefix,
                                                 uint32_t num_partitions);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Reads a page and verifies its checksum.
  Status ReadPage(const PageId& id, PageImage* out) const;

  /// Atomically and durably writes one page (seals the image first).
  Status WritePage(const PageId& id, const PageImage& image);

  /// Reads `count` contiguous pages [first_page, first_page + count) of
  /// one partition with a single device read under a single latch
  /// acquisition, verifying every page's checksum. The batch-oriented
  /// read half of the backup sweep: one mutex round trip and one IO per
  /// run instead of per page.
  Status ReadRun(PartitionId partition, uint32_t first_page, uint32_t count,
                 std::vector<PageImage>* out) const;

  /// Durably writes `images` to the `images.size()` contiguous page slots
  /// starting at first_page, as one vectored device write followed by one
  /// sync, under a single latch acquisition. The images must already
  /// carry valid checksums (e.g. they came from ReadRun of another
  /// store): they are written raw, without the per-page re-seal
  /// WritePage performs — an identity copy of sealed bytes stays sealed.
  /// Crash atomicity is the sync: the whole run becomes durable at the
  /// final Sync or, after a crash before it, none of it does.
  Status WriteSealedRun(PartitionId partition, uint32_t first_page,
                        const std::vector<PageImage>& images);

  /// Atomically (w.r.t. crash) writes all entries. Order of persistence is
  /// all-or-nothing even across partitions.
  Status WriteBatchAtomic(const std::vector<Entry>& entries);

  /// Number of pages ever written in the partition (file size based).
  Result<uint32_t> PageCount(PartitionId partition) const;

  uint32_t num_partitions() const { return num_partitions_; }

  /// Destroys all data in one partition (simulated media failure).
  Status WipePartition(PartitionId partition);

  /// Overwrites one page with garbage bytes, leaving a checksum mismatch
  /// (simulated partial media corruption).
  Status CorruptPage(const PageId& id);

  /// Copies every page of `src` into this store (used by restore-from-
  /// backup: "restoring S by copying B", paper section 1). `pages_hint`
  /// bounds the per-partition page range to copy.
  Status CopyAllFrom(const PageStore& src, uint32_t pages_per_partition);

 private:
  PageStore(Env* env, std::string prefix, uint32_t num_partitions)
      : env_(env), prefix_(std::move(prefix)), num_partitions_(num_partitions) {}

  Status OpenFiles();
  Status RecoverJournal();
  /// Callers hold the partition's mutex.
  Status WritePageLocked(const PageId& id, const PageImage& sealed);
  Status ReadPageLocked(const PageId& id, PageImage* out) const;

  std::mutex& PartitionMutex(PartitionId partition) const {
    return *partition_mu_[partition];
  }

  Env* const env_;
  const std::string prefix_;
  const uint32_t num_partitions_;

  /// One latch per partition: concurrent sweeps of different partitions
  /// never contend (paper 3.4 — a backup latch per partition).
  mutable std::vector<std::unique_ptr<std::mutex>> partition_mu_;
  /// Serializes multi-page atomic batches (they own the shadow journal).
  /// Lock order: journal_mu_ before any partition mutex.
  mutable std::mutex journal_mu_;
  std::vector<std::shared_ptr<File>> partition_files_;
  std::shared_ptr<File> journal_;
};

}  // namespace llb

#endif  // LLB_STORAGE_PAGE_STORE_H_
