#ifndef LLB_STORAGE_PAGE_STORE_H_
#define LLB_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "io/env.h"
#include "io/uring_env.h"
#include "storage/page.h"

namespace llb {

/// A durable, partitioned page store. Used both for the stable database S
/// and for backup databases B (a backup is just a stable database — paper
/// section 1, "a backup is a stable database").
///
/// Guarantees:
///  * single-page writes are atomic and durable on return (write + sync),
///    the paper's "I/O page atomicity" assumption;
///  * `WriteBatchAtomic` writes a set of pages atomically with respect to
///    crashes, via a shadow journal: either all pages of the batch are in
///    the store after recovery, or none are. This is what lets the cache
///    manager atomically flush a multi-object vars(n) set (paper 2.4);
///  * pages never written read back as all-zero images with LSN 0.
///
/// Thread-safe: reads/writes are serialized by a per-partition mutex, so
/// a concurrent backup sweep sees each page either entirely before or
/// entirely after any write ("coordination ... occurs at the disk arm",
/// paper 1.2) — while sweeps of DIFFERENT partitions proceed fully in
/// parallel, which is what makes a multi-threaded partitioned backup
/// faster than a serial one. WriteBatchAtomic additionally serializes on
/// a store-wide journal mutex (lock order: journal, then partition;
/// nothing acquires the journal mutex while holding a partition mutex).
class PageStore {
 public:
  struct Entry {
    PageId id;
    PageImage image;
  };

  /// Opens (creating if absent) a store of `num_partitions` partitions
  /// under the given file-name prefix, and replays any committed shadow
  /// journal left by a crash mid-batch.
  static Result<std::unique_ptr<PageStore>> Open(Env* env,
                                                 const std::string& prefix,
                                                 uint32_t num_partitions);

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Reads a page and verifies its checksum.
  Status ReadPage(const PageId& id, PageImage* out) const;

  /// Atomically and durably writes one page (seals the image first).
  Status WritePage(const PageId& id, const PageImage& image);

  /// Reads `count` contiguous pages [first_page, first_page + count) of
  /// one partition with a single device read under a single latch
  /// acquisition, verifying every page's checksum. The batch-oriented
  /// read half of the backup sweep: one mutex round trip and one IO per
  /// run instead of per page.
  Status ReadRun(PartitionId partition, uint32_t first_page, uint32_t count,
                 std::vector<PageImage>* out) const;

  /// Durably writes `images` to the `images.size()` contiguous page slots
  /// starting at first_page, as one vectored device write followed by one
  /// sync, under a single latch acquisition. The images must already
  /// carry valid checksums (e.g. they came from ReadRun of another
  /// store): they are written raw, without the per-page re-seal
  /// WritePage performs — an identity copy of sealed bytes stays sealed.
  /// Crash atomicity is the sync: the whole run becomes durable at the
  /// final Sync or, after a crash before it, none of it does.
  Status WriteSealedRun(PartitionId partition, uint32_t first_page,
                        const std::vector<PageImage>& images);

  /// Atomically (w.r.t. crash) writes all entries. Order of persistence is
  /// all-or-nothing even across partitions.
  Status WriteBatchAtomic(const std::vector<Entry>& entries);

  /// One finished asynchronous run. Reads carry the checksum-verified
  /// images; write results leave `images` empty.
  struct AsyncRunResult {
    uint64_t tag = 0;
    Status status;
    std::vector<PageImage> images;
  };

  /// Deep-queue read half of the bulk mover: up to queue_depth run reads
  /// in flight at once (across partitions), each an optimistic unlatched
  /// vectored read through the env's async backend (Env::OpenAsync — an
  /// io_uring on capable kernels, the portable thread pool elsewhere).
  /// Checksums are verified at reap; a failure there is re-read once
  /// under the partition latch with the synchronous ReadRun, which
  /// separates a torn optimistic read (the retry succeeds — a writer was
  /// mid-run) from real media corruption (the retry fails too, and that
  /// error is what propagates).
  ///
  /// Not thread-safe: each sweep worker owns its own reader.
  class AsyncRunReader {
   public:
    ~AsyncRunReader();

    AsyncRunReader(const AsyncRunReader&) = delete;
    AsyncRunReader& operator=(const AsyncRunReader&) = delete;

    /// Enqueues a read of `count` pages [first_page, first_page + count)
    /// of one partition. Fails (without enqueueing) when queue_depth
    /// reads are already in flight — reap first.
    Status SubmitRead(PartitionId partition, uint32_t first_page,
                      uint32_t count, uint64_t tag);

    /// Blocks until every submitted read finishes and appends one result
    /// per read, in completion order — match by tag. Per-run errors live
    /// in the results; the returned Status covers the reap machinery.
    Status ReapAll(std::vector<AsyncRunResult>* out);

    size_t in_flight() const { return pending_.size(); }
    uint32_t queue_depth() const { return depth_; }
    /// Backend of the first open channel ("io_uring" / "thread-pool"),
    /// "none" before the first submit.
    const char* backend() const;

   private:
    friend class PageStore;

    struct PendingRead {
      PartitionId partition = 0;
      uint32_t first_page = 0;
      uint32_t count = 0;
      uint64_t tag = 0;
      AlignedIoString buffer;
    };

    AsyncRunReader(const PageStore* store, uint32_t queue_depth);
    Result<AsyncFile*> Channel(PartitionId partition);

    const PageStore* const store_;
    const uint32_t depth_;
    // pending_ owns the read buffers and is declared before channels_ on
    // purpose: members destroy in reverse order, so the channels (whose
    // destructors drain in-flight reads that DMA into those buffers) go
    // away first.
    std::map<uint64_t, PendingRead> pending_;           // by internal op id
    uint64_t next_op_ = 0;
    std::vector<std::shared_ptr<AsyncFile>> channels_;  // per partition
  };

  /// One run of already-sealed images for AsyncRunWriter::WriteWindow.
  /// `images` stays caller-owned and must outlive the call.
  struct SealedRunWrite {
    PartitionId partition = 0;
    uint32_t first_page = 0;
    const std::vector<PageImage>* images = nullptr;
    uint64_t tag = 0;
  };

  /// Deep-queue write half: moves a window of sealed runs with up to
  /// queue_depth writes in flight, then one durability barrier per
  /// touched partition (N writes : 1 sync, like WriteSealedRun's batch
  /// economics but across runs). The window latches every partition it
  /// touches for its whole duration — acquired in ascending partition
  /// order, so concurrent writers cannot deadlock — which preserves the
  /// no-torn-reads guarantee ReadPage relies on.
  ///
  /// Not thread-safe: each sweep worker owns its own writer.
  class AsyncRunWriter {
   public:
    ~AsyncRunWriter();

    AsyncRunWriter(const AsyncRunWriter&) = delete;
    AsyncRunWriter& operator=(const AsyncRunWriter&) = delete;

    /// Executes one window: submit every run, reap, sync touched
    /// partitions once each. Appends one result per run; a run is
    /// durable only when its own status and the returned (sync-covering)
    /// Status are both OK.
    Status WriteWindow(const std::vector<SealedRunWrite>& runs,
                       std::vector<AsyncRunResult>* results);

    uint32_t queue_depth() const { return depth_; }
    const char* backend() const;

   private:
    friend class PageStore;

    AsyncRunWriter(PageStore* store, uint32_t queue_depth);
    Result<AsyncFile*> Channel(PartitionId partition);

    PageStore* const store_;
    const uint32_t depth_;
    std::vector<std::shared_ptr<AsyncFile>> channels_;  // per partition
  };

  /// Creates a deep-queue reader/writer over this store's partitions.
  /// Channels open lazily on first touch, via env->OpenAsync.
  std::unique_ptr<AsyncRunReader> NewAsyncReader(uint32_t queue_depth) const;
  std::unique_ptr<AsyncRunWriter> NewAsyncWriter(uint32_t queue_depth);

  /// Number of pages ever written in the partition (file size based).
  Result<uint32_t> PageCount(PartitionId partition) const;

  uint32_t num_partitions() const { return num_partitions_; }

  /// Destroys all data in one partition (simulated media failure).
  Status WipePartition(PartitionId partition);

  /// Overwrites one page with garbage bytes, leaving a checksum mismatch
  /// (simulated partial media corruption).
  Status CorruptPage(const PageId& id);

  /// Copies every page of `src` into this store (used by restore-from-
  /// backup: "restoring S by copying B", paper section 1). `pages_hint`
  /// bounds the per-partition page range to copy.
  Status CopyAllFrom(const PageStore& src, uint32_t pages_per_partition);

 private:
  PageStore(Env* env, std::string prefix, uint32_t num_partitions)
      : env_(env), prefix_(std::move(prefix)), num_partitions_(num_partitions) {}

  Status OpenFiles();
  Status RecoverJournal();
  /// Callers hold the partition's mutex.
  Status WritePageLocked(const PageId& id, const PageImage& sealed);
  Status ReadPageLocked(const PageId& id, PageImage* out) const;

  std::mutex& PartitionMutex(PartitionId partition) const {
    return *partition_mu_[partition];
  }

  Env* const env_;
  const std::string prefix_;
  const uint32_t num_partitions_;

  /// One latch per partition: concurrent sweeps of different partitions
  /// never contend (paper 3.4 — a backup latch per partition).
  mutable std::vector<std::unique_ptr<std::mutex>> partition_mu_;
  /// Serializes multi-page atomic batches (they own the shadow journal).
  /// Lock order: journal_mu_ before any partition mutex.
  mutable std::mutex journal_mu_;
  std::vector<std::shared_ptr<File>> partition_files_;
  std::shared_ptr<File> journal_;
};

}  // namespace llb

#endif  // LLB_STORAGE_PAGE_STORE_H_
