// Quickstart: open a database, store data in a recoverable B-tree, take
// a high-speed on-line backup while updates continue, suffer a media
// failure, and recover to the current state from backup + log.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "btree/btree.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

using namespace llb;  // examples only; library code never does this

int main() {
  // 1. Configure the engine for tree operations (the B-tree logs splits
  //    logically) with the paper's tree backup policy.
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 2048;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 8;

  auto engine_or = TestEngine::Create(options, "quickstart");
  if (!engine_or.ok()) {
    fprintf(stderr, "open failed: %s\n",
            engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();
  Database* db = engine->db();

  // 2. Create a B-tree and load some data.
  BTree tree(db, /*partition=*/0, /*meta_page=*/0, SplitLogging::kLogical);
  if (!tree.Create().ok()) return 1;
  for (int64_t k = 0; k < 1000; ++k) {
    if (!tree.Insert(k, "value-" + std::to_string(k)).ok()) return 1;
  }
  printf("loaded 1000 records (%llu page splits, all logged logically)\n",
         static_cast<unsigned long long>(tree.stats().splits));

  // 3. Take an on-line backup. Updates continue during the sweep; the
  //    cache manager coordinates through the backup fences and logs
  //    identity writes only where Figure 4's case analysis demands.
  int64_t key = 1000;
  BackupJobOptions job;
  job.steps = 8;
  job.mid_step = [&](PartitionId, uint32_t step) -> Status {
    for (int i = 0; i < 50; ++i, ++key) {
      LLB_RETURN_IF_ERROR(tree.Insert(key, "concurrent-" +
                                               std::to_string(step)));
    }
    // Flush the dirty pages mid-sweep: the interesting case, where the
    // cache manager must decide per object whether to log an identity
    // write to keep the backup recoverable.
    return db->FlushAll();
  };
  auto manifest_or = db->TakeBackupWithOptions("quickstart_bk", job);
  if (!manifest_or.ok()) return 1;
  DbStats stats = db->GatherStats();
  printf("backup complete: %llu pages copied, %llu identity writes "
         "(extra logging) during the sweep\n",
         static_cast<unsigned long long>(stats.backup_pages_copied),
         static_cast<unsigned long long>(stats.cache.identity_writes));

  // 4. More updates after the backup, then force the log.
  for (int i = 0; i < 200; ++i, ++key) {
    if (!tree.Insert(key, "post-backup").ok()) return 1;
  }
  if (!db->ForceLog().ok()) return 1;
  int64_t last_key = key - 1;

  // 5. MEDIA FAILURE: the stable database is destroyed.
  engine->Shutdown();
  {
    auto stable_or =
        PageStore::Open(engine->env(), Database::StableName("quickstart"), 1);
    if (!stable_or.ok() || !(*stable_or)->WipePartition(0).ok()) return 1;
  }
  printf("simulated media failure: stable database wiped\n");

  // 6. Media recovery: restore from the backup, roll forward the log.
  OpRegistry registry;
  RegisterAllOps(&registry);
  auto report_or = RestoreFromBackup(
      engine->env(), Database::StableName("quickstart"),
      Database::LogName("quickstart"), "quickstart_bk", registry);
  if (!report_or.ok()) {
    fprintf(stderr, "restore failed: %s\n",
            report_or.status().ToString().c_str());
    return 1;
  }
  printf("media recovery: %llu pages restored from backup, %llu operations "
         "rolled forward\n",
         static_cast<unsigned long long>(report_or->pages_restored),
         static_cast<unsigned long long>(report_or->redo.ops_replayed));

  // 7. Everything — including updates made DURING and AFTER the backup —
  //    is back.
  if (!engine->Reopen().ok()) return 1;
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  auto check_or = recovered.CheckInvariants();
  if (!check_or.ok()) return 1;
  auto last_or = recovered.Get(last_key);
  printf("recovered tree: %llu records, key %lld = \"%s\" -> OK\n",
         static_cast<unsigned long long>(check_or->records),
         static_cast<long long>(last_key),
         last_or.ok() ? last_or->c_str() : "<missing!>");
  return last_or.ok() ? 0 : 1;
}
