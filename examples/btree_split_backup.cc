// Walk through the paper's Figure 1 scenario interactively: a logical
// B-tree split racing an on-line backup sweep, shown once with the
// conventional fuzzy dump (backup unrecoverable) and once with the
// paper's protocol (identity write rescues it).
//
// This is the same schedule the bench_fig1 harness measures, unpacked
// step by step with commentary.

#include <cstdio>
#include <memory>

#include "btree/btree_node.h"
#include "btree/btree_ops.h"
#include "ops/operation.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

using namespace llb;  // examples only

namespace {

constexpr uint32_t kOldPage = 60;
constexpr uint32_t kNewPage = 5;

int RunOnce(BackupPolicy policy, const char* label) {
  printf("\n--- %s ---\n", label);
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 100;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = policy;
  auto engine_or = TestEngine::Create(options, "fig1");
  if (!engine_or.ok()) return 1;
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();
  Database* db = engine->db();

  // A leaf at page 60 holding keys 1..10, flushed to the stable DB.
  PageImage leaf;
  btree_node::InitLeaf(&leaf, 0);
  for (int64_t k = 1; k <= 10; ++k) btree_node::LeafInsert(&leaf, k, "r");
  LogRecord init = MakePhysicalWrite(PageId{0, kOldPage}, leaf);
  if (!db->Execute(&init).ok() || !db->FlushAll().ok()) return 1;
  printf("leaf 'old' (page %u) holds keys 1..10, flushed to S\n", kOldPage);

  BackupJobOptions job;
  job.steps = 2;
  job.mid_step = [db](PartitionId, uint32_t step) -> Status {
    if (step == 1) {
      printf("backup step 1: sweeping pages [0,50) — page %u ('new') is "
             "copied to B in its EMPTY state\n",
             kNewPage);
      return Status::OK();
    }
    printf("backup step 2 begins (pages [50,100) still pending)\n");
    printf("  split!  MovRec(old, key=5, new): keys 6..10 move to page %u "
           "— no record data logged\n",
           kNewPage);
    LogRecord mov =
        MakeBtreeMovRec(PageId{0, kOldPage}, PageId{0, kNewPage}, 5);
    LLB_RETURN_IF_ERROR(db->Execute(&mov));
    printf("  RmvRec(old, key=5): old page truncated\n");
    LogRecord rmv = MakeBtreeRmvRec(PageId{0, kOldPage}, 5, kNewPage);
    LLB_RETURN_IF_ERROR(db->Execute(&rmv));
    printf("  cache manager flushes 'new' (position %u = Done region)...\n",
           kNewPage);
    LLB_RETURN_IF_ERROR(db->FlushPage(PageId{0, kNewPage}));
    printf("  cache manager flushes 'old' (position %u = Doubt region; "
           "its truncated image WILL reach B)\n",
           kOldPage);
    return db->FlushPage(PageId{0, kOldPage});
  };
  if (!db->TakeBackupWithOptions("fig1_bk", job).status().ok()) return 1;
  uint64_t iwof = db->GatherStats().cache.identity_writes;
  printf("backup complete; identity writes logged: %llu\n",
         static_cast<unsigned long long>(iwof));

  engine->Shutdown();
  {
    auto stable_or =
        PageStore::Open(engine->env(), Database::StableName("fig1"), 1);
    if (!stable_or.ok() || !(*stable_or)->WipePartition(0).ok()) return 1;
  }
  printf("media failure: S destroyed; restoring from B + log...\n");
  OpRegistry registry;
  RegisterAllOps(&registry);
  if (!RestoreFromBackup(engine->env(), Database::StableName("fig1"),
                         Database::LogName("fig1"), "fig1_bk", registry)
           .status()
           .ok()) {
    return 1;
  }
  auto stable_or =
      PageStore::Open(engine->env(), Database::StableName("fig1"), 1);
  if (!stable_or.ok()) return 1;
  PageImage new_page, old_page;
  if (!(*stable_or)->ReadPage(PageId{0, kNewPage}, &new_page).ok()) return 1;
  if (!(*stable_or)->ReadPage(PageId{0, kOldPage}, &old_page).ok()) return 1;
  printf("after media recovery: old page has %u records, new page has %u "
         "records\n",
         btree_node::Count(old_page), btree_node::Count(new_page));
  if (btree_node::Count(new_page) == 5) {
    printf("=> keys 6..10 RECOVERED\n");
  } else {
    printf("=> keys 6..10 LOST — the moved records are in neither B nor "
           "the log (paper 1.3: \"B cannot be successfully recovered\")\n");
  }
  return 0;
}

}  // namespace

int main() {
  printf("The Figure 1 problem: a logical split races the backup sweep.\n");
  RunOnce(BackupPolicy::kNaive,
          "conventional fuzzy dump (no coordination) — the paper's problem");
  RunOnce(BackupPolicy::kTree,
          "the paper's protocol (tree-operation case analysis)");
  return 0;
}
