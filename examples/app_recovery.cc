// Application recovery (paper sections 1.1 and 6.2): application state
// transitions logged as Ex(A) and R(X, A) — no state or message values on
// the log — plus the backup-order trick: applications placed LAST in the
// backup order never need Iw/oF logging during a backup.

#include <cstdio>
#include <memory>

#include "apprec/app_recovery.h"
#include "common/random.h"
#include "sim/harness.h"

using namespace llb;  // examples only

namespace {

uint64_t RunWorkloadWithBackup(bool apps_last) {
  constexpr uint32_t kPages = 1024;
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 512;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  auto engine_or = TestEngine::Create(options, "appdemo");
  if (!engine_or.ok()) return ~0ull;
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();

  AppRecovery apps(engine->db(), 0,
                   /*msg_base=*/apps_last ? 0 : 8, /*num_msgs=*/256,
                   /*app_base=*/apps_last ? kPages - 8 : 0, /*num_apps=*/8);
  for (uint32_t a = 0; a < 8; ++a) {
    if (!apps.InitApp(a).ok()) return ~0ull;
  }
  if (!engine->db()->FlushAll().ok()) return ~0ull;
  engine->db()->ResetStats();

  Random rng(3);
  BackupJobOptions job;
  job.steps = 8;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 40; ++i) {
      uint32_t app = static_cast<uint32_t>(rng.Uniform(8));
      uint32_t msg = static_cast<uint32_t>(rng.Uniform(256));
      LLB_RETURN_IF_ERROR(apps.WriteMessage(msg, rng.Next()));
      LLB_RETURN_IF_ERROR(apps.Read(app, msg));
      LLB_RETURN_IF_ERROR(apps.Exec(app, rng.Next()));
      LLB_RETURN_IF_ERROR(engine->db()->FlushPage(apps.AppPage(app)));
      LLB_RETURN_IF_ERROR(engine->db()->FlushPage(apps.MsgPage(msg)));
    }
    return Status::OK();
  };
  if (!engine->db()->TakeBackupWithOptions("appbk", job).status().ok()) {
    return ~0ull;
  }
  return engine->db()->GatherStats().cache.identity_writes;
}

}  // namespace

int main() {
  // Part 1: recoverable application state without logging values.
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 1024;
  options.cache_pages = 128;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  auto engine_or = TestEngine::Create(options, "appmain");
  if (!engine_or.ok()) return 1;
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();

  AppRecovery apps(engine->db(), 0, 0, 256, 1016, 8);
  if (!apps.InitApp(0).ok()) return 1;
  for (int i = 0; i < 50; ++i) {
    if (!apps.WriteMessage(i, i * 101).ok()) return 1;
    if (!apps.Read(0, i).ok()) return 1;      // R(X, A): ids only logged
    if (!apps.Exec(0, i * 7).ok()) return 1;  // Ex(A)
  }
  auto digest_or = apps.AppDigest(0);
  if (!digest_or.ok()) return 1;
  printf("application consumed 50 messages; state digest %016llx "
         "(the R and Ex log records carry no values)\n",
         static_cast<unsigned long long>(*digest_or));

  // Crash without flushing anything: the application's state is rebuilt
  // by re-running its logged read/execute history.
  if (!engine->db()->ForceLog().ok()) return 1;
  if (!engine->CrashAndRecover().ok()) return 1;
  AppRecovery after(engine->db(), 0, 0, 256, 1016, 8);
  auto recovered_or = after.AppDigest(0);
  if (!recovered_or.ok()) return 1;
  printf("after crash recovery: digest %016llx -> %s\n",
         static_cast<unsigned long long>(*recovered_or),
         *recovered_or == *digest_or ? "identical" : "MISMATCH");

  // Part 2: the backup-order result of section 6.2.
  uint64_t last = RunWorkloadWithBackup(/*apps_last=*/true);
  uint64_t first = RunWorkloadWithBackup(/*apps_last=*/false);
  printf("\nbackup-order ablation (identical workload, 8-step backup):\n");
  printf("  applications LAST in backup order : %llu identity writes\n",
         static_cast<unsigned long long>(last));
  printf("  applications FIRST in backup order: %llu identity writes\n",
         static_cast<unsigned long long>(first));
  printf("paper 6.2: apps-last guarantees the dagger property -> zero "
         "Iw/oF logging.\n");
  return (*recovered_or == *digest_or && last == 0) ? 0 : 1;
}
