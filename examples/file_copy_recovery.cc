// General logical operations: the paper's file-system example
// (section 1.1). A copy or sort logs only operand identifiers; crash
// recovery replays the operations against the restored read sets, and
// on-line backup stays recoverable via Iw/oF.

#include <cstdio>
#include <memory>

#include "filestore/filestore.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

using namespace llb;  // examples only

int main() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 512;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kGeneral;  // multi-page read/write sets
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = 8;

  auto engine_or = TestEngine::Create(options, "filedemo");
  if (!engine_or.ok()) return 1;
  std::unique_ptr<TestEngine> engine = std::move(engine_or).value();
  Database* db = engine->db();

  FileStore files(db, 0, /*base_page=*/0, /*pages_per_file=*/4,
                  /*num_files=*/24);

  // Load an unsorted file.
  std::vector<int64_t> data;
  for (int i = 0; i < 1800; ++i) data.push_back((i * 7919) % 100003);
  if (!files.WriteValues(0, data).ok()) return 1;
  printf("file 0: %zu unsorted records over 4 pages\n", data.size());

  // Logical operations: only ids hit the log.
  uint64_t before = db->GatherStats().log.bytes;
  if (!files.Copy(0, 1).ok()) return 1;
  if (!files.SortInto(0, 2).ok()) return 1;
  uint64_t logged = db->GatherStats().log.bytes - before;
  printf("Copy(0,1) + Sort(0,2) logged %llu bytes total (the data itself "
         "is ~%zu KB)\n",
         static_cast<unsigned long long>(logged), data.size() * 8 / 1024);

  // Crash WITHOUT flushing: redo regenerates both results from the log,
  // replaying the copy and the sort against file 0's restored pages.
  if (!db->ForceLog().ok()) return 1;
  if (!engine->CrashAndRecover().ok()) return 1;
  FileStore after(engine->db(), 0, 0, 4, 24);
  auto sorted_or = after.ReadValues(2);
  if (!sorted_or.ok()) return 1;
  bool is_sorted = std::is_sorted(sorted_or->begin(), sorted_or->end());
  printf("after crash recovery: file 2 has %zu records, sorted: %s\n",
         sorted_or->size(), is_sorted ? "yes" : "NO");

  // On-line backup while copies keep racing the sweep.
  int round = 0;
  BackupJobOptions job;
  job.steps = 8;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 4; ++i, ++round) {
      LLB_RETURN_IF_ERROR(after.Copy(round % 3, 3 + (round % 20)));
    }
    return engine->db()->FlushAll();
  };
  if (!engine->db()->TakeBackupWithOptions("filedemo_bk", job).status().ok()) {
    return 1;
  }
  DbStats stats = engine->db()->GatherStats();
  printf("on-line backup done; flush decisions during sweep: %llu, of "
         "which Iw/oF-logged: %llu (general ops log every non-pending "
         "flush)\n",
         static_cast<unsigned long long>(stats.cache.decisions),
         static_cast<unsigned long long>(stats.cache.decisions_logged));

  // Media failure + recovery.
  if (!engine->db()->ForceLog().ok()) return 1;
  engine->Shutdown();
  {
    auto stable_or =
        PageStore::Open(engine->env(), Database::StableName("filedemo"), 1);
    if (!stable_or.ok() || !(*stable_or)->WipePartition(0).ok()) return 1;
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  auto report_or = RestoreFromBackup(
      engine->env(), Database::StableName("filedemo"),
      Database::LogName("filedemo"), "filedemo_bk", registry);
  if (!report_or.ok()) {
    fprintf(stderr, "restore failed: %s\n",
            report_or.status().ToString().c_str());
    return 1;
  }
  if (!engine->Reopen().ok()) return 1;
  FileStore recovered(engine->db(), 0, 0, 4, 24);
  auto check_or = recovered.ReadValues(2);
  if (!check_or.ok() ||
      !std::is_sorted(check_or->begin(), check_or->end()) ||
      check_or->size() != data.size()) {
    printf("media recovery FAILED to reproduce file 2\n");
    return 1;
  }
  printf("media recovery reproduced every file, including results of "
         "logical ops never captured by the sweep\n");
  return 0;
}
