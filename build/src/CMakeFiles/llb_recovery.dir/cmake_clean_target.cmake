file(REMOVE_RECURSE
  "libllb_recovery.a"
)
