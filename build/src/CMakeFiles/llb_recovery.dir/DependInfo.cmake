
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/checkpoint.cc" "src/CMakeFiles/llb_recovery.dir/recovery/checkpoint.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/checkpoint.cc.o.d"
  "/root/repo/src/recovery/general_write_graph.cc" "src/CMakeFiles/llb_recovery.dir/recovery/general_write_graph.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/general_write_graph.cc.o.d"
  "/root/repo/src/recovery/media_recovery.cc" "src/CMakeFiles/llb_recovery.dir/recovery/media_recovery.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/media_recovery.cc.o.d"
  "/root/repo/src/recovery/redo.cc" "src/CMakeFiles/llb_recovery.dir/recovery/redo.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/redo.cc.o.d"
  "/root/repo/src/recovery/tree_write_graph.cc" "src/CMakeFiles/llb_recovery.dir/recovery/tree_write_graph.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/tree_write_graph.cc.o.d"
  "/root/repo/src/recovery/write_graph.cc" "src/CMakeFiles/llb_recovery.dir/recovery/write_graph.cc.o" "gcc" "src/CMakeFiles/llb_recovery.dir/recovery/write_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llb_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
