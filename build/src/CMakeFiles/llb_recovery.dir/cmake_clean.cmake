file(REMOVE_RECURSE
  "CMakeFiles/llb_recovery.dir/recovery/checkpoint.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/checkpoint.cc.o.d"
  "CMakeFiles/llb_recovery.dir/recovery/general_write_graph.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/general_write_graph.cc.o.d"
  "CMakeFiles/llb_recovery.dir/recovery/media_recovery.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/media_recovery.cc.o.d"
  "CMakeFiles/llb_recovery.dir/recovery/redo.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/redo.cc.o.d"
  "CMakeFiles/llb_recovery.dir/recovery/tree_write_graph.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/tree_write_graph.cc.o.d"
  "CMakeFiles/llb_recovery.dir/recovery/write_graph.cc.o"
  "CMakeFiles/llb_recovery.dir/recovery/write_graph.cc.o.d"
  "libllb_recovery.a"
  "libllb_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
