# Empty compiler generated dependencies file for llb_recovery.
# This may be replaced when dependencies are built.
