file(REMOVE_RECURSE
  "CMakeFiles/llb_db.dir/db/database.cc.o"
  "CMakeFiles/llb_db.dir/db/database.cc.o.d"
  "CMakeFiles/llb_db.dir/db/stats.cc.o"
  "CMakeFiles/llb_db.dir/db/stats.cc.o.d"
  "libllb_db.a"
  "libllb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
