# Empty compiler generated dependencies file for llb_db.
# This may be replaced when dependencies are built.
