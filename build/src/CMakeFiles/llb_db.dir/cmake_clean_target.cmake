file(REMOVE_RECURSE
  "libllb_db.a"
)
