file(REMOVE_RECURSE
  "libllb_btree.a"
)
