
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/llb_btree.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/llb_btree.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/btree_node.cc" "src/CMakeFiles/llb_btree.dir/btree/btree_node.cc.o" "gcc" "src/CMakeFiles/llb_btree.dir/btree/btree_node.cc.o.d"
  "/root/repo/src/btree/btree_ops.cc" "src/CMakeFiles/llb_btree.dir/btree/btree_ops.cc.o" "gcc" "src/CMakeFiles/llb_btree.dir/btree/btree_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
