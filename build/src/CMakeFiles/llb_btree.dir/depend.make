# Empty dependencies file for llb_btree.
# This may be replaced when dependencies are built.
