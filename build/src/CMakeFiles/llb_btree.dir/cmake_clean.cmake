file(REMOVE_RECURSE
  "CMakeFiles/llb_btree.dir/btree/btree.cc.o"
  "CMakeFiles/llb_btree.dir/btree/btree.cc.o.d"
  "CMakeFiles/llb_btree.dir/btree/btree_node.cc.o"
  "CMakeFiles/llb_btree.dir/btree/btree_node.cc.o.d"
  "CMakeFiles/llb_btree.dir/btree/btree_ops.cc.o"
  "CMakeFiles/llb_btree.dir/btree/btree_ops.cc.o.d"
  "libllb_btree.a"
  "libllb_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
