file(REMOVE_RECURSE
  "libllb_cache.a"
)
