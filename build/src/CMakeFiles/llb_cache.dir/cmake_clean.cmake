file(REMOVE_RECURSE
  "CMakeFiles/llb_cache.dir/cache/cache_manager.cc.o"
  "CMakeFiles/llb_cache.dir/cache/cache_manager.cc.o.d"
  "libllb_cache.a"
  "libllb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
