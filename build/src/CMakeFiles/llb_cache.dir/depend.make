# Empty dependencies file for llb_cache.
# This may be replaced when dependencies are built.
