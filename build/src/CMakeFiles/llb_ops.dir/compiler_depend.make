# Empty compiler generated dependencies file for llb_ops.
# This may be replaced when dependencies are built.
