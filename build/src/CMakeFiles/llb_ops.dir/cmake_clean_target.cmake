file(REMOVE_RECURSE
  "libllb_ops.a"
)
