file(REMOVE_RECURSE
  "CMakeFiles/llb_ops.dir/ops/op_registry.cc.o"
  "CMakeFiles/llb_ops.dir/ops/op_registry.cc.o.d"
  "CMakeFiles/llb_ops.dir/ops/operation.cc.o"
  "CMakeFiles/llb_ops.dir/ops/operation.cc.o.d"
  "libllb_ops.a"
  "libllb_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
