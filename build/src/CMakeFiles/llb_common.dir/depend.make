# Empty dependencies file for llb_common.
# This may be replaced when dependencies are built.
