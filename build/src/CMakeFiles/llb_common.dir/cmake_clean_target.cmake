file(REMOVE_RECURSE
  "libllb_common.a"
)
