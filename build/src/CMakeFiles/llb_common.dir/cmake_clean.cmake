file(REMOVE_RECURSE
  "CMakeFiles/llb_common.dir/common/coding.cc.o"
  "CMakeFiles/llb_common.dir/common/coding.cc.o.d"
  "CMakeFiles/llb_common.dir/common/crc32c.cc.o"
  "CMakeFiles/llb_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/llb_common.dir/common/random.cc.o"
  "CMakeFiles/llb_common.dir/common/random.cc.o.d"
  "CMakeFiles/llb_common.dir/common/status.cc.o"
  "CMakeFiles/llb_common.dir/common/status.cc.o.d"
  "libllb_common.a"
  "libllb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
