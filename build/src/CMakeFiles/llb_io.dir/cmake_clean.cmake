file(REMOVE_RECURSE
  "CMakeFiles/llb_io.dir/io/env.cc.o"
  "CMakeFiles/llb_io.dir/io/env.cc.o.d"
  "CMakeFiles/llb_io.dir/io/fault_env.cc.o"
  "CMakeFiles/llb_io.dir/io/fault_env.cc.o.d"
  "CMakeFiles/llb_io.dir/io/mem_env.cc.o"
  "CMakeFiles/llb_io.dir/io/mem_env.cc.o.d"
  "libllb_io.a"
  "libllb_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
