file(REMOVE_RECURSE
  "libllb_io.a"
)
