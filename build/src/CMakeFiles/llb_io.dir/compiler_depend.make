# Empty compiler generated dependencies file for llb_io.
# This may be replaced when dependencies are built.
