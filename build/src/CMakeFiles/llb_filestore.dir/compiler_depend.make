# Empty compiler generated dependencies file for llb_filestore.
# This may be replaced when dependencies are built.
