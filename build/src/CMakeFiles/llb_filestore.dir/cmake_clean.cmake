file(REMOVE_RECURSE
  "CMakeFiles/llb_filestore.dir/filestore/file_ops.cc.o"
  "CMakeFiles/llb_filestore.dir/filestore/file_ops.cc.o.d"
  "CMakeFiles/llb_filestore.dir/filestore/filestore.cc.o"
  "CMakeFiles/llb_filestore.dir/filestore/filestore.cc.o.d"
  "libllb_filestore.a"
  "libllb_filestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_filestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
