file(REMOVE_RECURSE
  "libllb_filestore.a"
)
