file(REMOVE_RECURSE
  "CMakeFiles/llb_storage.dir/storage/page.cc.o"
  "CMakeFiles/llb_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/llb_storage.dir/storage/page_store.cc.o"
  "CMakeFiles/llb_storage.dir/storage/page_store.cc.o.d"
  "libllb_storage.a"
  "libllb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
