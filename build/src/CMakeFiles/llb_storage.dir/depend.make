# Empty dependencies file for llb_storage.
# This may be replaced when dependencies are built.
