file(REMOVE_RECURSE
  "libllb_storage.a"
)
