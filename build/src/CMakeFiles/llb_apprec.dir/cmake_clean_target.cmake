file(REMOVE_RECURSE
  "libllb_apprec.a"
)
