file(REMOVE_RECURSE
  "CMakeFiles/llb_apprec.dir/apprec/app_ops.cc.o"
  "CMakeFiles/llb_apprec.dir/apprec/app_ops.cc.o.d"
  "CMakeFiles/llb_apprec.dir/apprec/app_recovery.cc.o"
  "CMakeFiles/llb_apprec.dir/apprec/app_recovery.cc.o.d"
  "libllb_apprec.a"
  "libllb_apprec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_apprec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
