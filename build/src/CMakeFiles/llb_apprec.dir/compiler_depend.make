# Empty compiler generated dependencies file for llb_apprec.
# This may be replaced when dependencies are built.
