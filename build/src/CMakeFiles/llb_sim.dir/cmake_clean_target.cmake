file(REMOVE_RECURSE
  "libllb_sim.a"
)
