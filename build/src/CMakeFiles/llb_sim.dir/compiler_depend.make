# Empty compiler generated dependencies file for llb_sim.
# This may be replaced when dependencies are built.
