file(REMOVE_RECURSE
  "CMakeFiles/llb_sim.dir/sim/harness.cc.o"
  "CMakeFiles/llb_sim.dir/sim/harness.cc.o.d"
  "CMakeFiles/llb_sim.dir/sim/workload.cc.o"
  "CMakeFiles/llb_sim.dir/sim/workload.cc.o.d"
  "libllb_sim.a"
  "libllb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
