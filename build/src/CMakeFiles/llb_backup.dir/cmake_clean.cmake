file(REMOVE_RECURSE
  "CMakeFiles/llb_backup.dir/backup/backup_job.cc.o"
  "CMakeFiles/llb_backup.dir/backup/backup_job.cc.o.d"
  "CMakeFiles/llb_backup.dir/backup/backup_progress.cc.o"
  "CMakeFiles/llb_backup.dir/backup/backup_progress.cc.o.d"
  "CMakeFiles/llb_backup.dir/backup/backup_store.cc.o"
  "CMakeFiles/llb_backup.dir/backup/backup_store.cc.o.d"
  "CMakeFiles/llb_backup.dir/backup/incremental_tracker.cc.o"
  "CMakeFiles/llb_backup.dir/backup/incremental_tracker.cc.o.d"
  "libllb_backup.a"
  "libllb_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
