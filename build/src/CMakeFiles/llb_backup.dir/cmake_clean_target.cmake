file(REMOVE_RECURSE
  "libllb_backup.a"
)
