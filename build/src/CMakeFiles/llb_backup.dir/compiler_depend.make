# Empty compiler generated dependencies file for llb_backup.
# This may be replaced when dependencies are built.
