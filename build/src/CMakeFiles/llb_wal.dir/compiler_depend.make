# Empty compiler generated dependencies file for llb_wal.
# This may be replaced when dependencies are built.
