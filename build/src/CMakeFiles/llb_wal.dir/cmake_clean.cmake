file(REMOVE_RECURSE
  "CMakeFiles/llb_wal.dir/wal/log_manager.cc.o"
  "CMakeFiles/llb_wal.dir/wal/log_manager.cc.o.d"
  "CMakeFiles/llb_wal.dir/wal/log_reader.cc.o"
  "CMakeFiles/llb_wal.dir/wal/log_reader.cc.o.d"
  "CMakeFiles/llb_wal.dir/wal/log_record.cc.o"
  "CMakeFiles/llb_wal.dir/wal/log_record.cc.o.d"
  "CMakeFiles/llb_wal.dir/wal/log_writer.cc.o"
  "CMakeFiles/llb_wal.dir/wal/log_writer.cc.o.d"
  "libllb_wal.a"
  "libllb_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
