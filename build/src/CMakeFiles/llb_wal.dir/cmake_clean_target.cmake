file(REMOVE_RECURSE
  "libllb_wal.a"
)
