# Empty dependencies file for app_recovery.
# This may be replaced when dependencies are built.
