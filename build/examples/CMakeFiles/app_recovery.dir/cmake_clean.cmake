file(REMOVE_RECURSE
  "CMakeFiles/app_recovery.dir/app_recovery.cc.o"
  "CMakeFiles/app_recovery.dir/app_recovery.cc.o.d"
  "app_recovery"
  "app_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
