# Empty dependencies file for btree_split_backup.
# This may be replaced when dependencies are built.
