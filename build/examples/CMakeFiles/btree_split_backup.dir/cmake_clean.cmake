file(REMOVE_RECURSE
  "CMakeFiles/btree_split_backup.dir/btree_split_backup.cc.o"
  "CMakeFiles/btree_split_backup.dir/btree_split_backup.cc.o.d"
  "btree_split_backup"
  "btree_split_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_split_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
