file(REMOVE_RECURSE
  "CMakeFiles/file_copy_recovery.dir/file_copy_recovery.cc.o"
  "CMakeFiles/file_copy_recovery.dir/file_copy_recovery.cc.o.d"
  "file_copy_recovery"
  "file_copy_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_copy_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
