# Empty compiler generated dependencies file for file_copy_recovery.
# This may be replaced when dependencies are built.
