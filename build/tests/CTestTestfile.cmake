# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/write_graph_test[1]_include.cmake")
include("/root/repo/build/tests/tree_graph_test[1]_include.cmake")
include("/root/repo/build/tests/redo_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/backup_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/filestore_test[1]_include.cmake")
include("/root/repo/build/tests/apprec_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/media_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pitr_partition_test[1]_include.cmake")
include("/root/repo/build/tests/backup_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/graph_property_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/wal_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/backup_negative_test[1]_include.cmake")
include("/root/repo/build/tests/btree_model_test[1]_include.cmake")
