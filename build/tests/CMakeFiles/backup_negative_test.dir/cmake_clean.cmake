file(REMOVE_RECURSE
  "CMakeFiles/backup_negative_test.dir/backup_negative_test.cc.o"
  "CMakeFiles/backup_negative_test.dir/backup_negative_test.cc.o.d"
  "backup_negative_test"
  "backup_negative_test.pdb"
  "backup_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
