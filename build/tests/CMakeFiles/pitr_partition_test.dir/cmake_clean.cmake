file(REMOVE_RECURSE
  "CMakeFiles/pitr_partition_test.dir/pitr_partition_test.cc.o"
  "CMakeFiles/pitr_partition_test.dir/pitr_partition_test.cc.o.d"
  "pitr_partition_test"
  "pitr_partition_test.pdb"
  "pitr_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitr_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
