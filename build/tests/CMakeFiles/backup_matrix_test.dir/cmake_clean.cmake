file(REMOVE_RECURSE
  "CMakeFiles/backup_matrix_test.dir/backup_matrix_test.cc.o"
  "CMakeFiles/backup_matrix_test.dir/backup_matrix_test.cc.o.d"
  "backup_matrix_test"
  "backup_matrix_test.pdb"
  "backup_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
