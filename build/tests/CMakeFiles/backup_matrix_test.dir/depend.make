# Empty dependencies file for backup_matrix_test.
# This may be replaced when dependencies are built.
