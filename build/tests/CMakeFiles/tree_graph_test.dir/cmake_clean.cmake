file(REMOVE_RECURSE
  "CMakeFiles/tree_graph_test.dir/tree_graph_test.cc.o"
  "CMakeFiles/tree_graph_test.dir/tree_graph_test.cc.o.d"
  "tree_graph_test"
  "tree_graph_test.pdb"
  "tree_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
