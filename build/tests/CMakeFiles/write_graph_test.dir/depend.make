# Empty dependencies file for write_graph_test.
# This may be replaced when dependencies are built.
