file(REMOVE_RECURSE
  "CMakeFiles/write_graph_test.dir/write_graph_test.cc.o"
  "CMakeFiles/write_graph_test.dir/write_graph_test.cc.o.d"
  "write_graph_test"
  "write_graph_test.pdb"
  "write_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
