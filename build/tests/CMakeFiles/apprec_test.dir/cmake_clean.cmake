file(REMOVE_RECURSE
  "CMakeFiles/apprec_test.dir/apprec_test.cc.o"
  "CMakeFiles/apprec_test.dir/apprec_test.cc.o.d"
  "apprec_test"
  "apprec_test.pdb"
  "apprec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apprec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
