# Empty compiler generated dependencies file for apprec_test.
# This may be replaced when dependencies are built.
