file(REMOVE_RECURSE
  "CMakeFiles/btree_model_test.dir/btree_model_test.cc.o"
  "CMakeFiles/btree_model_test.dir/btree_model_test.cc.o.d"
  "btree_model_test"
  "btree_model_test.pdb"
  "btree_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
