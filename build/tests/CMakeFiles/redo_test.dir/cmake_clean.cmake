file(REMOVE_RECURSE
  "CMakeFiles/redo_test.dir/redo_test.cc.o"
  "CMakeFiles/redo_test.dir/redo_test.cc.o.d"
  "redo_test"
  "redo_test.pdb"
  "redo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
