file(REMOVE_RECURSE
  "CMakeFiles/llb_dbtool.dir/dbtool.cc.o"
  "CMakeFiles/llb_dbtool.dir/dbtool.cc.o.d"
  "llb_dbtool"
  "llb_dbtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llb_dbtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
