# Empty compiler generated dependencies file for llb_dbtool.
# This may be replaced when dependencies are built.
