# Empty compiler generated dependencies file for bench_x2_incremental.
# This may be replaced when dependencies are built.
