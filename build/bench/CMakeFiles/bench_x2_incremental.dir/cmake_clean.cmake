file(REMOVE_RECURSE
  "CMakeFiles/bench_x2_incremental.dir/bench_x2_incremental.cc.o"
  "CMakeFiles/bench_x2_incremental.dir/bench_x2_incremental.cc.o.d"
  "bench_x2_incremental"
  "bench_x2_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x2_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
