file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_extra_logging.dir/bench_fig5_extra_logging.cc.o"
  "CMakeFiles/bench_fig5_extra_logging.dir/bench_fig5_extra_logging.cc.o.d"
  "bench_fig5_extra_logging"
  "bench_fig5_extra_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_extra_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
