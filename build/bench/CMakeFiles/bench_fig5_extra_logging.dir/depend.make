# Empty dependencies file for bench_fig5_extra_logging.
# This may be replaced when dependencies are built.
