file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_ablation_steps.dir/bench_x5_ablation_steps.cc.o"
  "CMakeFiles/bench_x5_ablation_steps.dir/bench_x5_ablation_steps.cc.o.d"
  "bench_x5_ablation_steps"
  "bench_x5_ablation_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_ablation_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
