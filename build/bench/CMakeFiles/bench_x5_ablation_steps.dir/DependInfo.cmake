
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_x5_ablation_steps.cc" "bench/CMakeFiles/bench_x5_ablation_steps.dir/bench_x5_ablation_steps.cc.o" "gcc" "bench/CMakeFiles/bench_x5_ablation_steps.dir/bench_x5_ablation_steps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/llb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_filestore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_apprec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/llb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
