# Empty dependencies file for bench_x5_ablation_steps.
# This may be replaced when dependencies are built.
