# Empty compiler generated dependencies file for bench_fig2_write_graphs.
# This may be replaced when dependencies are built.
