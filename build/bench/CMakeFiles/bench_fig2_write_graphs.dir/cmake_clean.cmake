file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_write_graphs.dir/bench_fig2_write_graphs.cc.o"
  "CMakeFiles/bench_fig2_write_graphs.dir/bench_fig2_write_graphs.cc.o.d"
  "bench_fig2_write_graphs"
  "bench_fig2_write_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_write_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
