file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_btree_problem.dir/bench_fig1_btree_problem.cc.o"
  "CMakeFiles/bench_fig1_btree_problem.dir/bench_fig1_btree_problem.cc.o.d"
  "bench_fig1_btree_problem"
  "bench_fig1_btree_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_btree_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
