# Empty compiler generated dependencies file for bench_fig1_btree_problem.
# This may be replaced when dependencies are built.
