file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_app_read.dir/bench_x3_app_read.cc.o"
  "CMakeFiles/bench_x3_app_read.dir/bench_x3_app_read.cc.o.d"
  "bench_x3_app_read"
  "bench_x3_app_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_app_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
