# Empty compiler generated dependencies file for bench_x3_app_read.
# This may be replaced when dependencies are built.
