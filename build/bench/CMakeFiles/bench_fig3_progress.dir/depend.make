# Empty dependencies file for bench_fig3_progress.
# This may be replaced when dependencies are built.
