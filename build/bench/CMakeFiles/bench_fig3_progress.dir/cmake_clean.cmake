file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_progress.dir/bench_fig3_progress.cc.o"
  "CMakeFiles/bench_fig3_progress.dir/bench_fig3_progress.cc.o.d"
  "bench_fig3_progress"
  "bench_fig3_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
