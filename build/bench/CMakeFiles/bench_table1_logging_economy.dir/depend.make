# Empty dependencies file for bench_table1_logging_economy.
# This may be replaced when dependencies are built.
