file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_logging_economy.dir/bench_table1_logging_economy.cc.o"
  "CMakeFiles/bench_table1_logging_economy.dir/bench_table1_logging_economy.cc.o.d"
  "bench_table1_logging_economy"
  "bench_table1_logging_economy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_logging_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
