# Empty dependencies file for bench_x4_backup_throughput.
# This may be replaced when dependencies are built.
