file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_backup_throughput.dir/bench_x4_backup_throughput.cc.o"
  "CMakeFiles/bench_x4_backup_throughput.dir/bench_x4_backup_throughput.cc.o.d"
  "bench_x4_backup_throughput"
  "bench_x4_backup_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_backup_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
