// Experiment X8: media-recovery (restore) throughput on the shared
// transfer pipeline under device-shaped IO.
//
// Restore is the RTO side of the paper's story: after a media failure
// the stable database is rebuilt from B, and every second of the
// rebuild is downtime. The restore rides the same TransferPipeline as
// the backup sweep — batched multi-page runs, double-buffered prefetch,
// partition-sharded workers — and, being offline, has no fence protocol
// to respect, so batching and parallelism are pure throughput knobs.
// Like X7 this wraps MemEnv in a LatencyEnv with the HDD profile
// (2 ms seek, 4 ms sync, 100 MB/s) and shards 8 partitions across
// 1/2/4/8 restore workers:
//
//   BM_FullRestore/threads:T   — wipe S, restore a full backup, MB/s
//   BM_ChainRestore/threads:T  — wipe S, restore a full + 2-incremental
//                                chain (coalesced newest-wins apply)
//
// tools/benchrunner derives speedup_restore_tT = MB/s(T) / MB/s(1) from
// the full-restore family and tools/bench_check.py gates
// speedup_restore_t4 >= 2x (EXPERIMENTS.md X8).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPartitions = 8;
constexpr uint32_t kPages = 256;  // per partition
constexpr uint32_t kSteps = 8;

/// A database over LatencyEnv(MemEnv), as in X7: seeded and backed up
/// through the zero-latency base env (setup is not the measurement),
/// restored through the latency wrapper of the same MemEnv.
struct DeviceEngine {
  MemEnv base;
  LatencyEnv env;

  explicit DeviceEngine(const LatencyProfile& profile)
      : env(&base, profile) {}
};

std::unique_ptr<DeviceEngine> NewBackedUpEngine(
    const LatencyProfile& profile) {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = kSteps;

  auto engine = std::make_unique<DeviceEngine>(profile);
  std::unique_ptr<Database> db =
      CheckResult(Database::Open(&engine->base, "x8", options), "open");
  RegisterAllOps(db->registry());
  Check(db->Recover(), "recover");
  std::vector<std::unique_ptr<FileStore>> files;
  for (uint32_t p = 0; p < kPartitions; ++p) {
    files.push_back(std::make_unique<FileStore>(
        db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
        /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      Check(files[p]->WriteValues(f, {static_cast<int64_t>(p) * 1000 + f, 1}),
            "seed");
    }
  }
  Check(db->FlushAll(), "flush");
  Check(db->Checkpoint(), "checkpoint");
  // Drop the seed workload's log prefix: the restores under measurement
  // replay from the backups' scan start points, and every restore scans
  // the whole log file through the simulated device — a multi-megabyte
  // seed prefix would add a constant serial read that drowns the
  // parallel copy phase this experiment is about.
  Check(db->TruncateLog(kInvalidLsn), "truncate");
  Check(db->TakeBackup("x8_base").status(), "base backup");

  // Two delta rounds -> a 3-member chain with overlapping page sets
  // (files 0..31 of every partition change twice, so the coalesced
  // apply skips every superseded base/inc1 copy of them).
  for (int round = 1; round <= 2; ++round) {
    for (uint32_t p = 0; p < kPartitions; ++p) {
      for (uint32_t f = 0; f < kPages / 8; ++f) {
        Check(files[p]->WriteValues(f, {round, static_cast<int64_t>(f)}),
              "delta");
      }
    }
    Check(db->FlushAll(), "flush");
    Check(db->TakeIncrementalBackup("x8_inc" + std::to_string(round),
                                    round == 1 ? "x8_base" : "x8_inc1")
              .status(),
          "incremental");
  }
  // The full backup the gated BM_FullRestore family restores is taken at
  // the end of the log (cache drained), so its restore is copy-dominated
  // — RTO for "failure right after the latest full backup", the paper's
  // canonical media-recovery case.
  Check(db->FlushAll(), "flush");
  Check(db->TakeBackup("x8_full").status(), "full backup");
  Check(db->ForceLog(), "force");
  return engine;
}

void WipeStable(MemEnv* base) {
  std::unique_ptr<PageStore> stable = CheckResult(
      PageStore::Open(base, Database::StableName("x8"), kPartitions), "open S");
  for (PartitionId p = 0; p < kPartitions; ++p) {
    Check(stable->WipePartition(p), "wipe");
  }
}

void RunRestoreBench(benchmark::State& state, const std::string& chain) {
  std::unique_ptr<DeviceEngine> engine =
      NewBackedUpEngine(LatencyProfile::Hdd());
  OpRegistry registry;
  RegisterAllOps(&registry);

  RestoreOptions options;
  options.batch_pages = 32;  // the batched-sweep sweet spot, as in X7
  options.pipelined = true;
  options.threads = static_cast<uint32_t>(state.range(0));

  uint64_t pages_restored = 0;
  LatencyEnvStats before = engine->env.stats();
  for (auto _ : state) {
    // The media failure itself is not the measurement: wipe S through
    // the zero-latency base env outside the timed region.
    state.PauseTiming();
    WipeStable(&engine->base);
    state.ResumeTiming();
    MediaRecoveryReport report = CheckResult(
        RestoreFromBackupWithOptions(&engine->env,
                                     Database::StableName("x8"),
                                     Database::LogName("x8"), chain, registry,
                                     options),
        "restore");
    pages_restored += report.pages_restored;
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_restored) *
                          static_cast<int64_t>(kPageSize));
  double restores = static_cast<double>(state.iterations());
  state.counters["pages_restored"] =
      static_cast<double>(pages_restored) / restores;
  // Simulated device time per restore: roughly constant across thread
  // counts (the same IOs happen), while real_time shrinks — the overlap
  // is the speedup.
  LatencyEnvStats after = engine->env.stats();
  state.counters["device_us"] =
      static_cast<double>(after.simulated_us - before.simulated_us) /
      restores;
  state.counters["device_ops"] =
      static_cast<double>(after.ops - before.ops) / restores;
  state.counters["device_syncs"] =
      static_cast<double>(after.syncs - before.syncs) / restores;
}

void BM_FullRestore(benchmark::State& state) {
  RunRestoreBench(state, "x8_full");
}
BENCHMARK(BM_FullRestore)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Restore workers run on their own threads; only wall clock shows
    // the overlap.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ChainRestore(benchmark::State& state) {
  RunRestoreBench(state, "x8_inc2");
}
BENCHMARK(BM_ChainRestore)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
