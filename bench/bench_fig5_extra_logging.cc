// Reproduces Figure 5 of the paper: "The frequency (probability) with
// which extra logging is required for general and tree operations as a
// function of the number of backup steps."
//
// For each step count N, a backup runs over a database while a uniform
// update workload executes and flushes inside every step's doubt window
// (exactly the regime the section-5 analysis models: at step m the done /
// doubt / pending fractions are (m-1)/N, 1/N, 1-m/N). We measure the
// fraction of flushed objects that required Iw/oF identity-write logging
// and compare with the paper's closed forms:
//
//   general ops: Prob{log} = 1/2 (1 + 1/N)
//   tree ops:    Prob{log} = 1/6 + 1/(2N) - 1/(6N^2)
//
// The tree measurement is reported both restricted to objects with a
// successor (the model's |S(X)| = 1 assumption) and overall; the paper
// notes its analysis "surely overstates" real cost, which the overall
// column shows.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/harness.h"
#include "sim/workload.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

struct Sample {
  double general_measured = 0;
  double tree_succ_measured = 0;
  double tree_overall = 0;
  uint64_t general_decisions = 0;
  uint64_t tree_decisions = 0;
};

double GeneralModel(double n) { return 0.5 * (1.0 + 1.0 / n); }
double TreeModel(double n) {
  return 1.0 / 6.0 + 1.0 / (2.0 * n) - 1.0 / (6.0 * n * n);
}

double RunGeneral(uint32_t steps, uint32_t ops_per_step, uint64_t seed,
                  uint64_t* decisions) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 512;
  options.cache_pages = 700;  // hold the working set; flushes are explicit
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  GeneralUniformDriver driver(engine->db(), 0, 512, seed);

  // Warm up outside the backup (no extra logging is charged then).
  for (int i = 0; i < 200; ++i) Check(driver.Step(), "warmup");
  engine->db()->ResetStats();

  BackupJobOptions job;
  job.steps = steps;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (uint32_t i = 0; i < ops_per_step; ++i) {
      LLB_RETURN_IF_ERROR(driver.Step());
    }
    return Status::OK();
  };
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");
  DbStats stats = engine->db()->GatherStats();
  *decisions = stats.cache.decisions;
  return stats.ExtraLoggingProbability();
}

void RunTree(uint32_t steps, uint32_t ops_per_step, uint64_t seed,
             Sample* sample) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 16384;
  options.cache_pages = 512;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  TreeUniformDriver driver(engine->db(), 0, 16384, seed);

  for (int i = 0; i < 100; ++i) Check(driver.Step(), "warmup");
  engine->db()->ResetStats();

  BackupJobOptions job;
  job.steps = steps;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (uint32_t i = 0; i < ops_per_step; ++i) {
      LLB_RETURN_IF_ERROR(driver.Step());
    }
    return Status::OK();
  };
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");
  DbStats stats = engine->db()->GatherStats();
  sample->tree_decisions = stats.cache.decisions_succ;
  sample->tree_succ_measured =
      stats.cache.decisions_succ == 0
          ? 0.0
          : static_cast<double>(stats.cache.decisions_succ_logged) /
                static_cast<double>(stats.cache.decisions_succ);
  sample->tree_overall = stats.ExtraLoggingProbability();
}

void Main() {
  const std::vector<uint32_t> step_counts = {1, 2, 3, 4, 6, 8, 12, 16, 32, 64};
  const int trials = 5;

  benchutil::PrintHeader(
      "Figure 5: Prob{extra logging per flush} vs number of backup steps");
  printf("%5s  %12s %12s  %12s %12s  %12s\n", "N", "general_meas",
         "general_model", "tree_meas", "tree_model", "tree_overall");

  std::vector<double> general_curve, tree_curve;
  for (uint32_t n : step_counts) {
    Sample avg;
    for (int t = 0; t < trials; ++t) {
      uint64_t seed = 1000 + 77 * t + n;
      uint64_t decisions = 0;
      // Keep total flushes comparable across N: ~960 decisions per trial.
      uint32_t general_ops = 960 / n + 1;
      avg.general_measured += RunGeneral(n, general_ops, seed, &decisions);
      avg.general_decisions += decisions;
      Sample s;
      uint32_t tree_ops = 480 / n + 1;
      RunTree(n, tree_ops, seed, &s);
      avg.tree_succ_measured += s.tree_succ_measured;
      avg.tree_overall += s.tree_overall;
      avg.tree_decisions += s.tree_decisions;
    }
    avg.general_measured /= trials;
    avg.tree_succ_measured /= trials;
    avg.tree_overall /= trials;
    printf("%5u  %12.4f %12.4f  %12.4f %12.4f  %12.4f\n", n,
           avg.general_measured, GeneralModel(n), avg.tree_succ_measured,
           TreeModel(n), avg.tree_overall);
    general_curve.push_back(avg.general_measured);
    tree_curve.push_back(avg.tree_succ_measured);
  }

  // Section 5.3's claims.
  benchutil::PrintHeader("Section 5.3 checks");
  double g1 = general_curve.front(), g8 = 0, ginf = general_curve.back();
  double t1 = tree_curve.front(), t8 = 0, tinf = tree_curve.back();
  for (size_t i = 0; i < step_counts.size(); ++i) {
    if (step_counts[i] == 8) {
      g8 = general_curve[i];
      t8 = tree_curve[i];
    }
  }
  printf("general: N=1 %.3f (model 1.000), N=8 %.3f (model %.3f), "
         "N=64 %.3f (model %.3f)\n",
         g1, g8, GeneralModel(8), ginf, GeneralModel(64));
  printf("tree:    N=1 %.3f (model %.3f), N=8 %.3f (model %.3f), "
         "N=64 %.3f (model %.3f)\n",
         t1, TreeModel(1), t8, TreeModel(8), tinf, TreeModel(64));
  printf("\"most of the reduction (almost 90%%) ... with an eight step "
         "backup\":\n");
  printf("  general: %.0f%% of the N=1 -> N=64 drop attained at N=8\n",
         100.0 * (g1 - g8) / (g1 - ginf));
  printf("  tree:    %.0f%% of the N=1 -> N=64 drop attained at N=8\n",
         100.0 * (t1 - t8) / (t1 - tinf));
  printf("tree ops cut extra logging vs general ops by %.0f%%-%.0f%% "
         "(paper: \"between half and two thirds\")\n",
         100.0 * (1.0 - t1 / g1), 100.0 * (1.0 - tinf / ginf));
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
