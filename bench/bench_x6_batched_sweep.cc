// Experiment X6: batched/pipelined backup sweep throughput.
//
// The legacy sweep moves one page per store-latch round trip and device
// IO (and pays two CRC passes per page: verify on read, re-seal on
// write). The batched sweep (BackupJobOptions::batch_pages = K) moves
// maximal contiguous runs of up to K pages with one ReadRun / one
// WriteSealedRun each — one latch acquisition, one vectored IO, one
// durability round trip, and a single CRC pass per page (sealed bytes
// are copied raw). `pipelined` adds double-buffered prefetch: the reader
// fills run N+1 while the writer flushes run N to B.
//
//   BM_BatchedSweep/batch:K/pipelined:P   — quiesced full-sweep MB/s
//   BM_BatchedSweepOnline/batch:K         — sweep MB/s with mid-step
//                                           updates (fence traffic and
//                                           identity writes live)
//
// Counters (see tools/benchrunner, which aggregates them into
// BENCH_backup.json): fence_updates, latch_acquisitions (2 per page
// legacy, 1 per run batched), read/write_batches, read/write_stage_us
// per sweep, identity_writes per sweep for the online variant.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPages = 2048;
constexpr uint32_t kSteps = 8;

std::unique_ptr<TestEngine> NewLoadedEngine(FileStore** files_out) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = kSteps;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  // One-page files covering the whole store, so the sweep reads real
  // sealed pages rather than zero-page holes.
  auto* files = new FileStore(engine->db(), /*partition=*/0, /*base_page=*/0,
                              /*pages_per_file=*/1, /*num_files=*/kPages);
  for (uint32_t f = 0; f < kPages; ++f) {
    Check(files->WriteValues(f, {static_cast<int64_t>(f), 1}), "seed");
  }
  Check(engine->db()->FlushAll(), "flush");
  Check(engine->db()->Checkpoint(), "checkpoint");
  *files_out = files;
  return engine;
}

void ReportSweepCounters(benchmark::State& state, const BackupJobStats& stats,
                         double sweeps) {
  state.counters["fence_updates"] =
      static_cast<double>(stats.fence_updates) / sweeps;
  // Store-latch economics: the legacy path locks twice per page (read +
  // write); the batched path locks once per run per side.
  double latches =
      stats.read_batches == 0
          ? 2.0 * static_cast<double>(stats.pages_copied)
          : static_cast<double>(stats.read_batches + stats.write_batches);
  state.counters["latch_acquisitions"] = latches / sweeps;
  state.counters["read_batches"] =
      static_cast<double>(stats.read_batches) / sweeps;
  state.counters["write_batches"] =
      static_cast<double>(stats.write_batches) / sweeps;
  state.counters["read_stage_us"] =
      static_cast<double>(stats.read_stage_us) / sweeps;
  state.counters["write_stage_us"] =
      static_cast<double>(stats.write_stage_us) / sweeps;
}

void BM_BatchedSweep(benchmark::State& state) {
  FileStore* files = nullptr;
  std::unique_ptr<TestEngine> engine = NewLoadedEngine(&files);
  std::unique_ptr<FileStore> files_owner(files);

  BackupJobOptions job;
  job.steps = kSteps;
  job.batch_pages = static_cast<uint32_t>(state.range(0));
  job.pipelined = state.range(1) != 0;

  BackupJobStats total;
  int round = 0;
  for (auto _ : state) {
    BackupJobStats stats;
    Check(engine->db()
              ->TakeBackupWithOptions("x6_" + std::to_string(round++), job,
                                      &stats)
              .status(),
          "backup");
    total.pages_copied += stats.pages_copied;
    total.fence_updates += stats.fence_updates;
    total.read_batches += stats.read_batches;
    total.write_batches += stats.write_batches;
    total.read_stage_us += stats.read_stage_us;
    total.write_stage_us += stats.write_stage_us;
  }
  state.SetBytesProcessed(static_cast<int64_t>(total.pages_copied) *
                          static_cast<int64_t>(kPageSize));
  ReportSweepCounters(state, total, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BatchedSweep)
    ->ArgNames({"batch", "pipelined"})
    ->Args({1, 0})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    // Wall-clock rates: the pipelined prefetch runs on a helper thread,
    // so CPU-time rates would overstate its throughput.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BatchedSweepOnline(benchmark::State& state) {
  FileStore* files = nullptr;
  std::unique_ptr<TestEngine> engine = NewLoadedEngine(&files);
  std::unique_ptr<FileStore> files_owner(files);

  BackupJobOptions job;
  job.steps = kSteps;
  job.batch_pages = static_cast<uint32_t>(state.range(0));
  job.pipelined = state.range(0) > 1;
  // Deterministic "concurrency": each step, update and flush files spread
  // across the store, so flushes land in every fence region and the
  // batched path is measured with live identity-write traffic.
  uint32_t tick = 0;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 8; ++i) {
      uint32_t f = (tick * 131 + static_cast<uint32_t>(i) * 257) % kPages;
      LLB_RETURN_IF_ERROR(
          files->WriteValues(f, {static_cast<int64_t>(f), 2}));
      LLB_RETURN_IF_ERROR(engine->db()->FlushPage(files->PagesOf(f)[0]));
    }
    ++tick;
    return Status::OK();
  };

  BackupJobStats total;
  uint64_t identity_before = engine->db()->GatherStats().cache.identity_writes;
  int round = 0;
  for (auto _ : state) {
    BackupJobStats stats;
    Check(engine->db()
              ->TakeBackupWithOptions("x6on_" + std::to_string(round++), job,
                                      &stats)
              .status(),
          "backup");
    total.pages_copied += stats.pages_copied;
    total.fence_updates += stats.fence_updates;
    total.read_batches += stats.read_batches;
    total.write_batches += stats.write_batches;
    total.read_stage_us += stats.read_stage_us;
    total.write_stage_us += stats.write_stage_us;
  }
  uint64_t identity_after = engine->db()->GatherStats().cache.identity_writes;
  state.SetBytesProcessed(static_cast<int64_t>(total.pages_copied) *
                          static_cast<int64_t>(kPageSize));
  double sweeps = static_cast<double>(state.iterations());
  ReportSweepCounters(state, total, sweeps);
  state.counters["identity_writes"] =
      static_cast<double>(identity_after - identity_before) / sweeps;
}
BENCHMARK(BM_BatchedSweepOnline)
    ->ArgNames({"batch"})
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
