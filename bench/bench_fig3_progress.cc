// Reproduces Figure 3 of the paper: "Tracking backup progress." At each
// step m of an N-step backup, the backup order splits into
//   done  = (m-1)/N    (below D: already copied to B)
//   doubt = 1/N        (between D and P: being copied)
//   pend  = 1-m/N      (above P: definitely not yet copied)
// We take a real backup over a populated database and, inside every
// step's doubt window, classify every page position under the backup
// latch, comparing the measured fractions with the model.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/harness.h"
#include "sim/workload.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

void Main() {
  constexpr uint32_t kPages = 1200;
  constexpr uint32_t kSteps = 8;

  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");

  // Populate.
  GeneralUniformDriver driver(engine->db(), 0, kPages, /*seed=*/7);
  for (int i = 0; i < 400; ++i) Check(driver.Step(), "populate");
  Check(engine->db()->FlushAll(), "flush");

  benchutil::PrintHeader("Figure 3: backup progress regions per step (N=8)");
  printf("%5s  %10s %10s  %10s %10s  %10s %10s\n", "m", "done_meas",
         "done_model", "doubt_meas", "doubt_model", "pend_meas",
         "pend_model");

  BackupJobOptions job;
  job.steps = kSteps;
  job.mid_step = [&](PartitionId partition, uint32_t m) -> Status {
    BackupProgress* progress = engine->db()->coordinator()->Get(partition);
    uint64_t done = 0, doubt = 0, pend = 0;
    {
      std::shared_lock<std::shared_mutex> latch(progress->latch());
      for (uint32_t page = 0; page < kPages; ++page) {
        switch (progress->Classify(page)) {
          case BackupRegion::kDone:
            ++done;
            break;
          case BackupRegion::kDoubt:
            ++doubt;
            break;
          case BackupRegion::kPend:
            ++pend;
            break;
        }
      }
    }
    double n = kSteps;
    printf("%5u  %10.4f %10.4f  %10.4f %10.4f  %10.4f %10.4f\n", m,
           double(done) / kPages, (m - 1) / n, double(doubt) / kPages,
           1.0 / n, double(pend) / kPages, 1.0 - m / n);
    return Status::OK();
  };
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");

  // After completion, everything is pending again (between backups).
  BackupProgress* progress = engine->db()->coordinator()->Get(0);
  printf("\nafter completion: active=%s (reset to D = P = Min; every object "
         "pending)\n",
         progress->active() ? "true" : "false");
  printf("fence updates (exclusive latch acquisitions) for the run: %llu\n",
         static_cast<unsigned long long>(
             engine->db()->GatherStats().backup_fence_updates));
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
