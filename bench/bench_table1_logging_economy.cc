// Quantifies Table 1 / section 1.1: the logging economy of logical
// operations. "The key to the logging economy of logical operations is
// that we can log operand identifiers instead of operand data values."
//
// For each operation family we execute the same state change twice — once
// logged logically, once logged page-oriented (physical/physiological) —
// and report the bytes appended to the recovery log.

#include <cstdio>
#include <string>
#include <vector>

#include "apprec/app_recovery.h"
#include "bench/bench_util.h"
#include "btree/btree.h"
#include "filestore/filestore.h"
#include "ops/operation.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

std::unique_ptr<TestEngine> NewEngine(WriteGraphKind graph) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 8192;
  options.cache_pages = 1024;
  options.graph = graph;
  options.backup_policy = BackupPolicy::kNaive;  // no backup: pure op cost
  return CheckResult(TestEngine::Create(options), "create");
}

uint64_t LogBytes(TestEngine* engine) {
  return engine->db()->GatherStats().log.bytes;
}

void Row(const char* name, uint64_t logical, uint64_t physical) {
  printf("%-34s %14llu %16llu %9.1fx\n", name,
         static_cast<unsigned long long>(logical),
         static_cast<unsigned long long>(physical),
         logical == 0 ? 0.0 : double(physical) / double(logical));
}

void BtreeSplits() {
  uint64_t bytes[2];
  int i = 0;
  for (SplitLogging mode :
       {SplitLogging::kLogical, SplitLogging::kPageOriented}) {
    std::unique_ptr<TestEngine> engine =
        NewEngine(mode == SplitLogging::kLogical ? WriteGraphKind::kTree
                                                 : WriteGraphKind::kGeneral);
    BTree tree(engine->db(), 0, 0, mode);
    Check(tree.Create(), "create tree");
    uint64_t before = LogBytes(engine.get());
    // Fill one leaf then split it repeatedly via sequential inserts.
    for (int64_t k = 0; k < 4000; ++k) {
      Check(tree.Insert(k, Slice("value-of-fixed-len")), "insert");
    }
    uint64_t after = LogBytes(engine.get());
    // Charge only the split-related surplus: subtract the per-insert cost
    // measured on a no-split baseline? Simpler and honest: report total
    // bytes for the identical insert history; inserts log identically in
    // both modes, so the delta is pure split logging.
    bytes[i++] = after - before;
  }
  Row("B-tree: 4000 inserts (with splits)", bytes[0], bytes[1]);
}

void FileCopies() {
  // Logical: Copy(X, Y) logs operand ids. Page-oriented: each target page
  // is logged as a physical write with its full contents.
  std::unique_ptr<TestEngine> logical = NewEngine(WriteGraphKind::kGeneral);
  FileStore files_l(logical->db(), 0, 0, /*pages_per_file=*/8, 16);
  std::vector<int64_t> data(3500);
  for (size_t i = 0; i < data.size(); ++i) data[i] = int64_t(i * 31 % 977);
  Check(files_l.WriteValues(0, data), "seed");
  uint64_t before = LogBytes(logical.get());
  for (int r = 0; r < 10; ++r) Check(files_l.Copy(0, 1 + r % 8), "copy");
  uint64_t logical_bytes = LogBytes(logical.get()) - before;

  std::unique_ptr<TestEngine> physical = NewEngine(WriteGraphKind::kGeneral);
  FileStore files_p(physical->db(), 0, 0, 8, 16);
  Check(files_p.WriteValues(0, data), "seed");
  before = LogBytes(physical.get());
  for (int r = 0; r < 10; ++r) {
    // Page-oriented copy: read source pages, log full images into target.
    std::vector<int64_t> v = CheckResult(files_p.ReadValues(0), "read");
    Check(files_p.WriteValues(1 + r % 8, v), "physical copy");
  }
  uint64_t physical_bytes = LogBytes(physical.get()) - before;
  Row("File copy: 10 x 8-page file", logical_bytes, physical_bytes);
}

void FileSorts() {
  std::unique_ptr<TestEngine> logical = NewEngine(WriteGraphKind::kGeneral);
  FileStore files_l(logical->db(), 0, 0, 8, 4);
  std::vector<int64_t> data(3500);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = int64_t((i * 7919) % 100003);
  }
  Check(files_l.WriteValues(0, data), "seed");
  uint64_t before = LogBytes(logical.get());
  Check(files_l.SortInto(0, 1), "sort");
  uint64_t logical_bytes = LogBytes(logical.get()) - before;

  std::unique_ptr<TestEngine> physical = NewEngine(WriteGraphKind::kGeneral);
  FileStore files_p(physical->db(), 0, 0, 8, 4);
  Check(files_p.WriteValues(0, data), "seed");
  before = LogBytes(physical.get());
  std::vector<int64_t> sorted = CheckResult(files_p.ReadValues(0), "read");
  std::sort(sorted.begin(), sorted.end());
  Check(files_p.WriteValues(1, sorted), "physical sort");
  uint64_t physical_bytes = LogBytes(physical.get()) - before;
  Row("File sort: 8-page file", logical_bytes, physical_bytes);
}

void AppOps() {
  // Logical: R(X, A) logs only the operand ids. Page-oriented: the new
  // application state page would be logged physically after every read.
  std::unique_ptr<TestEngine> logical = NewEngine(WriteGraphKind::kTree);
  AppRecovery apps_l(logical->db(), 0, 0, 256, 8000, 4);
  Check(apps_l.InitApp(0), "init");
  for (int i = 0; i < 64; ++i) Check(apps_l.WriteMessage(i, i * 13), "msg");
  uint64_t before = LogBytes(logical.get());
  for (int i = 0; i < 200; ++i) {
    Check(apps_l.Read(0, i % 64), "R(X,A)");
    Check(apps_l.Exec(0, i), "Ex(A)");
  }
  uint64_t logical_bytes = LogBytes(logical.get()) - before;

  std::unique_ptr<TestEngine> physical = NewEngine(WriteGraphKind::kTree);
  AppRecovery apps_p(physical->db(), 0, 0, 256, 8000, 4);
  Check(apps_p.InitApp(0), "init");
  for (int i = 0; i < 64; ++i) Check(apps_p.WriteMessage(i, i * 13), "msg");
  before = LogBytes(physical.get());
  for (int i = 0; i < 200; ++i) {
    // Page-oriented application logging: run the op, then physically log
    // the resulting state page (what a system without logical ops does).
    Check(apps_p.Read(0, i % 64), "R");
    Check(apps_p.Exec(0, i), "Ex");
    PageImage state;
    Check(physical->db()->ReadPage(apps_p.AppPage(0), &state), "read");
    LogRecord rec = MakePhysicalWrite(apps_p.AppPage(0), state);
    Check(physical->db()->Execute(&rec), "W_P(A)");
  }
  uint64_t physical_bytes = LogBytes(physical.get()) - before;
  Row("App recovery: 200 x (R + Ex)", logical_bytes, physical_bytes);
}

}  // namespace
}  // namespace llb

int main() {
  llb::benchutil::PrintHeader(
      "Table 1 / section 1.1: log bytes, logical vs page-oriented");
  printf("%-34s %14s %16s %9s\n", "operation family", "logical_bytes",
         "page_oriented", "ratio");
  llb::BtreeSplits();
  llb::FileCopies();
  llb::FileSorts();
  llb::AppOps();
  printf("\n\"logging an identifier (unlikely to be larger than 16 bytes) "
         "is a great saving\" (paper 1.1)\n");
  return 0;
}
