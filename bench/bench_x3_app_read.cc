// Experiment X3 (paper section 6.2, Application Read Operations and
// Backup): "If applications are the last objects included in a backup, we
// guarantee that the dagger property holds ..., and no Iw/oF logging is
// incurred for backup."
//
// The same application-recovery workload (messages written physically,
// R(X, A) and Ex(A) logged logically) runs during a backup twice:
// applications placed LAST in the backup order vs FIRST. Expect zero
// identity writes for apps-last, nonzero for apps-first.

#include <cstdio>
#include <memory>

#include "apprec/app_recovery.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

struct RunResult {
  uint64_t decisions = 0;
  uint64_t identity_writes = 0;
};

RunResult Run(bool apps_last, uint32_t steps) {
  constexpr uint32_t kPages = 2048;
  constexpr uint32_t kMsgs = 512;
  constexpr uint32_t kApps = 16;

  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 1024;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");

  uint32_t msg_base = apps_last ? 0 : kApps;
  uint32_t app_base = apps_last ? kPages - kApps : 0;
  AppRecovery apps(engine->db(), 0, msg_base, kMsgs, app_base, kApps);
  for (uint32_t a = 0; a < kApps; ++a) Check(apps.InitApp(a), "init");
  Check(engine->db()->FlushAll(), "flush");
  engine->db()->ResetStats();

  Random rng(apps_last ? 5 : 6);
  BackupJobOptions job;
  job.steps = steps;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 80; ++i) {
      uint32_t app = static_cast<uint32_t>(rng.Uniform(kApps));
      uint32_t msg = static_cast<uint32_t>(rng.Uniform(kMsgs));
      LLB_RETURN_IF_ERROR(apps.WriteMessage(msg, rng.Next()));
      LLB_RETURN_IF_ERROR(apps.Read(app, msg));
      LLB_RETURN_IF_ERROR(apps.Exec(app, rng.Next()));
      // Flush both the message and the app state, exercising the
      // decision path for each.
      LLB_RETURN_IF_ERROR(engine->db()->FlushPage(apps.AppPage(app)));
      LLB_RETURN_IF_ERROR(engine->db()->FlushPage(apps.MsgPage(msg)));
    }
    return Status::OK();
  };
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");
  DbStats stats = engine->db()->GatherStats();
  return RunResult{stats.cache.decisions, stats.cache.identity_writes};
}

void Main() {
  benchutil::PrintHeader(
      "X3 (paper 6.2): application read ops — backup order ablation");
  printf("%-12s %6s %12s %16s %10s\n", "layout", "steps", "decisions",
         "identity_writes", "p_log");
  for (uint32_t steps : {1u, 4u, 8u}) {
    for (bool apps_last : {true, false}) {
      RunResult r = Run(apps_last, steps);
      printf("%-12s %6u %12llu %16llu %10.4f\n",
             apps_last ? "apps-last" : "apps-first", steps,
             static_cast<unsigned long long>(r.decisions),
             static_cast<unsigned long long>(r.identity_writes),
             r.decisions ? double(r.identity_writes) / r.decisions : 0.0);
    }
  }
  printf("\nexpected: apps-last incurs ZERO Iw/oF logging (the dagger "
         "property always holds);\napps-first pays for every "
         "application-state flush whose messages are still pending.\n");
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
