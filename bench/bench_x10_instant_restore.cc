// Experiment X10: instant restore — time to first transaction (TTFT)
// and transaction throughput while media recovery runs underneath.
//
// X8 measures how fast an off-line restore rebuilds S; this experiment
// measures how long the *database* is down. With off-line restore the
// answer is "the whole rebuild": no transaction runs until every page is
// back. With instant restore (Database::OpenRestoring) the database
// opens over the wiped store immediately — the first transaction waits
// only for the chain manifests, the log-slice snapshot, and the one
// influence closure it faults in — while a background sweep fills in the
// rest. Same device model as X7/X8: MemEnv wrapped in a LatencyEnv with
// the HDD profile (2 ms seek, 4 ms sync, 100 MB/s), 8 partitions x 256
// pages:
//
//   BM_OfflineRestoreTTFT/threads:T — wipe S, full off-line restore
//                                     (batch 32, pipelined, T workers),
//                                     open, recover, first read
//   BM_InstantRestoreTTFT           — wipe S, OpenRestoring, recover,
//                                     first read (faults its closure)
//   BM_TransactionsDuringRestore    — transactions/s sustained while the
//                                     background sweep drains, faults
//                                     and sweep steps interleaved
//
// tools/benchrunner derives ttft_speedup = offline-TTFT(t1) /
// instant-TTFT and tools/bench_check.py gates it at >= 10x
// (EXPERIMENTS.md X10). The transactions-during-restore rate is
// reported raw: its off-line counterpart is identically zero.
//
// The binary also asserts (once, through the zero-latency base env)
// that a drained instant restore leaves S byte-identical to what the
// off-line restore produces — the speedup is not buying a different
// answer.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "io/durable_cursor.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPartitions = 8;
constexpr uint32_t kPages = 256;  // per partition
constexpr uint32_t kSteps = 8;
constexpr char kDbName[] = "x10";
constexpr char kBackupName[] = "x10_full";

DbOptions X10Options() {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = kSteps;
  options.restore_batch_pages = 32;  // the batched-IO sweet spot, as in X8
  return options;
}

/// A database over LatencyEnv(MemEnv), as in X7/X8: seeded and backed up
/// through the zero-latency base env (setup is not the measurement),
/// restored through the latency wrapper of the same MemEnv.
struct DeviceEngine {
  MemEnv base;
  LatencyEnv env;

  explicit DeviceEngine(const LatencyProfile& profile)
      : env(&base, profile) {}
};

std::unique_ptr<DeviceEngine> NewBackedUpEngine(
    const LatencyProfile& profile) {
  DbOptions options = X10Options();
  auto engine = std::make_unique<DeviceEngine>(profile);
  std::unique_ptr<Database> db =
      CheckResult(Database::Open(&engine->base, kDbName, options), "open");
  RegisterAllOps(db->registry());
  Check(db->Recover(), "recover");
  std::vector<std::unique_ptr<FileStore>> files;
  for (uint32_t p = 0; p < kPartitions; ++p) {
    files.push_back(std::make_unique<FileStore>(
        db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
        /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      Check(files[p]->WriteValues(f, {static_cast<int64_t>(p) * 1000 + f, 1}),
            "seed");
    }
  }
  Check(db->FlushAll(), "flush");
  Check(db->Checkpoint(), "checkpoint");
  // Drop the seed workload's log prefix, as in X8: every restore under
  // measurement scans the log from the backup's start point, and a
  // multi-megabyte seed prefix would add a constant serial read that
  // drowns the effect being measured.
  Check(db->TruncateLog(kInvalidLsn), "truncate");
  Check(db->TakeBackup(kBackupName).status(), "backup");

  // Post-backup updates form the media-recovery slice both restores
  // roll forward through. Copies create logical cross-page dependencies,
  // so instant-restore faults pay real (small) influence closures, not
  // just singleton physical replays.
  for (uint32_t p = 0; p < kPartitions; ++p) {
    for (uint32_t f = 0; f < 16; ++f) {
      Check(files[p]->WriteValues(f, {static_cast<int64_t>(f), 2}), "update");
      Check(files[p]->Copy(f, f + 16), "copy");
    }
  }
  Check(db->FlushAll(), "flush");
  Check(db->ForceLog(), "force");
  return engine;
}

void WipeStable(MemEnv* base) {
  std::unique_ptr<PageStore> stable =
      CheckResult(PageStore::Open(base, Database::StableName(kDbName),
                                  kPartitions),
                  "open S");
  for (PartitionId p = 0; p < kPartitions; ++p) {
    Check(stable->WipePartition(p), "wipe");
  }
}

/// Discards an abandoned instant restore between iterations: drop the
/// handle, remove the restored-bitmap cell, wipe S — all through the
/// zero-latency base env, outside the timed region.
void ResetForNextRestore(DeviceEngine* engine, std::unique_ptr<Database>* db) {
  db->reset();
  Status removed = DurableCursor::Remove(&engine->base,
                                         Database::RestoreBitmapName(kDbName));
  if (!removed.ok() && !removed.IsNotFound()) Check(removed, "remove bitmap");
  WipeStable(&engine->base);
}

/// One-shot equivalence check (zero-latency base env): a drained instant
/// restore must leave S byte-identical to the off-line restore.
void CheckInstantMatchesOffline(DeviceEngine* engine) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.batch_pages = 32;
  WipeStable(&engine->base);
  Check(RestoreFromBackupWithOptions(&engine->base,
                                     Database::StableName(kDbName),
                                     Database::LogName(kDbName), kBackupName,
                                     registry, restore)
            .status(),
        "offline restore");
  std::unique_ptr<PageStore> stable =
      CheckResult(PageStore::Open(&engine->base, Database::StableName(kDbName),
                                  kPartitions),
                  "open S");
  std::vector<std::string> offline_pages;
  offline_pages.reserve(uint64_t{kPartitions} * kPages);
  for (PartitionId p = 0; p < kPartitions; ++p) {
    for (uint32_t page = 0; page < kPages; ++page) {
      PageImage image;
      Check(stable->ReadPage(PageId{p, page}, &image), "read offline");
      offline_pages.push_back(image.raw_string());
    }
  }
  stable.reset();

  WipeStable(&engine->base);
  std::unique_ptr<Database> db = CheckResult(
      Database::OpenRestoring(&engine->base, kDbName, X10Options(),
                              kBackupName),
      "open restoring");
  RegisterAllOps(db->registry());
  Check(db->Recover(), "recover restoring");
  PageImage first;
  Check(db->ReadPage(PageId{0, 0}, &first), "fault");
  Check(db->FinishRestore(), "finish");
  db.reset();

  stable = CheckResult(PageStore::Open(&engine->base,
                                       Database::StableName(kDbName),
                                       kPartitions),
                       "open S");
  size_t index = 0;
  for (PartitionId p = 0; p < kPartitions; ++p) {
    for (uint32_t page = 0; page < kPages; ++page, ++index) {
      PageImage image;
      Check(stable->ReadPage(PageId{p, page}, &image), "read instant");
      if (image.raw_string() != offline_pages[index]) {
        fprintf(stderr,
                "FATAL: instant restore diverges from offline restore at "
                "page (%u,%u)\n",
                static_cast<unsigned>(p), page);
        abort();
      }
    }
  }
}

// TTFT of the off-line procedure: nothing runs until the whole store is
// rebuilt, so the first transaction pays the full restore (the tuned
// pipeline: batch 32, prefetch, T workers) plus open + crash recovery.
void BM_OfflineRestoreTTFT(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine =
      NewBackedUpEngine(LatencyProfile::Hdd());
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions restore;
  restore.batch_pages = 32;
  restore.pipelined = true;
  restore.threads = static_cast<uint32_t>(state.range(0));
  std::unique_ptr<Database> db;
  for (auto _ : state) {
    state.PauseTiming();
    ResetForNextRestore(engine.get(), &db);
    state.ResumeTiming();
    Check(RestoreFromBackupWithOptions(&engine->env,
                                       Database::StableName(kDbName),
                                       Database::LogName(kDbName), kBackupName,
                                       registry, restore)
              .status(),
          "restore");
    db = CheckResult(Database::Open(&engine->env, kDbName, X10Options()),
                     "open");
    RegisterAllOps(db->registry());
    Check(db->Recover(), "recover");
    PageImage first;
    Check(db->ReadPage(PageId{0, 0}, &first), "first read");
  }
}
BENCHMARK(BM_OfflineRestoreTTFT)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// TTFT of instant restore: OpenRestoring + crash recovery + the first
// read, which faults its influence closure in from the backup chain.
// The rest of the store is still unrestored when the iteration ends —
// that is the point; the background drain is measured separately.
void BM_InstantRestoreTTFT(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine =
      NewBackedUpEngine(LatencyProfile::Hdd());
  std::unique_ptr<Database> db;
  uint64_t restored_at_first = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ResetForNextRestore(engine.get(), &db);
    state.ResumeTiming();
    db = CheckResult(Database::OpenRestoring(&engine->env, kDbName,
                                             X10Options(), kBackupName),
                     "open restoring");
    RegisterAllOps(db->registry());
    Check(db->Recover(), "recover");
    PageImage first;
    Check(db->ReadPage(PageId{0, 0}, &first), "first read");
    restored_at_first += db->restore_status().pages_restored;
  }
  state.counters["pages_restored_at_first_txn"] =
      static_cast<double>(restored_at_first) /
      static_cast<double>(state.iterations());
  ResetForNextRestore(engine.get(), &db);
}
BENCHMARK(BM_InstantRestoreTTFT)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Transaction throughput while the restore drains: the workload keeps
// writing (each write faults its pages' closures on demand) interleaved
// with background RestoreStep batches until every page is back. The
// off-line counterpart of this number is identically zero.
void BM_TransactionsDuringRestore(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine =
      NewBackedUpEngine(LatencyProfile::Hdd());
  static std::atomic<bool> equivalence_checked{false};
  if (!equivalence_checked.exchange(true)) {
    CheckInstantMatchesOffline(engine.get());
  }
  std::unique_ptr<Database> db;
  uint64_t transactions = 0;
  uint64_t faulted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ResetForNextRestore(engine.get(), &db);
    db = CheckResult(Database::OpenRestoring(&engine->env, kDbName,
                                             X10Options(), kBackupName),
                     "open restoring");
    RegisterAllOps(db->registry());
    Check(db->Recover(), "recover");
    state.ResumeTiming();
    FileStore files(db.get(), /*partition=*/0, /*base_page=*/0,
                    /*pages_per_file=*/1, /*num_files=*/kPages);
    uint32_t next = 0;
    while (db->restoring()) {
      for (int i = 0; i < 4; ++i, ++next) {
        uint32_t f = next % 64;
        Check(files.WriteValues(f, {static_cast<int64_t>(f), 3}), "write");
        ++transactions;
      }
      CheckResult(db->RestoreStep(), "step");
    }
    faulted += db->restore_status().pages_faulted;
    Check(db->FlushAll(), "flush");
  }
  state.SetItemsProcessed(static_cast<int64_t>(transactions));
  ResetForNextRestore(engine.get(), &db);
}
BENCHMARK(BM_TransactionsDuringRestore)
    // Fixed iteration count: transactions append to the log, and the
    // next iteration's restore replays that slice — unbounded iteration
    // growth would skew later iterations.
    ->Iterations(3)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
