// Ablation X5: the synchronization-granularity trade-off of paper 3.4 —
// "we can vary the granularity of synchronization from twice per backup
// ... to many times, depending on the urgency to reduce the additional
// logging activity".
//
// More steps mean finer fences (less Iw/oF logging, Figure 5) but more
// exclusive acquisitions of the backup latch and more synchronization
// with the cache manager. This harness sweeps N and reports both sides
// of the trade plus backup wall time, for the general and tree policies.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/harness.h"
#include "sim/workload.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

struct Row {
  uint64_t fence_updates = 0;
  uint64_t identity_writes = 0;
  uint64_t identity_bytes = 0;
  uint64_t total_log_bytes = 0;
  double backup_ms = 0;
};

Row RunOnce(BackupPolicy policy, WriteGraphKind graph, uint32_t steps,
            uint64_t seed) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 4096;
  options.cache_pages = 1024;
  options.graph = graph;
  options.backup_policy = policy;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");

  std::unique_ptr<GeneralUniformDriver> general;
  std::unique_ptr<TreeUniformDriver> tree;
  if (policy == BackupPolicy::kGeneral) {
    general = std::make_unique<GeneralUniformDriver>(engine->db(), 0, 4096,
                                                     seed);
    for (int i = 0; i < 100; ++i) Check(general->Step(), "warm");
  } else {
    tree = std::make_unique<TreeUniformDriver>(engine->db(), 0, 4096, seed);
    for (int i = 0; i < 50; ++i) Check(tree->Step(), "warm");
  }
  engine->db()->ResetStats();

  BackupJobOptions job;
  job.steps = steps;
  uint32_t ops_per_step = 512 / steps + 1;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (uint32_t i = 0; i < ops_per_step; ++i) {
      if (general) {
        LLB_RETURN_IF_ERROR(general->Step());
      } else {
        LLB_RETURN_IF_ERROR(tree->Step());
      }
    }
    return Status::OK();
  };
  auto t0 = std::chrono::steady_clock::now();
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");
  auto t1 = std::chrono::steady_clock::now();

  DbStats stats = engine->db()->GatherStats();
  Row row;
  row.fence_updates = stats.backup_fence_updates;
  row.identity_writes = stats.cache.identity_writes;
  row.identity_bytes = stats.log.identity_bytes;
  row.total_log_bytes = stats.log.bytes;
  row.backup_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return row;
}

void Sweep(const char* name, BackupPolicy policy, WriteGraphKind graph) {
  benchutil::PrintHeader(std::string("X5 ablation (") + name +
                         "): step granularity vs logging vs sync cost");
  printf("%5s %14s %16s %16s %14s %12s\n", "N", "fence_updates",
         "identity_writes", "identity_bytes", "log_overhead", "backup_ms");
  for (uint32_t steps : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    Row row = RunOnce(policy, graph, steps, 42 + steps);
    printf("%5u %14llu %16llu %16llu %13.1f%% %12.1f\n", steps,
           static_cast<unsigned long long>(row.fence_updates),
           static_cast<unsigned long long>(row.identity_writes),
           static_cast<unsigned long long>(row.identity_bytes),
           100.0 * static_cast<double>(row.identity_bytes) /
               static_cast<double>(row.total_log_bytes),
           row.backup_ms);
  }
}

}  // namespace
}  // namespace llb

int main() {
  llb::Sweep("general ops", llb::BackupPolicy::kGeneral,
             llb::WriteGraphKind::kGeneral);
  llb::Sweep("tree ops", llb::BackupPolicy::kTree, llb::WriteGraphKind::kTree);
  printf("\npaper 5.3: \"most of the reduction ... has been achieved with "
         "an eight step backup,\nso there is little incentive to further "
         "increase the number of backup steps\" —\nwhile fence updates "
         "(exclusive latch traffic) keep growing linearly with N.\n");
  return 0;
}
