// Experiment X2 (paper section 6.1, Discussion/Incremental Backups):
// "By identifying the portion of the database state S that has changed
// since the last backup, we need only back up that changed portion."
//
// A skewed (zipf) update workload touches a small fraction of a large
// database between backups. We compare full vs incremental backups on
// pages copied and verify that the incremental chain media-recovers.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "filestore/filestore.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/oracle.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

void Main() {
  constexpr uint32_t kPages = 4096;
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 512;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = 8;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  FileStore files(engine->db(), 0, 0, /*pages_per_file=*/1, kPages);
  Random rng(11);

  auto skewed_updates = [&](int count) {
    for (int i = 0; i < count; ++i) {
      uint32_t src = static_cast<uint32_t>(rng.Zipf(kPages, 0.9));
      uint32_t dst = static_cast<uint32_t>(rng.Zipf(kPages, 0.9));
      if (src == dst) dst = (dst + 1) % kPages;
      Check(files.Copy(src, dst), "copy");
    }
    Check(engine->db()->FlushAll(), "flush");
  };

  // Seed + full backup.
  for (uint32_t i = 0; i < 64; ++i) {
    Check(files.WriteValues(i, {int64_t(i), int64_t(i * 2)}), "seed");
  }
  Check(engine->db()->FlushAll(), "flush");
  BackupManifest full =
      CheckResult(engine->db()->TakeBackup("full"), "full backup");

  benchutil::PrintHeader(
      "X2: incremental vs full backup under a zipf(0.9) update workload");
  printf("%-10s %14s %14s %12s\n", "backup", "pages_copied", "of_total",
         "kind");
  DbStats after_full = engine->db()->GatherStats();
  printf("%-10s %14llu %13.1f%% %12s\n", "full",
         static_cast<unsigned long long>(after_full.backup_pages_copied),
         100.0 * after_full.backup_pages_copied / kPages, "full");

  std::string base = "full";
  uint64_t copied_before = after_full.backup_pages_copied;
  for (int round = 1; round <= 3; ++round) {
    skewed_updates(300);
    std::string name = "inc" + std::to_string(round);
    BackupManifest inc = CheckResult(
        engine->db()->TakeIncrementalBackup(name, base), "incremental");
    DbStats stats = engine->db()->GatherStats();
    uint64_t copied = stats.backup_pages_copied - copied_before;
    copied_before = stats.backup_pages_copied;
    printf("%-10s %14llu %13.1f%% %12s\n", name.c_str(),
           static_cast<unsigned long long>(copied), 100.0 * copied / kPages,
           "incremental");
    base = name;
    (void)inc;
  }

  // Post-backup activity, then media failure + chain restore.
  skewed_updates(100);
  Check(engine->db()->ForceLog(), "force");
  Check(engine->Shutdown(), "shutdown");
  {
    std::unique_ptr<PageStore> stable = CheckResult(
        PageStore::Open(engine->env(), Database::StableName("db"), 1),
        "stable");
    Check(stable->WipePartition(0), "wipe");
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  MediaRecoveryReport report = CheckResult(
      RestoreFromBackup(engine->env(), Database::StableName("db"),
                        Database::LogName("db"), base, registry),
      "restore");

  std::unique_ptr<LogManager> log = CheckResult(
      LogManager::Open(engine->env(), Database::LogName("db")), "log");
  std::unique_ptr<PageStore> oracle;
  Check(testutil::BuildOracle(engine->env(), *log, registry, "oracle", 1,
                              &oracle),
        "oracle");
  std::unique_ptr<PageStore> stable = CheckResult(
      PageStore::Open(engine->env(), Database::StableName("db"), 1),
      "stable");
  bool ok = testutil::DiffStores(*stable, *oracle, 1, kPages).empty();

  printf("\nmedia recovery from incremental chain: %u backups applied, "
         "%llu pages restored, %llu ops rolled forward -> %s\n",
         report.backups_applied,
         static_cast<unsigned long long>(report.pages_restored),
         static_cast<unsigned long long>(report.redo.ops_replayed),
         ok ? "STATE CORRECT" : "STATE WRONG");
  printf("\"Hence, much of the efficiency of [Mohan & Narang 93] also holds "
         "for backup with logical log operations.\" (paper 6.1)\n");
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
