// Experiment X7: parallel partitioned sweep throughput under
// device-shaped IO.
//
// On the zero-latency MemEnv a parallel sweep cannot win: every IO is a
// memcpy under one env mutex, so extra workers only add contention. The
// win the paper's arithmetic predicts appears once IO has device shape —
// seek + transfer + sync time that concurrent per-partition streams can
// overlap. This benchmark wraps MemEnv in a LatencyEnv with the HDD
// profile (2 ms seek, 4 ms sync, 100 MB/s — the geometry backup sweeps
// were designed for) and shards 8 partitions across 1/2/4/8 pool
// workers:
//
//   BM_ParallelSweep/threads:T   — quiesced full-sweep MB/s, batched +
//                                  pipelined, T sweep workers
//
// tools/benchrunner derives speedup_parallel_tT = MB/s(T) / MB/s(1) and
// tools/bench_check.py gates speedup_parallel_t4 >= 2x (EXPERIMENTS.md
// X7). Counters mirror X6 plus the simulated device time per sweep.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPartitions = 8;
constexpr uint32_t kPages = 256;  // per partition
constexpr uint32_t kSteps = 8;

/// A database over LatencyEnv(MemEnv): TestEngine hardcodes a bare
/// MemEnv, so the device-shaped engine is wired by hand (same sequence
/// as TestEngine::Open).
struct DeviceEngine {
  MemEnv base;
  LatencyEnv env;
  std::unique_ptr<Database> db;
  std::vector<std::unique_ptr<FileStore>> files;

  explicit DeviceEngine(const LatencyProfile& profile)
      : env(&base, profile) {}
};

std::unique_ptr<DeviceEngine> NewLoadedEngine(const LatencyProfile& profile) {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = kSteps;

  auto engine = std::make_unique<DeviceEngine>(profile);
  // Seed through the zero-latency base env (loading 2K pages through a
  // simulated HDD would dominate the benchmark's setup time), then
  // reopen the database over the latency wrapper of the same MemEnv for
  // the measured sweeps.
  engine->db = CheckResult(Database::Open(&engine->base, "x7", options),
                           "open");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  for (uint32_t p = 0; p < kPartitions; ++p) {
    engine->files.push_back(std::make_unique<FileStore>(
        engine->db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
        /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      Check(engine->files[p]->WriteValues(
                f, {static_cast<int64_t>(p) * 1000 + f, 1}),
            "seed");
    }
  }
  Check(engine->db->FlushAll(), "flush");
  Check(engine->db->Checkpoint(), "checkpoint");
  engine->files.clear();
  engine->db.reset();

  engine->db = CheckResult(Database::Open(&engine->env, "x7", options),
                           "reopen");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  return engine;
}

void BM_ParallelSweep(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine = NewLoadedEngine(LatencyProfile::Hdd());

  BackupJobOptions job;
  job.steps = kSteps;
  job.sweep_threads = static_cast<uint32_t>(state.range(0));
  job.batch_pages = 32;  // one run per step: the batched-sweep sweet spot
  job.pipelined = true;
  job.resumable = false;  // cursor writes would add per-step syncs

  uint64_t pages_copied = 0;
  uint64_t fence_updates = 0;
  uint64_t threads_spawned = 0;
  uint64_t device_us_before = engine->env.stats().simulated_us;
  int round = 0;
  for (auto _ : state) {
    BackupJobStats stats;
    Check(engine->db
              ->TakeBackupWithOptions("x7_" + std::to_string(round++), job,
                                      &stats)
              .status(),
          "backup");
    pages_copied += stats.pages_copied;
    fence_updates += stats.fence_updates;
    threads_spawned += stats.threads_spawned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_copied) *
                          static_cast<int64_t>(kPageSize));
  double sweeps = static_cast<double>(state.iterations());
  state.counters["fence_updates"] = static_cast<double>(fence_updates) / sweeps;
  // Simulated device time consumed per sweep: roughly constant across
  // thread counts (the same IOs happen), while real_time shrinks — the
  // overlap is the speedup.
  state.counters["device_us"] =
      static_cast<double>(engine->env.stats().simulated_us -
                          device_us_before) /
      sweeps;
  // Regression guard: pooled sweeps must not fall back to transient
  // threads.
  state.counters["threads_spawned"] = static_cast<double>(threads_spawned);
}
BENCHMARK(BM_ParallelSweep)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Workers run on pool threads; only wall clock shows the overlap.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
