// Experiment X9: log-shipping throughput — can a warm standby keep up
// with the primary it is replicating?
//
// The paper's fuzzy-backup machinery gives RPO in minutes (backup
// chains); log shipping tightens it to seconds by streaming every sealed
// log segment to a standby that replays it continuously. The number that
// matters is not either side's absolute MB/s but their *ratio*: if the
// standby applies shipped bytes at least as fast as the primary seals
// them, replication lag is bounded by one in-flight segment; if the
// ratio drops below 1 the standby falls behind without bound. Both
// families run the identical update round on MemEnv, so the ratio is
// CPU-bound on both sides and transfers across hardware:
//
//   BM_PrimaryIngest — execute a round of FileStore ops, force the log,
//                      pump the shipper into an in-process channel.
//                      Bytes = frame bytes durably published.
//   BM_StandbyApply  — drain a prebuilt spool of shipped frames into a
//                      freshly recovered standby (append to its log,
//                      force, redo onto stable, flush). Bytes = frame
//                      bytes applied.
//
// tools/benchrunner derives ship_keepup_ratio = apply MB/s / ingest MB/s
// and tools/bench_check.py gates it >= 0.3. Apply skips op execution and
// the shipper but pays a log force plus a page flush per frame (the
// standby's stable store tracks its log continuously, so a standby crash
// recovers from near the tail), so it lands somewhat below ingest on an
// all-memory env; in deployment the primary also checkpoints and shares
// its device with foreground reads. The gate is a regression floor for
// the apply path, not a proof of keep-up at any production rate.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "io/mem_env.h"
#include "ship/log_shipper.h"
#include "ship/standby_applier.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPartitions = 2;
constexpr uint32_t kPages = 64;  // per partition
constexpr uint32_t kFilesPerRound = 24;
constexpr uint32_t kSpoolRounds = 32;

DbOptions X9Options() {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 128;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

/// A primary with its shipper attached to an in-process channel, plus
/// the FileStore handles the update rounds go through.
struct Primary {
  MemEnv env;
  std::unique_ptr<Database> db;
  std::vector<std::unique_ptr<FileStore>> files;
  InProcessShipChannel channel;
  std::unique_ptr<LogShipper> shipper;
  uint64_t round = 0;

  void Open() {
    db = CheckResult(Database::Open(&env, "x9", X9Options()), "open");
    RegisterAllOps(db->registry());
    Check(db->Recover(), "recover");
    shipper = std::make_unique<LogShipper>(&env, "x9", db->log(), &channel);
    Check(shipper->Attach(), "attach");
    for (uint32_t p = 0; p < kPartitions; ++p) {
      files.push_back(std::make_unique<FileStore>(
          db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
          /*num_files=*/kFilesPerRound));
    }
  }

  /// One update round: write every file, force the log (seals a
  /// segment), pump the shipper (publishes the frame durably).
  void RunRound() {
    ++round;
    for (uint32_t p = 0; p < kPartitions; ++p) {
      for (uint32_t f = 0; f < kFilesPerRound; ++f) {
        Check(files[p]->WriteValues(
                  f, {static_cast<int64_t>(round),
                      static_cast<int64_t>(p) * 1000 + f,
                      static_cast<int64_t>(round * 31 + f),
                      static_cast<int64_t>(round * 17 + p)}),
              "write");
      }
    }
    Check(db->ForceLog(), "force");
    Check(shipper->Pump(), "pump");
  }
};

void BM_PrimaryIngest(benchmark::State& state) {
  Primary primary;
  primary.Open();
  // The attach catch-up frame (file creation records) is setup, not
  // steady state.
  primary.RunRound();
  primary.channel.Trim(UINT64_MAX);

  const uint64_t bytes_before = primary.shipper->stats().bytes_sent;
  for (auto _ : state) {
    primary.RunRound();
    // The applier's consumption is the other family's measurement; here
    // the channel just stays flat.
    primary.channel.Trim(UINT64_MAX);
  }
  state.SetBytesProcessed(static_cast<int64_t>(
      primary.shipper->stats().bytes_sent - bytes_before));
  state.counters["frames_sent"] = static_cast<double>(
      primary.shipper->stats().frames_sent);
}
BENCHMARK(BM_PrimaryIngest)->Unit(benchmark::kMillisecond);

void BM_StandbyApply(benchmark::State& state) {
  // Build the spool once: kSpoolRounds update rounds, every frame kept
  // in the channel (no applier ran, so nothing was trimmed).
  Primary primary;
  primary.Open();
  for (uint32_t r = 0; r < kSpoolRounds; ++r) primary.RunRound();
  std::vector<ShipFrame> spool;
  Check(primary.channel.Poll(1, &spool), "capture spool");
  const Lsn spool_tail = primary.db->log()->durable_lsn();

  DbOptions standby_options = X9Options();
  standby_options.standby = true;

  uint64_t bytes_applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh standby per iteration: wipe its files, recover (empty), and
    // refill a private channel with the whole spool.
    for (const std::string& file : primary.env.ListFiles()) {
      if (file.rfind("x9sb", 0) == 0) Check(primary.env.DeleteFile(file),
                                            "wipe standby");
    }
    std::unique_ptr<Database> standby = CheckResult(
        Database::Open(&primary.env, "x9sb", standby_options), "open standby");
    RegisterAllOps(standby->registry());
    Check(standby->Recover(), "recover standby");
    InProcessShipChannel channel;
    for (const ShipFrame& frame : spool) Check(channel.Send(frame), "refill");
    StandbyApplier applier(standby.get(), &channel);
    Check(applier.CatchUpFromLocalLog(), "catch up");
    state.ResumeTiming();

    Check(applier.Drain(), "drain");

    state.PauseTiming();
    if (applier.applied_lsn() != spool_tail) {
      fprintf(stderr, "FATAL: standby applied %llu, spool tail %llu\n",
              static_cast<unsigned long long>(applier.applied_lsn()),
              static_cast<unsigned long long>(spool_tail));
      abort();
    }
    bytes_applied += applier.stats().bytes_applied;
    standby.reset();
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes_applied));
  state.counters["frames_per_drain"] = static_cast<double>(spool.size());
  state.counters["spool_tail_lsn"] = static_cast<double>(spool_tail);
}
BENCHMARK(BM_StandbyApply)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
