// Reproduces Figure 2 of the paper: "Write graphs rW and W when an X
// becomes unexposed. W has one node for X and Y, requiring their atomic
// flushing. rW has separate nodes for X and Y, the unexposed X being
// removed from vars(1)."
//
// Part 1 replays the figure's literal script on the general write graph.
// Part 2 quantifies the effect on a random logical workload: without the
// rW refinement (no identity writes) atomic flush sets only grow; with
// cache-manager identity writes they shrink, keeping the largest atomic
// flush small — the paper's argument for rW + W_IP (sections 2.4-2.5).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "recovery/general_write_graph.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

LogRecord Op(Lsn lsn, std::vector<PageId> reads, std::vector<PageId> writes) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpFileCopy;
  rec.readset = std::move(reads);
  rec.writeset = std::move(writes);
  return rec;
}

void Part1LiteralFigure() {
  benchutil::PrintHeader("Figure 2 (literal script)");
  // Operation A writes X(=1) and Y(=2): one node, vars = {X, Y}.
  GeneralWriteGraph w_graph, rw_graph;
  LogRecord a = Op(1, {}, {P(1), P(2)});
  w_graph.OnOperation(a);
  rw_graph.OnOperation(a);
  printf("after A(writes X,Y):    W: nodes=%zu max_vars=%zu   "
         "rW: nodes=%zu vars(node1)=%zu\n",
         w_graph.GetStats().nodes, w_graph.GetStats().max_vars,
         rw_graph.GetStats().nodes, rw_graph.VarsSizeOf(P(1)));

  // Operation C: the cache manager's identity write of X. In W nothing
  // shrinks; in rW X leaves node 1's flush set.
  rw_graph.OnIdentityWrite(P(1), 2);
  printf("after C = W_IP(X):      W: nodes=%zu max_vars=%zu   "
         "rW: nodes=%zu vars(node1)=%zu (X removed)\n",
         w_graph.GetStats().nodes, w_graph.GetStats().max_vars,
         rw_graph.GetStats().nodes, rw_graph.VarsSizeOf(P(2)));
  printf("=> installing node 1 under rW flushes only Y; X's value is "
         "recovered from the log.\n");
}

void Part2RandomWorkload() {
  benchutil::PrintHeader(
      "Atomic flush set growth: W (no refinement) vs rW (identity writes)");
  printf("%8s  %12s %14s  %12s %14s\n", "ops", "W_max_vars", "W_total_vars",
         "rW_max_vars", "rW_total_vars");

  for (uint32_t num_ops : {200u, 500u, 1000u, 2000u}) {
    GeneralWriteGraph w_graph, rw_graph;
    Random rng(1234);
    Lsn lsn = 1;
    uint32_t identity_budget = 0;
    for (uint32_t i = 0; i < num_ops; ++i) {
      // Random logical op: read 1-2 pages, write 1-2 pages (uniform over
      // 256 pages) — write sets intersect over time and chain nodes.
      std::vector<PageId> reads, writes;
      reads.push_back(P(static_cast<uint32_t>(rng.Uniform(256))));
      if (rng.Bernoulli(0.4)) {
        reads.push_back(P(static_cast<uint32_t>(rng.Uniform(256))));
      }
      writes.push_back(P(static_cast<uint32_t>(rng.Uniform(256))));
      if (rng.Bernoulli(0.3)) {
        PageId extra = P(static_cast<uint32_t>(rng.Uniform(256)));
        if (extra != writes[0]) writes.push_back(extra);
      }
      LogRecord rec = Op(lsn++, reads, writes);
      w_graph.OnOperation(rec);
      rw_graph.OnOperation(rec);

      // The rW cache manager issues an identity write whenever a node's
      // flush set exceeds 2 pages (mimicking Iw/oF to cap atomic flushes).
      for (const PageId& x : rec.writeset) {
        if (rw_graph.VarsSizeOf(x) > 2) {
          rw_graph.OnIdentityWrite(x, lsn++);
          ++identity_budget;
        }
      }
    }
    WriteGraphStats ws = w_graph.GetStats();
    WriteGraphStats rs = rw_graph.GetStats();
    printf("%8u  %12zu %14zu  %12zu %14zu   (identity writes: %u)\n",
           num_ops, ws.max_vars_ever, ws.total_vars, rs.max_vars_ever,
           rs.total_vars, identity_budget);
  }
  printf("\n\"There is no way to remove objects from vars(n) for any node n "
         "of W. |vars(n)| increases\nmonotonically ... This is highly "
         "unsatisfactory.\" — rW with identity writes bounds it.\n");
}

}  // namespace
}  // namespace llb

int main() {
  llb::Part1LiteralFigure();
  llb::Part2RandomWorkload();
  return 0;
}
