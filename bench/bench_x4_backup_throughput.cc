// Experiment X4 (paper sections 1.3-1.4): update throughput under
// different backup strategies.
//
//   no_backup     — baseline insert throughput.
//   async_backup  — the paper's protocol: a backup sweep runs
//                   concurrently, loosely coupled through the backup
//                   latch and Iw/oF logging. Throughput should stay near
//                   the baseline.
//   linked_flush  — the strawman the paper rejects ("a completely
//                   unrealistic solution"): every operation's dirty pages
//                   are synchronously flushed to S *and* copied to B
//                   before the next operation starts.
//   offline       — updates stop entirely while the backup runs; measured
//                   as backup duration (throughput during it is zero).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPages = 2048;

std::unique_ptr<TestEngine> NewEngine() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 8;
  return CheckResult(TestEngine::Create(options), "create");
}

void BM_Updates_NoBackup(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Updates_NoBackup)->Unit(benchmark::kMicrosecond);

void BM_Updates_DuringAsyncBackup(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  // Continuous backups on a second thread: the worst case for the
  // protocol (a backup is always active, maximizing Iw/oF exposure).
  std::atomic<bool> stop{false};
  std::thread backup_thread([&]() {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status s =
          engine->db()->TakeBackup("bk" + std::to_string(round++)).status();
      if (!s.ok()) break;
    }
  });
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
  }
  stop.store(true);
  backup_thread.join();
  state.SetItemsProcessed(state.iterations());
  DbStats stats = engine->db()->GatherStats();
  state.counters["iwof_per_1k_ops"] =
      1000.0 * static_cast<double>(stats.cache.identity_writes) /
      static_cast<double>(state.iterations());
  state.counters["flush_decisions_per_1k_ops"] =
      1000.0 * static_cast<double>(stats.cache.decisions) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Updates_DuringAsyncBackup)->Unit(benchmark::kMicrosecond);

void BM_Updates_LinkedFlush(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  // The "linked flush" strawman: keep B in lock-step with S by flushing
  // after every operation and synchronously copying the flushed pages.
  std::unique_ptr<PageStore> linked_b = CheckResult(
      PageStore::Open(engine->env(), "linked_backup", 1), "open B");
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
    Check(engine->db()->FlushAll(), "linked flush to S");
    // Copy every page the flush touched to B, synchronously.
    for (uint32_t page = 0; page < 64; ++page) {
      PageImage image;
      Check(engine->db()->stable()->ReadPage(PageId{0, page}, &image),
            "read");
      Check(linked_b->WritePage(PageId{0, page}, image), "write B");
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Updates_LinkedFlush)->Unit(benchmark::kMicrosecond);

void BM_BackupDuration_Offline(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  for (int64_t k = 0; k < 3000; ++k) {
    Check(tree.Insert(k, Slice("payload")), "insert");
  }
  Check(engine->db()->FlushAll(), "flush");
  int round = 0;
  for (auto _ : state) {
    Check(engine->db()
              ->TakeBackup("off" + std::to_string(round++))
              .status(),
          "backup");
  }
  state.counters["pages"] = kPages;
}
BENCHMARK(BM_BackupDuration_Offline)->Unit(benchmark::kMillisecond);

void BM_BackupDuration_Online(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  for (int64_t k = 0; k < 3000; ++k) {
    Check(tree.Insert(k, Slice("payload")), "insert");
  }
  Check(engine->db()->FlushAll(), "flush");
  int64_t key = 100000;
  int round = 0;
  for (auto _ : state) {
    // Updates run inside the sweep via the mid-step hook (deterministic
    // "concurrency" so the measurement is stable).
    BackupJobOptions job;
    job.steps = 8;
    job.mid_step = [&](PartitionId, uint32_t) -> Status {
      for (int i = 0; i < 25; ++i) {
        LLB_RETURN_IF_ERROR(
            tree.Insert(100000 + (key++ % 3000), Slice("payload")));
      }
      return Status::OK();
    };
    Check(engine->db()
              ->TakeBackupWithOptions("on" + std::to_string(round++), job)
              .status(),
          "backup");
  }
  state.counters["pages"] = kPages;
}
BENCHMARK(BM_BackupDuration_Online)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
