// Experiment X4 (paper sections 1.3-1.4): update throughput under
// different backup strategies.
//
//   no_backup     — baseline insert throughput.
//   async_backup  — the paper's protocol: a backup sweep runs
//                   concurrently, loosely coupled through the backup
//                   latch and Iw/oF logging. Throughput should stay near
//                   the baseline.
//   linked_flush  — the strawman the paper rejects ("a completely
//                   unrealistic solution"): every operation's dirty pages
//                   are synchronously flushed to S *and* copied to B
//                   before the next operation starts.
//   offline       — updates stop entirely while the backup runs; measured
//                   as backup duration (throughput during it is zero).
//
// Experiment X12 rides in the same binary: BM_UpdatersDuringBackup runs
// 1/4/16 updater threads against a continuously-active backup over a
// device-shaped log (LatencyEnv, SSD profile), with the WAL in legacy
// single-channel mode (channels:1) vs epoch-based group commit
// (channels:4). In legacy mode every Iw/oF flush decision pays an
// inline log force (seek + sync) under the cache mutex, so concurrent
// updaters serialize behind one device; with per-thread channels the
// install's durability wait rides the epoch watermark outside the
// cache mutex and one group-commit sync covers every waiter.
// tools/benchrunner derives updates_during_backup_ops_per_s and
// updater_scaling_t4 = ops(t4, c4) / ops(t4, c1), which
// tools/bench_check.py gates >= 2x (EXPERIMENTS.md X12).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "btree/btree.h"
#include "filestore/filestore.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPages = 2048;

std::unique_ptr<TestEngine> NewEngine() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 8;
  return CheckResult(TestEngine::Create(options), "create");
}

void BM_Updates_NoBackup(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Updates_NoBackup)->Unit(benchmark::kMicrosecond);

void BM_Updates_DuringAsyncBackup(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  // Continuous backups on a second thread: the worst case for the
  // protocol (a backup is always active, maximizing Iw/oF exposure).
  std::atomic<bool> stop{false};
  std::thread backup_thread([&]() {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status s =
          engine->db()->TakeBackup("bk" + std::to_string(round++)).status();
      if (!s.ok()) break;
    }
  });
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
  }
  stop.store(true);
  backup_thread.join();
  state.SetItemsProcessed(state.iterations());
  DbStats stats = engine->db()->GatherStats();
  state.counters["iwof_per_1k_ops"] =
      1000.0 * static_cast<double>(stats.cache.identity_writes) /
      static_cast<double>(state.iterations());
  state.counters["flush_decisions_per_1k_ops"] =
      1000.0 * static_cast<double>(stats.cache.decisions) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Updates_DuringAsyncBackup)->Unit(benchmark::kMicrosecond);

void BM_Updates_LinkedFlush(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  // The "linked flush" strawman: keep B in lock-step with S by flushing
  // after every operation and synchronously copying the flushed pages.
  std::unique_ptr<PageStore> linked_b = CheckResult(
      PageStore::Open(engine->env(), "linked_backup", 1), "open B");
  int64_t key = 0;
  for (auto _ : state) {
    Check(tree.Insert((key++ * 2654435761) % 20011, Slice("payload")),
          "insert");
    Check(engine->db()->FlushAll(), "linked flush to S");
    // Copy every page the flush touched to B, synchronously.
    for (uint32_t page = 0; page < 64; ++page) {
      PageImage image;
      Check(engine->db()->stable()->ReadPage(PageId{0, page}, &image),
            "read");
      Check(linked_b->WritePage(PageId{0, page}, image), "write B");
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Updates_LinkedFlush)->Unit(benchmark::kMicrosecond);

void BM_BackupDuration_Offline(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  for (int64_t k = 0; k < 3000; ++k) {
    Check(tree.Insert(k, Slice("payload")), "insert");
  }
  Check(engine->db()->FlushAll(), "flush");
  int round = 0;
  for (auto _ : state) {
    Check(engine->db()
              ->TakeBackup("off" + std::to_string(round++))
              .status(),
          "backup");
  }
  state.counters["pages"] = kPages;
}
BENCHMARK(BM_BackupDuration_Offline)->Unit(benchmark::kMillisecond);

void BM_BackupDuration_Online(benchmark::State& state) {
  std::unique_ptr<TestEngine> engine = NewEngine();
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  Check(tree.Create(), "create");
  for (int64_t k = 0; k < 3000; ++k) {
    Check(tree.Insert(k, Slice("payload")), "insert");
  }
  Check(engine->db()->FlushAll(), "flush");
  int64_t key = 100000;
  int round = 0;
  for (auto _ : state) {
    // Updates run inside the sweep via the mid-step hook (deterministic
    // "concurrency" so the measurement is stable).
    BackupJobOptions job;
    job.steps = 8;
    job.mid_step = [&](PartitionId, uint32_t) -> Status {
      for (int i = 0; i < 25; ++i) {
        LLB_RETURN_IF_ERROR(
            tree.Insert(100000 + (key++ % 3000), Slice("payload")));
      }
      return Status::OK();
    };
    Check(engine->db()
              ->TakeBackupWithOptions("on" + std::to_string(round++), job)
              .status(),
          "backup");
  }
  state.counters["pages"] = kPages;
}
BENCHMARK(BM_BackupDuration_Online)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// X12: multi-threaded updaters during backup, legacy force vs group commit.

constexpr uint32_t kUpdaterPartitions = 16;  // one per updater at t=16
constexpr uint32_t kFilesPerPartition = 64;  // > cache: every write faults
constexpr uint32_t kOpsPerThread = 64;       // ops per thread per iteration

/// A database over LatencyEnv(MemEnv): TestEngine hardcodes a bare
/// MemEnv, so the device-shaped engine is wired by hand (same sequence
/// as bench_x7's DeviceEngine).
struct UpdaterEngine {
  MemEnv base;
  LatencyEnv env;
  std::unique_ptr<Database> db;
  std::vector<std::unique_ptr<FileStore>> files;

  explicit UpdaterEngine(const LatencyProfile& profile)
      : env(&base, profile) {}
};

std::unique_ptr<UpdaterEngine> NewUpdaterEngine(uint32_t channels) {
  DbOptions options;
  options.partitions = kUpdaterPartitions;
  options.pages_per_partition = kFilesPerPartition;
  // Smaller than one partition's file set: the round-robin updater
  // faults on every write and keeps evicting dirty pages, so the
  // measured path is the Iw/oF install under an active backup, not a
  // cache hit.
  options.cache_pages = 48;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = 8;
  options.log_channels = channels;

  auto engine = std::make_unique<UpdaterEngine>(LatencyProfile::Ssd());
  // Seed through the zero-latency base env, then reopen over the
  // latency wrapper of the same MemEnv for the measured runs.
  engine->db = CheckResult(Database::Open(&engine->base, "x12", options),
                           "open");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  for (uint32_t p = 0; p < kUpdaterPartitions; ++p) {
    engine->files.push_back(std::make_unique<FileStore>(
        engine->db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
        /*num_files=*/kFilesPerPartition));
    for (uint32_t f = 0; f < kFilesPerPartition; ++f) {
      Check(engine->files[p]->WriteValues(
                f, {static_cast<int64_t>(p) * 1000 + f, 1}),
            "seed");
    }
  }
  Check(engine->db->FlushAll(), "flush");
  Check(engine->db->Checkpoint(), "checkpoint");
  engine->files.clear();
  engine->db.reset();

  engine->db = CheckResult(Database::Open(&engine->env, "x12", options),
                           "reopen");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  for (uint32_t p = 0; p < kUpdaterPartitions; ++p) {
    engine->files.push_back(std::make_unique<FileStore>(
        engine->db.get(), p, /*base_page=*/0, /*pages_per_file=*/1,
        /*num_files=*/kFilesPerPartition));
  }
  return engine;
}

void BM_UpdatersDuringBackup(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const uint32_t channels = static_cast<uint32_t>(state.range(1));
  std::unique_ptr<UpdaterEngine> engine = NewUpdaterEngine(channels);

  // Continuous backups on their own thread: a backup is always active,
  // so every dirty eviction is an Iw/oF flush decision.
  std::atomic<bool> stop{false};
  std::thread backup_thread([&]() {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Status s =
          engine->db->TakeBackup("bk" + std::to_string(round++)).status();
      if (!s.ok()) break;
    }
  });

  uint64_t total_ops = 0;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        // Each updater owns one partition: threads contend on the
        // cache, the log, and the backup latch — not on page data.
        uint64_t key = total_ops + t;
        for (uint32_t i = 0; i < kOpsPerThread; ++i) {
          uint32_t f = static_cast<uint32_t>(
              (key + i) * 2654435761u % kFilesPerPartition);
          Check(engine->files[t]->WriteValues(
                    f, {static_cast<int64_t>(key + i), 1}),
                "update");
        }
      });
    }
    for (auto& w : workers) w.join();
    total_ops += static_cast<uint64_t>(threads) * kOpsPerThread;
  }
  stop.store(true);
  backup_thread.join();
  state.SetItemsProcessed(static_cast<int64_t>(total_ops));

  DbStats stats = engine->db->GatherStats();
  state.counters["iwof_per_1k_ops"] =
      total_ops == 0 ? 0.0
                     : 1000.0 *
                           static_cast<double>(stats.cache.identity_writes) /
                           static_cast<double>(total_ops);
  state.counters["group_commits"] =
      static_cast<double>(stats.log.group_commits);
  state.counters["overlapped_installs"] =
      static_cast<double>(stats.cache.overlapped_installs);
  state.counters["log_forces"] = static_cast<double>(stats.log.forces);
}
BENCHMARK(BM_UpdatersDuringBackup)
    ->ArgNames({"threads", "channels"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
