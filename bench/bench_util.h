#ifndef LLB_BENCH_BENCH_UTIL_H_
#define LLB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace llb::benchutil {

/// Benchmarks abort on unexpected engine errors.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    abort();
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "FATAL (%s): %s\n", what,
            result.status().ToString().c_str());
    abort();
  }
  return std::move(result).value();
}

inline void PrintHeader(const std::string& title) {
  printf("\n== %s ==\n", title.c_str());
}

}  // namespace llb::benchutil

#endif  // LLB_BENCH_BENCH_UTIL_H_
