// Reproduces Figure 1 of the paper: "A B-tree backup problem arises for
// the sequence: backup('new') to B; flush(new0) to S; flush(old_i+1) to
// S; backup(old_i+1 to B). Backup B has the new version old_i+1 of old,
// but not new0 for new."
//
// We execute exactly that schedule — a logical split MovRec/RmvRec whose
// new page was already swept when the flushes happen — under three
// policies, then perform a full media recovery from each backup and
// report whether the moved records survive:
//
//   naive   : conventional fuzzy dump, no Iw/oF  -> B unrecoverable
//   general : paper section 3 (log all !Pend)    -> recovers
//   tree    : paper section 4 (Figure 4 cases)   -> recovers, less logging

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "btree/btree_node.h"
#include "btree/btree_ops.h"
#include "ops/operation.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/oracle.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kOldPage = 60;  // swept late (step 2)
constexpr uint32_t kNewPage = 5;   // swept early (step 1)
constexpr int64_t kSplitKey = 5;
constexpr uint32_t kPages = 100;

struct Outcome {
  uint64_t identity_records = 0;
  uint64_t moved_records_after_recovery = 0;
  bool matches_oracle = false;
};

Outcome RunSchedule(WriteGraphKind graph, BackupPolicy policy) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = kPages;
  options.cache_pages = 64;
  options.graph = graph;
  options.backup_policy = policy;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  Database* db = engine->db();

  // A full leaf at kOldPage, flushed before the backup starts.
  PageImage leaf;
  btree_node::InitLeaf(&leaf, 0);
  for (int64_t k = 1; k <= 10; ++k) {
    btree_node::LeafInsert(&leaf, k, Slice("rec"));
  }
  LogRecord init = MakePhysicalWrite(PageId{0, kOldPage}, leaf);
  Check(db->Execute(&init), "init leaf");
  Check(db->FlushAll(), "flush");

  // Two-step backup; the split + flushes land in step 2's doubt window,
  // after kNewPage's position has already been copied to B.
  BackupJobOptions job;
  job.steps = 2;
  job.mid_step = [db](PartitionId, uint32_t step) -> Status {
    if (step != 2) return Status::OK();
    LogRecord mov =
        MakeBtreeMovRec(PageId{0, kOldPage}, PageId{0, kNewPage}, kSplitKey);
    LLB_RETURN_IF_ERROR(db->Execute(&mov));
    LogRecord rmv = MakeBtreeRmvRec(PageId{0, kOldPage}, kSplitKey, kNewPage);
    LLB_RETURN_IF_ERROR(db->Execute(&rmv));
    LLB_RETURN_IF_ERROR(db->FlushPage(PageId{0, kNewPage}));
    return db->FlushPage(PageId{0, kOldPage});
  };
  Check(db->TakeBackupWithOptions("bk", job).status(), "backup");

  Outcome outcome;
  outcome.identity_records = db->GatherStats().log.identity_records;

  // MEDIA FAILURE + recovery from B.
  Check(engine->Shutdown(), "shutdown");
  {
    std::unique_ptr<PageStore> stable = CheckResult(
        PageStore::Open(engine->env(), Database::StableName("db"), 1),
        "open stable");
    Check(stable->WipePartition(0), "wipe");
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  Check(RestoreFromBackup(engine->env(), Database::StableName("db"),
                          Database::LogName("db"), "bk", registry)
            .status(),
        "restore");

  // Compare against the full-log-replay oracle.
  std::unique_ptr<LogManager> log = CheckResult(
      LogManager::Open(engine->env(), Database::LogName("db")), "log");
  std::unique_ptr<PageStore> oracle;
  Check(testutil::BuildOracle(engine->env(), *log, registry, "oracle", 1,
                              &oracle),
        "oracle");
  std::unique_ptr<PageStore> stable = CheckResult(
      PageStore::Open(engine->env(), Database::StableName("db"), 1),
      "open stable");
  outcome.matches_oracle =
      testutil::DiffStores(*stable, *oracle, 1, kPages).empty();

  PageImage new_page;
  Check(stable->ReadPage(PageId{0, kNewPage}, &new_page), "read new");
  outcome.moved_records_after_recovery = btree_node::Count(new_page);
  return outcome;
}

void Main() {
  benchutil::PrintHeader(
      "Figure 1: the B-tree backup problem (logical split during sweep)");
  printf("schedule: leaf(page %u, 10 records) flushed; backup step 1 copies "
         "page %u;\n          MovRec(old->new, key %lld) + RmvRec(old); "
         "flush new, flush old;\n          backup step 2 copies page %u; "
         "media-recover from B\n\n",
         kOldPage, kNewPage, static_cast<long long>(kSplitKey), kOldPage);

  printf("%-10s %16s %22s %18s\n", "policy", "identity_recs",
         "moved_recs_recovered", "state_correct");
  struct Config {
    const char* name;
    WriteGraphKind graph;
    BackupPolicy policy;
  };
  const Config configs[] = {
      {"naive", WriteGraphKind::kTree, BackupPolicy::kNaive},
      {"general", WriteGraphKind::kGeneral, BackupPolicy::kGeneral},
      {"tree", WriteGraphKind::kTree, BackupPolicy::kTree},
  };
  for (const Config& config : configs) {
    Outcome outcome = RunSchedule(config.graph, config.policy);
    printf("%-10s %16llu %18llu/5 %18s\n", config.name,
           static_cast<unsigned long long>(outcome.identity_records),
           static_cast<unsigned long long>(
               outcome.moved_records_after_recovery),
           outcome.matches_oracle ? "RECOVERED" : "UNRECOVERABLE");
  }
  printf("\nexpected: naive loses the 5 moved records (they are in neither "
         "B nor the log);\nthe paper's protocol logs the new page "
         "(Iw/oF) and recovers it.\n");
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
