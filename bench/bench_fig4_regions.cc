// Reproduces Figure 4 of the paper: "The regions of <#X, #S(X)> space as
// to whether or not additional logging is required ... The shaded area
// requires the extra Iw/oF logging."
//
// A tree-operation workload runs inside the doubt windows of an 8-step
// backup; every flush decision falls into one of the six case-analysis
// cells of section 4.2. We report the measured share of decisions per
// cell and whether the protocol logged there — the shaded cells must be
// exactly {Done(X) & !Done(S)}, {Doubt(X) & Pend(S)}, and
// {Doubt & Doubt with a dagger violation}.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/harness.h"
#include "sim/workload.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

void Main() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 16384;
  options.cache_pages = 512;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  std::unique_ptr<TestEngine> engine =
      CheckResult(TestEngine::Create(options), "create");
  TreeUniformDriver driver(engine->db(), 0, 16384, /*seed=*/99);
  for (int i = 0; i < 100; ++i) Check(driver.Step(), "warmup");
  engine->db()->ResetStats();

  BackupJobOptions job;
  job.steps = 8;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 120; ++i) LLB_RETURN_IF_ERROR(driver.Step());
    return Status::OK();
  };
  Check(engine->db()->TakeBackupWithOptions("bk", job).status(), "backup");

  CacheStats stats = engine->db()->GatherStats().cache;
  double total = static_cast<double>(stats.decisions);

  benchutil::PrintHeader(
      "Figure 4: flush decisions by <#X, #S(X)> region (tree ops, N=8)");
  printf("%-44s %10s %8s %8s\n", "region", "decisions", "share", "Iw/oF");
  auto row = [&](const char* name, uint64_t count, bool logged) {
    printf("%-44s %10llu %7.1f%% %8s\n", name,
           static_cast<unsigned long long>(count), 100.0 * count / total,
           logged ? "YES" : "no");
  };
  row("Pend(X)                       [unshaded]", stats.tree_plain_pend_x,
      false);
  row("Done(S(X)) or no successors   [unshaded]", stats.tree_plain_done_succ,
      false);
  row("Doubt&Doubt, dagger holds     [unshaded]", stats.tree_plain_doubt_ok,
      false);
  row("Done(X) & !Done(S(X))         [SHADED]", stats.tree_iwof_done_x, true);
  row("Doubt(X) & Pend(S(X))         [SHADED]", stats.tree_iwof_pend_succ,
      true);
  row("Doubt&Doubt, violation        [SHADED]", stats.tree_iwof_doubt_viol,
      true);

  uint64_t logged = stats.tree_iwof_done_x + stats.tree_iwof_pend_succ +
                    stats.tree_iwof_doubt_viol;
  printf("\nlogged %llu / %llu decisions (%.1f%%); identity records on the "
         "media log: %llu\n",
         static_cast<unsigned long long>(logged),
         static_cast<unsigned long long>(stats.decisions),
         100.0 * logged / total,
         static_cast<unsigned long long>(stats.identity_writes));
  printf("consistency: decisions_logged=%llu matches shaded sum: %s\n",
         static_cast<unsigned long long>(stats.decisions_logged),
         stats.decisions_logged == logged ? "OK" : "MISMATCH");

  // The dagger property "holds about half the time" in Doubt&Doubt.
  uint64_t doubt_doubt =
      stats.tree_plain_doubt_ok + stats.tree_iwof_doubt_viol;
  if (doubt_doubt > 0) {
    printf("dagger held in Doubt&Doubt: %.1f%% (paper: ~50%%)\n",
           100.0 * stats.tree_plain_doubt_ok / doubt_doubt);
  }
}

}  // namespace
}  // namespace llb

int main() {
  llb::Main();
  return 0;
}
