// Experiment X11: async deep-queue IO backend throughput.
//
// Double-buffered prefetch hides exactly one IO; a deep submission
// queue keeps the device busy with queue_depth of them. This benchmark
// measures the payoff of TransferOptions::queue_depth on two substrates:
//
//   BM_AsyncSweep/qd:Q    — quiesced full backup sweep over
//                           LatencyEnv(Nvme) (10 us op, 30 us sync,
//                           3 GB/s), batched 8-page runs (on a fast
//                           device per-op latency, not transfer time,
//                           is what a deep queue hides), one step (a
//                           deep queue is pointless chopped into step
//                           fences), qd1 = the synchronous pipelined
//                           sweep, qd8 = windows of 8 runs in flight
//   BM_AsyncRestore/qd:Q  — the media-recovery side, same profile
//   BM_PosixSweep/qd:Q    — the same sweep over real files (PosixEnv
//                           under TMPDIR): io_uring where the kernel
//                           grants it, the thread-pool backend elsewhere
//   BM_PosixRestore/qd:Q  — real-file restore
//
// The NVMe profile (not X7/X8's HDD) is deliberate: a deep queue pays
// where per-op latency dominates transfer time — exactly the regime
// fast devices live in, and the one double buffering serves worst.
//
// tools/benchrunner derives speedup_async_qd8 (sweep) and
// speedup_async_restore_qd8 from the LatencyEnv families —
// hardware-portable ratios gated >= 2x by tools/bench_check.py — and
// speedup_posix_qd8 from the real-file family, gated by the loose
// --min-posix-speedup floor (real files sit behind the page cache, so
// the deep-queue win there is honest but machine-dependent).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "filestore/filestore.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"

namespace llb {
namespace {

using benchutil::Check;
using benchutil::CheckResult;

constexpr uint32_t kPartitions = 8;
constexpr uint32_t kPages = 256;  // per partition
constexpr uint32_t kBatch = 8;    // pages per run: 32 runs per partition
constexpr uint32_t kSteps = 1;    // one fence round; the queue stays deep

DbOptions EngineOptions() {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 256;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = kSteps;
  return options;
}

void SeedDatabase(Database* db) {
  std::vector<std::unique_ptr<FileStore>> files;
  for (uint32_t p = 0; p < kPartitions; ++p) {
    files.push_back(std::make_unique<FileStore>(
        db, p, /*base_page=*/0, /*pages_per_file=*/1, /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      Check(files[p]->WriteValues(f, {static_cast<int64_t>(p) * 1000 + f, 1}),
            "seed");
    }
  }
  Check(db->FlushAll(), "flush");
  Check(db->Checkpoint(), "checkpoint");
  // The measured transfers replay the log from the backup's scan start;
  // drop the seed prefix so a serial log read does not drown the copy
  // phase under measurement (the X8 rationale).
  Check(db->TruncateLog(kInvalidLsn), "truncate");
}

BackupJobOptions SweepJob(uint32_t queue_depth) {
  BackupJobOptions job;
  job.steps = kSteps;
  job.batch_pages = kBatch;
  job.pipelined = true;  // qd1 gets the strongest synchronous baseline
  job.resumable = false;  // cursor writes would add per-step syncs
  job.queue_depth = queue_depth;
  return job;
}

RestoreOptions RestoreJob(uint32_t queue_depth) {
  RestoreOptions options;
  options.batch_pages = kBatch;
  options.pipelined = true;
  options.threads = 1;  // equal threads: the queue is the only variable
  options.queue_depth = queue_depth;
  return options;
}

// ---------- LatencyEnv(Nvme) families ----------

/// A database over LatencyEnv(MemEnv), the X7/X8 idiom: seeded through
/// the zero-latency base env, measured through the latency wrapper.
struct DeviceEngine {
  MemEnv base;
  LatencyEnv env;
  std::unique_ptr<Database> db;

  explicit DeviceEngine(const LatencyProfile& profile)
      : env(&base, profile) {}
};

std::unique_ptr<DeviceEngine> NewLoadedEngine() {
  auto engine = std::make_unique<DeviceEngine>(LatencyProfile::Nvme());
  engine->db = CheckResult(
      Database::Open(&engine->base, "x11", EngineOptions()), "open");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  SeedDatabase(engine->db.get());
  engine->db.reset();

  engine->db = CheckResult(
      Database::Open(&engine->env, "x11", EngineOptions()), "reopen");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  return engine;
}

void BM_AsyncSweep(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine = NewLoadedEngine();
  BackupJobOptions job = SweepJob(static_cast<uint32_t>(state.range(0)));

  uint64_t pages_copied = 0;
  uint64_t read_batches = 0;
  uint64_t device_us_before = engine->env.stats().simulated_us;
  int round = 0;
  for (auto _ : state) {
    BackupJobStats stats;
    Check(engine->db
              ->TakeBackupWithOptions("x11_" + std::to_string(round++), job,
                                      &stats)
              .status(),
          "backup");
    pages_copied += stats.pages_copied;
    read_batches += stats.read_batches;
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_copied) *
                          static_cast<int64_t>(kPageSize));
  double sweeps = static_cast<double>(state.iterations());
  state.counters["read_batches"] = static_cast<double>(read_batches) / sweeps;
  // Simulated device time per sweep: constant across queue depths (the
  // same IOs happen), while real_time shrinks — the overlap is the win.
  state.counters["device_us"] =
      static_cast<double>(engine->env.stats().simulated_us -
                          device_us_before) /
      sweeps;
}
BENCHMARK(BM_AsyncSweep)
    ->ArgNames({"qd"})
    ->Arg(1)
    ->Arg(8)
    // In-flight ops ride pool/ring threads; wall clock shows the overlap.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void WipeStable(Env* env, const std::string& db_name) {
  std::unique_ptr<PageStore> stable = CheckResult(
      PageStore::Open(env, Database::StableName(db_name), kPartitions),
      "open S");
  for (PartitionId p = 0; p < kPartitions; ++p) {
    Check(stable->WipePartition(p), "wipe");
  }
}

void BM_AsyncRestore(benchmark::State& state) {
  std::unique_ptr<DeviceEngine> engine = NewLoadedEngine();
  Check(engine->db->TakeBackup("x11_full").status(), "full backup");
  Check(engine->db->ForceLog(), "force");
  engine->db.reset();
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions options = RestoreJob(static_cast<uint32_t>(state.range(0)));

  uint64_t pages_restored = 0;
  uint64_t device_us_before = engine->env.stats().simulated_us;
  for (auto _ : state) {
    // The media failure is not the measurement: wipe through the
    // zero-latency base env outside the timed region.
    state.PauseTiming();
    WipeStable(&engine->base, "x11");
    state.ResumeTiming();
    MediaRecoveryReport report = CheckResult(
        RestoreFromBackupWithOptions(&engine->env,
                                     Database::StableName("x11"),
                                     Database::LogName("x11"), "x11_full",
                                     registry, options),
        "restore");
    pages_restored += report.pages_restored;
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_restored) *
                          static_cast<int64_t>(kPageSize));
  state.counters["device_us"] =
      static_cast<double>(engine->env.stats().simulated_us -
                          device_us_before) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_AsyncRestore)
    ->ArgNames({"qd"})
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------- real-file (PosixEnv) families ----------

/// A file-backed engine under a private temp root, removed on teardown.
struct PosixEngine {
  std::string root;
  std::unique_ptr<PosixEnv> env;
  std::unique_ptr<Database> db;

  ~PosixEngine() {
    db.reset();
    env.reset();
    if (!root.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(root, ec);
    }
  }
};

std::unique_ptr<PosixEngine> NewPosixEngine() {
  const char* tmp = getenv("TMPDIR");
  std::string pattern =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/llb_x11_XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    Check(Status::IoError("mkdtemp failed"), "tmpdir");
  }
  auto engine = std::make_unique<PosixEngine>();
  engine->root = buf.data();
  engine->env = CheckResult(PosixEnv::Open(engine->root), "posix env");
  engine->db = CheckResult(
      Database::Open(engine->env.get(), "x11", EngineOptions()), "open");
  RegisterAllOps(engine->db->registry());
  Check(engine->db->Recover(), "recover");
  SeedDatabase(engine->db.get());
  return engine;
}

void DeleteFilesContaining(Env* env, const std::string& substring) {
  for (const std::string& name : env->ListFiles()) {
    if (name.find(substring) != std::string::npos) {
      Check(env->DeleteFile(name), "delete");
    }
  }
}

void BM_PosixSweep(benchmark::State& state) {
  std::unique_ptr<PosixEngine> engine = NewPosixEngine();
  BackupJobOptions job = SweepJob(static_cast<uint32_t>(state.range(0)));

  uint64_t pages_copied = 0;
  int round = 0;
  for (auto _ : state) {
    BackupJobStats stats;
    std::string name = "x11_bk_" + std::to_string(round++);
    Check(engine->db->TakeBackupWithOptions(name, job, &stats).status(),
          "backup");
    pages_copied += stats.pages_copied;
    // Unbounded backup accumulation would fill the disk on long runs;
    // the cleanup is real IO, so it stays outside the timed region.
    state.PauseTiming();
    DeleteFilesContaining(engine->env.get(), name);
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_copied) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PosixSweep)
    ->ArgNames({"qd"})
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PosixRestore(benchmark::State& state) {
  std::unique_ptr<PosixEngine> engine = NewPosixEngine();
  Check(engine->db->TakeBackup("x11_full").status(), "full backup");
  Check(engine->db->ForceLog(), "force");
  engine->db.reset();
  OpRegistry registry;
  RegisterAllOps(&registry);
  RestoreOptions options = RestoreJob(static_cast<uint32_t>(state.range(0)));

  uint64_t pages_restored = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WipeStable(engine->env.get(), "x11");
    state.ResumeTiming();
    MediaRecoveryReport report = CheckResult(
        RestoreFromBackupWithOptions(engine->env.get(),
                                     Database::StableName("x11"),
                                     Database::LogName("x11"), "x11_full",
                                     registry, options),
        "restore");
    pages_restored += report.pages_restored;
  }
  state.SetBytesProcessed(static_cast<int64_t>(pages_restored) *
                          static_cast<int64_t>(kPageSize));
}
BENCHMARK(BM_PosixRestore)
    ->ArgNames({"qd"})
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llb

BENCHMARK_MAIN();
