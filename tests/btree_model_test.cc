// Model-based random testing: the B-tree against a std::map reference
// model under mixed insert/replace/delete workloads, interleaved with
// flushes, checkpoints, crash recoveries, and on-line backups followed by
// full media recovery — the strongest end-to-end check in the suite.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "common/random.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions ModelDbOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 2048;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 4;
  return options;
}

class BtreeModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void CompareWholeTree(BTree* tree,
                        const std::map<int64_t, std::string>& model) {
    ASSERT_OK_AND_ASSIGN(uint64_t count, tree->Count());
    ASSERT_EQ(count, model.size());
    std::vector<std::pair<int64_t, std::string>> scanned;
    ASSERT_OK(tree->Scan(INT64_MIN + 1, INT64_MAX, &scanned));
    ASSERT_EQ(scanned.size(), model.size());
    auto it = model.begin();
    for (size_t i = 0; i < scanned.size(); ++i, ++it) {
      ASSERT_EQ(scanned[i].first, it->first);
      ASSERT_EQ(scanned[i].second, it->second);
    }
    if (!model.empty()) {
      ASSERT_OK_AND_ASSIGN(int64_t min_key, tree->MinKey());
      ASSERT_OK_AND_ASSIGN(int64_t max_key, tree->MaxKey());
      EXPECT_EQ(min_key, model.begin()->first);
      EXPECT_EQ(max_key, model.rbegin()->first);
    }
    ASSERT_OK(tree->CheckInvariants().status());
  }
};

TEST_P(BtreeModelTest, MixedWorkloadMatchesReferenceModel) {
  Random rng(GetParam());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(ModelDbOptions()));
  auto tree = std::make_unique<BTree>(engine->db(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  std::map<int64_t, std::string> model;

  const int kSteps = 900;
  for (int step = 0; step < kSteps; ++step) {
    double dice = rng.NextDouble();
    int64_t key = static_cast<int64_t>(rng.Uniform(1200));
    if (dice < 0.6) {
      std::string value = "v" + std::to_string(rng.Uniform(100000));
      ASSERT_OK(tree->Insert(key, value));
      model[key] = value;
    } else if (dice < 0.8) {
      Status s = tree->Delete(key);
      if (model.count(key)) {
        ASSERT_OK(s);
        model.erase(key);
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (dice < 0.9) {
      auto value = tree->Get(key);
      if (model.count(key)) {
        ASSERT_TRUE(value.ok());
        ASSERT_EQ(*value, model[key]);
      } else {
        ASSERT_TRUE(value.status().IsNotFound());
      }
    } else if (dice < 0.94) {
      ASSERT_OK(engine->db()->FlushAll());
    } else if (dice < 0.97) {
      ASSERT_OK(engine->db()->Checkpoint());
    } else {
      // Crash everything volatile and recover; the durable log has every
      // op (FlushAll/Checkpoint force it periodically) — but ops since
      // the last force are legitimately lost, so force first to keep the
      // model aligned.
      ASSERT_OK(engine->db()->ForceLog());
      tree.reset();
      ASSERT_OK(engine->CrashAndRecover());
      tree = std::make_unique<BTree>(engine->db(), 0, 0,
                                     SplitLogging::kLogical);
    }
  }
  CompareWholeTree(tree.get(), model);

  // On-line backup with more mutations mid-sweep, then media recovery.
  BackupJobOptions job;
  job.steps = 4;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 25; ++i) {
      int64_t key = static_cast<int64_t>(rng.Uniform(1200));
      if (rng.Bernoulli(0.7)) {
        std::string value = "m" + std::to_string(rng.Uniform(100000));
        LLB_RETURN_IF_ERROR(tree->Insert(key, value));
        model[key] = value;
      } else if (model.count(key)) {
        LLB_RETURN_IF_ERROR(tree->Delete(key));
        model.erase(key);
      }
    }
    return engine->db()->FlushAll();
  };
  ASSERT_OK(engine->db()->TakeBackupWithOptions("bk", job).status());
  ASSERT_OK(engine->db()->ForceLog());

  tree.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "bk", registry)
                .status());
  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  CompareWholeTree(&recovered, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeModelTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006, 7007, 8008));

}  // namespace
}  // namespace llb
