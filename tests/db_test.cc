#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "io/mem_env.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions SmallOptions() {
  DbOptions options;
  options.partitions = 2;
  options.pages_per_partition = 128;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  return options;
}

TEST(DatabaseTest, OpenValidatesOptions) {
  MemEnv env;
  DbOptions bad = SmallOptions();
  bad.partitions = 0;
  EXPECT_FALSE(Database::Open(&env, "db", bad).ok());
  bad = SmallOptions();
  bad.pages_per_partition = 0;
  EXPECT_FALSE(Database::Open(&env, "db", bad).ok());
}

TEST(DatabaseTest, NamingConventions) {
  EXPECT_EQ(Database::StableName("x"), "x.stable");
  EXPECT_EQ(Database::LogName("x"), "x.log");
}

TEST(DatabaseTest, RecoverOnFreshDatabaseIsNoOp) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(&env, "db", SmallOptions()));
  ASSERT_OK(db->Recover());
  EXPECT_EQ(db->log()->next_lsn(), 1u);
}

TEST(DatabaseTest, LsnsContinueAcrossReopen) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  ASSERT_OK(tree.Insert(1, Slice("x")));
  ASSERT_OK(engine->db()->ForceLog());
  Lsn before = engine->db()->log()->next_lsn();
  ASSERT_OK(engine->Reopen());
  EXPECT_EQ(engine->db()->log()->next_lsn(), before);
}

TEST(DatabaseTest, ExecuteRejectsUnregisteredOp) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       Database::Open(&env, "db", SmallOptions()));
  LogRecord rec;
  rec.op_code = 999;
  rec.writeset = {PageId{0, 1}};
  EXPECT_FALSE(db->Execute(&rec).ok());
}

TEST(DatabaseTest, BackupNamesAreIndependent) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest a, engine->db()->TakeBackup("a"));
  ASSERT_OK(tree.Insert(5, Slice("later")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest b, engine->db()->TakeBackup("b"));
  EXPECT_LT(a.start_lsn, b.start_lsn);
  ASSERT_OK_AND_ASSIGN(BackupManifest a_loaded,
                       BackupManifest::Load(engine->env(), "a"));
  EXPECT_EQ(a_loaded.start_lsn, a.start_lsn);
}

TEST(DatabaseTest, BackupStepsOverrideOptions) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  ASSERT_OK_AND_ASSIGN(BackupManifest m,
                       engine->db()->TakeBackup("bk", /*steps=*/3));
  EXPECT_EQ(m.steps, 3u);
}

TEST(DatabaseTest, StatsAccumulateAndReset) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 20; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  DbStats stats = engine->db()->GatherStats();
  EXPECT_GT(stats.cache.ops_applied, 20u);
  EXPECT_GT(stats.log.records, 20u);
  engine->db()->ResetStats();
  stats = engine->db()->GatherStats();
  EXPECT_EQ(stats.cache.ops_applied, 0u);
  EXPECT_EQ(stats.log.records, 0u);
}

TEST(DatabaseTest, CheckpointThenCrashRecoversFromCheckpoint) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 40; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->Checkpoint());
  for (int i = 40; i < 60; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  ASSERT_OK(engine->db()->ForceLog());
  ASSERT_OK(engine->CrashAndRecover());
  BTree reopened(engine->db(), 0, 0, SplitLogging::kLogical);
  for (int i = 0; i < 60; ++i) ASSERT_OK(reopened.Get(i).status());
}

TEST(DatabaseTest, IncrementalWithoutChangesCopiesNothing) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("base").status());
  ASSERT_OK_AND_ASSIGN(BackupManifest inc,
                       engine->db()->TakeIncrementalBackup("inc", "base"));
  EXPECT_TRUE(inc.pages.empty());
}

TEST(DatabaseTest, LogTruncationPreservesCrashRecoverability) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 50; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  uint64_t bytes_before = 0;
  {
    auto file = engine->env()->OpenFile(Database::LogName("db"), false);
    ASSERT_TRUE(file.ok());
    ASSERT_OK_AND_ASSIGN(bytes_before, (*file)->Size());
  }
  // Everything installed; no backups kept: the whole prefix can go.
  ASSERT_OK(engine->db()->TruncateLog(kInvalidLsn));
  {
    auto file = engine->env()->OpenFile(Database::LogName("db"), false);
    ASSERT_TRUE(file.ok());
    ASSERT_OK_AND_ASSIGN(uint64_t bytes_after, (*file)->Size());
    EXPECT_LT(bytes_after, bytes_before / 4);
  }
  // Activity + crash after truncation must still recover.
  for (int i = 50; i < 80; ++i) ASSERT_OK(tree.Insert(i, Slice("w")));
  ASSERT_OK(engine->db()->ForceLog());
  ASSERT_OK(engine->CrashAndRecover());
  BTree reopened(engine->db(), 0, 0, SplitLogging::kLogical);
  for (int i = 0; i < 80; ++i) ASSERT_OK(reopened.Get(i).status());
  ASSERT_OK(reopened.CheckInvariants().status());
}

TEST(DatabaseTest, LogTruncationKeepsBackupRestorable) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 60; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine->db()->TakeBackup("bk"));
  for (int i = 60; i < 90; ++i) ASSERT_OK(tree.Insert(i, Slice("w")));
  ASSERT_OK(engine->db()->FlushAll());
  // Keep the log back to the backup's start point.
  ASSERT_OK(engine->db()->TruncateLog(manifest.start_lsn));

  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 2));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "bk", registry)
                .status());
  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  for (int i = 0; i < 90; ++i) ASSERT_OK(recovered.Get(i).status());
}

TEST(DatabaseTest, ConcurrentBackupAndCheckpoint) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(SmallOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  for (int i = 0; i < 30; ++i) ASSERT_OK(tree.Insert(i, Slice("v")));
  BackupJobOptions job;
  job.steps = 4;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    LLB_RETURN_IF_ERROR(engine->db()->Checkpoint());
    return engine->db()->FlushAll();
  };
  ASSERT_OK(engine->db()->TakeBackupWithOptions("bk", job).status());
  ASSERT_OK(engine->CrashAndRecover());
  BTree reopened(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(reopened.CheckInvariants().status());
}

}  // namespace
}  // namespace llb
