#include <gtest/gtest.h>

#include <memory>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "btree/btree_ops.h"
#include "filestore/filestore.h"
#include "ops/operation.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions MediaDb(WriteGraphKind graph, BackupPolicy policy,
                  uint32_t pages = 512) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = pages;
  options.cache_pages = 48;
  options.graph = graph;
  options.backup_policy = policy;
  options.backup_steps = 4;
  return options;
}

/// Media-recovery oracle check: after restore-from-backup plus roll
/// forward, the stable database must equal full-log replay from scratch.
Status VerifyRestored(MemEnv* env, const std::string& db_name,
                      const DbOptions& options, const std::string& tag) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                       LogManager::Open(env, Database::LogName(db_name)));
  std::unique_ptr<PageStore> oracle;
  LLB_RETURN_IF_ERROR(testutil::BuildOracle(env, *log, registry,
                                            "oracle_" + tag,
                                            options.partitions, &oracle));
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName(db_name), options.partitions));
  std::string diff = testutil::DiffStores(*stable, *oracle,
                                          options.partitions,
                                          options.pages_per_partition);
  if (!diff.empty()) {
    return Status::Internal("restored state differs from oracle at page " +
                            diff);
  }
  return Status::OK();
}

TEST(MediaRecoveryTest, BtreeTreeOpsBackupConcurrentWithInserts) {
  DbOptions options = MediaDb(WriteGraphKind::kTree, BackupPolicy::kTree);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  auto tree = std::make_unique<BTree>(engine->db(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  for (; next_key < 300; ++next_key) {
    ASSERT_OK(tree->Insert((next_key * 53) % 5003, Slice("pre")));
  }
  ASSERT_OK(engine->db()->FlushAll());

  // On-line backup with inserts and flushes racing each step.
  BackupJobOptions job;
  job.steps = 4;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 60; ++i, ++next_key) {
      LLB_RETURN_IF_ERROR(
          tree->Insert((next_key * 53) % 5003, Slice("mid")));
    }
    return engine->db()->FlushAll();
  };
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine->db()->TakeBackupWithOptions("bk", job));
  EXPECT_TRUE(manifest.complete);
  // The backup protocol logged identity writes for unsafe flushes.
  EXPECT_GT(engine->db()->GatherStats().cache.decisions, 0u);

  // Post-backup activity that media recovery must roll forward over.
  for (int i = 0; i < 80; ++i, ++next_key) {
    ASSERT_OK(tree->Insert((next_key * 53) % 5003, Slice("post")));
  }
  ASSERT_OK(engine->db()->ForceLog());
  uint64_t expected_records = 0;
  {
    ASSERT_OK_AND_ASSIGN(BtreeCheckReport report, tree->CheckInvariants());
    expected_records = report.records;
  }

  // MEDIA FAILURE: destroy the whole stable database.
  tree.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }

  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK_AND_ASSIGN(
      MediaRecoveryReport report,
      RestoreFromBackup(engine->env(), Database::StableName("db"),
                        Database::LogName("db"), "bk", registry));
  EXPECT_GT(report.pages_restored, 0u);
  ASSERT_OK(VerifyRestored(engine->env(), "db", options, "btree"));

  // The restored database is fully usable.
  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK_AND_ASSIGN(BtreeCheckReport check, recovered.CheckInvariants());
  EXPECT_EQ(check.records, expected_records);
}

TEST(MediaRecoveryTest, GeneralOpsBackupConcurrentWithCopies) {
  DbOptions options = MediaDb(WriteGraphKind::kGeneral,
                              BackupPolicy::kGeneral);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  auto files = std::make_unique<FileStore>(engine->db(), 0, 0, 2, 32);
  ASSERT_OK(files->WriteValues(0, {9, 1, 8, 2, 7, 3}));
  ASSERT_OK(engine->db()->FlushAll());

  int round = 0;
  BackupJobOptions job;
  job.steps = 4;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    for (int i = 0; i < 8; ++i, ++round) {
      LLB_RETURN_IF_ERROR(files->Copy(round % 4, 4 + (round % 6)));
      LLB_RETURN_IF_ERROR(files->Transform(round % 4, round));
    }
    return engine->db()->FlushAll();
  };
  ASSERT_OK(engine->db()->TakeBackupWithOptions("bk", job).status());

  for (int i = 0; i < 10; ++i, ++round) {
    ASSERT_OK(files->SortInto(4 + (round % 6), 20));
  }
  ASSERT_OK(engine->db()->ForceLog());

  files.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "bk", registry)
                .status());
  ASSERT_OK(VerifyRestored(engine->env(), "db", options, "general"));
}

// The paper's Figure 1: with logical operations and a NAIVE fuzzy dump
// (no Iw/oF), a split whose new page was already swept while the old
// page's truncation reaches the backup leaves the moved records nowhere.
// The backup is unrecoverable. The same schedule under the paper's
// protocol restores correctly.
class Figure1Schedule {
 public:
  static constexpr uint32_t kOldPage = 60;  // high position: swept late
  static constexpr uint32_t kNewPage = 5;   // low position: swept early

  static Status Run(TestEngine* engine, const std::string& backup_name) {
    Database* db = engine->db();
    // A full leaf at kOldPage, flushed to S before backup.
    PageImage leaf;
    btree_node::InitLeaf(&leaf, 0);
    for (int64_t k = 1; k <= 10; ++k) {
      btree_node::LeafInsert(&leaf, k, Slice("rec"));
    }
    LogRecord init = MakePhysicalWrite(PageId{0, kOldPage}, leaf);
    LLB_RETURN_IF_ERROR(db->Execute(&init));
    LLB_RETURN_IF_ERROR(db->FlushAll());

    // Backup in 2 steps over 100 pages: step 1 copies [0, 50) (captures
    // the stale kNewPage), step 2 copies [50, 100). The split happens in
    // step 2's doubt window: MovRec(old -> new), RmvRec(old), then both
    // pages are flushed to S. kNewPage is Done (it will NOT reach B);
    // kOldPage is in Doubt and its truncated image WILL reach B.
    BackupJobOptions job;
    job.steps = 2;
    job.mid_step = [db](PartitionId, uint32_t step) -> Status {
      if (step != 2) return Status::OK();
      LogRecord mov =
          MakeBtreeMovRec(PageId{0, kOldPage}, PageId{0, kNewPage}, 5);
      LLB_RETURN_IF_ERROR(db->Execute(&mov));
      LogRecord rmv = MakeBtreeRmvRec(PageId{0, kOldPage}, 5, kNewPage);
      LLB_RETURN_IF_ERROR(db->Execute(&rmv));
      // Flush order respected for S: new before old.
      LLB_RETURN_IF_ERROR(db->FlushPage(PageId{0, kNewPage}));
      return db->FlushPage(PageId{0, kOldPage});
    };
    return db->TakeBackupWithOptions(backup_name, job).status();
  }
};

TEST(MediaRecoveryTest, Figure1NaiveFuzzyDumpIsUnrecoverable) {
  DbOptions options = MediaDb(WriteGraphKind::kTree, BackupPolicy::kNaive,
                              /*pages=*/100);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  ASSERT_OK(Figure1Schedule::Run(engine.get(), "naive_bk"));
  EXPECT_EQ(engine->db()->GatherStats().cache.identity_writes, 0u);
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "naive_bk", registry)
                .status());
  // The restored state is WRONG: the records moved to kNewPage are gone.
  Status verify = VerifyRestored(engine->env(), "db", options, "naive");
  EXPECT_FALSE(verify.ok()) << "naive fuzzy dump should NOT be recoverable";

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), 1));
  PageImage new_page;
  ASSERT_OK(stable->ReadPage(PageId{0, Figure1Schedule::kNewPage},
                             &new_page));
  // Replay of MovRec read the truncated old page: the moved records
  // (keys 6..10) were regenerated from nothing.
  EXPECT_EQ(btree_node::Count(new_page), 0u);
}

TEST(MediaRecoveryTest, Figure1TreePolicyRecovers) {
  DbOptions options = MediaDb(WriteGraphKind::kTree, BackupPolicy::kTree,
                              /*pages=*/100);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  ASSERT_OK(Figure1Schedule::Run(engine.get(), "safe_bk"));
  // The protocol detected the hazard and logged the new page (Iw/oF).
  EXPECT_GT(engine->db()->GatherStats().cache.identity_writes, 0u);
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "safe_bk", registry)
                .status());
  ASSERT_OK(VerifyRestored(engine->env(), "db", options, "safe"));

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), 1));
  PageImage new_page;
  ASSERT_OK(stable->ReadPage(PageId{0, Figure1Schedule::kNewPage},
                             &new_page));
  EXPECT_EQ(btree_node::Count(new_page), 5u);  // keys 6..10 present
}

TEST(MediaRecoveryTest, IncrementalChainRestores) {
  DbOptions options = MediaDb(WriteGraphKind::kTree, BackupPolicy::kTree);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  auto tree = std::make_unique<BTree>(engine->db(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  for (int64_t k = 0; k < 200; ++k) ASSERT_OK(tree->Insert(k, Slice("a")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("full").status());

  for (int64_t k = 200; k < 260; ++k) ASSERT_OK(tree->Insert(k, Slice("b")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK_AND_ASSIGN(
      BackupManifest inc1,
      engine->db()->TakeIncrementalBackup("inc1", "full"));
  EXPECT_TRUE(inc1.incremental);
  EXPECT_GT(inc1.pages.size(), 0u);
  EXPECT_LT(inc1.pages.size(),
            uint64_t{options.pages_per_partition});  // only deltas

  for (int64_t k = 260; k < 300; ++k) ASSERT_OK(tree->Insert(k, Slice("c")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()
                ->TakeIncrementalBackup("inc2", "inc1")
                .status());

  for (int64_t k = 300; k < 330; ++k) ASSERT_OK(tree->Insert(k, Slice("d")));
  ASSERT_OK(engine->db()->ForceLog());

  tree.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK_AND_ASSIGN(
      MediaRecoveryReport report,
      RestoreFromBackup(engine->env(), Database::StableName("db"),
                        Database::LogName("db"), "inc2", registry));
  EXPECT_EQ(report.backups_applied, 3u);
  ASSERT_OK(VerifyRestored(engine->env(), "db", options, "inc"));

  ASSERT_OK(engine->Reopen());
  BTree recovered(engine->db(), 0, 0, SplitLogging::kLogical);
  for (int64_t k = 0; k < 330; ++k) {
    Result<std::string> value = recovered.Get(k);
    ASSERT_TRUE(value.ok()) << "key " << k << ": "
                            << value.status().ToString();
  }
}

TEST(MediaRecoveryTest, OlderBackupStillRestoresAfterMoreActivity) {
  DbOptions options = MediaDb(WriteGraphKind::kTree, BackupPolicy::kTree);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  auto tree = std::make_unique<BTree>(engine->db(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  for (int64_t k = 0; k < 100; ++k) ASSERT_OK(tree->Insert(k, Slice("x")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("old_bk").status());
  // A lot more activity, including another backup.
  for (int64_t k = 100; k < 400; ++k) ASSERT_OK(tree->Insert(k, Slice("y")));
  ASSERT_OK(engine->db()->FlushAll());
  ASSERT_OK(engine->db()->TakeBackup("new_bk").status());
  for (int64_t k = 400; k < 450; ++k) ASSERT_OK(tree->Insert(k, Slice("z")));
  ASSERT_OK(engine->db()->ForceLog());

  tree.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    ASSERT_OK(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  // Restoring from the OLDER backup must also reach the current state
  // (the log since its start point is all still there).
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "old_bk", registry)
                .status());
  ASSERT_OK(VerifyRestored(engine->env(), "db", options, "older"));
}

TEST(MediaRecoveryTest, RestoreIncompleteBackupRefused) {
  MemEnv env;
  BackupManifest m;
  m.name = "partial";
  m.partitions = 1;
  m.pages_per_partition = 4;
  m.complete = false;
  ASSERT_OK(m.Save(&env));
  OpRegistry registry;
  Status s = RestoreFromBackup(&env, "s", "log", "partial", registry).status();
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace llb
