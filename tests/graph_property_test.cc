// Randomized property tests over the write graphs: feed long random
// operation/install/identity-write sequences and check the structural
// invariants the recovery argument rests on (paper section 2).

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "recovery/general_write_graph.h"
#include "recovery/tree_write_graph.h"
#include "tests/test_util.h"

namespace llb {
namespace {

PageId P(uint32_t page) { return PageId{0, page}; }

LogRecord Op(Lsn lsn, std::vector<PageId> reads, std::vector<PageId> writes) {
  LogRecord rec;
  rec.lsn = lsn;
  rec.op_code = kOpFileCopy;
  rec.readset = std::move(reads);
  rec.writeset = std::move(writes);
  return rec;
}

class GeneralGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneralGraphPropertyTest, RandomSequencesKeepInvariants) {
  Random rng(GetParam());
  GeneralWriteGraph graph;
  Lsn lsn = 1;
  std::unordered_set<PageId, PageIdHash> maybe_tracked;

  for (int step = 0; step < 600; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      // Random op: 0-2 reads, 1-2 writes over 64 pages.
      std::vector<PageId> reads, writes;
      int nreads = static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < nreads; ++i) {
        reads.push_back(P(static_cast<uint32_t>(rng.Uniform(64))));
      }
      writes.push_back(P(static_cast<uint32_t>(rng.Uniform(64))));
      if (rng.Bernoulli(0.4)) {
        PageId extra = P(static_cast<uint32_t>(rng.Uniform(64)));
        if (extra != writes[0]) writes.push_back(extra);
      }
      graph.OnOperation(Op(lsn++, reads, writes));
      for (const PageId& w : writes) maybe_tracked.insert(w);
    } else if (dice < 0.75 && !maybe_tracked.empty()) {
      // Install-without-flush, the way the cache manager sequences it:
      // plan the node, then per unit identity-write every var before
      // retiring the unit (identity writes are only legal inside the
      // install flow — predecessors must already be installed).
      for (const PageId& x : maybe_tracked) {
        if (!graph.IsTracked(x)) continue;
        std::vector<InstallUnit> plan;
        ASSERT_OK(graph.PlanInstall(x, &plan));
        for (const InstallUnit& unit : plan) {
          for (const PageId& v : unit.vars) graph.OnIdentityWrite(v, lsn++);
          graph.MarkInstalled(unit.node_id);
        }
        ASSERT_FALSE(graph.IsTracked(x));
        break;
      }
    } else if (!maybe_tracked.empty()) {
      // Install a random page's node via its plan.
      for (const PageId& x : maybe_tracked) {
        if (!graph.IsTracked(x)) continue;
        std::vector<InstallUnit> plan;
        ASSERT_OK(graph.PlanInstall(x, &plan));
        // INVARIANT: the plan is a valid topological order — when a unit
        // is installed, no live predecessor remains.
        for (const InstallUnit& unit : plan) {
          graph.MarkInstalled(unit.node_id);
        }
        ASSERT_FALSE(graph.IsTracked(x));
        break;
      }
    }

    // INVARIANT: every tracked page's plan terminates (acyclic) and ends
    // with its own node containing it.
    if (step % 97 == 0) {
      for (const PageId& x : maybe_tracked) {
        if (!graph.IsTracked(x)) continue;
        std::vector<InstallUnit> plan;
        ASSERT_OK(graph.PlanInstall(x, &plan));
        ASSERT_FALSE(plan.empty());
        bool found = false;
        for (const PageId& v : plan.back().vars) found |= (v == x);
        ASSERT_TRUE(found) << "plan tail does not own " << x.ToString();
        // No node appears twice.
        std::unordered_set<uint64_t> ids;
        for (const InstallUnit& unit : plan) {
          ASSERT_TRUE(ids.insert(unit.node_id).second);
        }
      }
    }
  }

  // Drain: everything installable; graph empties; redo start returns to
  // next_lsn.
  for (const PageId& x : maybe_tracked) {
    if (!graph.IsTracked(x)) continue;
    std::vector<InstallUnit> plan;
    ASSERT_OK(graph.PlanInstall(x, &plan));
    for (const InstallUnit& unit : plan) graph.MarkInstalled(unit.node_id);
  }
  EXPECT_EQ(graph.NumNodes(), 0u);
  EXPECT_EQ(graph.RedoStartLsn(lsn), lsn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralGraphPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class TreeGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeGraphPropertyTest, RandomSplitForestsKeepInvariants) {
  Random rng(GetParam());
  TreeWriteGraph graph;
  Lsn lsn = 1;
  std::vector<uint32_t> written;  // update targets
  uint32_t next_fresh = 1000;    // never-written ids
  written.push_back(0);
  graph.OnOperation(Op(lsn++, {P(0)}, {P(0)}));

  for (int step = 0; step < 500; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.4) {
      // Write-new from a random existing page (split-like).
      uint32_t old_page = written[rng.Uniform(written.size())];
      uint32_t new_page = next_fresh++;
      graph.OnOperation(Op(lsn++, {P(old_page)}, {P(new_page)}));
      written.push_back(new_page);
    } else if (dice < 0.7) {
      // Page-oriented update of a random page.
      uint32_t page = written[rng.Uniform(written.size())];
      graph.OnOperation(Op(lsn++, {P(page)}, {P(page)}));
    } else {
      // Install a random tracked page (plan + mark) — must terminate
      // without cycles (forest property).
      uint32_t page = written[rng.Uniform(written.size())];
      if (!graph.IsTracked(P(page))) continue;
      std::vector<InstallUnit> plan;
      ASSERT_OK(graph.PlanInstall(P(page), &plan));
      ASSERT_FALSE(plan.empty());
      // INVARIANT: singleton vars; target last.
      for (const InstallUnit& unit : plan) {
        ASSERT_LE(unit.vars.size(), 1u);
      }
      ASSERT_EQ(plan.back().vars, std::vector<PageId>{P(page)});
      for (const InstallUnit& unit : plan) graph.MarkInstalled(unit.node_id);
      ASSERT_FALSE(graph.IsTracked(P(page)));
    }
  }

  // Every remaining page installable; the graph drains.
  for (uint32_t page : written) {
    if (!graph.IsTracked(P(page))) continue;
    std::vector<InstallUnit> plan;
    ASSERT_OK(graph.PlanInstall(P(page), &plan));
    for (const InstallUnit& unit : plan) graph.MarkInstalled(unit.node_id);
  }
  EXPECT_EQ(graph.RedoStartLsn(lsn), lsn);
  WriteGraphStats stats = graph.GetStats();
  EXPECT_EQ(stats.nodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeGraphPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace llb
