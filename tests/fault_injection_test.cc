// Transient-fault robustness: FaultyEnv injection, BackupJob retry and
// resume, and BackupScrubber verification/repair, end to end against the
// full-log oracle.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "backup/backup_job.h"
#include "backup/backup_scrubber.h"
#include "backup/backup_store.h"
#include "btree/btree.h"
#include "io/durable_cursor.h"
#include "io/fault_env.h"
#include "io/faulty_env.h"
#include "io/mem_env.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "tests/test_util.h"

namespace llb {
namespace {

// ---------- FaultyEnv unit tests ----------

TEST(FaultyEnvTest, PassThroughWithoutPolicy) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("f", true));
  ASSERT_OK(file->WriteAt(0, Slice("hello")));
  ASSERT_OK(file->Sync());
  std::string out;
  ASSERT_OK(file->ReadAt(0, 5, &out));
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(env.stats().total_failures(), 0u);
  EXPECT_EQ(env.stats().corruptions, 0u);
}

TEST(FaultyEnvTest, ScriptedPointFiresOnceThenDisarms) {
  MemEnv base;
  FaultyEnv env(&base);
  ScriptedFaultPolicy policy({{FaultOp::kWriteAt, "", 2, FaultAction::kFail}});
  env.SetPolicy(&policy);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("f", true));
  ASSERT_OK(file->WriteAt(0, Slice("a")));           // write #1: clean
  Status s = file->WriteAt(1, Slice("b"));           // write #2: fails
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  ASSERT_OK(file->WriteAt(1, Slice("b")));           // transient: works now
  EXPECT_EQ(policy.fired(), 1u);
  EXPECT_EQ(env.stats().write_faults, 1u);
}

TEST(FaultyEnvTest, ReadCorruptionFlipsOneBitSilently) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> file, env.OpenFile("f", true));
  ASSERT_OK(file->WriteAt(0, Slice("hello world")));
  ScriptedFaultPolicy policy({{FaultOp::kReadAt, "", 1, FaultAction::kCorrupt}});
  env.SetPolicy(&policy);
  std::string rotten;
  ASSERT_OK(file->ReadAt(0, 11, &rotten));  // silently corrupt
  std::string clean;
  ASSERT_OK(file->ReadAt(0, 11, &clean));   // point disarmed
  EXPECT_EQ(clean, "hello world");
  ASSERT_EQ(rotten.size(), clean.size());
  int diffs = 0;
  for (size_t i = 0; i < clean.size(); ++i) diffs += rotten[i] != clean[i];
  EXPECT_EQ(diffs, 1);
  EXPECT_EQ(env.stats().corruptions, 1u);
}

TEST(FaultyEnvTest, ScopingLimitsFaultsToMatchingFiles) {
  MemEnv base;
  FaultyEnv env(&base);
  ScriptedFaultPolicy policy(
      {{FaultOp::kSync, "victim", 1, FaultAction::kFail}});
  env.SetPolicy(&policy);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> other, env.OpenFile("other", true));
  ASSERT_OK(other->Sync());  // different file: unaffected
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> victim,
                       env.OpenFile("victim.p0", true));
  EXPECT_TRUE(victim->Sync().IsIoError());
  EXPECT_OK(victim->Sync());
}

TEST(FaultyEnvTest, RandomPolicyIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MemEnv base;
    FaultyEnv env(&base);
    RandomFaultPolicy::Probabilities p;
    p.write_error = 0.3;
    RandomFaultPolicy policy(seed, p);
    env.SetPolicy(&policy);
    auto file_or = env.OpenFile("f", true);
    EXPECT_TRUE(file_or.ok());
    for (int i = 0; i < 200; ++i) {
      (void)(*file_or)->WriteAt(0, Slice("x"));
    }
    return env.stats().write_faults;
  };
  uint64_t a = run(17), b = run(17), c = run(99);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
  EXPECT_LT(a, 200u);
  (void)c;  // different seed may or may not differ; just must not crash
}

// Satellite regression: CrashAtEventInjector(0) used to wrap to
// UINT64_MAX allowed events and never fire.
TEST(CrashAtEventInjectorTest, ZeroClampsToImmediateCrash) {
  CrashAtEventInjector zero(0);
  EXPECT_FALSE(zero.AllowDurableEvent());
  CrashAtEventInjector first(1);
  EXPECT_FALSE(first.AllowDurableEvent());
  CrashAtEventInjector third(3);
  EXPECT_TRUE(third.AllowDurableEvent());
  EXPECT_TRUE(third.AllowDurableEvent());
  EXPECT_FALSE(third.AllowDurableEvent());
}

// ---------- BackupCursor unit tests ----------

TEST(BackupCursorTest, SaveLoadRoundTrip) {
  MemEnv env;
  BackupCursor c;
  c.backup_name = "bk";
  c.partitions = 3;
  c.pages_per_partition = 64;
  c.steps = 4;
  c.next_page = {16, 64, 0};
  ASSERT_OK(c.Save(&env));
  ASSERT_OK_AND_ASSIGN(BackupCursor loaded, BackupCursor::Load(&env, "bk"));
  EXPECT_EQ(loaded.backup_name, "bk");
  EXPECT_EQ(loaded.partitions, 3u);
  EXPECT_EQ(loaded.pages_per_partition, 64u);
  EXPECT_EQ(loaded.steps, 4u);
  EXPECT_EQ(loaded.next_page, c.next_page);
}

TEST(BackupCursorTest, CorruptCursorDetected) {
  MemEnv env;
  BackupCursor c;
  c.backup_name = "bk";
  c.partitions = 1;
  c.next_page = {7};
  ASSERT_OK(c.Save(&env));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("bk.cursor", false));
  ASSERT_OK(f->WriteAt(6, Slice("Z")));
  EXPECT_FALSE(BackupCursor::Load(&env, "bk").ok());
}

TEST(BackupCursorTest, RemoveMissingIsOk) {
  MemEnv env;
  EXPECT_OK(BackupCursor::Remove(&env, "never-saved"));
}

// ---------- DurableCursor under injected faults ----------
//
// Every cursor-cell user (backup cursor, ship cursor, restored-bitmap)
// leans on the same two promises: a failed Save leaves the previous
// payload loadable, and a torn tmp write can never surface as a clean
// Load. Exercise both through FaultyEnv.

TEST(DurableCursorFaultTest, FailedTmpWriteKeepsPreviousPayload) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v1")));

  ScriptedFaultPolicy policy(
      {{FaultOp::kWriteAt, "cell.tmp", 1, FaultAction::kFail}});
  env.SetPolicy(&policy);
  Status s = DurableCursor::Save(&env, "cell", Slice("v2"));
  env.SetPolicy(nullptr);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_EQ(policy.fired(), 1u);

  // The fault hit the tmp file before the rename: the cell still reads
  // as v1, and the very next Save (transient fault gone) lands v2.
  ASSERT_OK_AND_ASSIGN(std::string payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v1");
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v2")));
  ASSERT_OK_AND_ASSIGN(payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v2");
}

TEST(DurableCursorFaultTest, FailedTmpSyncKeepsPreviousPayload) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v1")));

  ScriptedFaultPolicy policy(
      {{FaultOp::kSync, "cell.tmp", 1, FaultAction::kFail}});
  env.SetPolicy(&policy);
  EXPECT_TRUE(DurableCursor::Save(&env, "cell", Slice("v2")).IsIoError());
  env.SetPolicy(nullptr);

  ASSERT_OK_AND_ASSIGN(std::string payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v1");
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v2")));
  ASSERT_OK_AND_ASSIGN(payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v2");
}

TEST(DurableCursorFaultTest, TornTmpWriteIsCaughtByCrcNotServed) {
  MemEnv base;
  FaultyEnv env(&base);
  // A silent bit-flip on the tmp write: Save itself reports success (the
  // rot is silent by construction) — the crc trailer must catch it at
  // Load instead of serving a torn payload as clean.
  ScriptedFaultPolicy policy(
      {{FaultOp::kWriteAt, "cell.tmp", 1, FaultAction::kCorrupt}});
  env.SetPolicy(&policy);
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("payload-v1")));
  env.SetPolicy(nullptr);
  EXPECT_EQ(policy.fired(), 1u);

  Status s = DurableCursor::Load(&env, "cell").status();
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();

  // Re-saving over the rotten cell heals it.
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("payload-v2")));
  ASSERT_OK_AND_ASSIGN(std::string payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "payload-v2");
}

TEST(DurableCursorFaultTest, ReadFaultIsTransient) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v1")));
  ScriptedFaultPolicy policy(
      {{FaultOp::kReadAt, "cell", 1, FaultAction::kFail}});
  env.SetPolicy(&policy);
  EXPECT_TRUE(DurableCursor::Load(&env, "cell").status().IsIoError());
  ASSERT_OK_AND_ASSIGN(std::string payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v1");
}

TEST(DurableCursorFaultTest, OrphanTmpFromCrashBeforeRenameIsHarmless) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v1")));
  // A crash between sync and rename leaves a fully-written "<name>.tmp"
  // next to the cell. Loads must keep serving the old payload, and the
  // next Save must overwrite the orphan, not trip over it.
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> tmp,
                         env.OpenFile("cell.tmp", true));
    ASSERT_OK(tmp->WriteAt(0, Slice("half-written garbage")));
  }
  ASSERT_OK_AND_ASSIGN(std::string payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v1");
  ASSERT_OK(DurableCursor::Save(&env, "cell", Slice("v2")));
  ASSERT_OK_AND_ASSIGN(payload, DurableCursor::Load(&env, "cell"));
  EXPECT_EQ(payload, "v2");
  EXPECT_FALSE(env.FileExists("cell.tmp"));
}

// ---------- end-to-end fixtures ----------

DbOptions SmallDb() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 128;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  options.backup_steps = 4;
  return options;
}

/// A Database opened over MemEnv wrapped in a FaultyEnv, so tests can
/// inject transient faults into any engine file operation. (TestEngine
/// hardcodes a bare MemEnv, hence the manual wiring.)
struct FaultyEngine {
  MemEnv base;
  FaultyEnv env{&base};
  std::unique_ptr<Database> db;

  Status Open(const DbOptions& options) {
    LLB_ASSIGN_OR_RETURN(db, Database::Open(&env, "db", options));
    RegisterAllOps(db->registry());
    return db->Recover();
  }
};

Status Populate(Database* db, BTree* tree, int64_t* next_key, int count,
                const char* tag) {
  for (int i = 0; i < count; ++i, ++*next_key) {
    LLB_RETURN_IF_ERROR(tree->Insert((*next_key * 53) % 5003, Slice(tag)));
  }
  return db->FlushAll();
}

/// Oracle check: the stable database must equal full-log re-execution.
Status VerifyStable(Env* env, uint32_t partitions, uint32_t pages,
                    const std::string& tag) {
  OpRegistry registry;
  RegisterAllOps(&registry);
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<LogManager> log,
                       LogManager::Open(env, Database::LogName("db")));
  std::unique_ptr<PageStore> oracle;
  LLB_RETURN_IF_ERROR(testutil::BuildOracle(env, *log, registry,
                                            "oracle_" + tag, partitions,
                                            &oracle));
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName("db"), partitions));
  std::string diff = testutil::DiffStores(*stable, *oracle, partitions, pages);
  if (!diff.empty()) {
    return Status::Internal("stable state differs from oracle at page " +
                            diff);
  }
  return Status::OK();
}

/// Wipes S and media-recovers it from `backup`, then oracle-verifies.
Status WipeRestoreVerify(Env* env, const std::string& backup,
                         uint32_t partitions, uint32_t pages,
                         const std::string& tag) {
  {
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(env, Database::StableName("db"), partitions));
    for (PartitionId p = 0; p < partitions; ++p) {
      LLB_RETURN_IF_ERROR(stable->WipePartition(p));
    }
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  LLB_ASSIGN_OR_RETURN(
      MediaRecoveryReport report,
      RestoreFromBackup(env, Database::StableName("db"),
                        Database::LogName("db"), backup, registry));
  if (report.pages_restored == 0) {
    return Status::Internal("restore copied no pages");
  }
  return VerifyStable(env, partitions, pages, tag);
}

// ---------- retry ----------

TEST(FaultInjectionTest, RetryAbsorbsEveryTransientFaultKind) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 2000, "pre"));

  // One fault of each kind, at distinct points of the sweep: a stable
  // read error, a backup write error, a backup sync error, and a silent
  // bit-flip on a stable read (caught by the page CRC, then retried).
  ScriptedFaultPolicy policy;
  policy.Add({FaultOp::kReadAt, ".stable", 10, FaultAction::kFail});
  policy.Add({FaultOp::kWriteAt, "bk.pages", 50, FaultAction::kFail});
  policy.Add({FaultOp::kSync, "bk.pages", 70, FaultAction::kFail});
  policy.Add({FaultOp::kReadAt, ".stable", 30, FaultAction::kCorrupt});
  engine.env.SetPolicy(&policy);

  BackupJobOptions job;
  job.steps = 4;
  job.retry.max_retries = 2;
  BackupJobStats stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine.db->TakeBackupWithOptions("bk", job, &stats));
  engine.env.SetPolicy(nullptr);

  EXPECT_TRUE(manifest.complete);
  EXPECT_EQ(policy.fired(), 4u);
  // Every injected fault was observed and absorbed by exactly one retry.
  EXPECT_EQ(stats.io_faults, 4u);
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_EQ(engine.env.stats().total_failures(), 3u);
  EXPECT_EQ(engine.env.stats().corruptions, 1u);

  ASSERT_OK_AND_ASSIGN(ScrubReport report, engine.db->VerifyBackup("bk"));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.pages_scanned, 128u);

  tree.reset();
  engine.db.reset();
  ASSERT_OK(WipeRestoreVerify(&engine.env, "bk", 1, 128, "retry"));
}

// ---------- abort + resume, one scripted fault point per IO kind ----------

struct FaultCase {
  const char* name;
  FaultPoint point;
};

TEST(FaultInjectionTest, EveryFaultPointAbortsCleanlyAndResumes) {
  // Countdowns land in the sweep's second step (pages 32..63 of 128 in 4
  // steps), so the persisted cursor has real progress to skip on resume.
  const FaultCase kCases[] = {
      {"stable-read-error",
       {FaultOp::kReadAt, ".stable", 40, FaultAction::kFail}},
      {"backup-write-error",
       {FaultOp::kWriteAt, "bk.pages", 40, FaultAction::kFail}},
      {"backup-sync-error",
       {FaultOp::kSync, "bk.pages", 40, FaultAction::kFail}},
      {"stable-read-bitflip",
       {FaultOp::kReadAt, ".stable", 40, FaultAction::kCorrupt}},
  };
  for (const FaultCase& c : kCases) {
    SCOPED_TRACE(c.name);
    FaultyEngine engine;
    ASSERT_OK(engine.Open(SmallDb()));
    auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                        SplitLogging::kLogical);
    ASSERT_OK(tree->Create());
    int64_t next_key = 0;
    ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 2000, "pre"));

    // No retries: the single fault must abort the run cleanly.
    ScriptedFaultPolicy policy({c.point});
    engine.env.SetPolicy(&policy);
    BackupJobOptions job;
    job.steps = 4;
    BackupJobStats run_stats;
    Result<BackupManifest> run =
        engine.db->TakeBackupWithOptions("bk", job, &run_stats);
    engine.env.SetPolicy(nullptr);
    ASSERT_FALSE(run.ok()) << "injected fault did not abort the sweep";
    EXPECT_EQ(policy.fired(), 1u);
    EXPECT_EQ(run_stats.io_faults, 1u);
    EXPECT_EQ(run_stats.retries, 0u);

    // The aborted backup is not usable as-is: the manifest says so, and
    // the scrubber refuses it.
    ASSERT_OK_AND_ASSIGN(BackupManifest aborted,
                         BackupManifest::Load(&engine.env, "bk"));
    EXPECT_FALSE(aborted.complete);
    EXPECT_FALSE(engine.db->VerifyBackup("bk").ok());

    // Update activity between abort and resume: the fences stayed up, so
    // flushes into already-copied regions keep being identity-logged —
    // this is what makes the resumed backup's fence math stay correct.
    ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 60, "mid"));

    BackupJobStats resume_stats;
    ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                         engine.db->ResumeBackup("bk", job, &resume_stats));
    EXPECT_TRUE(manifest.complete);
    EXPECT_EQ(manifest.start_lsn, aborted.start_lsn);
    EXPECT_EQ(resume_stats.partitions_resumed, 1u);
    EXPECT_EQ(resume_stats.pages_skipped_on_resume, 32u);

    ASSERT_OK_AND_ASSIGN(ScrubReport report, engine.db->VerifyBackup("bk"));
    EXPECT_TRUE(report.clean());

    // Post-backup updates, then full media recovery from the resumed
    // backup, checked against the full-log oracle.
    ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 40, "post"));
    ASSERT_OK(engine.db->ForceLog());
    tree.reset();
    engine.db.reset();
    ASSERT_OK(WipeRestoreVerify(&engine.env, "bk", 1, 128,
                                std::string("resume_") + c.name));
  }
}

TEST(FaultInjectionTest, IncrementalBackupResumesAndChainRestores) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 250, "pre"));
  ASSERT_OK_AND_ASSIGN(BackupManifest base,
                       engine.db->TakeBackup("bk_full"));
  EXPECT_TRUE(base.complete);

  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 80, "delta"));

  // Fault the incremental's second page write into B; no retries.
  ScriptedFaultPolicy policy(
      {{FaultOp::kWriteAt, "bk_incr.pages", 2, FaultAction::kFail}});
  engine.env.SetPolicy(&policy);
  Result<BackupManifest> run =
      engine.db->TakeIncrementalBackup("bk_incr", "bk_full");
  engine.env.SetPolicy(nullptr);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(policy.fired(), 1u);

  // Resume re-reads the page list from the incomplete manifest.
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       engine.db->ResumeBackup("bk_incr"));
  EXPECT_TRUE(manifest.complete);
  EXPECT_TRUE(manifest.incremental);
  EXPECT_GT(manifest.pages.size(), 0u);

  // Chain scrub walks incremental + base.
  ASSERT_OK_AND_ASSIGN(ScrubReport report, engine.db->VerifyBackup("bk_incr"));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.manifests_checked, 2u);

  ASSERT_OK(engine.db->ForceLog());
  tree.reset();
  engine.db.reset();
  ASSERT_OK(WipeRestoreVerify(&engine.env, "bk_incr", 1, 128, "incr"));
}

TEST(FaultInjectionTest, ResumeRejectsCompleteBackup) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 50, "pre"));
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest, engine.db->TakeBackup("bk"));
  EXPECT_TRUE(manifest.complete);
  Status s = engine.db->ResumeBackup("bk").status();
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
}

TEST(FaultInjectionTest, ResumeRejectsMismatchedCursorGeometry) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  BackupManifest m;
  m.name = "badbk";
  m.partitions = 1;
  m.pages_per_partition = 128;
  m.steps = 4;
  ASSERT_OK(m.Save(&engine.env));
  BackupCursor c;
  c.backup_name = "badbk";
  c.partitions = 1;
  c.pages_per_partition = 64;  // does not match manifest / job geometry
  c.steps = 4;
  c.next_page = {0};
  ASSERT_OK(c.Save(&engine.env));
  Status s = engine.db->ResumeBackup("badbk").status();
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
}

// ---------- scrub: detection and repair ----------

TEST(FaultInjectionTest, ScrubDetectsAndRepairsInjectedBitRot) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 250, "pre"));

  // A silent bit-flip on the 20th page write into B: the backup
  // "completes" successfully while carrying a corrupt page.
  ScriptedFaultPolicy policy(
      {{FaultOp::kWriteAt, "bk.pages", 20, FaultAction::kCorrupt}});
  engine.env.SetPolicy(&policy);
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest, engine.db->TakeBackup("bk"));
  engine.env.SetPolicy(nullptr);
  EXPECT_TRUE(manifest.complete);
  EXPECT_EQ(policy.fired(), 1u);

  // Verify-only: the rot is detected, nothing is mutated.
  ASSERT_OK_AND_ASSIGN(ScrubReport verify, engine.db->VerifyBackup("bk"));
  EXPECT_FALSE(verify.clean());
  EXPECT_EQ(verify.bad_pages, 1u);
  EXPECT_EQ(verify.repaired_from_stable + verify.repaired_from_log, 0u);

  // Repair: the page is re-copied from S under the fence protocol.
  ASSERT_OK_AND_ASSIGN(ScrubReport repair, engine.db->ScrubBackup("bk"));
  EXPECT_EQ(repair.bad_pages, 1u);
  EXPECT_EQ(repair.repaired_from_stable, 1u);
  EXPECT_TRUE(repair.fully_repaired());

  ASSERT_OK_AND_ASSIGN(ScrubReport again, engine.db->VerifyBackup("bk"));
  EXPECT_TRUE(again.clean());

  // The repaired backup supports a full media recovery.
  tree.reset();
  engine.db.reset();
  ASSERT_OK(WipeRestoreVerify(&engine.env, "bk", 1, 128, "bitrot"));
}

TEST(FaultInjectionTest, ScrubRepairsFromLogWhenStableIsBadToo) {
  FaultyEngine engine;
  ASSERT_OK(engine.Open(SmallDb()));
  auto tree = std::make_unique<BTree>(engine.db.get(), 0, 0,
                                      SplitLogging::kLogical);
  ASSERT_OK(tree->Create());
  int64_t next_key = 0;
  ASSERT_OK(Populate(engine.db.get(), tree.get(), &next_key, 250, "pre"));
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest, engine.db->TakeBackup("bk"));
  EXPECT_TRUE(manifest.complete);

  // Rot the same page in BOTH the backup and the stable database: the
  // only remaining source is media-recovery redo from the log.
  const PageId victim{0, 1};
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> backup_store,
        PageStore::Open(&engine.env, manifest.StoreName(), 1));
    ASSERT_OK(backup_store->CorruptPage(victim));
  }
  ASSERT_OK(engine.db->stable()->CorruptPage(victim));

  ASSERT_OK_AND_ASSIGN(ScrubReport repair, engine.db->ScrubBackup("bk"));
  EXPECT_EQ(repair.bad_pages, 1u);
  EXPECT_EQ(repair.repaired_from_log, 1u);
  EXPECT_TRUE(repair.fully_repaired());

  // S was healed as a side effect of the rebuild.
  PageImage healed;
  ASSERT_OK(engine.db->stable()->ReadPage(victim, &healed));

  ASSERT_OK_AND_ASSIGN(ScrubReport again, engine.db->VerifyBackup("bk"));
  EXPECT_TRUE(again.clean());

  tree.reset();
  engine.db.reset();
  ASSERT_OK(WipeRestoreVerify(&engine.env, "bk", 1, 128, "logrepair"));
}

}  // namespace
}  // namespace llb
