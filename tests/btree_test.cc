#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions TreeDbOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 4096;
  options.cache_pages = 128;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  return options;
}

class BtreeNodeTest : public ::testing::Test {};

TEST_F(BtreeNodeTest, LeafInsertKeepsSortedOrder) {
  PageImage page;
  btree_node::InitLeaf(&page, 0);
  EXPECT_TRUE(btree_node::LeafInsert(&page, 30, Slice("c")));
  EXPECT_TRUE(btree_node::LeafInsert(&page, 10, Slice("a")));
  EXPECT_TRUE(btree_node::LeafInsert(&page, 20, Slice("b")));
  ASSERT_EQ(btree_node::Count(page), 3u);
  EXPECT_EQ(btree_node::LeafKeyAt(page, 0), 10);
  EXPECT_EQ(btree_node::LeafKeyAt(page, 1), 20);
  EXPECT_EQ(btree_node::LeafKeyAt(page, 2), 30);
  EXPECT_EQ(btree_node::LeafValueAt(page, 1), "b");
}

TEST_F(BtreeNodeTest, LeafInsertReplacesExistingKey) {
  PageImage page;
  btree_node::InitLeaf(&page, 0);
  btree_node::LeafInsert(&page, 5, Slice("old"));
  btree_node::LeafInsert(&page, 5, Slice("new"));
  EXPECT_EQ(btree_node::Count(page), 1u);
  EXPECT_EQ(btree_node::LeafValueAt(page, 0), "new");
}

TEST_F(BtreeNodeTest, LeafFullRejectsInsert) {
  PageImage page;
  btree_node::InitLeaf(&page, 0);
  for (size_t i = 0; i < btree_node::kLeafCapacity; ++i) {
    ASSERT_TRUE(btree_node::LeafInsert(&page, static_cast<int64_t>(i),
                                       Slice("v")));
  }
  EXPECT_FALSE(btree_node::LeafInsert(&page, 99999, Slice("v")));
}

TEST_F(BtreeNodeTest, LeafRemove) {
  PageImage page;
  btree_node::InitLeaf(&page, 0);
  btree_node::LeafInsert(&page, 1, Slice("a"));
  btree_node::LeafInsert(&page, 2, Slice("b"));
  EXPECT_TRUE(btree_node::LeafRemove(&page, 1));
  EXPECT_FALSE(btree_node::LeafRemove(&page, 1));
  EXPECT_EQ(btree_node::Count(page), 1u);
}

TEST_F(BtreeNodeTest, LeafSplitHelpersPartitionBySplitKey) {
  PageImage page;
  btree_node::InitLeaf(&page, 77);
  for (int64_t k = 1; k <= 10; ++k) {
    btree_node::LeafInsert(&page, k, Slice("v"));
  }
  PageImage high;
  btree_node::InitLeaf(&high, btree_node::Link(page));
  btree_node::LeafCopyHigh(page, &high, 5);
  btree_node::LeafTruncateHigh(&page, 5);
  EXPECT_EQ(btree_node::Count(page), 5u);
  EXPECT_EQ(btree_node::Count(high), 5u);
  EXPECT_EQ(btree_node::LeafKeyAt(high, 0), 6);
  EXPECT_EQ(btree_node::Link(high), 77u);
}

TEST_F(BtreeNodeTest, InnerDescendRouting) {
  PageImage page;
  btree_node::InitInner(&page, 100);  // keys <= 10 go left
  btree_node::InnerInsert(&page, 10, 200);
  btree_node::InnerInsert(&page, 20, 300);
  EXPECT_EQ(btree_node::InnerDescend(page, 5), 100u);
  EXPECT_EQ(btree_node::InnerDescend(page, 10), 100u);
  EXPECT_EQ(btree_node::InnerDescend(page, 11), 200u);
  EXPECT_EQ(btree_node::InnerDescend(page, 20), 200u);
  EXPECT_EQ(btree_node::InnerDescend(page, 21), 300u);
}

TEST_F(BtreeNodeTest, InnerSplitPromotesSeparator) {
  PageImage page;
  btree_node::InitInner(&page, 1);
  for (int64_t k = 10; k <= 50; k += 10) {
    btree_node::InnerInsert(&page, k, static_cast<uint32_t>(k));
  }
  PageImage high;
  btree_node::InitInner(&high, 0);
  btree_node::InnerCopyHigh(page, &high, 30);
  btree_node::InnerTruncateHigh(&page, 30);
  // 30 promoted: left keeps {10,20}, right gets {40,50} with leftmost=30's
  // child.
  EXPECT_EQ(btree_node::Count(page), 2u);
  EXPECT_EQ(btree_node::Count(high), 2u);
  EXPECT_EQ(btree_node::Link(high), 30u);
  EXPECT_EQ(btree_node::InnerKeyAt(high, 0), 40);
}

class BtreeTest : public ::testing::TestWithParam<SplitLogging> {
 protected:
  void SetUp() override {
    auto engine = TestEngine::Create(TreeDbOptions());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(engine).value();
    tree_ = std::make_unique<BTree>(engine_->db(), 0, /*meta_page=*/0,
                                    GetParam());
    ASSERT_OK(tree_->Create());
  }

  std::unique_ptr<TestEngine> engine_;
  std::unique_ptr<BTree> tree_;
};

TEST_P(BtreeTest, InsertAndGet) {
  ASSERT_OK(tree_->Insert(42, Slice("answer")));
  ASSERT_OK_AND_ASSIGN(std::string value, tree_->Get(42));
  EXPECT_EQ(value, "answer");
  EXPECT_TRUE(tree_->Get(43).status().IsNotFound());
}

TEST_P(BtreeTest, InsertReplaces) {
  ASSERT_OK(tree_->Insert(1, Slice("old")));
  ASSERT_OK(tree_->Insert(1, Slice("new")));
  ASSERT_OK_AND_ASSIGN(std::string value, tree_->Get(1));
  EXPECT_EQ(value, "new");
}

TEST_P(BtreeTest, DeleteRemoves) {
  ASSERT_OK(tree_->Insert(7, Slice("x")));
  ASSERT_OK(tree_->Delete(7));
  EXPECT_TRUE(tree_->Get(7).status().IsNotFound());
  EXPECT_TRUE(tree_->Delete(7).IsNotFound());
}

TEST_P(BtreeTest, ManyInsertsSplitAndStayConsistent) {
  std::map<int64_t, std::string> expected;
  for (int64_t k = 0; k < 1000; ++k) {
    int64_t key = (k * 7919) % 10007;  // scrambled order
    std::string value = "v" + std::to_string(key);
    ASSERT_OK(tree_->Insert(key, value));
    expected[key] = value;
  }
  EXPECT_GT(tree_->stats().splits, 0u);

  ASSERT_OK_AND_ASSIGN(BtreeCheckReport report, tree_->CheckInvariants());
  EXPECT_EQ(report.records, expected.size());
  EXPECT_GT(report.leaves, 1u);

  for (const auto& [key, value] : expected) {
    ASSERT_OK_AND_ASSIGN(std::string got, tree_->Get(key));
    EXPECT_EQ(got, value);
  }
}

TEST_P(BtreeTest, ScanReturnsSortedRange) {
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_OK(tree_->Insert(k * 2, "e" + std::to_string(k)));
  }
  std::vector<std::pair<int64_t, std::string>> out;
  ASSERT_OK(tree_->Scan(100, 120, &out));
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out.front().first, 100);
  EXPECT_EQ(out.back().first, 120);
}

TEST_P(BtreeTest, SequentialInsertsGrowHeight) {
  for (int64_t k = 0; k < 5000; ++k) {
    ASSERT_OK(tree_->Insert(k, Slice("v")));
  }
  ASSERT_OK_AND_ASSIGN(BtreeCheckReport report, tree_->CheckInvariants());
  EXPECT_EQ(report.records, 5000u);
  EXPECT_GE(report.height, 2u);
  EXPECT_GT(tree_->stats().root_splits, 0u);
}

TEST_P(BtreeTest, SurvivesCrashAndRecovery) {
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_OK(tree_->Insert(k, "v" + std::to_string(k)));
  }
  ASSERT_OK(engine_->db()->FlushAll());
  ASSERT_OK(engine_->CrashAndRecover());
  BTree reopened(engine_->db(), 0, 0, GetParam());
  for (int64_t k = 0; k < 300; ++k) {
    ASSERT_OK_AND_ASSIGN(std::string value, reopened.Get(k));
    EXPECT_EQ(value, "v" + std::to_string(k));
  }
  ASSERT_OK(reopened.CheckInvariants().status());
}

INSTANTIATE_TEST_SUITE_P(SplitModes, BtreeTest,
                         ::testing::Values(SplitLogging::kLogical,
                                           SplitLogging::kPageOriented),
                         [](const auto& info) {
                           return info.param == SplitLogging::kLogical
                                      ? "Logical"
                                      : "PageOriented";
                         });

TEST(BtreeLoggingEconomyTest, LogicalSplitsLogFarFewerBytes) {
  // The paper's core motivation (1.1): MovRec logs operand ids + key;
  // the page-oriented alternative logs the new page's contents.
  uint64_t bytes[2];
  int i = 0;
  for (SplitLogging mode :
       {SplitLogging::kLogical, SplitLogging::kPageOriented}) {
    DbOptions options = TreeDbOptions();
    // Page-oriented split logging is not a tree operation; use the
    // general graph there for a fair, correct configuration.
    if (mode == SplitLogging::kPageOriented) {
      options.graph = WriteGraphKind::kGeneral;
      options.backup_policy = BackupPolicy::kGeneral;
    }
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                         TestEngine::Create(options));
    BTree tree(engine->db(), 0, 0, mode);
    ASSERT_OK(tree.Create());
    for (int64_t k = 0; k < 2000; ++k) {
      ASSERT_OK(tree.Insert(k, Slice("same-size-value")));
    }
    EXPECT_GT(tree.stats().splits, 10u);
    bytes[i++] = engine->db()->GatherStats().log.bytes;
  }
  // Logical split logging must be substantially cheaper.
  EXPECT_LT(bytes[0], bytes[1] * 3 / 4);
}

TEST(BtreeMiscTest, GetOnUninitializedTreeFails) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TreeDbOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  EXPECT_FALSE(tree.Get(1).ok());
}

TEST(BtreeMiscTest, ValueTooLargeRejected) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(TreeDbOptions()));
  BTree tree(engine->db(), 0, 0, SplitLogging::kLogical);
  ASSERT_OK(tree.Create());
  std::string big(btree_node::kMaxValueSize + 1, 'x');
  EXPECT_FALSE(tree.Insert(1, Slice(big)).ok());
}

}  // namespace
}  // namespace llb
