// Negative controls beyond Figure 1: demonstrate that each ingredient of
// the protocol is load-bearing by removing it and watching media
// recovery fail, and that the failure modes are the ones the paper
// predicts.

#include <gtest/gtest.h>

#include <memory>

#include "filestore/filestore.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

DbOptions Options(BackupPolicy policy, uint32_t pages = 100) {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = pages;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = policy;
  return options;
}

/// The file-store analogue of Figure 1: Copy(src -> dst) where dst's
/// position was already swept; then src is overwritten and flushed into
/// the still-pending region. With the naive dump, dst's contents exist
/// nowhere in B and the copy's replay reads the overwritten source.
Status RunCopySchedule(TestEngine* engine, const std::string& backup_name) {
  Database* db = engine->db();
  FileStore files(db, 0, /*base_page=*/0, /*pages_per_file=*/1,
                  /*num_files=*/100);
  // src at a high position (swept late), dst low (swept early).
  constexpr uint32_t kSrc = 70;
  constexpr uint32_t kDst = 3;
  LLB_RETURN_IF_ERROR(files.WriteValues(kSrc, {11, 22, 33}));
  LLB_RETURN_IF_ERROR(db->FlushAll());

  BackupJobOptions job;
  job.steps = 2;
  job.mid_step = [db, &files](PartitionId, uint32_t step) -> Status {
    if (step != 2) return Status::OK();
    // Copy src -> dst (dst already swept empty), flush dst,
    // then overwrite src and flush it (lands in B, post-overwrite).
    LLB_RETURN_IF_ERROR(files.Copy(kSrc, kDst));
    LLB_RETURN_IF_ERROR(db->FlushPage(files.PagesOf(kDst)[0]));
    LLB_RETURN_IF_ERROR(files.WriteValues(kSrc, {99, 98, 97}));
    return db->FlushPage(files.PagesOf(kSrc)[0]);
  };
  return db->TakeBackupWithOptions(backup_name, job).status();
}

Status RestoreAndVerify(TestEngine* engine, const std::string& backup_name,
                        uint32_t pages) {
  LLB_RETURN_IF_ERROR(engine->Shutdown());
  {
    LLB_ASSIGN_OR_RETURN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 1));
    LLB_RETURN_IF_ERROR(stable->WipePartition(0));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  LLB_RETURN_IF_ERROR(
      RestoreFromBackup(engine->env(), Database::StableName("db"),
                        Database::LogName("db"), backup_name, registry)
          .status());
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<LogManager> log,
      LogManager::Open(engine->env(), Database::LogName("db")));
  std::unique_ptr<PageStore> oracle;
  LLB_RETURN_IF_ERROR(testutil::BuildOracle(engine->env(), *log, registry,
                                            "oracle", 1, &oracle));
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), 1));
  std::string diff = testutil::DiffStores(*stable, *oracle, 1, pages);
  if (!diff.empty()) {
    return Status::Unrecoverable("restored state wrong at page " + diff);
  }
  return Status::OK();
}

TEST(BackupNegativeTest, NaiveDumpLosesLogicalCopyTarget) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(Options(BackupPolicy::kNaive)));
  ASSERT_OK(RunCopySchedule(engine.get(), "bk"));
  EXPECT_EQ(engine->db()->GatherStats().cache.identity_writes, 0u);
  Status verify = RestoreAndVerify(engine.get(), "bk", 100);
  EXPECT_FALSE(verify.ok()) << "naive dump should be unrecoverable";
}

TEST(BackupNegativeTest, GeneralPolicySurvivesTheSameSchedule) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(Options(BackupPolicy::kGeneral)));
  ASSERT_OK(RunCopySchedule(engine.get(), "bk"));
  EXPECT_GT(engine->db()->GatherStats().cache.identity_writes, 0u);
  EXPECT_OK(RestoreAndVerify(engine.get(), "bk", 100));
}

// Flushes strictly BETWEEN steps (never inside a doubt window) still need
// the protocol: objects in the Done region won't reach B even though no
// sweep is "in flight" at flush time.
TEST(BackupNegativeTest, DoneRegionFlushBetweenStepsStillNeedsLogging) {
  for (BackupPolicy policy : {BackupPolicy::kNaive, BackupPolicy::kGeneral}) {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                         TestEngine::Create(Options(policy)));
    Database* db = engine->db();
    FileStore files(db, 0, 0, 1, 100);
    ASSERT_OK(files.WriteValues(80, {5, 6, 7}));
    ASSERT_OK(db->FlushAll());

    BackupJobOptions job;
    job.steps = 4;  // fences at 25/50/75/100
    job.mid_step = [db, &files](PartitionId, uint32_t step) -> Status {
      if (step != 4) return Status::OK();
      // D = 75 here: page 10 is deep in Done; page 80 is in Doubt.
      LLB_RETURN_IF_ERROR(files.Copy(80, 10));
      LLB_RETURN_IF_ERROR(db->FlushPage(files.PagesOf(10)[0]));
      LLB_RETURN_IF_ERROR(files.WriteValues(80, {1, 1, 1}));
      return db->FlushPage(files.PagesOf(80)[0]);
    };
    ASSERT_OK(db->TakeBackupWithOptions("bk", job).status());
    Status verify = RestoreAndVerify(engine.get(), "bk", 100);
    if (policy == BackupPolicy::kNaive) {
      EXPECT_FALSE(verify.ok());
    } else {
      EXPECT_OK(verify);
    }
  }
}

// Page-oriented operations are safe under the naive dump — the classical
// result the paper starts from ("B remains recoverable because
// page-oriented operations permit the flushing of pages to a stable
// database in any order"). Positive control for the negative controls.
TEST(BackupNegativeTest, PageOrientedOpsAreSafeUnderNaiveDump) {
  DbOptions options = Options(BackupPolicy::kNaive);
  options.graph = WriteGraphKind::kPageOriented;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  Database* db = engine->db();
  FileStore files(db, 0, 0, 1, 100);
  ASSERT_OK(files.WriteValues(70, {11, 22, 33}));
  ASSERT_OK(db->FlushAll());

  BackupJobOptions job;
  job.steps = 2;
  job.mid_step = [db, &files](PartitionId, uint32_t step) -> Status {
    if (step != 2) return Status::OK();
    // The "copy" done page-oriented: read source, physically write the
    // full target value (it goes to the log), then overwrite the source.
    LLB_ASSIGN_OR_RETURN(std::vector<int64_t> v, files.ReadValues(70));
    LLB_RETURN_IF_ERROR(files.WriteValues(3, v));
    LLB_RETURN_IF_ERROR(db->FlushPage(files.PagesOf(3)[0]));
    LLB_RETURN_IF_ERROR(files.WriteValues(70, {99, 98, 97}));
    return db->FlushPage(files.PagesOf(70)[0]);
  };
  ASSERT_OK(db->TakeBackupWithOptions("bk", job).status());
  EXPECT_EQ(db->GatherStats().cache.identity_writes, 0u);
  EXPECT_OK(RestoreAndVerify(engine.get(), "bk", 100));
}

}  // namespace
}  // namespace llb
