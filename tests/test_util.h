#ifndef LLB_TESTS_TEST_UTIL_H_
#define LLB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "db/database.h"
#include "sim/oracle.h"

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    ::llb::Status _s = (expr);                              \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    ::llb::Status _s = (expr);                              \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                     \
  auto LLB_ASSIGN_OR_RETURN_NAME(_r, __LINE__) = (expr);    \
  ASSERT_TRUE(LLB_ASSIGN_OR_RETURN_NAME(_r, __LINE__).ok()) \
      << LLB_ASSIGN_OR_RETURN_NAME(_r, __LINE__).status().ToString(); \
  lhs = std::move(LLB_ASSIGN_OR_RETURN_NAME(_r, __LINE__)).value()

// Oracle helpers (BuildOracle / DiffStores) live in sim/oracle.h so the
// benchmarks can use them without a gtest dependency.

#endif  // LLB_TESTS_TEST_UTIL_H_
