#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/env.h"
#include "io/fault_env.h"
#include "io/faulty_env.h"
#include "io/latency_env.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "tests/test_util.h"

namespace llb {
namespace {

TEST(MemEnvTest, CreateWriteReadBack) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                       env.OpenFile("a", /*create=*/true));
  ASSERT_OK(f->Append(Slice("hello ")));
  ASSERT_OK(f->Append(Slice("world")));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "hello world");
}

TEST(MemEnvTest, OpenMissingFileFails) {
  MemEnv env;
  auto r = env.OpenFile("missing", /*create=*/false);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(MemEnvTest, WriteAtExtendsWithZeros) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->WriteAt(4, Slice("xy")));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 10, &out));
  EXPECT_EQ(out, std::string("\0\0\0\0xy", 6));
}

TEST(MemEnvTest, DeleteAndList) {
  MemEnv env;
  ASSERT_OK(env.OpenFile("a", true).status());
  ASSERT_OK(env.OpenFile("b", true).status());
  EXPECT_EQ(env.ListFiles().size(), 2u);
  ASSERT_OK(env.DeleteFile("a"));
  EXPECT_FALSE(env.FileExists("a"));
  EXPECT_TRUE(env.FileExists("b"));
}

TEST(MemEnvTest, CrashDiscardsUnsyncedData) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("durable")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice(" volatile")));
  env.CrashAndRestart();
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "durable");
}

TEST(MemEnvTest, CrashWithNoSyncLosesEverything) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("gone")));
  env.CrashAndRestart();
  ASSERT_OK_AND_ASSIGN(uint64_t size, f->Size());
  EXPECT_EQ(size, 0u);
}

TEST(MemEnvTest, TruncateShrinksAndExtends) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("abcdef")));
  ASSERT_OK(f->Truncate(3));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 10, &out));
  EXPECT_EQ(out, "abc");
}

TEST(MemEnvTest, DurableEventCounting) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  EXPECT_EQ(env.durable_events(), 0u);
  ASSERT_OK(f->Append(Slice("x")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_EQ(env.durable_events(), 2u);
}

TEST(FaultInjectionTest, CountdownFailsAfterBudget) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  CountdownFaultInjector injector(2);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Append(Slice("1")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice("2")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice("3")));
  EXPECT_FALSE(f->Sync().ok());  // third durable event vetoed
  EXPECT_TRUE(env.io_blocked());
  // All IO now fails until restart.
  EXPECT_FALSE(f->Append(Slice("4")).ok());
  std::string out;
  EXPECT_FALSE(f->ReadAt(0, 1, &out).ok());
}

TEST(FaultInjectionTest, CrashClearsFaultAndRevertsToDurable) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("keep")));
  ASSERT_OK(f->Sync());
  CountdownFaultInjector injector(0);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Append(Slice("lost")));
  EXPECT_FALSE(f->Sync().ok());
  env.CrashAndRestart();
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "keep");
  ASSERT_OK(f->Sync());  // injector cleared
}

TEST(FaultInjectionTest, RecordingInjectorCounts) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  RecordingInjector recorder;
  env.SetFaultInjector(&recorder);
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_EQ(recorder.count(), 3u);
}

TEST(FaultInjectionTest, CrashAtEventInjectorFailsExactlyNth) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  CrashAtEventInjector injector(3);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_FALSE(f->Sync().ok());
}

/// Reads `chunks` buffers of `size` bytes each at `offset` via ReadAtv
/// and returns them concatenated.
std::string ReadVectored(const File& f, uint64_t offset, size_t chunks,
                         size_t size) {
  std::vector<std::string> buffers(chunks, std::string(size, 'X'));
  std::vector<IoBuffer> iov(chunks);
  for (size_t i = 0; i < chunks; ++i) iov[i] = {buffers[i].data(), size};
  Status s = f.ReadAtv(offset, iov);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::string out;
  for (const std::string& b : buffers) out += b;
  return out;
}

TEST(ReadAtvTest, MemEnvFillsChunksAndZeroFillsPastEof) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("abcdefgh")));
  // Two chunks inside the file, one straddling EOF, one fully past it.
  EXPECT_EQ(ReadVectored(*f, 0, 2, 3), "abcdef");
  EXPECT_EQ(ReadVectored(*f, 6, 2, 3), std::string("gh\0\0\0\0", 6));
  EXPECT_EQ(ReadVectored(*f, 100, 1, 4), std::string(4, '\0'));
}

TEST(ReadAtvTest, FaultyEnvDecidesOncePerBatch) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("0123456789abcdef")));

  // One vectored read is ONE read decision: a countdown of 2 must
  // survive a 4-chunk ReadAtv and fire on the next one.
  ScriptedFaultPolicy policy(
      {{FaultOp::kReadAt, "a", /*countdown=*/2, FaultAction::kFail}});
  env.SetPolicy(&policy);
  EXPECT_EQ(ReadVectored(*f, 0, 4, 4), "0123456789abcdef");
  std::vector<std::string> buffers(4, std::string(4, 'X'));
  std::vector<IoBuffer> iov(4);
  for (size_t i = 0; i < 4; ++i) iov[i] = {buffers[i].data(), 4};
  Status s = f->ReadAtv(0, iov);
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_EQ(policy.fired(), 1u);
  env.SetPolicy(nullptr);
  EXPECT_EQ(ReadVectored(*f, 0, 4, 4), "0123456789abcdef");
}

TEST(ReadAtvTest, FaultyEnvCorruptsOneBitOfTheMiddleChunk) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  std::string payload(12, 'a');
  ASSERT_OK(f->Append(Slice(payload)));

  ScriptedFaultPolicy policy(
      {{FaultOp::kReadAt, "a", /*countdown=*/1, FaultAction::kCorrupt}});
  env.SetPolicy(&policy);
  std::string rotten = ReadVectored(*f, 0, 3, 4);
  env.SetPolicy(nullptr);
  ASSERT_EQ(rotten.size(), payload.size());
  size_t diffs = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    if (rotten[i] != payload[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);                       // exactly one flipped byte
  EXPECT_NE(rotten.substr(4, 4), payload.substr(4, 4));  // in chunk 1 of 3
  EXPECT_EQ(env.stats().corruptions, 1u);
}

/// One PosixEnv over a fresh mkdtemp root per test.
struct PosixFixture {
  std::string root;
  std::unique_ptr<PosixEnv> env;

  explicit PosixFixture(PosixEnvOptions options = PosixEnvOptions()) {
    std::string tmpl = "/tmp/llb_posix_XXXXXX";
    char* dir = mkdtemp(tmpl.data());
    EXPECT_NE(dir, nullptr);
    root = dir;
    Result<std::unique_ptr<PosixEnv>> opened = PosixEnv::Open(root, options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    if (opened.ok()) env = std::move(*opened);
  }

  ~PosixFixture() {
    if (env != nullptr) {
      for (const std::string& name : env->ListFiles()) {
        (void)env->DeleteFile(name);
      }
    }
    env.reset();
    rmdir(root.c_str());
  }
};

TEST(PosixEnvTest, WriteReadAppendTruncateRoundTrip) {
  PosixFixture fx;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, fx.env->OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("hello ")));
  ASSERT_OK(f->Append(Slice("world")));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "hello world");

  ASSERT_OK(f->WriteAt(0, Slice("HELLO")));
  out.clear();  // ReadAt appends by contract
  ASSERT_OK(f->ReadAt(0, 11, &out));
  EXPECT_EQ(out, "HELLO world");

  // WriteAt past EOF extends with zeros, like MemEnv.
  ASSERT_OK(f->WriteAt(13, Slice("xy")));
  out.clear();
  ASSERT_OK(f->ReadAt(11, 4, &out));
  EXPECT_EQ(out, std::string("\0\0xy", 4));
  ASSERT_OK_AND_ASSIGN(uint64_t size, f->Size());
  EXPECT_EQ(size, 15u);

  ASSERT_OK(f->Truncate(5));
  out.clear();
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "HELLO");
  ASSERT_OK(f->Sync());
}

TEST(PosixEnvTest, VectoredReadAndWrite) {
  PosixFixture fx;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, fx.env->OpenFile("v", true));
  std::string a(4096, 'a');
  std::string b(4096, 'b');
  ASSERT_OK(f->WriteAtv(0, {Slice(a), Slice(b)}));
  ASSERT_OK(f->Sync());
  EXPECT_EQ(ReadVectored(*f, 0, 2, 4096), a + b);
  // Straddling EOF zero-fills, matching the MemEnv contract.
  EXPECT_EQ(ReadVectored(*f, 4096, 2, 4096), b + std::string(4096, '\0'));
}

TEST(PosixEnvTest, SharedHandleMissingFileDeleteAndList) {
  PosixFixture fx;
  auto missing = fx.env->OpenFile("nope", /*create=*/false);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f1, fx.env->OpenFile("a", true));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f2, fx.env->OpenFile("a", true));
  EXPECT_EQ(f1.get(), f2.get());  // same handle: the PageStore contract

  ASSERT_OK(fx.env->OpenFile("b", true).status());
  std::vector<std::string> files = fx.env->ListFiles();
  EXPECT_EQ(files.size(), 2u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_TRUE(fx.env->FileExists("a"));
  ASSERT_OK(fx.env->DeleteFile("a"));
  EXPECT_FALSE(fx.env->FileExists("a"));
  EXPECT_TRUE(fx.env->FileExists("b"));
}

TEST(PosixEnvTest, DataSurvivesHandleDropAndReopen) {
  PosixFixture fx;
  {
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                         fx.env->OpenFile("persist", true));
    ASSERT_OK(f->Append(Slice("durable bytes")));
    ASSERT_OK(f->Sync());
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> again,
                       fx.env->OpenFile("persist", false));
  std::string out;
  ASSERT_OK(again->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "durable bytes");
}

TEST(PosixEnvTest, DirectIoFallsBackGracefully) {
  // O_DIRECT may be refused (tmpfs): the env must still work, routing
  // aligned and unaligned IO alike through whatever path is available.
  PosixEnvOptions options;
  options.direct_io = true;
  PosixFixture fx(options);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, fx.env->OpenFile("d", true));
  std::string page(4096, 'p');
  ASSERT_OK(f->WriteAt(0, Slice(page)));       // aligned
  ASSERT_OK(f->WriteAt(4096, Slice("tail")));  // unaligned
  ASSERT_OK(f->Sync());
  std::string out;
  ASSERT_OK(f->ReadAt(0, 4096, &out));  // aligned read
  EXPECT_EQ(out, page);
  out.clear();  // ReadAt appends by contract
  ASSERT_OK(f->ReadAt(4096, 4, &out));  // unaligned read
  EXPECT_EQ(out, "tail");
}

TEST(LatencyEnvTest, PassesOperationsThroughAndCountsCharges) {
  MemEnv base;
  // Tiny charges keep the test fast while still exercising the sleeps.
  LatencyProfile profile;
  profile.seek_us = 1;
  profile.sync_us = 1;
  profile.bytes_per_us = 1024;
  LatencyEnv env(&base, profile);

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("hello")));
  ASSERT_OK(f->Sync());
  std::string out;
  ASSERT_OK(f->ReadAt(0, 5, &out));
  EXPECT_EQ(out, "hello");

  // A vectored op charges ONE seek for the whole batch — the batching
  // payoff the profile models.
  std::string a(1024, 'a');
  ASSERT_OK(f->WriteAtv(5, {Slice(a), Slice(a)}));
  EXPECT_EQ(ReadVectored(*f, 5, 2, 1024), a + a);

  LatencyEnvStats stats = env.stats();
  EXPECT_EQ(stats.ops, 4u);    // append, read, writev, readv
  EXPECT_EQ(stats.syncs, 1u);
  EXPECT_EQ(stats.bytes, 5u + 5u + 2048u + 2048u);
  EXPECT_GT(stats.simulated_us, 0u);

  // The wrapped file is the same underlying MemEnv file.
  EXPECT_TRUE(env.FileExists("a"));
  EXPECT_TRUE(base.FileExists("a"));
  ASSERT_OK(env.DeleteFile("a"));
  EXPECT_FALSE(base.FileExists("a"));
}

}  // namespace
}  // namespace llb
