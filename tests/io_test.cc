#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "io/mem_env.h"
#include "tests/test_util.h"

namespace llb {
namespace {

TEST(MemEnvTest, CreateWriteReadBack) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f,
                       env.OpenFile("a", /*create=*/true));
  ASSERT_OK(f->Append(Slice("hello ")));
  ASSERT_OK(f->Append(Slice("world")));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "hello world");
}

TEST(MemEnvTest, OpenMissingFileFails) {
  MemEnv env;
  auto r = env.OpenFile("missing", /*create=*/false);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(MemEnvTest, WriteAtExtendsWithZeros) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->WriteAt(4, Slice("xy")));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 10, &out));
  EXPECT_EQ(out, std::string("\0\0\0\0xy", 6));
}

TEST(MemEnvTest, DeleteAndList) {
  MemEnv env;
  ASSERT_OK(env.OpenFile("a", true).status());
  ASSERT_OK(env.OpenFile("b", true).status());
  EXPECT_EQ(env.ListFiles().size(), 2u);
  ASSERT_OK(env.DeleteFile("a"));
  EXPECT_FALSE(env.FileExists("a"));
  EXPECT_TRUE(env.FileExists("b"));
}

TEST(MemEnvTest, CrashDiscardsUnsyncedData) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("durable")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice(" volatile")));
  env.CrashAndRestart();
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "durable");
}

TEST(MemEnvTest, CrashWithNoSyncLosesEverything) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("gone")));
  env.CrashAndRestart();
  ASSERT_OK_AND_ASSIGN(uint64_t size, f->Size());
  EXPECT_EQ(size, 0u);
}

TEST(MemEnvTest, TruncateShrinksAndExtends) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("abcdef")));
  ASSERT_OK(f->Truncate(3));
  std::string out;
  ASSERT_OK(f->ReadAt(0, 10, &out));
  EXPECT_EQ(out, "abc");
}

TEST(MemEnvTest, DurableEventCounting) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  EXPECT_EQ(env.durable_events(), 0u);
  ASSERT_OK(f->Append(Slice("x")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_EQ(env.durable_events(), 2u);
}

TEST(FaultInjectionTest, CountdownFailsAfterBudget) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  CountdownFaultInjector injector(2);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Append(Slice("1")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice("2")));
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Append(Slice("3")));
  EXPECT_FALSE(f->Sync().ok());  // third durable event vetoed
  EXPECT_TRUE(env.io_blocked());
  // All IO now fails until restart.
  EXPECT_FALSE(f->Append(Slice("4")).ok());
  std::string out;
  EXPECT_FALSE(f->ReadAt(0, 1, &out).ok());
}

TEST(FaultInjectionTest, CrashClearsFaultAndRevertsToDurable) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  ASSERT_OK(f->Append(Slice("keep")));
  ASSERT_OK(f->Sync());
  CountdownFaultInjector injector(0);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Append(Slice("lost")));
  EXPECT_FALSE(f->Sync().ok());
  env.CrashAndRestart();
  std::string out;
  ASSERT_OK(f->ReadAt(0, 100, &out));
  EXPECT_EQ(out, "keep");
  ASSERT_OK(f->Sync());  // injector cleared
}

TEST(FaultInjectionTest, RecordingInjectorCounts) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  RecordingInjector recorder;
  env.SetFaultInjector(&recorder);
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_EQ(recorder.count(), 3u);
}

TEST(FaultInjectionTest, CrashAtEventInjectorFailsExactlyNth) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> f, env.OpenFile("a", true));
  CrashAtEventInjector injector(3);
  env.SetFaultInjector(&injector);
  ASSERT_OK(f->Sync());
  ASSERT_OK(f->Sync());
  EXPECT_FALSE(f->Sync().ok());
}

}  // namespace
}  // namespace llb
