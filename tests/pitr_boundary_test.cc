#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "btree/btree.h"
#include "ship/log_shipper.h"
#include "ship/standby_applier.h"
#include "sim/harness.h"
#include "tests/test_util.h"
#include "torture/torture_util.h"
#include "wal/log_record.h"

namespace llb {
namespace {

/// Boundary behavior of Database::RestoreToLsn, on a B-tree workload so
/// the log carries real multi-record atomic groups (logical splits).

DbOptions TreeOptions() {
  DbOptions options;
  options.partitions = 1;
  options.pages_per_partition = 32;
  options.cache_pages = 16;
  options.graph = WriteGraphKind::kTree;
  options.backup_policy = BackupPolicy::kTree;
  return options;
}

/// A primary with a backup and a log that extends past it. Captures a
/// quiescent pre-backup LSN, the backup, a quiescent post-backup target,
/// and the final tail.
struct PitrRig {
  TortureEngine engine{TreeOptions()};
  std::unique_ptr<BTree> tree;
  uint64_t next_key = 0;
  Lsn before_backup = kInvalidLsn;  // quiescent, earlier than the backup
  BackupManifest backup;
  Lsn target = kInvalidLsn;  // quiescent, after the backup
  Lsn tail = kInvalidLsn;

  Status Build() {
    LLB_RETURN_IF_ERROR(engine.Open());
    tree = std::make_unique<BTree>(engine.db.get(), /*partition=*/0,
                                   /*meta_page=*/0, SplitLogging::kLogical);
    LLB_RETURN_IF_ERROR(tree->Create());
    // Past kLeafCapacity (~63), so the log carries at least one logical
    // split — a genuine multi-record atomic group.
    LLB_RETURN_IF_ERROR(Insert(70));
    before_backup = engine.db->log()->durable_lsn();
    LLB_RETURN_IF_ERROR(engine.db->Checkpoint());
    LLB_ASSIGN_OR_RETURN(backup, engine.db->TakeBackup("pitr_bk", 4));
    if (!backup.complete) return Status::Internal("backup incomplete");
    LLB_RETURN_IF_ERROR(Insert(10));
    target = engine.db->log()->durable_lsn();
    LLB_RETURN_IF_ERROR(Insert(10));
    tail = engine.db->log()->durable_lsn();
    return Status::OK();
  }

  /// Inserts `n` keys, flushes, and forces the log — every return leaves
  /// the log at a quiescent boundary (all groups closed).
  Status Insert(uint32_t n) {
    for (uint32_t i = 0; i < n; ++i, ++next_key) {
      LLB_RETURN_IF_ERROR(
          tree->Insert(static_cast<int64_t>((next_key * 53) % 4001),
                       Slice("v")));
    }
    LLB_RETURN_IF_ERROR(engine.db->FlushAll());
    return engine.db->ForceLog();
  }

  /// Simulated media failure: close everything and wipe S.
  Status Wipe() {
    tree.reset();
    engine.Shutdown();
    return torture::WipeStable(&engine);
  }

  Result<MediaRecoveryReport> Restore(Lsn to) {
    OpRegistry registry;
    RegisterAllOps(&registry);
    return Database::RestoreToLsn(&engine.env, engine.name, to, registry);
  }
};

TEST(PitrBoundaryTest, ExactQuiescentTargetRestoresThatPrefix) {
  PitrRig rig;
  ASSERT_OK(rig.Build());
  ASSERT_OK(rig.Wipe());
  ASSERT_OK_AND_ASSIGN(MediaRecoveryReport report, rig.Restore(rig.target));
  EXPECT_GT(report.pages_restored, 0u);
  // Stable state equals the oracle of exactly the log prefix [1, target].
  ASSERT_OK(torture::VerifyStableOffline(&rig.engine, rig.target));
  // The excluded suffix was discarded: the database reopens at the
  // target, not the old tail.
  ASSERT_OK(rig.engine.Open());
  EXPECT_EQ(rig.engine.db->log()->durable_lsn(), rig.target);
  ASSERT_OK(torture::VerifyOpenDb(&rig.engine));
}

TEST(PitrBoundaryTest, MidGroupTargetIsRefused) {
  PitrRig rig;
  ASSERT_OK(rig.Build());
  // Find a record strictly inside a multi-record group: a kGroupBegin
  // that is not also its own kGroupEnd (a logical split logs several).
  Lsn mid_group = kInvalidLsn;
  ASSERT_OK(rig.engine.db->log()->Scan(1, [&](const LogRecord& rec) {
    if (mid_group == kInvalidLsn && rec.IsGroupBegin() && !rec.IsGroupEnd()) {
      mid_group = rec.lsn;
    }
    return Status::OK();
  }));
  ASSERT_NE(mid_group, kInvalidLsn)
      << "workload produced no multi-record group";

  ASSERT_OK(rig.Wipe());
  Status s = rig.Restore(mid_group).status();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.ToString().find("atomic group"), std::string::npos)
      << s.ToString();
  // The refused restore left a recoverable situation: restoring to a
  // valid boundary still works.
  ASSERT_OK(rig.Restore(rig.target).status());
  ASSERT_OK(torture::VerifyStableOffline(&rig.engine, rig.target));
}

TEST(PitrBoundaryTest, TargetOlderThanEveryBackupIsRefused) {
  PitrRig rig;
  ASSERT_OK(rig.Build());
  ASSERT_GT(rig.backup.end_lsn, rig.before_backup);
  ASSERT_OK(rig.Wipe());
  // before_backup is a clean boundary, but no retained chain ends at or
  // before it — there is nothing to seed the page copy from.
  Status s = rig.Restore(rig.before_backup).status();
  EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
  EXPECT_NE(s.ToString().find("predates"), std::string::npos) << s.ToString();
}

TEST(PitrBoundaryTest, TargetAtDurableTailEqualsPlainRestore) {
  PitrRig rig;
  ASSERT_OK(rig.Build());
  ASSERT_OK(rig.Wipe());
  ASSERT_OK(rig.Restore(rig.tail).status());
  ASSERT_OK(torture::VerifyStableOffline(&rig.engine, kInvalidLsn));
  ASSERT_OK(rig.engine.Open());
  EXPECT_EQ(rig.engine.db->log()->durable_lsn(), rig.tail);
  ASSERT_OK(torture::VerifyOpenDb(&rig.engine));
}

TEST(PitrBoundaryTest, TargetPastTailOrInvalidIsRefused) {
  PitrRig rig;
  ASSERT_OK(rig.Build());
  ASSERT_OK(rig.Wipe());
  Status past = rig.Restore(rig.tail + 1).status();
  EXPECT_TRUE(past.IsInvalidArgument()) << past.ToString();
  Status zero = rig.Restore(kInvalidLsn).status();
  EXPECT_TRUE(zero.IsInvalidArgument()) << zero.ToString();
}

/// PITR composed with fault-injected replication: the log tail that redo
/// rolls forward was shipped through a faulty channel (one transient send
/// failure, one torn frame healed by resync) before the primary's media
/// failed. The restore must be oblivious to all of that.
TEST(PitrBoundaryTest, RestoreToLsnAfterFaultyChannelReplication) {
  PitrRig rig;
  ASSERT_OK(rig.engine.Open());
  ASSERT_OK(rig.engine.OpenStandby());
  rig.tree = std::make_unique<BTree>(rig.engine.db.get(), 0, 0,
                                     SplitLogging::kLogical);
  ASSERT_OK(rig.tree->Create());
  FileShipChannel channel(&rig.engine.env, "ship");
  LogShipper shipper(&rig.engine.env, rig.engine.name,
                     rig.engine.db->log(), &channel);
  ASSERT_OK(shipper.Attach());
  StandbyApplier applier(rig.engine.standby.get(), &channel);
  ASSERT_OK(applier.CatchUpFromLocalLog());

  ASSERT_OK(rig.Insert(12));
  ASSERT_OK(rig.engine.db->Checkpoint());
  ASSERT_OK_AND_ASSIGN(rig.backup, rig.engine.db->TakeBackup("pitr_bk", 4));
  ASSERT_TRUE(rig.backup.complete);

  // Ship through a transient send failure...
  ScriptedFaultPolicy drop(
      {{FaultOp::kWriteAt, "ship.f", 1, FaultAction::kFail}});
  rig.engine.env.SetPolicy(&drop);
  ASSERT_OK(shipper.Pump());
  rig.engine.env.SetPolicy(nullptr);
  EXPECT_EQ(drop.fired(), 1u);
  ASSERT_OK(applier.Drain());

  // ...then a torn frame, repaired by the resync NAK path.
  ASSERT_OK(rig.Insert(10));
  rig.target = rig.engine.db->log()->durable_lsn();
  ScriptedFaultPolicy rot(
      {{FaultOp::kWriteAt, "ship.f", 1, FaultAction::kCorrupt}});
  rig.engine.env.SetPolicy(&rot);
  ASSERT_OK(shipper.Pump());
  rig.engine.env.SetPolicy(nullptr);
  EXPECT_EQ(rot.fired(), 1u);
  ASSERT_OK(applier.Drain());
  ASSERT_LT(applier.applied_lsn(), rig.target);
  ASSERT_OK(shipper.Resync(applier.applied_lsn() + 1));
  ASSERT_OK(shipper.Pump());
  ASSERT_OK(applier.Drain());
  ASSERT_EQ(applier.applied_lsn(), rig.target);

  ASSERT_OK(rig.Insert(10));
  ASSERT_OK(shipper.Pump());
  ASSERT_OK(applier.Drain());
  shipper.Detach();

  // Media failure on the primary; rewind it to the recorded target.
  ASSERT_OK(rig.Wipe());
  ASSERT_OK(rig.Restore(rig.target).status());
  ASSERT_OK(torture::VerifyStableOffline(&rig.engine, rig.target));
  ASSERT_OK(rig.engine.Open());
  EXPECT_EQ(rig.engine.db->log()->durable_lsn(), rig.target);
  ASSERT_OK(torture::VerifyOpenDb(&rig.engine));
}

}  // namespace
}  // namespace llb
