#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "io/env.h"
#include "io/faulty_env.h"
#include "io/mem_env.h"
#include "io/posix_env.h"
#include "io/uring_env.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "tests/test_util.h"

namespace llb {
namespace {

/// The AsyncFile contract (io/uring_env.h): batched submit/reap with up
/// to queue_depth operations in flight, device errors surfacing on Reap
/// (never Submit), zero-fill past end of file, and Sync as one barrier
/// over all reapable writes. The suite runs the portable thread-pool
/// backend over MemEnv / FaultyEnv, and both backends over PosixEnv real
/// files — the semantics must be byte-identical.

std::string Pattern(size_t n, char seed) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>(seed + i % 23);
  return s;
}

/// Reaps until `file` has no operations in flight; returns completions.
std::vector<AsyncIoCompletion> ReapAllOf(AsyncFile* file) {
  std::vector<AsyncIoCompletion> out;
  while (file->in_flight() > 0) {
    EXPECT_OK(file->Reap(file->in_flight(), &out));
  }
  return out;
}

TEST(AsyncFileTest, WriteReapSyncReadRoundTrip) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  EXPECT_STREQ(file->backend(), "thread-pool");

  std::string a = Pattern(512, 'a');
  std::string b = Pattern(512, 'b');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(a), /*tag=*/1));
  ASSERT_OK(file->SubmitWriteAt(512, Slice(b), /*tag=*/2));
  EXPECT_EQ(file->in_flight(), 2u);

  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 2u);
  for (const AsyncIoCompletion& c : done) {
    EXPECT_OK(c.status);
    EXPECT_TRUE(c.tag == 1 || c.tag == 2);
  }
  ASSERT_OK(file->Sync());

  // The plain File view of the same env file sees the async writes.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> plain,
                       env.OpenFile("f", /*create=*/false));
  std::string read;
  ASSERT_OK(plain->ReadAt(0, 1024, &read));
  EXPECT_EQ(read, a + b);

  // And the async read view round-trips the same bytes.
  std::string buf(1024, '\0');
  ASSERT_OK(file->SubmitReadAt(0, IoBuffer{&buf[0], buf.size()}, /*tag=*/7));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  EXPECT_EQ(done[0].tag, 7u);
  EXPECT_EQ(buf, a + b);
}

TEST(AsyncFileTest, ReadPastEndOfFileZeroFills) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  std::string data = Pattern(100, 'x');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 1));
  ReapAllOf(file.get());

  // Read straddling EOF: bytes [0, 100) are the data, [100, 256) zero —
  // the never-written-page convention (File::ReadAtv parity).
  std::string buf(256, '\xff');
  ASSERT_OK(file->SubmitReadAt(0, IoBuffer{&buf[0], buf.size()}, 2));
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  EXPECT_EQ(buf.substr(0, 100), data);
  EXPECT_EQ(buf.substr(100), std::string(156, '\0'));

  // Entirely past EOF: all zero.
  std::string past(64, '\xff');
  ASSERT_OK(file->SubmitReadAt(4096, IoBuffer{&past[0], past.size()}, 3));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  EXPECT_EQ(past, std::string(64, '\0'));
}

TEST(AsyncFileTest, SubmitFailsOnlyOnMisuse) {
  MemEnv env;
  AsyncIoOptions options;
  options.queue_depth = 2;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true, options));
  EXPECT_EQ(file->queue_depth(), 2u);

  // Empty buffer is a caller bug, rejected at submit.
  EXPECT_TRUE(file->SubmitReadAt(0, IoBuffer{nullptr, 0}, 1)
                  .IsInvalidArgument());
  EXPECT_TRUE(file->SubmitWriteAt(0, Slice(), 1).IsInvalidArgument());

  // Queue-depth overflow is a caller bug too: the (depth+1)-th submit
  // fails without enqueueing, and nothing about the in-flight ops is
  // disturbed.
  std::string data = Pattern(64, 'q');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 1));
  ASSERT_OK(file->SubmitWriteAt(64, Slice(data), 2));
  Status overflow = file->SubmitWriteAt(128, Slice(data), 3);
  EXPECT_TRUE(overflow.IsFailedPrecondition()) << overflow.ToString();
  EXPECT_EQ(file->in_flight(), 2u);
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 2u);
  for (const AsyncIoCompletion& c : done) EXPECT_OK(c.status);
}

TEST(AsyncFileTest, ReapClampsToInFlight) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  // Asking for more completions than are in flight must not block.
  std::vector<AsyncIoCompletion> done;
  ASSERT_OK(file->Reap(100, &done));
  EXPECT_TRUE(done.empty());

  std::string data = Pattern(32, 'r');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 1));
  ASSERT_OK(file->Reap(100, &done));
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(file->in_flight(), 0u);
}

TEST(AsyncFileTest, SyncDrainsInFlightWritesAndKeepsCompletions) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  std::string data = Pattern(128, 's');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 1));
  ASSERT_OK(file->SubmitWriteAt(128, Slice(data), 2));
  ASSERT_OK(file->Sync());

  // Sync waited for the writes, but their completions are still owed.
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  EXPECT_EQ(done.size(), 2u);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> plain,
                       env.OpenFile("f", /*create=*/false));
  std::string read;
  ASSERT_OK(plain->ReadAt(0, 256, &read));
  EXPECT_EQ(read, data + data);
}

/// Satellite: async fault injection. A scripted device fault must ride
/// the completion (error on Reap) — Submit already returned OK by the
/// time the device failed, exactly like a real submission queue.
TEST(AsyncFaultTest, DeviceErrorSurfacesOnReapNotSubmit) {
  MemEnv base;
  FaultyEnv env(&base);
  ScriptedFaultPolicy policy;
  policy.Add(FaultPoint{FaultOp::kReadAt, "", 1, FaultAction::kFail});
  env.SetPolicy(&policy);

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  std::string buf(64, '\0');
  // The submit itself is clean — the fault fires on the worker.
  ASSERT_OK(file->SubmitReadAt(0, IoBuffer{&buf[0], buf.size()}, 9));
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.IsIoError()) << done[0].status.ToString();
  EXPECT_EQ(done[0].tag, 9u);
  EXPECT_EQ(env.stats().read_faults, 1u);

  // The fault was transient: the same read succeeds afterwards.
  ASSERT_OK(file->SubmitReadAt(0, IoBuffer{&buf[0], buf.size()}, 10));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
}

TEST(AsyncFaultTest, WriteErrorSurfacesOnReapAndOthersComplete) {
  MemEnv base;
  FaultyEnv env(&base);
  ScriptedFaultPolicy policy;
  policy.Add(FaultPoint{FaultOp::kWriteAt, "", 2, FaultAction::kFail});
  env.SetPolicy(&policy);

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("f", /*create=*/true));
  std::string data = Pattern(64, 'w');
  for (uint64_t tag = 1; tag <= 3; ++tag) {
    ASSERT_OK(file->SubmitWriteAt((tag - 1) * 64, Slice(data), tag));
  }
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 3u);
  int failures = 0;
  for (const AsyncIoCompletion& c : done) {
    if (!c.status.ok()) {
      EXPECT_TRUE(c.status.IsIoError());
      ++failures;
    }
  }
  // Exactly the scripted op failed; its neighbors completed fine.
  EXPECT_EQ(failures, 1);
}

// ---------- real files ----------

std::string TestRoot(const char* name) {
  const char* tmp = getenv("TMPDIR");
  std::string root = (tmp != nullptr ? std::string(tmp) : "/tmp");
  return root + "/" + name + "_" + std::to_string(::getpid());
}

/// Both PosixEnv backends (native io_uring where the kernel grants it,
/// the thread pool when use_io_uring is off) must produce byte-identical
/// results over a real file.
TEST(PosixAsyncTest, BothBackendsRoundTripRealFiles) {
  for (bool use_uring : {true, false}) {
    PosixEnvOptions opt;
    opt.use_io_uring = use_uring;
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PosixEnv> env,
        PosixEnv::Open(TestRoot(use_uring ? "uring_rt" : "pool_rt"), opt));
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                         env->OpenAsync("data", /*create=*/true));
    if (!use_uring) {
      EXPECT_STREQ(file->backend(), "thread-pool");
    } else if (UringAvailable()) {
      EXPECT_STREQ(file->backend(), "io_uring");
    }

    // A deep window of writes, one sync, then reads of the same ranges.
    std::vector<std::string> blocks;
    for (int i = 0; i < 6; ++i) {
      blocks.push_back(Pattern(kIoAlignment, static_cast<char>('A' + i)));
    }
    for (size_t i = 0; i < blocks.size(); ++i) {
      ASSERT_OK(file->SubmitWriteAt(i * kIoAlignment, Slice(blocks[i]), i));
    }
    std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
    ASSERT_EQ(done.size(), blocks.size());
    for (const AsyncIoCompletion& c : done) EXPECT_OK(c.status);
    ASSERT_OK(file->Sync());

    std::vector<std::string> read(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      read[i].assign(kIoAlignment, '\0');
      ASSERT_OK(file->SubmitReadAt(i * kIoAlignment,
                                   IoBuffer{&read[i][0], read[i].size()}, i));
    }
    done = ReapAllOf(file.get());
    ASSERT_EQ(done.size(), blocks.size());
    for (const AsyncIoCompletion& c : done) EXPECT_OK(c.status);
    for (size_t i = 0; i < blocks.size(); ++i) EXPECT_EQ(read[i], blocks[i]);

    // The write path must keep the File's cached size honest (the uring
    // backend bypasses File::WriteAt, so this pins the extent callback).
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> plain,
                         env->OpenFile("data", /*create=*/false));
    ASSERT_OK_AND_ASSIGN(uint64_t size, plain->Size());
    EXPECT_EQ(size, blocks.size() * kIoAlignment);
  }
}

/// Satellite: O_DIRECT alignment. Aligned page-size IO rides the direct
/// fd; misaligned operations must fall back to buffered IO silently and
/// still read back exactly.
TEST(PosixAsyncTest, DirectIoAlignedAndMisalignedRoundTrip) {
  PosixEnvOptions opt;
  opt.direct_io = true;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PosixEnv> env,
                       PosixEnv::Open(TestRoot("direct_rt"), opt));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env->OpenAsync("data", /*create=*/true));

  // Aligned: page-size buffer from MakeAlignedIoString at an aligned
  // offset — eligible for the O_DIRECT path on both backends.
  AlignedIoString aligned = MakeAlignedIoString(kIoAlignment);
  std::string page = Pattern(kIoAlignment, 'D');
  std::memcpy(aligned.data, page.data(), page.size());
  ASSERT_OK(file->SubmitWriteAt(0, Slice(aligned.data, aligned.size), 1));
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  ASSERT_OK(file->Sync());

  AlignedIoString back = MakeAlignedIoString(kIoAlignment);
  ASSERT_OK(file->SubmitReadAt(0, IoBuffer{back.data, back.size}, 2));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  EXPECT_EQ(std::memcmp(back.data, page.data(), page.size()), 0);

  // Misaligned offset and size: must fall back to buffered IO, not fail.
  std::string odd = Pattern(100, 'm');
  ASSERT_OK(file->SubmitWriteAt(kIoAlignment + 13, Slice(odd), 3));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  ASSERT_OK(file->Sync());

  std::string odd_back(100, '\0');
  ASSERT_OK(file->SubmitReadAt(kIoAlignment + 13,
                               IoBuffer{&odd_back[0], odd_back.size()}, 4));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  EXPECT_EQ(odd_back, odd);
}

/// FaultyEnv composes over PosixEnv (it decorates any base env), so
/// fault injection reaches the real-file async path too — through the
/// portable backend, whose semantics the native one must match.
TEST(PosixAsyncTest, FaultInjectionOverRealFiles) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PosixEnv> posix,
                       PosixEnv::Open(TestRoot("faulty_rt")));
  FaultyEnv env(posix.get());
  ScriptedFaultPolicy policy;
  policy.Add(FaultPoint{FaultOp::kWriteAt, "data", 1, FaultAction::kFail});
  env.SetPolicy(&policy);

  ASSERT_OK_AND_ASSIGN(std::shared_ptr<AsyncFile> file,
                       env.OpenAsync("data", /*create=*/true));
  std::string data = Pattern(kIoAlignment, 'F');
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 1));
  std::vector<AsyncIoCompletion> done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.IsIoError()) << done[0].status.ToString();

  // Transient: the retry lands on disk.
  ASSERT_OK(file->SubmitWriteAt(0, Slice(data), 2));
  done = ReapAllOf(file.get());
  ASSERT_EQ(done.size(), 1u);
  EXPECT_OK(done[0].status);
  ASSERT_OK(file->Sync());
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<File> plain,
                       env.OpenFile("data", /*create=*/false));
  std::string read;
  ASSERT_OK(plain->ReadAt(0, data.size(), &read));
  EXPECT_EQ(read, data);
}

TEST(AlignedIoStringTest, AlignedAndMoveSafe) {
  AlignedIoString s = MakeAlignedIoString(3 * kIoAlignment);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data) % kIoAlignment, 0u);
  EXPECT_EQ(s.size, 3 * kIoAlignment);
  std::memset(s.data, 0x5a, s.size);

  // Moving the struct must not invalidate the aligned view (the storage
  // is heap-backed; the data pointer survives the move).
  AlignedIoString moved = std::move(s);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(moved.data) % kIoAlignment, 0u);
  for (size_t i = 0; i < moved.size; i += 512) {
    ASSERT_EQ(static_cast<unsigned char>(moved.data[i]), 0x5au);
  }
}

// ---------- PageStore deep-queue reader/writer ----------

PageImage MakePage(uint32_t page, uint64_t lsn) {
  PageImage image;
  image.set_lsn(lsn);
  image.set_type(PageType::kRaw);
  std::string payload = Pattern(128, static_cast<char>('0' + page % 10));
  image.SetPayload(Slice(payload));
  image.Seal();
  return image;
}

TEST(PageStoreAsyncTest, ReaderMatchesSyncReadRun) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", /*num_partitions=*/2));
  for (PartitionId p = 0; p < 2; ++p) {
    for (uint32_t page = 0; page < 16; ++page) {
      ASSERT_OK(store->WritePage(PageId{p, page}, MakePage(page, page + 1)));
    }
  }

  std::unique_ptr<PageStore::AsyncRunReader> reader = store->NewAsyncReader(4);
  ASSERT_OK(reader->SubmitRead(0, 0, 8, /*tag=*/100));
  ASSERT_OK(reader->SubmitRead(0, 8, 8, /*tag=*/101));
  ASSERT_OK(reader->SubmitRead(1, 4, 8, /*tag=*/102));
  std::vector<PageStore::AsyncRunResult> results;
  ASSERT_OK(reader->ReapAll(&results));
  ASSERT_EQ(results.size(), 3u);

  for (const PageStore::AsyncRunResult& r : results) {
    ASSERT_OK(r.status);
    PartitionId partition = r.tag == 102 ? 1 : 0;
    uint32_t first = r.tag == 100 ? 0 : (r.tag == 101 ? 8 : 4);
    std::vector<PageImage> expected;
    ASSERT_OK(store->ReadRun(partition, first, 8, &expected));
    ASSERT_EQ(r.images.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(r.images[i].lsn(), expected[i].lsn());
      EXPECT_TRUE(r.images[i] == expected[i]);
    }
  }
}

TEST(PageStoreAsyncTest, ReaderQueueDepthIsEnforced) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", 1));
  ASSERT_OK(store->WritePage(PageId{0, 0}, MakePage(0, 1)));

  std::unique_ptr<PageStore::AsyncRunReader> reader = store->NewAsyncReader(2);
  ASSERT_OK(reader->SubmitRead(0, 0, 1, 1));
  ASSERT_OK(reader->SubmitRead(0, 0, 1, 2));
  EXPECT_TRUE(reader->SubmitRead(0, 0, 1, 3).IsFailedPrecondition());
  std::vector<PageStore::AsyncRunResult> results;
  ASSERT_OK(reader->ReapAll(&results));
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(reader->in_flight(), 0u);
}

/// The torn-read disambiguation path: a silent bit flip makes the
/// optimistic unlatched read fail its checksum at reap; the reader must
/// retry once under the partition latch with the synchronous ReadRun.
/// A transient corruption (gone on retry) therefore heals invisibly...
TEST(PageStoreAsyncTest, ChecksumFailureRetriesUnderLatch) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", 1));
  for (uint32_t page = 0; page < 8; ++page) {
    ASSERT_OK(store->WritePage(PageId{0, page}, MakePage(page, page + 1)));
  }

  ScriptedFaultPolicy policy;
  policy.Add(FaultPoint{FaultOp::kReadAt, ".p0", 1, FaultAction::kCorrupt});
  env.SetPolicy(&policy);

  std::unique_ptr<PageStore::AsyncRunReader> reader = store->NewAsyncReader(2);
  ASSERT_OK(reader->SubmitRead(0, 0, 8, 1));
  std::vector<PageStore::AsyncRunResult> results;
  ASSERT_OK(reader->ReapAll(&results));
  ASSERT_EQ(results.size(), 1u);
  ASSERT_OK(results[0].status);  // the latched retry read clean bytes
  ASSERT_EQ(results[0].images.size(), 8u);
  EXPECT_EQ(policy.fired(), 1u);
}

/// ...while persistent rot fails the latched retry too, and that error
/// (real media corruption, not a torn read) is what propagates.
TEST(PageStoreAsyncTest, PersistentCorruptionPropagates) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", 1));
  for (uint32_t page = 0; page < 4; ++page) {
    ASSERT_OK(store->WritePage(PageId{0, page}, MakePage(page, page + 1)));
  }
  ASSERT_OK(store->CorruptPage(PageId{0, 2}));

  std::unique_ptr<PageStore::AsyncRunReader> reader = store->NewAsyncReader(1);
  ASSERT_OK(reader->SubmitRead(0, 0, 4, 1));
  std::vector<PageStore::AsyncRunResult> results;
  ASSERT_OK(reader->ReapAll(&results));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.IsCorruption())
      << results[0].status.ToString();
}

TEST(PageStoreAsyncTest, WriterWindowPersistsAcrossPartitions) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> src,
                       PageStore::Open(&env, "src", 2));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> dst,
                       PageStore::Open(&env, "dst", 2));
  for (PartitionId p = 0; p < 2; ++p) {
    for (uint32_t page = 0; page < 8; ++page) {
      ASSERT_OK(src->WritePage(PageId{p, page}, MakePage(page, page + 9)));
    }
  }

  // A window of sealed runs spanning both partitions, written with one
  // barrier per partition.
  std::vector<PageImage> run0, run1, run2;
  ASSERT_OK(src->ReadRun(0, 0, 4, &run0));
  ASSERT_OK(src->ReadRun(0, 4, 4, &run1));
  ASSERT_OK(src->ReadRun(1, 0, 8, &run2));
  std::vector<PageStore::SealedRunWrite> window = {
      {0, 0, &run0, 10}, {0, 4, &run1, 11}, {1, 0, &run2, 12}};

  std::unique_ptr<PageStore::AsyncRunWriter> writer = dst->NewAsyncWriter(4);
  std::vector<PageStore::AsyncRunResult> results;
  ASSERT_OK(writer->WriteWindow(window, &results));
  ASSERT_EQ(results.size(), 3u);
  for (const PageStore::AsyncRunResult& r : results) {
    EXPECT_OK(r.status);
    EXPECT_TRUE(r.tag >= 10 && r.tag <= 12);
  }

  // Every page reads back through the checksum-verifying sync path.
  for (PartitionId p = 0; p < 2; ++p) {
    for (uint32_t page = 0; page < 8; ++page) {
      PageImage got;
      ASSERT_OK(dst->ReadPage(PageId{p, page}, &got));
      EXPECT_EQ(got.lsn(), page + 9u);
    }
  }
  ASSERT_OK_AND_ASSIGN(uint32_t pages, dst->PageCount(0));
  EXPECT_EQ(pages, 8u);
}

TEST(PageStoreAsyncTest, WriterSurfacesDeviceErrorPerRun) {
  MemEnv base;
  FaultyEnv env(&base);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<PageStore> store,
                       PageStore::Open(&env, "s", 1));
  std::vector<PageImage> run;
  for (uint32_t page = 0; page < 4; ++page) {
    run.push_back(MakePage(page, page + 1));
  }

  ScriptedFaultPolicy policy;
  policy.Add(FaultPoint{FaultOp::kWriteAt, ".p0", 1, FaultAction::kFail});
  env.SetPolicy(&policy);

  std::unique_ptr<PageStore::AsyncRunWriter> writer = store->NewAsyncWriter(2);
  std::vector<PageStore::SealedRunWrite> window = {{0, 0, &run, 1}};
  std::vector<PageStore::AsyncRunResult> results;
  Status status = writer->WriteWindow(window, &results);
  ASSERT_EQ(results.size(), 1u);
  // The fault lands either on the run's own write (per-run status) or is
  // absorbed into the window status; either way it must not vanish.
  EXPECT_TRUE(!status.ok() || !results[0].status.ok());

  // Transient fault: the identical window succeeds on retry (the
  // CallIo-style recovery TransferPipeline applies around windows).
  env.SetPolicy(nullptr);
  results.clear();
  ASSERT_OK(writer->WriteWindow(window, &results));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_OK(results[0].status);
  PageImage got;
  ASSERT_OK(store->ReadPage(PageId{0, 3}, &got));
  EXPECT_EQ(got.lsn(), 4u);
}

}  // namespace
}  // namespace llb
