#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "filestore/filestore.h"
#include "io/mem_env.h"
#include "recovery/instant_restore.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"

namespace llb {
namespace {

/// Instant restore: the database serves transactions while media
/// recovery proceeds underneath. These tests pin the core promises —
/// reads during restore return media-recovery-correct values (including
/// through logical-operation dependency closures), the finished image
/// matches the offline restore byte for byte, progress survives crashes
/// via the restored-bitmap, and the gates hold while restoring.

constexpr uint32_t kPartitions = 2;
constexpr uint32_t kPages = 64;
constexpr uint32_t kPagesPerFile = 2;
constexpr uint32_t kFiles = kPages / kPagesPerFile;

DbOptions RestoringDb() {
  DbOptions options;
  options.partitions = kPartitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 64;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.restore_batch_pages = 8;
  return options;
}

Status WipeStable(Env* env, const std::string& db_name) {
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName(db_name), kPartitions));
  for (PartitionId p = 0; p < kPartitions; ++p) {
    LLB_RETURN_IF_ERROR(stable->WipePartition(p));
  }
  return Status::OK();
}

Result<std::vector<std::string>> SnapshotStable(Env* env,
                                                const std::string& db_name) {
  LLB_ASSIGN_OR_RETURN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(env, Database::StableName(db_name), kPartitions));
  std::vector<std::string> pages;
  for (PartitionId p = 0; p < kPartitions; ++p) {
    for (uint32_t page = 0; page < kPages; ++page) {
      PageImage image;
      LLB_RETURN_IF_ERROR(stable->ReadPage(PageId{p, page}, &image));
      pages.push_back(image.raw_string());
    }
  }
  return pages;
}

/// Opens `name` in restoring mode with every domain registered and crash
/// redo run — OpenRestoring's analogue of TestEngine::Create.
Result<std::unique_ptr<Database>> OpenRestoringDb(Env* env,
                                                  const std::string& name,
                                                  const std::string& backup) {
  LLB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::OpenRestoring(env, name, RestoringDb(),
                                               backup));
  RegisterAllOps(db->registry());
  LLB_RETURN_IF_ERROR(db->Recover());
  return db;
}

/// Seeds both partitions, takes a full + incremental chain, appends a
/// post-backup log tail (including a logical Copy so restores must chase
/// dependency closures), and shuts down with everything durable.
Status BuildBackupScenario(TestEngine* engine) {
  std::vector<std::unique_ptr<FileStore>> stores;
  for (uint32_t p = 0; p < kPartitions; ++p) {
    stores.push_back(std::make_unique<FileStore>(engine->db(), p, 0,
                                                 kPagesPerFile, kFiles));
    for (uint32_t f = 0; f < kFiles; ++f) {
      LLB_RETURN_IF_ERROR(stores[p]->WriteValues(
          f, {static_cast<int64_t>(p) * 1000 + f, 1}));
    }
  }
  LLB_RETURN_IF_ERROR(engine->db()->FlushAll());
  LLB_RETURN_IF_ERROR(engine->db()->Checkpoint());
  LLB_RETURN_IF_ERROR(engine->db()->TakeBackup("ir_full").status());

  std::mt19937_64 rng(23);
  for (int i = 0; i < 30; ++i) {
    uint32_t p = static_cast<uint32_t>(rng() % kPartitions);
    uint32_t f = static_cast<uint32_t>(rng() % kFiles);
    LLB_RETURN_IF_ERROR(stores[p]->WriteValues(
        f, {static_cast<int64_t>(p) * 1000 + f, 2, i}));
  }
  LLB_RETURN_IF_ERROR(engine->db()->FlushAll());
  LLB_RETURN_IF_ERROR(
      engine->db()->TakeIncrementalBackup("ir_incr", "ir_full").status());

  // Post-backup tail: fresh source values, then a logical copy whose
  // replay reads them — the dependency a single-page restore must chase.
  // The trailing updates stay in partition 1 so they cannot overwrite the
  // copy's result.
  LLB_RETURN_IF_ERROR(stores[0]->WriteValues(2, {777, 42, 9}));
  LLB_RETURN_IF_ERROR(stores[0]->Copy(/*src=*/2, /*dst=*/5));
  for (int i = 0; i < 10; ++i) {
    uint32_t f = static_cast<uint32_t>(rng() % kFiles);
    LLB_RETURN_IF_ERROR(
        stores[1]->WriteValues(f, {1000 + f, 3}));
  }
  LLB_RETURN_IF_ERROR(engine->db()->ForceLog());
  stores.clear();
  return engine->Shutdown();
}

TEST(InstantRestoreTest, ServesCorrectValuesWhileRestoringAndMatchesOracle) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       OpenRestoringDb(engine->env(), "db", "ir_incr"));
  ASSERT_TRUE(db->restoring());

  // First transaction before any sweeping: reads fault their pages in on
  // demand and must see the media-recovery state — including the
  // logically copied file, whose replay depends on the source file's
  // post-backup value.
  FileStore faulting(db.get(), 0, 0, kPagesPerFile, kFiles);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> copied, faulting.ReadValues(5));
  ASSERT_GE(copied.size(), 3u);
  EXPECT_EQ(copied[0], 777);
  EXPECT_EQ(copied[1], 42);
  EXPECT_EQ(copied[2], 9);

  RestoreStatus mid = db->restore_status();
  EXPECT_TRUE(mid.restoring);
  EXPECT_GT(mid.pages_restored, 0u);
  EXPECT_GT(mid.pages_faulted, 0u);
  EXPECT_LT(mid.pages_restored, mid.pages_total);
  EXPECT_GT(mid.recovery_tail, 0u);

  // New work during the restore: updates and another logical copy.
  ASSERT_OK(faulting.WriteValues(7, {5555, 1}));
  ASSERT_OK(faulting.Copy(/*src=*/7, /*dst=*/9));

  // Background sweep to completion; the last step auto-finalizes.
  uint64_t swept = 0;
  while (db->restoring()) {
    ASSERT_OK_AND_ASSIGN(uint64_t moved, db->RestoreStep());
    swept += moved;
  }
  EXPECT_GT(swept, 0u);
  RestoreStatus done = db->restore_status();
  EXPECT_FALSE(done.restoring);

  // During-restore work is visible after completion...
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> after, faulting.ReadValues(9));
  ASSERT_GE(after.size(), 2u);
  EXPECT_EQ(after[0], 5555);

  // ...and the flushed store matches the full-log oracle.
  ASSERT_OK(db->FlushAll());
  db.reset();
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<LogManager> log,
        LogManager::Open(engine->env(), Database::LogName("db")));
    OpRegistry registry;
    RegisterAllOps(&registry);
    std::unique_ptr<PageStore> oracle;
    ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry,
                                    "ir_oracle", kPartitions, &oracle));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"),
                        kPartitions));
    EXPECT_EQ(testutil::DiffStores(*stable, *oracle, kPartitions, kPages),
              "");
  }

  // The bitmap is gone: a plain reopen works.
  ASSERT_OK(engine->Reopen());
}

TEST(InstantRestoreTest, QuiescedRestoreIsByteIdenticalToOfflineRestore) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));

  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(WipeStable(engine->env(), "db"));
  ASSERT_OK(Database::RestoreFromBackup(engine->env(), "db", "ir_incr",
                                        registry)
                .status());
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> offline,
                       SnapshotStable(engine->env(), "db"));

  ASSERT_OK(WipeStable(engine->env(), "db"));
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         OpenRestoringDb(engine->env(), "db", "ir_incr"));
    // Fault a few pages first so the image mixes fault-path and
    // sweep-path restores.
    PageImage image;
    ASSERT_OK(db->ReadPage(PageId{0, 3}, &image));
    ASSERT_OK(db->ReadPage(PageId{1, 17}, &image));
    ASSERT_OK(db->FinishRestore());
    EXPECT_FALSE(db->restoring());
    // Idempotent when already finished.
    ASSERT_OK(db->FinishRestore());
    ASSERT_OK_AND_ASSIGN(uint64_t moved, db->RestoreStep());
    EXPECT_EQ(moved, 0u);
  }
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> instant,
                       SnapshotStable(engine->env(), "db"));
  EXPECT_EQ(instant, offline)
      << "instant restore image differs from offline restore";
}

TEST(InstantRestoreTest, CrashMidRestoreResumesFromBitmap) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         OpenRestoringDb(engine->env(), "db", "ir_incr"));
    // Partial progress: some faults, one sweep step, then "crash".
    PageImage image;
    ASSERT_OK(db->ReadPage(PageId{0, 11}, &image));
    ASSERT_OK(db->ReadPage(PageId{1, 30}, &image));
    ASSERT_OK_AND_ASSIGN(uint64_t moved, db->RestoreStep());
    EXPECT_GT(moved, 0u);
    ASSERT_TRUE(db->restoring());
  }
  engine->env()->CrashAndRestart();

  // A plain open refuses the half-restored store.
  {
    Result<std::unique_ptr<Database>> plain =
        Database::Open(engine->env(), "db", RestoringDb());
    ASSERT_FALSE(plain.ok());
    EXPECT_TRUE(plain.status().IsFailedPrecondition())
        << plain.status().ToString();
  }

  // Resuming picks the bitmap up and finishes; the result matches the
  // full-log oracle.
  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         OpenRestoringDb(engine->env(), "db", "ir_incr"));
    RestoreStatus resumed = db->restore_status();
    EXPECT_TRUE(resumed.restoring);
    EXPECT_GT(resumed.pages_restored, 0u);
    ASSERT_OK(db->FinishRestore());
  }
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<LogManager> log,
        LogManager::Open(engine->env(), Database::LogName("db")));
    OpRegistry registry;
    RegisterAllOps(&registry);
    std::unique_ptr<PageStore> oracle;
    ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry,
                                    "ir_crash_oracle", kPartitions, &oracle));
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"),
                        kPartitions));
    EXPECT_EQ(testutil::DiffStores(*stable, *oracle, kPartitions, kPages),
              "");
  }
  ASSERT_OK(engine->Reopen());
}

TEST(InstantRestoreTest, MutatingGatesHoldWhileRestoring) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       OpenRestoringDb(engine->env(), "db", "ir_incr"));
  EXPECT_TRUE(db->TakeBackup("nope").status().IsFailedPrecondition());
  EXPECT_TRUE(db->TakeIncrementalBackup("nope", "ir_full")
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(db->Checkpoint().IsFailedPrecondition());
  EXPECT_TRUE(db->TruncateLog(kInvalidLsn).IsFailedPrecondition());
  EXPECT_TRUE(db->ScrubBackup("ir_full").status().IsFailedPrecondition());

  // Transactions, reads and flushes are the whole point — all allowed.
  FileStore store(db.get(), 0, 0, kPagesPerFile, kFiles);
  ASSERT_OK(store.WriteValues(1, {1, 2, 3}));
  ASSERT_OK(db->FlushAll());

  ASSERT_OK(db->FinishRestore());
  EXPECT_OK(db->Checkpoint());
  EXPECT_OK(db->TakeBackup("post_restore").status());
}

TEST(InstantRestoreTest, GeometryAndArgumentValidation) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  DbOptions wrong = RestoringDb();
  wrong.pages_per_partition = kPages * 2;
  EXPECT_TRUE(Database::OpenRestoring(engine->env(), "db", wrong, "ir_incr")
                  .status()
                  .IsInvalidArgument());

  DbOptions standby = RestoringDb();
  standby.standby = true;
  EXPECT_TRUE(
      Database::OpenRestoring(engine->env(), "db", standby, "ir_incr")
          .status()
          .IsInvalidArgument());

  EXPECT_TRUE(Database::OpenRestoring(engine->env(), "db", RestoringDb(), "")
                  .status()
                  .IsInvalidArgument());

  EXPECT_FALSE(Database::OpenRestoring(engine->env(), "db", RestoringDb(),
                                       "no_such_backup")
                   .ok());
}

TEST(InstantRestoreTest, OfflineRestoreSupersedesUnfinishedInstantRestore) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         OpenRestoringDb(engine->env(), "db", "ir_incr"));
    PageImage image;
    ASSERT_OK(db->ReadPage(PageId{0, 0}, &image));
    // Abandon mid-restore.
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(Database::RestoreFromBackup(engine->env(), "db", "ir_incr",
                                        registry)
                .status());
  // The full offline restore removed the bitmap: plain opens work again.
  ASSERT_OK(engine->Reopen());
}

TEST(InstantRestoreTest, ConcurrentFaultsRaceTheBackgroundSweep) {
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(RestoringDb()));
  ASSERT_OK(BuildBackupScenario(engine.get()));
  ASSERT_OK(WipeStable(engine->env(), "db"));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                       OpenRestoringDb(engine->env(), "db", "ir_incr"));

  // Reader threads hammer random pages (each read faults its page in on
  // first touch) while the main thread drives sweep steps — the
  // fault-vs-sweep race the pause hook arbitrates.
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&db, &failed, t] {
      std::mt19937_64 rng(100 + t);
      for (int i = 0; i < 200; ++i) {
        PageId id{static_cast<PartitionId>(rng() % kPartitions),
                  static_cast<uint32_t>(rng() % kPages)};
        PageImage image;
        if (!db->ReadPage(id, &image).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  while (db->restoring()) {
    Result<uint64_t> moved = db->RestoreStep();
    if (!moved.ok()) {
      failed.store(true);
      break;
    }
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(db->restoring());

  ASSERT_OK(db->FlushAll());
  db.reset();
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<LogManager> log,
      LogManager::Open(engine->env(), Database::LogName("db")));
  OpRegistry registry;
  RegisterAllOps(&registry);
  std::unique_ptr<PageStore> oracle;
  ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry,
                                  "ir_race_oracle", kPartitions, &oracle));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), kPartitions));
  EXPECT_EQ(testutil::DiffStores(*stable, *oracle, kPartitions, kPages), "");
}

}  // namespace
}  // namespace llb
