// Epoch-based group commit over per-thread log channels: epoch issuance
// and watermark publication, channels=1 byte-identity with the legacy
// single-mutex path, the (epoch, LSN) merge rules of AppendSealed, the
// atomic seal-observer install, and the multi-threaded append / commit /
// observer-swap races (run under the tsan preset).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "filestore/filestore.h"
#include "io/mem_env.h"
#include "ship/log_shipper.h"
#include "ship/ship_channel.h"
#include "sim/harness.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"

namespace llb {
namespace {

LogRecord SampleRecord(int salt) {
  LogRecord rec;
  rec.op_code = kOpBtreeInsert;
  rec.writeset = {PageId{0, static_cast<uint32_t>(salt % 7)}};
  rec.payload = "payload-" + std::to_string(salt);
  return rec;
}

std::string ReadWholeFile(Env* env, const std::string& name) {
  auto file = env->OpenFile(name, /*create=*/false);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  auto size = file.value()->Size();
  EXPECT_TRUE(size.ok()) << size.status().ToString();
  std::string bytes;
  EXPECT_OK(file.value()->ReadAt(0, size.value(), &bytes));
  return bytes;
}

// ---------- epoch issuance and the watermark ----------

TEST(GroupCommitTest, EpochAdvancesAndPublishesOnForce) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  EXPECT_EQ(log->channels(), 4u);
  EXPECT_EQ(log->durable_epoch(), kInvalidEpoch);
  EXPECT_EQ(log->CurrentEpoch(), 1u);

  LogRecord rec = SampleRecord(1);
  Epoch epoch = kInvalidEpoch;
  EXPECT_EQ(log->Append(&rec, &epoch), 1u);
  EXPECT_EQ(epoch, 1u);
  EXPECT_LT(log->durable_lsn(), 1u);

  ASSERT_OK(log->Force());
  EXPECT_GE(log->durable_epoch(), 1u);
  EXPECT_GE(log->CurrentEpoch(), 2u);
  EXPECT_EQ(log->durable_lsn(), 1u);
  EXPECT_EQ(log->stats().group_commits, 1u);
  EXPECT_EQ(log->stats().forces, 1u);
}

TEST(GroupCommitTest, WaitEpochDurableLeadsCallerDrivenCommit) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  std::vector<Epoch> epochs;
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = SampleRecord(i);
    Epoch epoch = kInvalidEpoch;
    log->Append(&rec, &epoch);
    epochs.push_back(epoch);
  }
  ASSERT_OK(log->WaitEpochDurable(epochs.back()));
  EXPECT_GE(log->durable_epoch(), epochs.back());
  EXPECT_EQ(log->durable_lsn(), 5u);
  // Already-durable epochs return without another commit.
  uint64_t commits = log->stats().group_commits;
  ASSERT_OK(log->WaitEpochDurable(epochs.front()));
  EXPECT_EQ(log->stats().group_commits, commits);
  // Scan sees the merged records densely.
  Lsn expect = 1;
  ASSERT_OK(log->Scan(1, [&](const LogRecord& rec) {
    EXPECT_EQ(rec.lsn, expect++);
    return Status::OK();
  }));
  EXPECT_EQ(expect, 6u);
}

TEST(GroupCommitTest, WaitEpochDurableWorksInLegacyMode) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log"));
  LogRecord rec = SampleRecord(1);
  Epoch epoch = kInvalidEpoch;
  log->Append(&rec, &epoch);
  EXPECT_EQ(epoch, 1u);
  ASSERT_OK(log->WaitEpochDurable(epoch));
  EXPECT_GE(log->durable_epoch(), epoch);
  EXPECT_EQ(log->durable_lsn(), 1u);
  // kInvalidEpoch is a no-op wait.
  ASSERT_OK(log->WaitEpochDurable(kInvalidEpoch));
}

TEST(GroupCommitTest, EmptyEpochPublishesWithoutRecords) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  Epoch barrier = log->CurrentEpoch();
  ASSERT_OK(log->WaitEpochDurable(barrier));
  EXPECT_GE(log->durable_epoch(), barrier);
  EXPECT_EQ(log->next_lsn(), 1u);
}

TEST(GroupCommitTest, BackgroundAdvancerPublishesWithoutCaller) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 2;
  options.group_commit_interval_us = 100;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  LogRecord rec = SampleRecord(1);
  Epoch epoch = kInvalidEpoch;
  log->Append(&rec, &epoch);
  // The waiter blocks on the advancer's watermark instead of committing.
  ASSERT_OK(log->WaitEpochDurable(epoch));
  EXPECT_GE(log->durable_epoch(), epoch);
  EXPECT_EQ(log->durable_lsn(), 1u);
}

// ---------- channels=1 byte-identity ----------

TEST(GroupCommitTest, SingleThreadLogBytesIdenticalAcrossChannelCounts) {
  // The same append/force script must produce the identical log file
  // whether it runs through the legacy path or through channels: the
  // group commit merges by LSN into the same frame encoding.
  auto run = [](uint32_t channels) {
    MemEnv env;
    LogManagerOptions options;
    options.channels = channels;
    auto log = LogManager::Open(&env, "log", options);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 4; ++i) {
        LogRecord rec = SampleRecord(round * 4 + i);
        log.value()->Append(&rec);
      }
      EXPECT_OK(log.value()->Force());
    }
    return ReadWholeFile(&env, "log");
  };
  std::string legacy = run(1);
  std::string grouped = run(4);
  EXPECT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, grouped);
}

// ---------- AppendSealed epoch-merge edges ----------

TEST(GroupCommitTest, SealObserverSegmentsCarryEpochAndReplayIdempotently) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> primary,
                       LogManager::Open(&env, "primary", options));
  std::vector<SealedSegment> seals;
  primary->SetSealObserver(
      [&](const SealedSegment& segment) { seals.push_back(segment); });
  for (int i = 0; i < 3; ++i) {
    LogRecord rec = SampleRecord(i);
    primary->Append(&rec);
  }
  ASSERT_OK(primary->Force());
  ASSERT_EQ(seals.size(), 1u);
  EXPECT_NE(seals[0].epoch, kInvalidEpoch);
  EXPECT_EQ(seals[0].first_lsn, 1u);
  EXPECT_EQ(seals[0].last_lsn, 3u);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> standby,
                       LogManager::Open(&env, "standby"));
  ASSERT_OK(standby->AppendSealed(seals[0], nullptr));
  EXPECT_EQ(standby->next_lsn(), 4u);
  EXPECT_EQ(standby->last_ingested_epoch(), seals[0].epoch);
  // Replaying the same epoch with already-ingested records is a no-op.
  ASSERT_OK(standby->AppendSealed(seals[0], nullptr));
  EXPECT_EQ(standby->next_lsn(), 4u);
}

TEST(GroupCommitTest, AppendSealedRejectsStaleEpochWithNewRecords) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> primary,
                       LogManager::Open(&env, "primary", options));
  std::vector<SealedSegment> seals;
  primary->SetSealObserver(
      [&](const SealedSegment& segment) { seals.push_back(segment); });
  for (int round = 0; round < 2; ++round) {
    LogRecord rec = SampleRecord(round);
    primary->Append(&rec);
    ASSERT_OK(primary->Force());
  }
  ASSERT_EQ(seals.size(), 2u);
  ASSERT_GT(seals[1].epoch, seals[0].epoch);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> standby,
                       LogManager::Open(&env, "standby"));
  ASSERT_OK(standby->AppendSealed(seals[0], nullptr));
  // A segment stamped with an already-ingested epoch must not introduce
  // records the standby has not seen: rewind the stamp of the second
  // seal to the first's epoch.
  SealedSegment stale = seals[1];
  stale.epoch = seals[0].epoch;
  Status s = standby->AppendSealed(stale, nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(standby->next_lsn(), 2u);
  // With its true (newer) epoch the same segment ingests fine.
  ASSERT_OK(standby->AppendSealed(seals[1], nullptr));
  EXPECT_EQ(standby->next_lsn(), 3u);
}

TEST(GroupCommitTest, AppendSealedEmptyEpochAdvancesBookkeepingOnly) {
  MemEnv env;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> standby,
                       LogManager::Open(&env, "standby"));
  SealedSegment idle;
  idle.seq = 1;
  idle.epoch = 7;
  ASSERT_OK(standby->AppendSealed(idle, nullptr));
  EXPECT_EQ(standby->last_ingested_epoch(), 7u);
  EXPECT_EQ(standby->next_lsn(), 1u);
  // Re-publishing the idle epoch is idempotent too.
  ASSERT_OK(standby->AppendSealed(idle, nullptr));
  EXPECT_EQ(standby->last_ingested_epoch(), 7u);
}

TEST(GroupCommitTest, AppendSealedRejectsNonContiguousEpochSegment) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> primary,
                       LogManager::Open(&env, "primary", options));
  std::vector<SealedSegment> seals;
  primary->SetSealObserver(
      [&](const SealedSegment& segment) { seals.push_back(segment); });
  for (int round = 0; round < 2; ++round) {
    LogRecord rec = SampleRecord(round);
    primary->Append(&rec);
    ASSERT_OK(primary->Force());
  }
  ASSERT_EQ(seals.size(), 2u);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> standby,
                       LogManager::Open(&env, "standby"));
  // Skipping seal 0 leaves an LSN gap: the epoch stamp does not excuse
  // the contiguity rule.
  Status s = standby->AppendSealed(seals[1], nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(standby->next_lsn(), 1u);
}

TEST(GroupCommitTest, TruncatePrefixCommitsOpenEpochFirst) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  for (int i = 0; i < 6; ++i) {
    LogRecord rec = SampleRecord(i);
    log->Append(&rec);
  }
  // Records 1..6 still sit in channel buffers; TruncatePrefix must group
  // -commit them before rewriting, or the kept suffix would be empty.
  ASSERT_OK(log->TruncatePrefix(4));
  std::vector<Lsn> seen;
  ASSERT_OK(log->Scan(1, [&](const LogRecord& rec) {
    seen.push_back(rec.lsn);
    return Status::OK();
  }));
  EXPECT_EQ(seen, (std::vector<Lsn>{4, 5, 6}));
}

// ---------- races (meaningful under the tsan preset) ----------

TEST(GroupCommitTest, ConcurrentAppendersCommitsAndObserverSwaps) {
  MemEnv env;
  LogManagerOptions options;
  options.channels = 4;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "log", options));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::atomic<uint64_t> observed_records{0};

  std::vector<std::thread> appenders;
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec = SampleRecord(t * kPerThread + i);
        Epoch epoch = kInvalidEpoch;
        log->Append(&rec, &epoch);
        if (i % 16 == 0) ASSERT_OK(log->WaitEpochDurable(epoch));
      }
    });
  }
  // Rapid observer churn races the group commits' seal delivery: swaps
  // synchronize under the seal lock, so frames are never torn or
  // double-delivered to two observers.
  std::thread swapper([&]() {
    for (int i = 0; i < 50; ++i) {
      log->InstallSealObserver([&](const SealedSegment& segment) {
        if (segment.first_lsn != kInvalidLsn) {
          observed_records.fetch_add(
              segment.last_lsn - segment.first_lsn + 1);
        }
      });
      log->SetSealObserver(nullptr);
    }
  });
  // A commit-leader thread racing the appenders' piggyback waits.
  std::thread forcer([&]() {
    for (int i = 0; i < 20; ++i) ASSERT_OK(log->Force());
  });
  for (auto& th : appenders) th.join();
  swapper.join();
  forcer.join();
  ASSERT_OK(log->Force());

  EXPECT_EQ(log->durable_lsn(), uint64_t{kThreads} * kPerThread);
  Lsn expect = 1;
  ASSERT_OK(log->Scan(1, [&](const LogRecord& rec) {
    EXPECT_EQ(rec.lsn, expect++);
    return Status::OK();
  }));
  EXPECT_EQ(expect, uint64_t{kThreads} * kPerThread + 1);
}

TEST(GroupCommitTest, ShipperAttachRacesConcurrentForces) {
  // The log_shipper.h install hazard: Attach's catch-up scan and its
  // observer install must not lose (or double-count in a torn way) a
  // seal that lands in between. The shipper installs atomically via
  // InstallSealObserver, so every durable LSN reaches the channel
  // exactly once in order after enough Pumps.
  MemEnv env;
  LogManagerOptions options;
  options.channels = 2;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<LogManager> log,
                       LogManager::Open(&env, "primary", options));
  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    int salt = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      LogRecord rec = SampleRecord(salt++);
      log->Append(&rec);
      ASSERT_OK(log->Force());
    }
  });
  // Let some seals land before the attach so the catch-up scan has work.
  while (log->durable_lsn() < 20) std::this_thread::yield();

  FileShipChannel channel(&env, "spool");
  LogShipper shipper(&env, "primary", log.get(), &channel);
  ASSERT_OK(shipper.Attach());
  stop.store(true);
  writer.join();
  ASSERT_OK(log->Force());
  while (shipper.backlog() > 0) ASSERT_OK(shipper.Pump());

  // Every durable LSN must appear in the channel in order, no gaps: a
  // lost mid-attach seal would leave a hole between the catch-up frame
  // and the first observer frame.
  std::vector<ShipFrame> frames;
  ASSERT_OK(channel.Poll(1, &frames));
  Lsn next = 1;
  for (const ShipFrame& frame : frames) {
    if (frame.first_lsn == kInvalidLsn) continue;
    EXPECT_LE(frame.first_lsn, next);  // duplicates fine, gaps not
    if (frame.last_lsn >= next) next = frame.last_lsn + 1;
  }
  EXPECT_EQ(next, log->durable_lsn() + 1);
  EXPECT_EQ(shipper.stats().last_shipped_lsn, log->durable_lsn());
}

// ---------- engine-level overlapped installs ----------

DbOptions SmallGroupedOptions(uint32_t channels) {
  DbOptions options;
  options.partitions = 4;
  options.pages_per_partition = 16;
  options.cache_pages = 12;  // < working set: every updater evicts
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  options.backup_steps = 4;
  options.log_channels = channels;
  return options;
}

TEST(GroupCommitTest, ConcurrentUpdatersDuringBackupStayConsistent) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TestEngine> engine,
      TestEngine::Create(SmallGroupedOptions(4)));
  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::vector<std::unique_ptr<FileStore>> files;
  for (int t = 0; t < kThreads; ++t) {
    files.push_back(std::make_unique<FileStore>(
        engine->db(), /*partition=*/t, /*base_page=*/0,
        /*pages_per_file=*/1, /*num_files=*/16));
  }
  std::atomic<bool> stop{false};
  std::thread backups([&]() {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_OK(
          engine->db()->TakeBackup("bk" + std::to_string(round++)).status());
    }
  });
  std::vector<std::thread> updaters;
  for (int t = 0; t < kThreads; ++t) {
    updaters.emplace_back([&, t]() {
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_OK(files[t]->WriteValues(
            static_cast<uint32_t>(i) % 16,
            {static_cast<int64_t>(t * 1000 + i)}));
      }
    });
  }
  for (auto& th : updaters) th.join();
  stop.store(true);
  backups.join();

  // Every file holds its last-written value; the epoch watermark never
  // let a flushed page outrun its Iw record, so the final flush + reread
  // must agree with the in-memory truth.
  ASSERT_OK(engine->db()->FlushAll());
  for (int t = 0; t < kThreads; ++t) {
    for (uint32_t f = 0; f < 16; ++f) {
      ASSERT_OK_AND_ASSIGN(std::vector<int64_t> values,
                           files[t]->ReadValues(f));
      int last = -1;
      for (int i = 0; i < kRounds; ++i) {
        if (static_cast<uint32_t>(i) % 16 == f) last = i;
      }
      ASSERT_GE(last, 0);
      ASSERT_EQ(values.size(), 1u);
      EXPECT_EQ(values[0], t * 1000 + last);
    }
  }
  DbStats stats = engine->db()->GatherStats();
  EXPECT_EQ(stats.log_channels, 4u);
  EXPECT_GT(stats.cache.overlapped_installs, 0u);
  EXPECT_GE(stats.open_epoch, stats.durable_epoch);
}


// Same workload in legacy single-channel mode: installs hold the cache
// mutex throughout, so this pins the baseline behavior the overlapped
// path must match.
TEST(GroupCommitTest, ConcurrentUpdatersDuringBackupLegacyChannel) {
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<TestEngine> engine,
      TestEngine::Create(SmallGroupedOptions(1)));
  constexpr int kThreads = 4;
  constexpr int kRounds = 40;
  std::vector<std::unique_ptr<FileStore>> files;
  for (int t = 0; t < kThreads; ++t) {
    files.push_back(std::make_unique<FileStore>(
        engine->db(), /*partition=*/t, /*base_page=*/0,
        /*pages_per_file=*/1, /*num_files=*/16));
  }
  std::atomic<bool> stop{false};
  std::thread backups([&]() {
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_OK(
          engine->db()->TakeBackup("bk" + std::to_string(round++)).status());
    }
  });
  std::vector<std::thread> updaters;
  for (int t = 0; t < kThreads; ++t) {
    updaters.emplace_back([&, t]() {
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_OK(files[t]->WriteValues(
            static_cast<uint32_t>(i) % 16,
            {static_cast<int64_t>(t * 1000 + i)}));
      }
    });
  }
  for (auto& th : updaters) th.join();
  stop.store(true);
  backups.join();

  ASSERT_OK(engine->db()->FlushAll());
  for (int t = 0; t < kThreads; ++t) {
    for (uint32_t f = 0; f < 16; ++f) {
      ASSERT_OK_AND_ASSIGN(std::vector<int64_t> values,
                           files[t]->ReadValues(f));
      int last = -1;
      for (int i = 0; i < kRounds; ++i) {
        if (static_cast<uint32_t>(i) % 16 == f) last = i;
      }
      ASSERT_GE(last, 0);
      ASSERT_EQ(values.size(), 1u);
      EXPECT_EQ(values[0], t * 1000 + last);
    }
  }
  EXPECT_EQ(engine->db()->GatherStats().cache.overlapped_installs, 0u);
}

}  // namespace
}  // namespace llb
