#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/sweep_pool.h"
#include "filestore/filestore.h"
#include "sim/oracle.h"
#include "tests/test_util.h"
#include "torture/concurrent_torture.h"
#include "torture/torture_util.h"

namespace llb {
namespace {

/// Coverage of the sharded parallel sweep (BackupJobOptions::sweep_threads
/// over the database's persistent SweepThreadPool): parallelism must be a
/// pure scheduling change. Every partition still has exactly one sweeper
/// advancing its own (D, P) fences, so the backup a parallel sweep writes
/// is byte-identical to the serial sweep's, aborted parallel sweeps resume
/// from the merged per-partition cursor, and Database-driven sweeps spawn
/// zero transient threads.

constexpr uint32_t kPages = 32;
constexpr uint32_t kSteps = 4;
constexpr uint32_t kPartitions = 4;

DbOptions ParallelOptions(uint32_t partitions = kPartitions) {
  DbOptions options;
  options.partitions = partitions;
  options.pages_per_partition = kPages;
  options.cache_pages = 32;
  options.graph = WriteGraphKind::kGeneral;
  options.backup_policy = BackupPolicy::kGeneral;
  return options;
}

/// One-page files per partition with per-partition content: file f of
/// partition p holds {p * 1000 + f, 1}.
Status SeedPartitions(Database* db,
                      std::vector<std::unique_ptr<FileStore>>* stores,
                      uint32_t partitions) {
  for (uint32_t p = 0; p < partitions; ++p) {
    stores->push_back(std::make_unique<FileStore>(
        db, p, /*base_page=*/0, /*pages_per_file=*/1, /*num_files=*/kPages));
    for (uint32_t f = 0; f < kPages; ++f) {
      LLB_RETURN_IF_ERROR((*stores)[p]->WriteValues(
          f, {static_cast<int64_t>(p) * 1000 + f, 1}));
    }
  }
  LLB_RETURN_IF_ERROR(db->FlushAll());
  return db->Checkpoint();
}

TEST(SweepPoolTest, RunsTasksPropagatesFaultsAndNeverShrinks) {
  SweepThreadPool pool(2);
  EXPECT_EQ(pool.threads(), 2u);

  std::future<Status> ok = pool.Submit([] { return Status::OK(); });
  std::future<Status> bad =
      pool.Submit([] { return Status::IoError("injected pool fault"); });
  EXPECT_OK(ok.get());
  Status fault = bad.get();
  EXPECT_TRUE(fault.IsIoError()) << fault.ToString();
  EXPECT_EQ(pool.tasks_run(), 2u);

  pool.Grow(1);  // never shrinks
  EXPECT_EQ(pool.threads(), 2u);
  pool.Grow(3);
  EXPECT_EQ(pool.threads(), 3u);
}

TEST(SweepPoolTest, TrySubmitDeclinesUnlessAWorkerIsIdle) {
  SweepThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  std::future<Status> blocker = pool.Submit([&started, gate] {
    started.set_value();
    gate.wait();
    return Status::OK();
  });
  started.get_future().wait();

  // The only worker is busy: TrySubmit must decline rather than queue
  // (queuing behind a busy pool is how nested prefetch could deadlock).
  std::future<Status> declined;
  EXPECT_FALSE(pool.TrySubmit([] { return Status::OK(); }, &declined));

  release.set_value();
  EXPECT_OK(blocker.get());

  // Once the worker parks again TrySubmit accepts. The worker flips back
  // to idle shortly after the blocker future resolves, so poll briefly.
  std::future<Status> accepted;
  bool submitted = false;
  for (int i = 0; i < 5000 && !submitted; ++i) {
    submitted = pool.TrySubmit([] { return Status::OK(); }, &accepted);
    if (!submitted) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(submitted);
  EXPECT_OK(accepted.get());
  EXPECT_EQ(pool.tasks_run(), 2u);
}

/// The headline invariant: with no concurrent updates, sweeps at every
/// worker count produce byte-identical backup stores and identical page
/// traffic — sharding partitions across workers only reorders which
/// partition is swept when, and fence advances on different partitions
/// commute.
TEST(ParallelBackupTest, ParallelSweepMatchesSerialOutputByteForByte) {
  TortureEngine engine(ParallelOptions());
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  std::vector<std::unique_ptr<FileStore>> stores;
  ASSERT_OK(SeedPartitions(db, &stores, kPartitions));

  BackupJobOptions serial;
  serial.steps = kSteps;  // sweep_threads = 1: the serial baseline
  BackupJobStats serial_stats;
  ASSERT_OK_AND_ASSIGN(
      BackupManifest serial_manifest,
      db->TakeBackupWithOptions("pbk_t1", serial, &serial_stats));
  EXPECT_TRUE(serial_manifest.complete);
  EXPECT_EQ(serial_stats.threads_spawned, 0u);
  EXPECT_EQ(serial_stats.pages_copied, uint64_t{kPartitions} * kPages);
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> serial_store,
      PageStore::Open(&engine.env, serial_manifest.StoreName(), kPartitions));

  for (uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("sweep_threads=" + std::to_string(threads));
    BackupJobOptions job;
    job.steps = kSteps;
    job.sweep_threads = threads;  // 8 exercises the clamp to 4 partitions
    BackupJobStats stats;
    std::string name = "pbk_t" + std::to_string(threads);
    ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                         db->TakeBackupWithOptions(name, job, &stats));
    EXPECT_TRUE(manifest.complete);
    // Database attached its persistent pool: no transient threads.
    EXPECT_EQ(stats.threads_spawned, 0u);
    EXPECT_EQ(stats.pages_copied, serial_stats.pages_copied);
    EXPECT_EQ(stats.fence_updates, serial_stats.fence_updates);
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> store,
        PageStore::Open(&engine.env, manifest.StoreName(), kPartitions));
    EXPECT_EQ(testutil::DiffStores(*serial_store, *store, kPartitions, kPages),
              "");
  }
}

/// Worker sharding composed with the batched/pipelined pipeline: the
/// prefetch stage rides the same pool via TrySubmit, so even a fully
/// pipelined parallel sweep spawns zero transient threads — the
/// regression guard for the persistent-worker design.
TEST(ParallelBackupTest, PooledPipelinedSweepSpawnsZeroTransientThreads) {
  TortureEngine engine(ParallelOptions());
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  std::vector<std::unique_ptr<FileStore>> stores;
  ASSERT_OK(SeedPartitions(db, &stores, kPartitions));

  uint64_t tasks_before = db->sweep_pool()->tasks_run();
  BackupJobOptions job;
  job.steps = kSteps;
  job.sweep_threads = 4;
  job.batch_pages = 8;
  job.pipelined = true;
  BackupJobStats stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest manifest,
                       db->TakeBackupWithOptions("pbk_pipe", job, &stats));
  EXPECT_TRUE(manifest.complete);
  EXPECT_EQ(stats.threads_spawned, 0u);
  EXPECT_GT(stats.read_batches, 0u);
  EXPECT_GT(stats.write_batches, 0u);
  // The sweep really ran on the pool, sized for workers + prefetch.
  EXPECT_GT(db->sweep_pool()->tasks_run(), tasks_before);
  EXPECT_GE(db->sweep_pool()->threads(), 4u);

  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("pbk_pipe"));
  EXPECT_TRUE(verify.clean());
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "pbk_pipe", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

/// A scripted fault kills partition 1's sweeper mid-step while partition
/// 0's worker completes its shard. One failed partition must not stop the
/// others (their cursors are what makes Resume cheap), and the parallel
/// Resume must work from the merged cursor: partition 0 skipped entirely,
/// partition 1 continued from its durable step boundary.
TEST(ParallelBackupTest, AbortedParallelSweepResumesFromMergedCursor) {
  TortureEngine engine(ParallelOptions(/*partitions=*/2));
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  std::vector<std::unique_ptr<FileStore>> stores;
  ASSERT_OK(SeedPartitions(db, &stores, 2));

  BackupJobOptions job;
  job.steps = kSteps;
  job.sweep_threads = 2;

  // Per-page writes to partition 1's backup pages file: 32 pages / 4
  // steps = 8 per step, so the 10th write dies inside step 1, leaving
  // partition 1's durable cursor at the step-1 boundary (page 8). The
  // filter is scoped to ".pages.p1" so partition 0's stream never faults.
  ScriptedFaultPolicy abort_policy({{FaultOp::kWriteAt, "pbk_mid.pages.p1",
                                     /*countdown=*/10, FaultAction::kFail}});
  engine.env.SetPolicy(&abort_policy);
  Result<BackupManifest> aborted = db->TakeBackupWithOptions("pbk_mid", job);
  engine.env.SetPolicy(nullptr);
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(abort_policy.fired(), 1u);

  // Both partitions' fences are still up; flushes into already-copied
  // territory must be identity-logged for the resumed chain to restore.
  for (uint32_t p = 0; p < 2; ++p) {
    for (uint32_t f = 0; f < 6; ++f) {
      ASSERT_OK(stores[p]->WriteValues(
          f, {static_cast<int64_t>(p) * 1000 + f, 3}));
    }
  }
  ASSERT_OK(db->FlushAll());

  BackupJobStats stats;
  ASSERT_OK_AND_ASSIGN(BackupManifest resumed,
                       db->ResumeBackup("pbk_mid", job, &stats));
  EXPECT_TRUE(resumed.complete);
  // Partition 0 finished before the abort, so its cursor shows it
  // complete and Resume never re-sweeps it; only partition 1 is
  // continued, skipping its durably-copied 8-page prefix.
  EXPECT_EQ(stats.partitions_resumed, 1u);
  EXPECT_EQ(stats.pages_skipped_on_resume, 8u);
  EXPECT_EQ(stats.pages_copied, uint64_t{kPages} - 8u);
  EXPECT_EQ(stats.threads_spawned, 0u);

  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("pbk_mid"));
  EXPECT_TRUE(verify.clean());
  ASSERT_OK(torture::VerifyOpenDb(&engine));
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "pbk_mid", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

/// DbOptions::backup_sweep_threads reaches both TakeBackup and
/// TakeIncrementalBackup, and a parallel full + parallel incremental
/// chain restores.
TEST(ParallelBackupTest, DbOptionsSweepThreadsDriveFullAndIncremental) {
  DbOptions options = ParallelOptions();
  options.backup_sweep_threads = 4;
  TortureEngine engine(options);
  ASSERT_OK(engine.Open());
  Database* db = engine.db.get();
  std::vector<std::unique_ptr<FileStore>> stores;
  ASSERT_OK(SeedPartitions(db, &stores, kPartitions));

  ASSERT_OK_AND_ASSIGN(BackupManifest full, db->TakeBackup("pbk_base", 0));
  EXPECT_TRUE(full.complete);

  // Scattered changes across every partition so the incremental sweep
  // also shards real work.
  for (uint32_t p = 0; p < kPartitions; ++p) {
    for (uint32_t f = p; f < kPages; f += 4) {
      ASSERT_OK(stores[p]->WriteValues(
          f, {static_cast<int64_t>(p) * 1000 + f, 5}));
    }
  }
  ASSERT_OK(db->FlushAll());
  ASSERT_OK_AND_ASSIGN(BackupManifest incr,
                       db->TakeIncrementalBackup("pbk_incr", "pbk_base", 0));
  EXPECT_TRUE(incr.complete);

  ASSERT_OK_AND_ASSIGN(ScrubReport verify, db->VerifyBackup("pbk_incr"));
  EXPECT_TRUE(verify.clean());
  engine.Shutdown();
  ASSERT_OK(torture::WipeStable(&engine));
  ASSERT_OK(torture::OfflineRestore(&engine, "pbk_incr", kInvalidLsn));
  ASSERT_OK(torture::VerifyStableOffline(&engine, kInvalidLsn));
}

/// The TSan tier: updater threads race sharded pool sweeps (sweep_threads
/// = 2 instead of the legacy one-thread-per-partition mode), then the
/// last chain carries a full wipe + media recovery.
TEST(ParallelBackupTest, ConcurrentUpdatersRaceShardedPoolSweeps) {
  ConcurrentTortureOptions options;
  options.seed = 13;
  options.partitions = 2;
  options.pages_per_partition = 32;
  options.cache_pages = 16;
  options.updates_per_thread = 120;
  options.backup_steps = 4;
  options.backups = 2;
  options.sweep_threads = 2;
  options.poll_stats = true;
  ASSERT_OK_AND_ASSIGN(ConcurrentTortureReport report,
                       RunConcurrentTorture(options));
  EXPECT_EQ(report.updates_applied,
            static_cast<uint64_t>(options.partitions) *
                options.updates_per_thread);
  EXPECT_EQ(report.backups_completed, options.backups);
  EXPECT_GT(report.pages_copied, 0u);
}

}  // namespace
}  // namespace llb
