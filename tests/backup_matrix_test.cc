// Parameterized property sweep: for every combination of backup policy,
// step count, partition parallelism, and workload intensity, an on-line
// backup taken while the workload runs must media-recover to the exact
// oracle state. This is the paper's end-to-end guarantee swept across its
// tuning space ("we can vary the granularity of synchronization ... from
// twice per backup ... to many times", section 3.4).

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <tuple>

#include "btree/btree.h"
#include "filestore/filestore.h"
#include "recovery/media_recovery.h"
#include "sim/harness.h"
#include "tests/test_util.h"

namespace llb {
namespace {

enum class Domain { kBtree, kFileStore };

struct MatrixParam {
  BackupPolicy policy;
  WriteGraphKind graph;
  Domain domain;
  uint32_t steps;
  bool parallel;
};

std::string ParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string name;
  name += p.policy == BackupPolicy::kTree ? "Tree" : "General";
  name += p.domain == Domain::kBtree ? "Btree" : "Files";
  name += "Steps" + std::to_string(p.steps);
  name += p.parallel ? "Par" : "Seq";
  return name;
}

class BackupMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(BackupMatrixTest, OnlineBackupMediaRecoversToOracle) {
  const MatrixParam& param = GetParam();
  DbOptions options;
  options.partitions = 2;
  options.pages_per_partition = 400;
  options.cache_pages = 48;
  options.graph = param.graph;
  options.backup_policy = param.policy;
  options.parallel_backup = param.parallel;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<TestEngine> engine,
                       TestEngine::Create(options));
  Database* db = engine->db();

  std::unique_ptr<BTree> tree_a, tree_b;
  std::unique_ptr<FileStore> files;
  int64_t key = 0;
  int round = 0;
  auto do_work = [&](int amount) -> Status {
    if (param.domain == Domain::kBtree) {
      for (int i = 0; i < amount; ++i, ++key) {
        LLB_RETURN_IF_ERROR(
            tree_a->Insert((key * 41) % 3001, Slice("a")));
        LLB_RETURN_IF_ERROR(
            tree_b->Insert((key * 43) % 3001, Slice("b")));
      }
    } else {
      for (int i = 0; i < amount; ++i, ++round) {
        LLB_RETURN_IF_ERROR(files->Copy(round % 4, 4 + (round % 8)));
        if (round % 3 == 1) {
          LLB_RETURN_IF_ERROR(files->Transform(round % 4, round));
        }
      }
    }
    return Status::OK();
  };

  if (param.domain == Domain::kBtree) {
    tree_a = std::make_unique<BTree>(db, 0, 0, SplitLogging::kLogical);
    tree_b = std::make_unique<BTree>(db, 1, 0, SplitLogging::kLogical);
    ASSERT_OK(tree_a->Create());
    ASSERT_OK(tree_b->Create());
  } else {
    files = std::make_unique<FileStore>(db, 0, 0, 2, 16);
    ASSERT_OK(files->WriteValues(0, {3, 1, 4, 1, 5, 9, 2, 6}));
  }
  ASSERT_OK(do_work(60));
  ASSERT_OK(db->FlushAll());

  BackupJobOptions job;
  job.steps = param.steps;
  job.parallel_partitions = param.parallel;
  // With parallel partitions the hook runs on several sweep threads;
  // serialize the workload itself (the engine underneath is fine with
  // concurrency, but the drivers here are single-threaded objects).
  std::mutex work_mu;
  job.mid_step = [&](PartitionId, uint32_t) -> Status {
    std::lock_guard<std::mutex> lock(work_mu);
    LLB_RETURN_IF_ERROR(do_work(15));
    return db->FlushAll();
  };
  ASSERT_OK(db->TakeBackupWithOptions("bk", job).status());
  ASSERT_OK(do_work(30));
  ASSERT_OK(db->ForceLog());

  tree_a.reset();
  tree_b.reset();
  files.reset();
  ASSERT_OK(engine->Shutdown());
  {
    ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<PageStore> stable,
        PageStore::Open(engine->env(), Database::StableName("db"), 2));
    ASSERT_OK(stable->WipePartition(0));
    ASSERT_OK(stable->WipePartition(1));
  }
  OpRegistry registry;
  RegisterAllOps(&registry);
  ASSERT_OK(RestoreFromBackup(engine->env(), Database::StableName("db"),
                              Database::LogName("db"), "bk", registry)
                .status());

  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<LogManager> log,
      LogManager::Open(engine->env(), Database::LogName("db")));
  std::unique_ptr<PageStore> oracle;
  ASSERT_OK(testutil::BuildOracle(engine->env(), *log, registry, "oracle", 2,
                                  &oracle));
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<PageStore> stable,
      PageStore::Open(engine->env(), Database::StableName("db"), 2));
  EXPECT_EQ(testutil::DiffStores(*stable, *oracle, 2, 400), "");
}

std::vector<MatrixParam> AllParams() {
  std::vector<MatrixParam> params;
  for (uint32_t steps : {1u, 2u, 4u, 8u, 16u}) {
    for (bool parallel : {false, true}) {
      params.push_back({BackupPolicy::kTree, WriteGraphKind::kTree,
                        Domain::kBtree, steps, parallel});
      params.push_back({BackupPolicy::kGeneral, WriteGraphKind::kGeneral,
                        Domain::kBtree, steps, parallel});
      params.push_back({BackupPolicy::kGeneral, WriteGraphKind::kGeneral,
                        Domain::kFileStore, steps, parallel});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, BackupMatrixTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

}  // namespace
}  // namespace llb
